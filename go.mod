module github.com/asap-go/asap

go 1.22

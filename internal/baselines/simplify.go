package baselines

import (
	"container/heap"
	"fmt"
	"math"
)

// Visvalingam reduces xs to target points with the Visvalingam–Whyatt
// algorithm [64]: repeatedly remove the point whose triangle with its two
// neighbors has the smallest ("effective") area, until only target points
// remain. The first and last points are always kept.
func Visvalingam(xs []float64, target int) ([]Point, error) {
	n := len(xs)
	if target < 2 {
		return nil, fmt.Errorf("%w: Visvalingam target %d (need >= 2)", ErrInput, target)
	}
	if n <= target {
		return PointsFromSeries(xs), nil
	}

	// Doubly linked list over indices plus a lazy-deletion heap of areas.
	prev := make([]int, n)
	next := make([]int, n)
	alive := make([]bool, n)
	version := make([]int, n)
	for i := range prev {
		prev[i] = i - 1
		next[i] = i + 1
		alive[i] = true
	}

	area := func(i int) float64 {
		p, q := prev[i], next[i]
		if p < 0 || q >= n {
			return math.Inf(1) // endpoints are immortal
		}
		return triangleArea(float64(p), xs[p], float64(i), xs[i], float64(q), xs[q])
	}

	h := &areaHeap{}
	heap.Init(h)
	for i := 1; i < n-1; i++ {
		heap.Push(h, areaItem{idx: i, area: area(i), version: 0})
	}

	remaining := n
	for remaining > target && h.Len() > 0 {
		item := heap.Pop(h).(areaItem)
		i := item.idx
		if !alive[i] || item.version != version[i] {
			continue // stale entry
		}
		// Remove i from the polyline.
		alive[i] = false
		remaining--
		p, q := prev[i], next[i]
		if p >= 0 {
			next[p] = q
		}
		if q < n {
			prev[q] = p
		}
		// Recompute neighbor areas (lazy: bump version, push fresh).
		for _, j := range [2]int{p, q} {
			if j > 0 && j < n-1 && alive[j] {
				version[j]++
				heap.Push(h, areaItem{idx: j, area: area(j), version: version[j]})
			}
		}
	}

	out := make([]Point, 0, target)
	for i := 0; i < n; i++ {
		if alive[i] {
			out = append(out, Point{X: float64(i), Y: xs[i]})
		}
	}
	return out, nil
}

func triangleArea(x1, y1, x2, y2, x3, y3 float64) float64 {
	return math.Abs((x1*(y2-y3) + x2*(y3-y1) + x3*(y1-y2)) / 2)
}

type areaItem struct {
	idx     int
	area    float64
	version int
}

type areaHeap []areaItem

func (h areaHeap) Len() int            { return len(h) }
func (h areaHeap) Less(i, j int) bool  { return h[i].area < h[j].area }
func (h areaHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *areaHeap) Push(x interface{}) { *h = append(*h, x.(areaItem)) }
func (h *areaHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// DouglasPeucker simplifies xs with the classic Douglas–Peucker algorithm
// [26]: points farther than epsilon (in y-distance to the chord) survive.
// An explicit stack avoids deep recursion on pathological inputs.
func DouglasPeucker(xs []float64, epsilon float64) ([]Point, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("%w: negative epsilon %v", ErrInput, epsilon)
	}
	if n <= 2 {
		return PointsFromSeries(xs), nil
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true

	type span struct{ lo, hi int }
	stack := []span{{0, n - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		// Find the point with maximum perpendicular distance to the chord.
		maxDist, maxIdx := -1.0, -1
		x1, y1 := float64(s.lo), xs[s.lo]
		x2, y2 := float64(s.hi), xs[s.hi]
		dx, dy := x2-x1, y2-y1
		norm := math.Hypot(dx, dy)
		for i := s.lo + 1; i < s.hi; i++ {
			var d float64
			if norm == 0 {
				d = math.Hypot(float64(i)-x1, xs[i]-y1)
			} else {
				d = math.Abs(dy*float64(i)-dx*xs[i]+x2*y1-y2*x1) / norm
			}
			if d > maxDist {
				maxDist, maxIdx = d, i
			}
		}
		if maxDist > epsilon {
			keep[maxIdx] = true
			stack = append(stack, span{s.lo, maxIdx}, span{maxIdx, s.hi})
		}
	}

	var out []Point
	for i, k := range keep {
		if k {
			out = append(out, Point{X: float64(i), Y: xs[i]})
		}
	}
	return out, nil
}

// DouglasPeuckerN binary-searches epsilon so that the simplification keeps
// approximately target points (within the achievable granularity), which
// makes DP comparable with the fixed-budget techniques.
func DouglasPeuckerN(xs []float64, target int) ([]Point, error) {
	if target < 2 {
		return nil, fmt.Errorf("%w: target %d (need >= 2)", ErrInput, target)
	}
	if len(xs) <= target {
		return PointsFromSeries(xs), nil
	}
	lo, hi := 0.0, 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > hi {
			hi = a
		}
	}
	hi = hi*2 + 1
	best, err := DouglasPeucker(xs, 0)
	if err != nil {
		return nil, err
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		pts, err := DouglasPeucker(xs, mid)
		if err != nil {
			return nil, err
		}
		if len(pts) > target {
			lo = mid
		} else {
			hi = mid
			best = pts
		}
	}
	return best, nil
}

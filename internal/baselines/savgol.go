package baselines

import (
	"errors"
	"fmt"
	"math"
)

// SavitzkyGolay smooths xs by least-squares fitting a polynomial of the
// given degree over each sliding window and evaluating it at the window
// center (Savitzky & Golay 1964 [56]). Like SMA, the output has length
// len(xs)-window+1, one value per window position, which keeps the
// roughness comparison of Appendix B.2 apples-to-apples: SG1 fits lines,
// SG4 fits quartics.
//
// The fit at the (fractional, for even windows) center is a fixed linear
// combination of the window values, so the filter is a single convolution
// with precomputed coefficients.
func SavitzkyGolay(xs []float64, window, degree int) ([]float64, error) {
	n := len(xs)
	if window < 1 || window > n {
		return nil, fmt.Errorf("%w: window %d for %d points", ErrInput, window, n)
	}
	if degree < 0 {
		return nil, fmt.Errorf("%w: negative degree %d", ErrInput, degree)
	}
	if degree >= window {
		// A degree >= window-1 polynomial interpolates the window exactly;
		// clamp so the system stays determined.
		degree = window - 1
	}
	coeffs, err := savgolCoefficients(window, degree)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n-window+1)
	for i := range out {
		var sum float64
		win := xs[i : i+window]
		for j, c := range coeffs {
			sum += c * win[j]
		}
		out[i] = sum
	}
	return out, nil
}

// savgolCoefficients returns the convolution weights that evaluate the
// least-squares polynomial of the given degree at the window center
// t = (window-1)/2. Derivation: with design matrix A[j][k] = j^k, the
// fitted coefficient vector is (A^T A)^{-1} A^T y, and evaluating at t is
// the dot product with (1, t, t^2, ...); folding the two gives one weight
// per sample.
func savgolCoefficients(window, degree int) ([]float64, error) {
	m := degree + 1
	// Normal matrix N = A^T A with N[p][q] = sum_j j^(p+q), and A^T rows.
	normal := make([][]float64, m)
	for p := 0; p < m; p++ {
		normal[p] = make([]float64, m)
		for q := 0; q < m; q++ {
			var s float64
			for j := 0; j < window; j++ {
				s += math.Pow(float64(j), float64(p+q))
			}
			normal[p][q] = s
		}
	}
	// Solve N * beta_j = A^T e_j for the weight each sample contributes,
	// equivalently: weight_j = phi(t)^T N^{-1} a_j where a_j = (1, j, j^2...).
	inv, err := invertMatrix(normal)
	if err != nil {
		return nil, err
	}
	t := float64(window-1) / 2
	phi := make([]float64, m)
	for k := 0; k < m; k++ {
		phi[k] = math.Pow(t, float64(k))
	}
	// row = phi^T * inv
	row := make([]float64, m)
	for q := 0; q < m; q++ {
		var s float64
		for p := 0; p < m; p++ {
			s += phi[p] * inv[p][q]
		}
		row[q] = s
	}
	coeffs := make([]float64, window)
	for j := 0; j < window; j++ {
		var s float64
		jp := 1.0
		for k := 0; k < m; k++ {
			s += row[k] * jp
			jp *= float64(j)
		}
		coeffs[j] = s
	}
	return coeffs, nil
}

// invertMatrix inverts a small dense matrix with Gauss–Jordan elimination
// and partial pivoting. Sized for Savitzky–Golay normal matrices (degree+1
// <= ~8), not general linear algebra.
func invertMatrix(a [][]float64) ([][]float64, error) {
	n := len(a)
	// Augment [A | I].
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-300 {
			return nil, errors.New("baselines: singular normal matrix in Savitzky-Golay fit")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Normalize and eliminate.
		p := aug[col][col]
		for j := 0; j < 2*n; j++ {
			aug[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}

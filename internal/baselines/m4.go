package baselines

import "fmt"

// M4 implements the M4 aggregation of Jugel et al. (VLDB 2014): for each of
// width pixel columns it keeps the first, last, minimum, and maximum
// values at their original positions. M4 is the error-free downsampler for
// line charts — the paper's representative of "visually indistinguishable"
// techniques (Section 6) — and serves as both a user-study comparison and
// the pixel-accuracy gold standard of Table 4.
func M4(xs []float64, width int) ([]Point, error) {
	n := len(xs)
	if width < 1 || n == 0 {
		return nil, fmt.Errorf("%w: M4 width %d on %d points", ErrInput, width, n)
	}
	if width >= n {
		return PointsFromSeries(xs), nil
	}
	out := make([]Point, 0, 4*width)
	for k := 0; k < width; k++ {
		start := k * n / width
		end := (k + 1) * n / width
		if end == start {
			end = start + 1
		}
		firstIdx, lastIdx := start, end-1
		minIdx, maxIdx := start, start
		for i := start + 1; i < end; i++ {
			if xs[i] < xs[minIdx] {
				minIdx = i
			}
			if xs[i] > xs[maxIdx] {
				maxIdx = i
			}
		}
		// Emit the up-to-4 distinct indices in x order.
		idxs := dedupSorted(firstIdx, minIdx, maxIdx, lastIdx)
		for _, i := range idxs {
			out = append(out, Point{X: float64(i), Y: xs[i]})
		}
	}
	return out, nil
}

// dedupSorted returns the distinct values among the four indices in
// ascending order. Four elements: a fixed-size sorting network keeps this
// allocation-light in the hot loop.
func dedupSorted(a, b, c, d int) []int {
	idx := [4]int{a, b, c, d}
	if idx[0] > idx[1] {
		idx[0], idx[1] = idx[1], idx[0]
	}
	if idx[2] > idx[3] {
		idx[2], idx[3] = idx[3], idx[2]
	}
	if idx[0] > idx[2] {
		idx[0], idx[2] = idx[2], idx[0]
	}
	if idx[1] > idx[3] {
		idx[1], idx[3] = idx[3], idx[1]
	}
	if idx[1] > idx[2] {
		idx[1], idx[2] = idx[2], idx[1]
	}
	out := make([]int, 0, 4)
	for i, v := range idx {
		if i == 0 || v != idx[i-1] {
			out = append(out, v)
		}
	}
	return out
}

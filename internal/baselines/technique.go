package baselines

import (
	"fmt"

	"github.com/asap-go/asap/internal/core"
)

// Technique identifies one of the seven visualization methods compared in
// the anomaly-identification user study (Section 5.1 / Figure 6).
type Technique int

// The compared techniques, in the order of Figure 6's legend.
const (
	TechASAP Technique = iota
	TechOriginal
	TechM4
	TechSimplify // Visvalingam–Whyatt ("simp" in the figures)
	TechPAA800
	TechPAA100
	TechOversmooth
)

// AllTechniques lists every technique in presentation order.
var AllTechniques = []Technique{
	TechASAP, TechOriginal, TechM4, TechSimplify, TechPAA800, TechPAA100, TechOversmooth,
}

// String returns the legend label used in the paper's figures.
func (t Technique) String() string {
	switch t {
	case TechASAP:
		return "ASAP"
	case TechOriginal:
		return "Original"
	case TechM4:
		return "M4"
	case TechSimplify:
		return "simp"
	case TechPAA800:
		return "PAA800"
	case TechPAA100:
		return "PAA100"
	case TechOversmooth:
		return "Oversmooth"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Apply renders xs with the given technique targeting the given display
// resolution (the studies use 800 px) and returns the plotted points.
func Apply(t Technique, xs []float64, resolution int) ([]Point, error) {
	switch t {
	case TechOriginal:
		return PointsFromSeries(xs), nil
	case TechASAP:
		res, err := core.Smooth(xs, core.SmoothOptions{Resolution: resolution})
		if err != nil {
			return nil, err
		}
		// Plot positions are in units of the original index: each
		// aggregated point spans Ratio raw points.
		pts := make([]Point, len(res.Smoothed))
		half := float64(res.Window-1) / 2
		for i, v := range res.Smoothed {
			pts[i] = Point{X: (float64(i) + half + 0.5) * float64(res.Ratio), Y: v}
		}
		return pts, nil
	case TechM4:
		return M4(xs, resolution)
	case TechSimplify:
		return Visvalingam(xs, resolution)
	case TechPAA800:
		return PAA(xs, 800)
	case TechPAA100:
		return PAA(xs, 100)
	case TechOversmooth:
		sm, err := Oversmooth(xs)
		if err != nil {
			return nil, err
		}
		w := len(xs) / OversmoothWindow
		return PointsFromSMA(sm, w), nil
	default:
		return nil, fmt.Errorf("%w: unknown technique %d", ErrInput, int(t))
	}
}

package baselines

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/asap-go/asap/internal/stats"
)

func noisySine(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func ys(pts []Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Y
	}
	return out
}

func assertXSorted(t *testing.T, pts []Point) {
	t.Helper()
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Error("points not sorted by X")
	}
}

func TestPAACounts(t *testing.T) {
	xs := noisySine(1000, 50, 0.2, 1)
	for _, m := range []int{1, 7, 100, 800} {
		pts, err := PAA(xs, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if len(pts) != m {
			t.Errorf("PAA(%d) returned %d points", m, len(pts))
		}
		assertXSorted(t, pts)
	}
	// m >= n returns the series unchanged.
	pts, err := PAA(xs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(xs) {
		t.Errorf("PAA beyond n returned %d points", len(pts))
	}
}

func TestPAAPreservesMean(t *testing.T) {
	prop := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw)%20 + 1
		n := m * (rng.Intn(20) + 1)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		vals, err := PAAValues(xs, m)
		if err != nil {
			return false
		}
		// Equal frames: mean of frame means == overall mean.
		return math.Abs(stats.Mean(vals)-stats.Mean(xs)) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPAAErrors(t *testing.T) {
	if _, err := PAA(nil, 10); err == nil {
		t.Error("empty input should error")
	}
	if _, err := PAA([]float64{1, 2}, 0); err == nil {
		t.Error("m=0 should error")
	}
}

func TestM4KeepsExtremes(t *testing.T) {
	xs := noisySine(10000, 100, 0.5, 2)
	pts, err := M4(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	assertXSorted(t, pts)
	if len(pts) > 400 {
		t.Errorf("M4 returned %d points, max is 4 per column", len(pts))
	}
	// Global extremes must survive.
	lo, hi, err := stats.MinMax(xs)
	if err != nil {
		t.Fatal(err)
	}
	plo, phi, err := stats.MinMax(ys(pts))
	if err != nil {
		t.Fatal(err)
	}
	if plo != lo || phi != hi {
		t.Errorf("M4 lost extremes: got [%v,%v], want [%v,%v]", plo, phi, lo, hi)
	}
	// Every point is a genuine sample.
	for _, p := range pts {
		i := int(p.X)
		if float64(i) != p.X || xs[i] != p.Y {
			t.Fatalf("M4 fabricated point %+v", p)
		}
	}
}

func TestM4SmallInput(t *testing.T) {
	xs := []float64{1, 2, 3}
	pts, err := M4(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Errorf("M4 with width > n should return all points, got %d", len(pts))
	}
	if _, err := M4(nil, 5); err == nil {
		t.Error("empty M4 should error")
	}
	if _, err := M4(xs, 0); err == nil {
		t.Error("width 0 should error")
	}
}

func TestVisvalingamReduces(t *testing.T) {
	xs := noisySine(2000, 80, 0.3, 3)
	pts, err := Visvalingam(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Errorf("Visvalingam kept %d points, want 100", len(pts))
	}
	assertXSorted(t, pts)
	if pts[0].X != 0 || pts[len(pts)-1].X != float64(len(xs)-1) {
		t.Error("Visvalingam must keep endpoints")
	}
	for _, p := range pts {
		i := int(p.X)
		if xs[i] != p.Y {
			t.Fatalf("Visvalingam fabricated point %+v", p)
		}
	}
}

func TestVisvalingamKeepsSpike(t *testing.T) {
	// A large isolated spike has huge effective area; aggressive
	// simplification must keep it (that is VW's selling point).
	xs := make([]float64, 1000)
	xs[500] = 100
	pts, err := Visvalingam(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pts {
		if p.X == 500 && p.Y == 100 {
			found = true
		}
	}
	if !found {
		t.Error("Visvalingam dropped the dominant spike")
	}
}

func TestVisvalingamStraightLine(t *testing.T) {
	// Collinear points all have zero area; any subset is exact.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) * 2
	}
	pts, err := Visvalingam(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Errorf("line simplification kept %d points, want 2", len(pts))
	}
}

func TestVisvalingamErrors(t *testing.T) {
	if _, err := Visvalingam([]float64{1, 2, 3}, 1); err == nil {
		t.Error("target < 2 should error")
	}
}

func TestDouglasPeuckerLine(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 3*float64(i) + 1
	}
	pts, err := DouglasPeucker(xs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Errorf("DP on a line kept %d points, want 2", len(pts))
	}
}

func TestDouglasPeuckerKeepsCorner(t *testing.T) {
	// A V-shape: the corner must survive any epsilon below its depth.
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = math.Abs(float64(i) - 50)
	}
	pts, err := DouglasPeucker(xs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pts {
		if p.X == 50 {
			found = true
		}
	}
	if !found {
		t.Error("DP dropped the corner point")
	}
}

func TestDouglasPeuckerN(t *testing.T) {
	xs := noisySine(2000, 100, 0.3, 4)
	pts, err := DouglasPeuckerN(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) > 60 {
		t.Errorf("DP-N target 50 returned %d points", len(pts))
	}
	if _, err := DouglasPeuckerN(xs, 1); err == nil {
		t.Error("target 1 should error")
	}
}

func TestDouglasPeuckerErrors(t *testing.T) {
	if _, err := DouglasPeucker(nil, 1); err == nil {
		t.Error("empty input should error")
	}
	if _, err := DouglasPeucker([]float64{1, 2, 3}, -1); err == nil {
		t.Error("negative epsilon should error")
	}
}

func TestMinMaxAggregation(t *testing.T) {
	xs := []float64{1, 5, 2, -3, 8, 0}
	pts, err := MinMax(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 1: [1,5,2] -> min 1 (idx 0), max 5 (idx 1) in order.
	// Bucket 2: [-3,8,0] -> min -3 (idx 3), max 8 (idx 4).
	want := []Point{{0, 1}, {1, 5}, {3, -3}, {4, 8}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points: %v", len(pts), pts)
	}
	for i, p := range pts {
		if p != want[i] {
			t.Errorf("pts[%d] = %+v, want %+v", i, p, want[i])
		}
	}
}

func TestMinMaxConstantBucket(t *testing.T) {
	// All-equal bucket: min==max, emit one point, not two.
	pts, err := MinMax([]float64{7, 7, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Errorf("constant bucket emitted %d points, want 1", len(pts))
	}
}

func TestMinMaxIsRough(t *testing.T) {
	// Appendix B.2: minmax yields far rougher output than SMA at the same
	// budget.
	xs := noisySine(4000, 200, 0.5, 5)
	mm, err := MinMax(xs, 40)
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := Oversmooth(xs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Roughness(ys(mm)) < 5*stats.Roughness(smoothed) {
		t.Errorf("minmax roughness %v not >> SMA roughness %v",
			stats.Roughness(ys(mm)), stats.Roughness(smoothed))
	}
}

func TestOversmooth(t *testing.T) {
	xs := noisySine(1000, 50, 0.5, 6)
	sm, err := Oversmooth(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm) != len(xs)-250+1 {
		t.Errorf("oversmooth length %d", len(sm))
	}
	if stats.Roughness(sm) >= stats.Roughness(xs) {
		t.Error("oversmoothing did not reduce roughness")
	}
	if _, err := Oversmooth([]float64{1}); err == nil {
		t.Error("single point should error")
	}
}

func TestSavitzkyGolayLinePreservation(t *testing.T) {
	// SG of any degree >= 1 reproduces a straight line exactly.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 2*float64(i) + 5
	}
	for _, deg := range []int{1, 2, 4} {
		sm, err := SavitzkyGolay(xs, 11, deg)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range sm {
			want := 2*(float64(i)+5) + 5 // value at window center i+5
			if math.Abs(v-want) > 1e-8 {
				t.Fatalf("deg=%d i=%d: %v, want %v", deg, i, v, want)
			}
		}
	}
}

func TestSavitzkyGolayQuarticPreservation(t *testing.T) {
	// SG4 reproduces degree-4 polynomials exactly; SG1 does not.
	xs := make([]float64, 60)
	for i := range xs {
		x := float64(i) / 10
		xs[i] = x*x*x*x - 2*x*x + 3
	}
	sm4, err := SavitzkyGolay(xs, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sm4 {
		x := (float64(i) + 4) / 10
		want := x*x*x*x - 2*x*x + 3
		if math.Abs(v-want) > 1e-6 {
			t.Fatalf("SG4 i=%d: %v, want %v", i, v, want)
		}
	}
	sm1, err := SavitzkyGolay(xs, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i, v := range sm1 {
		x := (float64(i) + 4) / 10
		want := x*x*x*x - 2*x*x + 3
		if d := math.Abs(v - want); d > maxErr {
			maxErr = d
		}
	}
	if maxErr < 1e-6 {
		t.Error("SG1 should not reproduce a quartic exactly")
	}
}

func TestSavitzkyGolayDegreeZeroIsSMA(t *testing.T) {
	// A degree-0 fit is the window mean: must equal SMA.
	xs := noisySine(200, 20, 0.4, 7)
	sg, err := SavitzkyGolay(xs, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sg {
		var sum float64
		for _, v := range xs[i : i+7] {
			sum += v
		}
		if math.Abs(sg[i]-sum/7) > 1e-9 {
			t.Fatalf("SG0[%d] = %v, SMA = %v", i, sg[i], sum/7)
		}
	}
}

func TestSavitzkyGolayCoefficientsSymmetric(t *testing.T) {
	// Centered odd-window coefficients are symmetric for any degree.
	for _, deg := range []int{1, 2, 3, 4} {
		cs, err := savgolCoefficients(11, deg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range cs {
			sum += cs[i]
			if math.Abs(cs[i]-cs[len(cs)-1-i]) > 1e-9 {
				t.Errorf("deg=%d: coefficients asymmetric at %d", deg, i)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("deg=%d: coefficients sum to %v, want 1", deg, sum)
		}
	}
}

func TestSavitzkyGolayErrors(t *testing.T) {
	if _, err := SavitzkyGolay(nil, 5, 1); err == nil {
		t.Error("empty input should error")
	}
	if _, err := SavitzkyGolay([]float64{1, 2, 3}, 5, 1); err == nil {
		t.Error("window > n should error")
	}
	if _, err := SavitzkyGolay([]float64{1, 2, 3}, 3, -1); err == nil {
		t.Error("negative degree should error")
	}
	// degree >= window clamps instead of erroring.
	if _, err := SavitzkyGolay([]float64{1, 2, 3, 4, 5}, 3, 10); err != nil {
		t.Errorf("degree clamp failed: %v", err)
	}
}

func TestFFTSmoothLowPass(t *testing.T) {
	// Signal = slow sine + fast sine. Keeping only the lowest bands must
	// remove the fast component.
	n := 512
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*4*float64(i)/float64(n)) +
			0.5*math.Sin(2*math.Pi*100*float64(i)/float64(n))
	}
	sm, err := FFTSmooth(xs, 10, FFTLow)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sm {
		want := math.Sin(2 * math.Pi * 4 * float64(i) / float64(n))
		if math.Abs(v-want) > 1e-8 {
			t.Fatalf("low-pass did not isolate slow component at %d: %v vs %v", i, v, want)
		}
	}
}

func TestFFTSmoothDominantKeepsStrongest(t *testing.T) {
	// With the fast component stronger, FFT-dominant keeps it and drops
	// the weak slow one — reproducing why FFT-dominant plots stay rough.
	n := 512
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 0.2*math.Sin(2*math.Pi*4*float64(i)/float64(n)) +
			2*math.Sin(2*math.Pi*100*float64(i)/float64(n))
	}
	sm, err := FFTSmooth(xs, 1, FFTDominant)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sm {
		want := 2 * math.Sin(2*math.Pi*100*float64(i)/float64(n))
		if math.Abs(v-want) > 1e-8 {
			t.Fatalf("dominant did not keep strongest component at %d: %v vs %v", i, v, want)
		}
	}
	if stats.Roughness(sm) < stats.Roughness(xs)*0.5 {
		t.Error("FFT-dominant unexpectedly smoothed a high-frequency-dominated signal")
	}
}

func TestFFTSmoothPreservesMean(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = rng.NormFloat64() + 3
		}
		k := int(kRaw) % 100
		for _, mode := range []FFTMode{FFTLow, FFTDominant} {
			sm, err := FFTSmooth(xs, k, mode)
			if err != nil {
				return false
			}
			if math.Abs(stats.Mean(sm)-stats.Mean(xs)) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFFTSmoothZeroComponents(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	sm, err := FFTSmooth(xs, 0, FFTLow)
	if err != nil {
		t.Fatal(err)
	}
	m := stats.Mean(xs)
	for i, v := range sm {
		if math.Abs(v-m) > 1e-9 {
			t.Errorf("k=0 reconstruction[%d] = %v, want mean %v", i, v, m)
		}
	}
}

func TestFFTSmoothErrors(t *testing.T) {
	if _, err := FFTSmooth(nil, 3, FFTLow); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FFTSmooth([]float64{1, 2}, -1, FFTLow); err == nil {
		t.Error("negative k should error")
	}
	if _, err := FFTSmooth([]float64{1, 2}, 1, FFTMode(9)); err == nil {
		t.Error("unknown mode should error")
	}
	if FFTLow.String() != "FFT-low" || FFTDominant.String() != "FFT-dominant" {
		t.Error("FFTMode names wrong")
	}
	if FFTMode(9).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}

func TestApplyAllTechniques(t *testing.T) {
	xs := noisySine(4000, 200, 0.4, 8)
	for _, tech := range AllTechniques {
		pts, err := Apply(tech, xs, 800)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if len(pts) == 0 {
			t.Errorf("%v produced no points", tech)
		}
		assertXSorted(t, pts)
		// Every x must be within the original index range.
		for _, p := range pts {
			if p.X < 0 || p.X > float64(len(xs)) {
				t.Errorf("%v produced out-of-range x %v", tech, p.X)
			}
		}
	}
	if _, err := Apply(Technique(99), xs, 800); err == nil {
		t.Error("unknown technique should error")
	}
}

func TestTechniqueString(t *testing.T) {
	names := map[Technique]string{
		TechASAP: "ASAP", TechOriginal: "Original", TechM4: "M4",
		TechSimplify: "simp", TechPAA800: "PAA800", TechPAA100: "PAA100",
		TechOversmooth: "Oversmooth",
	}
	for tech, want := range names {
		if tech.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(tech), tech.String(), want)
		}
	}
}

func BenchmarkM4(b *testing.B) {
	xs := noisySine(1_000_000, 1000, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := M4(xs, 1200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPAA(b *testing.B) {
	xs := noisySine(1_000_000, 1000, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PAA(xs, 800); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVisvalingam(b *testing.B) {
	xs := noisySine(100_000, 1000, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Visvalingam(xs, 1200); err != nil {
			b.Fatal(err)
		}
	}
}

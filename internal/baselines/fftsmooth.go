package baselines

import (
	"fmt"
	"sort"

	"github.com/asap-go/asap/internal/fft"
)

// FFTMode selects which frequency components an FFT reconstruction keeps.
type FFTMode int

const (
	// FFTLow keeps the k lowest-frequency components ("FFT-low" in
	// Appendix B.2) — a brick-wall low-pass filter.
	FFTLow FFTMode = iota
	// FFTDominant keeps the k highest-power components regardless of
	// frequency ("FFT-dominant"), which tends to retain the very
	// high-frequency content that dominates noisy series — the paper
	// reports it produces extremely rough plots.
	FFTDominant
)

// String names the mode as in the paper's figures.
func (m FFTMode) String() string {
	switch m {
	case FFTLow:
		return "FFT-low"
	case FFTDominant:
		return "FFT-dominant"
	default:
		return fmt.Sprintf("FFTMode(%d)", int(m))
	}
}

// FFTSmooth reconstructs xs from k frequency components chosen per mode.
// The DC component (mean) is always kept and does not count against k.
// Conjugate pairs are kept together so the reconstruction stays real.
func FFTSmooth(xs []float64, k int, mode FFTMode) ([]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	if k < 0 {
		return nil, fmt.Errorf("%w: negative component count %d", ErrInput, k)
	}
	spec, err := fft.ForwardReal(xs)
	if err != nil {
		return nil, err
	}

	// Frequency "bands" are conjugate pairs {i, n-i} for i in 1..n/2.
	nBands := n / 2
	keep := make([]bool, nBands+1)
	switch mode {
	case FFTLow:
		for i := 1; i <= nBands && i <= k; i++ {
			keep[i] = true
		}
	case FFTDominant:
		type band struct {
			idx   int
			power float64
		}
		bands := make([]band, 0, nBands)
		for i := 1; i <= nBands; i++ {
			re, im := real(spec[i]), imag(spec[i])
			bands = append(bands, band{idx: i, power: re*re + im*im})
		}
		sort.Slice(bands, func(a, b int) bool { return bands[a].power > bands[b].power })
		for i := 0; i < k && i < len(bands); i++ {
			keep[bands[i].idx] = true
		}
	default:
		return nil, fmt.Errorf("%w: unknown FFT mode %d", ErrInput, int(mode))
	}

	filtered := make([]complex128, n)
	filtered[0] = spec[0] // DC
	for i := 1; i <= nBands; i++ {
		if !keep[i] {
			continue
		}
		filtered[i] = spec[i]
		if i != n-i && n-i < n {
			filtered[n-i] = spec[n-i]
		}
	}
	back, err := fft.Inverse(filtered)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, c := range back {
		out[i] = real(c)
	}
	return out, nil
}

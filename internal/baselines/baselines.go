// Package baselines implements every visualization and smoothing technique
// the paper compares ASAP against: piecewise aggregate approximation (PAA),
// the M4 aggregation, the Visvalingam–Whyatt and Douglas–Peucker line
// simplification algorithms, Savitzky–Golay filters, FFT low-pass and
// dominant-frequency reconstruction, MinMax aggregation, and the fixed
// "oversmooth" strategy from the user studies (SMA with window = n/4).
//
// Techniques that subsample the series (PAA, M4, simplification) return
// Points carrying their original x positions, because their visual
// appearance — and thus the pixel-error metric of Appendix B.1 — depends
// on where the surviving points sit on the time axis.
package baselines

import (
	"errors"
	"fmt"

	"github.com/asap-go/asap/internal/sma"
)

// ErrInput reports an unusable argument.
var ErrInput = errors.New("baselines: invalid input")

// Point is a plotted sample: X in units of the original sample index, Y the
// value drawn at that position.
type Point struct {
	X float64
	Y float64
}

// PointsFromSeries lifts a dense series into Points at integer positions.
func PointsFromSeries(xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, v := range xs {
		out[i] = Point{X: float64(i), Y: v}
	}
	return out
}

// PointsFromSMA positions a moving-average output at the centers of its
// source windows, the natural alignment for visual comparison.
func PointsFromSMA(smoothed []float64, window int) []Point {
	out := make([]Point, len(smoothed))
	half := float64(window-1) / 2
	for i, v := range smoothed {
		out[i] = Point{X: float64(i) + half, Y: v}
	}
	return out
}

// PAA reduces xs to m points via piecewise aggregate approximation
// (Keogh et al. [37]): the series is split into m equal-width frames and
// each frame is replaced by its mean, drawn at the frame center.
func PAA(xs []float64, m int) ([]Point, error) {
	n := len(xs)
	if m < 1 || n == 0 {
		return nil, fmt.Errorf("%w: PAA to %d points from %d", ErrInput, m, n)
	}
	if m >= n {
		return PointsFromSeries(xs), nil
	}
	out := make([]Point, m)
	for k := 0; k < m; k++ {
		// Equal-width frames with integer boundaries spreading remainder.
		start := k * n / m
		end := (k + 1) * n / m
		if end == start {
			end = start + 1
		}
		var sum float64
		for _, v := range xs[start:end] {
			sum += v
		}
		out[k] = Point{
			X: (float64(start) + float64(end-1)) / 2,
			Y: sum / float64(end-start),
		}
	}
	return out, nil
}

// PAAValues returns just the m frame means (no x positions), for metric
// computations that treat the PAA output as a plain series.
func PAAValues(xs []float64, m int) ([]float64, error) {
	pts, err := PAA(xs, m)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Y
	}
	return out, nil
}

// MinMax aggregates xs into buckets of the given size and emits each
// bucket's minimum and maximum in their original order of occurrence —
// the "minmax" smoothing alternative of Appendix B.2. The result
// deliberately maximizes the distance between consecutive points within a
// bucket, which is why the paper reports it produces very rough plots.
func MinMax(xs []float64, bucket int) ([]Point, error) {
	n := len(xs)
	if bucket < 1 || n == 0 {
		return nil, fmt.Errorf("%w: minmax bucket %d on %d points", ErrInput, bucket, n)
	}
	var out []Point
	for start := 0; start < n; start += bucket {
		end := start + bucket
		if end > n {
			end = n
		}
		minIdx, maxIdx := start, start
		for i := start + 1; i < end; i++ {
			if xs[i] < xs[minIdx] {
				minIdx = i
			}
			if xs[i] > xs[maxIdx] {
				maxIdx = i
			}
		}
		if minIdx == maxIdx {
			out = append(out, Point{X: float64(minIdx), Y: xs[minIdx]})
			continue
		}
		if minIdx < maxIdx {
			out = append(out, Point{X: float64(minIdx), Y: xs[minIdx]},
				Point{X: float64(maxIdx), Y: xs[maxIdx]})
		} else {
			out = append(out, Point{X: float64(maxIdx), Y: xs[maxIdx]},
				Point{X: float64(minIdx), Y: xs[minIdx]})
		}
	}
	return out, nil
}

// OversmoothWindow is the fixed fraction used by the "oversmoothed"
// comparison plots in the user studies: SMA with a window of 1/4 of the
// series length.
const OversmoothWindow = 4

// Oversmooth applies SMA with window = max(2, n/4), the deliberately
// too-aggressive strategy of Section 5.1.
func Oversmooth(xs []float64) ([]float64, error) {
	w := len(xs) / OversmoothWindow
	if w < 2 {
		w = 2
	}
	if w > len(xs) {
		return nil, fmt.Errorf("%w: series too short to oversmooth (%d points)", ErrInput, len(xs))
	}
	return sma.Transform(xs, w)
}

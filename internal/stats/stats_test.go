package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
		{[]float64{2, 2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses the tiny contributions.
	xs := make([]float64, 10001)
	xs[0] = 1e8
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-4
	}
	want := (1e8 + 1e-4*10000) / 10001
	if got := Mean(xs); !almostEqual(got, want, 1e-6) {
		t.Errorf("Mean with compensation = %v, want %v", got, want)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance singleton = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Diff length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Diff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Diff([]float64{1}) != nil {
		t.Error("Diff of singleton should be nil")
	}
	if Diff(nil) != nil {
		t.Error("Diff of nil should be nil")
	}
}

// TestRoughnessFigure4 reproduces the roughness values the paper reports for
// the three toy series of Figure 4: a jagged line (~2.04), a slightly bent
// line (~0.4), and a straight line (exactly 0). The paper does not publish
// the underlying points, so we construct series with the same character:
// all three have mean 0 and standard deviation 1 (checked), and the jagged /
// bent / straight roughness ordering and magnitudes match.
func TestRoughnessFigure4(t *testing.T) {
	// Series C: straight line, roughness exactly 0.
	c := make([]float64, 64)
	for i := range c {
		c[i] = float64(i)
	}
	c = ZScores(c)
	if got := Roughness(c); !almostEqual(got, 0, 1e-9) {
		t.Errorf("straight-line roughness = %v, want 0", got)
	}
	m := ComputeMoments(c)
	if !almostEqual(m.Mean, 0, 1e-9) || !almostEqual(m.StdDev(), 1, 1e-9) {
		t.Errorf("normalization failed: mean=%v std=%v", m.Mean, m.StdDev())
	}

	// Series A: alternating jagged line: z-scored alternation has diffs of
	// +-2, i.e. std of diffs close to 2 (paper: 2.04).
	a := make([]float64, 64)
	for i := range a {
		if i%2 == 0 {
			a[i] = 1
		} else {
			a[i] = -1
		}
	}
	a = ZScores(a)
	ra := Roughness(a)
	if ra < 1.8 || ra > 2.2 {
		t.Errorf("jagged roughness = %v, want about 2.04", ra)
	}

	// Series B: a slightly bent line (two slopes) -> small but nonzero.
	b := make([]float64, 64)
	for i := range b {
		if i < 32 {
			b[i] = float64(i) * 0.5
		} else {
			b[i] = 16 + float64(i-32)*1.5
		}
	}
	b = ZScores(b)
	rb := Roughness(b)
	if rb <= 0 || rb >= ra {
		t.Errorf("bent roughness = %v, want in (0, %v)", rb, ra)
	}
}

func TestKurtosisNormalVsLaplace(t *testing.T) {
	// Figure 5: normal kurtosis 3, Laplace kurtosis 6 (same mean/variance).
	rng := rand.New(rand.NewSource(7))
	n := 200000
	normal := make([]float64, n)
	laplace := make([]float64, n)
	for i := 0; i < n; i++ {
		normal[i] = rng.NormFloat64() * math.Sqrt2
		// Inverse-CDF sampling of Laplace(0, b=1) has variance 2b^2 = 2.
		u := rng.Float64() - 0.5
		laplace[i] = -math.Copysign(math.Log(1-2*math.Abs(u)), u)
	}
	kn, kl := Kurtosis(normal), Kurtosis(laplace)
	if !almostEqual(kn, 3, 0.15) {
		t.Errorf("normal kurtosis = %v, want about 3", kn)
	}
	if !almostEqual(kl, 6, 0.4) {
		t.Errorf("laplace kurtosis = %v, want about 6", kl)
	}
	if Variance(normal) < 1.8 || Variance(normal) > 2.2 {
		t.Errorf("normal variance = %v, want about 2", Variance(normal))
	}
	if Variance(laplace) < 1.8 || Variance(laplace) > 2.2 {
		t.Errorf("laplace variance = %v, want about 2", Variance(laplace))
	}
}

func TestKurtosisUniform(t *testing.T) {
	// Continuous uniform has kurtosis 1.8 (platykurtic, < 3).
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	if got := Kurtosis(xs); !almostEqual(got, 1.8, 0.1) {
		t.Errorf("uniform kurtosis = %v, want about 1.8", got)
	}
}

func TestKurtosisDegenerate(t *testing.T) {
	if got := Kurtosis([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant-series kurtosis = %v, want 0", got)
	}
	if got := Kurtosis([]float64{1}); got != 0 {
		t.Errorf("singleton kurtosis = %v, want 0", got)
	}
	if got := Kurtosis(nil); got != 0 {
		t.Errorf("nil kurtosis = %v, want 0", got)
	}
}

func TestMomentsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	m := ComputeMoments(xs)
	if !almostEqual(m.Mean, Mean(xs), 1e-9) {
		t.Errorf("moments mean = %v, direct = %v", m.Mean, Mean(xs))
	}
	if !almostEqual(m.Variance(), Variance(xs), 1e-9) {
		t.Errorf("moments variance = %v, direct = %v", m.Variance(), Variance(xs))
	}
	// Direct two-pass kurtosis.
	mu := Mean(xs)
	var s2, s4 float64
	for _, x := range xs {
		d := x - mu
		s2 += d * d
		s4 += d * d * d * d
	}
	direct := float64(len(xs)) * s4 / (s2 * s2)
	if !almostEqual(m.Kurtosis(), direct, 1e-9) {
		t.Errorf("moments kurtosis = %v, direct = %v", m.Kurtosis(), direct)
	}
}

func TestMomentsMergeEquivalentToConcat(t *testing.T) {
	prop := func(a, b []float64) bool {
		var left, right, whole Moments
		for _, x := range a {
			left.Add(clamp(x))
		}
		for _, x := range b {
			right.Add(clamp(x))
		}
		for _, x := range append(append([]float64{}, a...), b...) {
			whole.Add(clamp(x))
		}
		left.Merge(right)
		return left.N == whole.N &&
			almostEqual(left.Mean, whole.Mean, 1e-6*(1+math.Abs(whole.Mean))) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-6*(1+whole.Variance())) &&
			almostEqual(left.Kurtosis(), whole.Kurtosis(), 1e-4*(1+whole.Kurtosis()))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// clamp keeps quick-generated values in a numerically reasonable range so
// the property is about algebra, not float overflow.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestMergeIdentity(t *testing.T) {
	var empty Moments
	m := ComputeMoments([]float64{1, 2, 3})
	orig := m
	m.Merge(empty)
	if m != orig {
		t.Errorf("merge with empty changed sketch: %+v -> %+v", orig, m)
	}
	empty.Merge(orig)
	if empty != orig {
		t.Errorf("empty.Merge(x) should equal x: got %+v want %+v", empty, orig)
	}
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	cov, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cov, 2*Variance(xs), 1e-12) {
		t.Errorf("Cov(x,2x) = %v, want %v", cov, 2*Variance(xs))
	}
	if _, err := Covariance(xs, ys[:2]); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := Covariance(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestZScores(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	zs := ZScores(xs)
	m := ComputeMoments(zs)
	if !almostEqual(m.Mean, 0, 1e-12) || !almostEqual(m.StdDev(), 1, 1e-12) {
		t.Errorf("z-scores mean=%v std=%v, want 0/1", m.Mean, m.StdDev())
	}
	flat := ZScores([]float64{3, 3, 3})
	for _, z := range flat {
		if z != 0 {
			t.Errorf("z-score of constant series = %v, want 0", z)
		}
	}
	if got := ZScores(nil); len(got) != 0 {
		t.Errorf("ZScores(nil) length = %d, want 0", len(got))
	}
}

func TestZScorePreservesRoughnessRatios(t *testing.T) {
	// Z-scoring is affine, so it preserves the ratio roughness/stddev and
	// leaves kurtosis unchanged — the invariant ASAP relies on when
	// normalizing plots.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*7 + 100
	}
	zs := ZScores(xs)
	if !almostEqual(Kurtosis(xs), Kurtosis(zs), 1e-9) {
		t.Errorf("kurtosis changed under z-score: %v vs %v", Kurtosis(xs), Kurtosis(zs))
	}
	ratioX := Roughness(xs) / StdDev(xs)
	ratioZ := Roughness(zs) / StdDev(zs)
	if !almostEqual(ratioX, ratioZ, 1e-9) {
		t.Errorf("roughness/std ratio changed: %v vs %v", ratioX, ratioZ)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil || lo != -1 || hi != 5 {
		t.Errorf("MinMax = (%v,%v,%v), want (-1,5,nil)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("expected error for empty MinMax")
	}
}

func TestRoughnessShortInputs(t *testing.T) {
	if got := Roughness(nil); got != 0 {
		t.Errorf("Roughness(nil) = %v", got)
	}
	if got := Roughness([]float64{1, 2}); got != 0 {
		t.Errorf("Roughness(2 pts) = %v, want 0 (single diff has no spread)", got)
	}
}

func TestRoughnessAffineInvariance(t *testing.T) {
	// roughness(a*x + b) = |a| * roughness(x)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		a, b := rng.Float64()*10-5, rng.Float64()*100
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = a*xs[i] + b
		}
		return almostEqual(Roughness(ys), math.Abs(a)*Roughness(xs), 1e-8)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMoments(b *testing.B) {
	xs := make([]float64, 100000)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeMoments(xs).Kurtosis()
	}
}

func BenchmarkRoughness(b *testing.B) {
	xs := make([]float64, 100000)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Roughness(xs)
	}
}

// Package stats provides the moment statistics that ASAP's quality metrics
// are built from: mean, variance, standard deviation, kurtosis (the fourth
// standardized moment), first differences, and the roughness measure
// sigma(delta X) defined in Section 3.1 of the paper.
//
// All statistics are population statistics (divide by n, not n-1), matching
// the definitions used in the paper and its reference implementations.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that cannot compute a statistic on an
// empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Kahan-compensated summation: time series of millions of points can
	// lose several digits with a naive running sum.
	sum, comp := 0.0, 0.0
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for inputs with
// fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum, comp := 0.0, 0.0
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Moments holds the first four central moments of a sample, sufficient to
// compute every statistic ASAP needs in a single pass.
type Moments struct {
	N    int
	Mean float64
	M2   float64 // sum of (x-mean)^2
	M3   float64 // sum of (x-mean)^3
	M4   float64 // sum of (x-mean)^4
}

// ComputeMoments returns the first four central moments of xs in one pass
// using the numerically stable streaming update (Welford generalized to
// higher moments, cf. Pébay 2008).
func ComputeMoments(xs []float64) Moments {
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return m
}

// Add folds one observation into the moments.
func (m *Moments) Add(x float64) {
	n1 := float64(m.N)
	m.N++
	n := float64(m.N)
	delta := x - m.Mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.Mean += deltaN
	m.M4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.M2 - 4*deltaN*m.M3
	m.M3 += term1*deltaN*(n-2) - 3*deltaN*m.M2
	m.M2 += term1
}

// Merge combines two moment sketches as if their underlying samples were
// concatenated. Merging with an empty sketch is the identity.
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	na, nb := float64(m.N), float64(o.N)
	n := na + nb
	delta := o.Mean - m.Mean
	delta2 := delta * delta
	delta3 := delta2 * delta
	delta4 := delta2 * delta2

	m4 := m.M4 + o.M4 +
		delta4*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
		6*delta2*(na*na*o.M2+nb*nb*m.M2)/(n*n) +
		4*delta*(na*o.M3-nb*m.M3)/n
	m3 := m.M3 + o.M3 +
		delta3*na*nb*(na-nb)/(n*n) +
		3*delta*(na*o.M2-nb*m.M2)/n
	m2 := m.M2 + o.M2 + delta2*na*nb/n

	m.Mean = (na*m.Mean + nb*o.Mean) / n
	m.M2, m.M3, m.M4 = m2, m3, m4
	m.N = int(n)
}

// Variance returns the population variance implied by the moments.
func (m Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	return m.M2 / float64(m.N)
}

// StdDev returns the population standard deviation implied by the moments.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Kurtosis returns the fourth standardized moment E[(X-mu)^4] / E[(X-mu)^2]^2.
// A normal distribution has kurtosis 3. Inputs with zero variance (all
// values equal) return 0 by convention; callers treat such series as
// "nothing to preserve" (a flat line has no deviations to keep).
func (m Moments) Kurtosis() float64 {
	if m.N < 2 || m.M2 == 0 {
		return 0
	}
	n := float64(m.N)
	return n * m.M4 / (m.M2 * m.M2)
}

// Kurtosis returns the population kurtosis (fourth standardized moment) of
// xs. See Moments.Kurtosis for conventions.
func Kurtosis(xs []float64) float64 {
	return ComputeMoments(xs).Kurtosis()
}

// Diff returns the first difference series {x2-x1, x3-x2, ...} (Section 3.1).
// The result has length len(xs)-1; an input shorter than 2 yields nil.
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	d := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		d[i-1] = xs[i] - xs[i-1]
	}
	return d
}

// Roughness returns the standard deviation of the first difference series,
// the paper's inverse-smoothness measure (Section 3.1). A straight line has
// roughness exactly 0. Inputs shorter than 3 points return 0.
func Roughness(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	// One-pass over differences; avoids materializing Diff.
	var m Moments
	for i := 1; i < len(xs); i++ {
		m.Add(xs[i] - xs[i-1])
	}
	return m.StdDev()
}

// Covariance returns the population covariance of the paired samples xs and
// ys. It returns an error when the lengths differ or the input is empty.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: covariance inputs must have equal length")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	sum, comp := 0.0, 0.0
	for i := range xs {
		y := (xs[i]-mx)*(ys[i]-my) - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs)), nil
}

// ZScores returns (x - mean) / std for every point. When the input has zero
// variance, it returns a zero slice of the same length (the z-score of a
// constant series is identically zero). The paper plots z-scores instead of
// raw values to normalize the visual field across plots (Section 1, fn. 1).
func ZScores(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	m := ComputeMoments(xs)
	sd := m.StdDev()
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m.Mean) / sd
	}
	return out
}

// MinMax returns the smallest and largest values in xs. It returns an error
// for empty input.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestNewPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) should fail", n)
		}
	}
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := NewRealPlan(n); err == nil {
			t.Errorf("NewRealPlan(%d) should fail", n)
		}
	}
}

// TestPlanMatchesNaiveDFT is the tentpole differential test: the planned
// transform must agree with the O(n^2) direct DFT at every power-of-two
// size the refresh engine can reach.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		xs := randComplex(n, int64(n)+7)
		buf := make([]complex128, n)
		copy(buf, xs)
		p.Forward(buf)
		want := naiveDFT(xs, false)
		if d := maxAbsDiff(buf, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: plan forward vs naive DFT diff %g", n, d)
		}

		copy(buf, xs)
		p.Inverse(buf)
		want = naiveDFT(xs, true)
		for i := range want {
			want[i] /= complex(float64(n), 0)
		}
		if d := maxAbsDiff(buf, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: plan inverse vs naive IDFT diff %g", n, d)
		}
	}
}

// TestPlanMatchesForward pins the plan to the package-level one-shot
// helpers bit for bit: both now run the identical table-driven kernel.
func TestPlanMatchesForward(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		xs := randComplex(n, int64(n))
		buf := make([]complex128, n)
		copy(buf, xs)
		p.Forward(buf)
		want, err := Forward(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("n=%d bin %d: plan %v != one-shot %v", n, i, buf[i], want[i])
			}
		}
	}
}

// TestRealPlanForwardMatchesComplex checks the packed real transform
// against lifting the same series to complex and transforming at full
// size.
func TestRealPlanForwardMatchesComplex(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32, 128, 1024} {
		p, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		xs := randReal(n, int64(n)+1)
		spec := make([]complex128, p.SpectrumLen())
		p.Forward(spec, xs)
		full, err := ForwardReal(xs)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(spec[k] - full[k]); d > 1e-9*float64(n) {
				t.Errorf("n=%d bin %d: real plan %v vs complex %v (diff %g)",
					n, k, spec[k], full[k], d)
			}
		}
	}
}

// TestRealPlanRoundTrip drives the Wiener–Khinchin shape the ACF analyzer
// uses: forward, pointwise power spectrum, inverse — all in place — and
// checks the result against the directly computed autocovariance.
func TestRealPlanRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 512} {
		p, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		xs := randReal(n, int64(n)+2)
		spec := make([]complex128, p.SpectrumLen())
		back := make([]float64, n)
		p.Forward(spec, xs)
		p.Inverse(back, spec)
		for i := range xs {
			if math.Abs(back[i]-xs[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d sample %d: round trip %v != %v", n, i, back[i], xs[i])
			}
		}
	}
}

func TestRealPlanAutocovariance(t *testing.T) {
	n := 32 // series length; transform at 2n to make circular correlation linear
	xs := randReal(n, 99)
	m := NextPow2(2 * n)
	p, err := NewRealPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	padded := make([]float64, m)
	copy(padded, xs)
	spec := make([]complex128, p.SpectrumLen())
	cov := make([]float64, m)
	p.Forward(spec, padded)
	for k := range spec {
		re, im := real(spec[k]), imag(spec[k])
		spec[k] = complex(re*re+im*im, 0)
	}
	p.Inverse(cov, spec)
	for tau := 0; tau < n; tau++ {
		var want float64
		for i := 0; i+tau < n; i++ {
			want += xs[i] * xs[i+tau]
		}
		if math.Abs(cov[tau]-want) > 1e-8*float64(n) {
			t.Errorf("tau=%d: fft autocovariance %v, direct %v", tau, cov[tau], want)
		}
	}
}

// TestPlanTransformsDoNotAllocate is the allocation contract of the
// refresh engine's innermost layer.
func TestPlanTransformsDoNotAllocate(t *testing.T) {
	p, err := NewPlan(1024)
	if err != nil {
		t.Fatal(err)
	}
	buf := randComplex(1024, 3)
	if allocs := testing.AllocsPerRun(100, func() {
		p.Forward(buf)
		p.Inverse(buf)
	}); allocs != 0 {
		t.Errorf("Plan transforms allocated %.1f objects/op, want 0", allocs)
	}

	rp, err := NewRealPlan(2048)
	if err != nil {
		t.Fatal(err)
	}
	xs := randReal(2048, 4)
	spec := make([]complex128, rp.SpectrumLen())
	out := make([]float64, 2048)
	if allocs := testing.AllocsPerRun(100, func() {
		rp.Forward(spec, xs)
		rp.Inverse(out, spec)
	}); allocs != 0 {
		t.Errorf("RealPlan transforms allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkFFTPlan compares the planned kernels against the one-shot
// helpers at the transform size a 4096-pane ACF uses (2*4096). The
// "forward/oneshot" case is the pre-plan cost model: an allocating copy
// plus the shared kernel.
func BenchmarkFFTPlan(b *testing.B) {
	const n = 8192
	xs := randComplex(n, 5)
	buf := make([]complex128, n)
	p, err := NewPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("forward/plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(buf, xs)
			p.Forward(buf)
		}
	})
	b.Run("forward/oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Forward(xs); err != nil {
				b.Fatal(err)
			}
		}
	})

	rxs := randReal(n, 6)
	rp, err := NewRealPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	spec := make([]complex128, rp.SpectrumLen())
	out := make([]float64, n)
	b.Run("real/plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rp.Forward(spec, rxs)
		}
	})
	b.Run("real/roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rp.Forward(spec, rxs)
			rp.Inverse(out, spec)
		}
	})
}

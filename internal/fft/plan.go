package fft

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// ErrSize is returned when a plan is requested for an unsupported size or a
// planned transform is handed a buffer of the wrong length.
var ErrSize = errors.New("fft: bad transform size")

// Plan holds everything a radix-2 transform of one fixed power-of-two size
// needs beyond the data itself: the bit-reversal permutation and the
// twiddle-factor table, both computed once at construction. A Plan performs
// its transforms fully in place in caller-owned buffers, so steady-state use
// allocates nothing. Plans are immutable after construction and safe for
// concurrent use.
//
// Use a Plan on hot paths that transform the same size repeatedly (the
// streaming refresh engine); the one-shot helpers Forward, Inverse and
// ForwardReal remain for occasional transforms of varying sizes.
type Plan struct {
	n    int
	logN int
	// rev[i] is the bit-reversed index of i; only entries with rev[i] > i
	// are swapped, but the full table keeps the permutation loop branch-lean.
	rev []int32
	// twF and twI hold the forward and inverse twiddles stage by stage,
	// contiguously: the stage with butterfly span `size` owns size/2
	// consecutive entries exp(∓2*pi*i*k/size), k in [0, size/2), for sizes
	// 4, 8, ..., n in order (the size-2 stage needs no twiddles — its only
	// factor is 1). Contiguous per-stage layout keeps the inner butterfly
	// loop's table reads sequential, and the split tables keep the inverse
	// path free of per-butterfly conjugation.
	twF, twI []complex128
}

// NewPlan builds a Plan for transforms of length n, which must be a power
// of two >= 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, ErrSize
	}
	p := &Plan{n: n, logN: bits.TrailingZeros(uint(n))}
	p.rev = make([]int32, n)
	if n > 1 {
		for i := 0; i < n; i++ {
			p.rev[i] = int32(bits.Reverse(uint(i)) >> (bits.UintSize - p.logN))
		}
		if n > 2 {
			p.twF = make([]complex128, n-2)
			p.twI = make([]complex128, n-2)
			off := 0
			for size := 4; size <= n; size <<= 1 {
				half := size >> 1
				for k := 0; k < half; k++ {
					angle := -2 * math.Pi * float64(k) / float64(size)
					s, c := math.Sincos(angle)
					p.twF[off+k] = complex(c, s)
					p.twI[off+k] = complex(c, -s)
				}
				off += half
			}
		}
	}
	return p, nil
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Forward runs the in-place DFT of buf, which must have length Size.
func (p *Plan) Forward(buf []complex128) {
	if len(buf) != p.n {
		panic("fft: Plan.Forward buffer length mismatch")
	}
	p.transform(buf, false)
}

// Inverse runs the in-place inverse DFT of buf (normalized by 1/n), which
// must have length Size.
func (p *Plan) Inverse(buf []complex128) {
	if len(buf) != p.n {
		panic("fft: Plan.Inverse buffer length mismatch")
	}
	p.transform(buf, true)
	inv := complex(1/float64(p.n), 0)
	for i := range buf {
		buf[i] *= inv
	}
}

// transform is the table-driven radix-2 kernel. Unlike the historical
// kernel, which rebuilt each stage's twiddles by repeated complex
// multiplication (accumulating rounding error and costing a multiply per
// butterfly), every twiddle here is a sequential table load, and the
// size-2 stage runs multiply-free.
func (p *Plan) transform(buf []complex128, inverse bool) {
	n := p.n
	if n <= 1 {
		return
	}
	for i, r := range p.rev {
		if int(r) > i {
			buf[i], buf[r] = buf[r], buf[i]
		}
	}
	// Size-2 stage: the only twiddle is 1.
	for i := 0; i < n; i += 2 {
		a, b := buf[i], buf[i+1]
		buf[i], buf[i+1] = a+b, a-b
	}
	table := p.twF
	if inverse {
		table = p.twI
	}
	off := 0
	for size := 4; size <= n; size <<= 1 {
		half := size >> 1
		tw := table[off : off+half]
		for start := 0; start < n; start += size {
			lo := buf[start : start+half : start+half]
			hi := buf[start+half : start+size : start+size]
			for k := 0; k < half; k++ {
				a := lo[k]
				b := hi[k] * tw[k]
				lo[k] = a + b
				hi[k] = a - b
			}
		}
		off += half
	}
}

// RealPlan transforms real-valued series of one fixed even power-of-two
// length n by packing them into a half-size complex transform — the
// standard two-for-one real FFT. Forward produces the non-redundant half
// spectrum X[0..n/2]; Inverse reconstructs a real series from such a half
// spectrum. Both work in place in caller-owned buffers with no steady-state
// allocation. The pair is the Wiener–Khinchin workhorse of acf.Analyzer:
// a real forward, a pointwise power spectrum, and a real inverse.
type RealPlan struct {
	n    int   // real series length
	half *Plan // complex plan of size n/2
	// wr[k] = exp(-2*pi*i*k/n) for k in [0, n/2]: the pack/unpack twiddles.
	wr []complex128
}

// NewRealPlan builds a RealPlan for real series of length n, which must be
// a power of two >= 2.
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, ErrSize
	}
	half, err := NewPlan(n / 2)
	if err != nil {
		return nil, err
	}
	p := &RealPlan{n: n, half: half}
	p.wr = make([]complex128, n/2+1)
	for k := range p.wr {
		angle := -2 * math.Pi * float64(k) / float64(n)
		s, c := math.Sincos(angle)
		p.wr[k] = complex(c, s)
	}
	return p, nil
}

// Size returns the real series length the plan was built for.
func (p *RealPlan) Size() int { return p.n }

// SpectrumLen returns the length of the half spectrum, n/2 + 1.
func (p *RealPlan) SpectrumLen() int { return p.n/2 + 1 }

// Forward computes the DFT of the real series src into dst as the
// non-redundant half spectrum X[0..n/2] (the full spectrum satisfies
// X[n-k] = cmplx.Conj(X[k])). src must have length Size and dst at least
// SpectrumLen; dst doubles as the packing scratch, so no other buffer is
// touched.
func (p *RealPlan) Forward(dst []complex128, src []float64) {
	if len(src) != p.n || len(dst) < p.n/2+1 {
		panic("fft: RealPlan.Forward buffer length mismatch")
	}
	h := p.n / 2
	z := dst[:h]
	for j := 0; j < h; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.transform(z, false)

	// Unpack Z (the half-size transform of the even/odd interleave) into
	// the half spectrum. Entries k and h-k are consumed pairwise before
	// being overwritten, so the unpack is in place.
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k <= h/2; k++ {
		zk, zr := dst[k], dst[h-k]
		e := (zk + cmplx.Conj(zr)) * complex(0.5, 0)   // even part
		o := (zk - cmplx.Conj(zr)) * complex(0, -0.5)  // odd part
		or := (zr - cmplx.Conj(zk)) * complex(0, -0.5) // odd part at h-k
		er := cmplx.Conj(e)                            // even part at h-k
		dst[k] = e + p.wr[k]*o
		if k != h-k {
			dst[h-k] = er + p.wr[h-k]*or
		}
	}
}

// Inverse reconstructs into dst the real series whose DFT half spectrum is
// spec[0..n/2] (spec[0] and spec[n/2] must be real for the result to be
// exact; imaginary parts there are ignored by construction of the packing).
// The transform is normalized by 1/n, so Inverse(Forward(x)) == x up to
// rounding. spec is clobbered: it is used as the working buffer. dst must
// have length Size and spec at least SpectrumLen.
func (p *RealPlan) Inverse(dst []float64, spec []complex128) {
	if len(dst) != p.n || len(spec) < p.n/2+1 {
		panic("fft: RealPlan.Inverse buffer length mismatch")
	}
	h := p.n / 2
	// Repack the half spectrum into the half-size complex spectrum Z,
	// inverting the Forward unpack. Pairs (k, h-k) are combined in place.
	x0, xh := real(spec[0]), real(spec[h])
	spec[0] = complex((x0+xh)/2, (x0-xh)/2)
	for k := 1; k <= h/2; k++ {
		xk, xr := spec[k], spec[h-k]
		e := (xk + cmplx.Conj(xr)) * complex(0.5, 0)
		o := (xk - cmplx.Conj(xr)) * complex(0.5, 0) * cmplx.Conj(p.wr[k])
		er := cmplx.Conj(e)
		or := (xr - cmplx.Conj(xk)) * complex(0.5, 0) * cmplx.Conj(p.wr[h-k])
		spec[k] = e + complex(0, 1)*o
		if k != h-k {
			spec[h-k] = er + complex(0, 1)*or
		}
	}
	z := spec[:h]
	p.half.transform(z, true)
	scale := 1 / float64(h)
	for j := 0; j < h; j++ {
		dst[2*j] = real(z[j]) * scale
		dst[2*j+1] = imag(z[j]) * scale
	}
}

// planCache memoizes Plans per size for the one-shot package helpers, so
// repeated Forward/Inverse calls of a common size reuse one twiddle table.
// Plans are immutable, so sharing across goroutines is safe.
var planCache sync.Map // int -> *Plan

// planFor returns the cached Plan for power-of-two size n.
func planFor(n int) *Plan {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan)
	}
	p, err := NewPlan(n)
	if err != nil {
		panic(err) // callers guarantee power-of-two n
	}
	v, _ := planCache.LoadOrStore(n, p)
	return v.(*Plan)
}

package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation used to validate both FFT
// kernels.
func naiveDFT(xs []complex128, inverse bool) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += xs[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return xs
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	// Cover powers of two (radix-2 path), primes, and composites
	// (Bluestein path).
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 100, 127, 128, 243, 500} {
		xs := randComplex(n, int64(n))
		got, err := Forward(xs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := naiveDFT(xs, false)
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: max diff vs naive DFT = %g", n, d)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 3, 8, 15, 64, 99} {
		xs := randComplex(n, int64(n)+100)
		got, err := Inverse(xs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := naiveDFT(xs, true)
		for i := range want {
			want[i] /= complex(float64(n), 0)
		}
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: max diff vs naive IDFT = %g", n, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		xs := randComplex(n, seed)
		f, err := Forward(xs)
		if err != nil {
			return false
		}
		back, err := Inverse(f)
		if err != nil {
			return false
		}
		return maxAbsDiff(xs, back) < 1e-8*float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2 for every transform size.
	prop := func(seed int64, sz uint8) bool {
		n := int(sz)%256 + 1
		xs := randComplex(n, seed)
		f, err := Forward(xs)
		if err != nil {
			return false
		}
		var tEnergy, fEnergy float64
		for i := range xs {
			tEnergy += real(xs[i])*real(xs[i]) + imag(xs[i])*imag(xs[i])
			fEnergy += real(f[i])*real(f[i]) + imag(f[i])*imag(f[i])
		}
		fEnergy /= float64(n)
		return math.Abs(tEnergy-fEnergy) < 1e-7*(1+tEnergy)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		n := 73 // prime: exercises Bluestein
		a := randComplex(n, seed)
		b := randComplex(n, seed+1)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = 2*a[i] + 3*b[i]
		}
		fa, _ := Forward(a)
		fb, _ := Forward(b)
		fsum, _ := Forward(sum)
		want := make([]complex128, n)
		for i := range want {
			want[i] = 2*fa[i] + 3*fb[i]
		}
		return maxAbsDiff(fsum, want) < 1e-8*float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestForwardRealKnownSpectrum(t *testing.T) {
	// A pure cosine of frequency k has spikes at bins k and n-k.
	n, k := 64, 5
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Cos(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	f, err := ForwardReal(xs)
	if err != nil {
		t.Fatal(err)
	}
	for bin, c := range f {
		mag := cmplx.Abs(c)
		if bin == k || bin == n-k {
			if math.Abs(mag-float64(n)/2) > 1e-8 {
				t.Errorf("bin %d magnitude = %v, want %v", bin, mag, float64(n)/2)
			}
		} else if mag > 1e-8 {
			t.Errorf("bin %d magnitude = %v, want 0", bin, mag)
		}
	}
}

func TestConvolve(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5}
	got, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("Convolve length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := rng.Intn(50)+1, rng.Intn(50)+1
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, err := Convolve(a, b)
		if err != nil {
			return false
		}
		want := make([]float64, na+nb-1)
		for i := range a {
			for j := range b {
				want[i+j] += a[i] * b[j]
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := Forward(nil); err != ErrEmpty {
		t.Errorf("Forward(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Inverse(nil); err != ErrEmpty {
		t.Errorf("Inverse(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := ForwardReal(nil); err != ErrEmpty {
		t.Errorf("ForwardReal(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Convolve(nil, []float64{1}); err != ErrEmpty {
		t.Errorf("Convolve(nil,...) err = %v, want ErrEmpty", err)
	}
	if _, err := PowerSpectrum(nil); err != ErrEmpty {
		t.Errorf("PowerSpectrum(nil) err = %v, want ErrEmpty", err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPowerSpectrumDC(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	ps, err := PowerSpectrum(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps[0]-16) > 1e-9 {
		t.Errorf("DC power = %v, want 16", ps[0])
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] > 1e-9 {
			t.Errorf("bin %d power = %v, want 0", i, ps[i])
		}
	}
}

func BenchmarkForwardPow2(b *testing.B) {
	xs := randComplex(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Forward(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardBluestein(b *testing.B) {
	xs := randComplex(4095, 1) // 4095 = 3^2 * 5 * 7 * 13: worst case
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Forward(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// Package fft implements the fast Fourier transform from scratch on top of
// the standard library's complex128 type.
//
// ASAP needs the FFT for two things: computing autocorrelation in
// O(n log n) via the Wiener–Khinchin theorem (Section 4.3.3 of the paper),
// and the FFT-based smoothing baselines of Appendix B.2 (low-pass and
// dominant-frequency reconstruction).
//
// Transform sizes that are powers of two use an iterative radix-2
// Cooley–Tukey kernel; every other size is handled exactly (not by zero
// padding) with Bluestein's chirp-z algorithm, so callers never need to
// care about the length of their data.
package fft

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrEmpty is returned when a transform is requested on an empty slice.
var ErrEmpty = errors.New("fft: empty input")

// Forward returns the discrete Fourier transform of xs:
//
//	X[k] = sum_j xs[j] * exp(-2*pi*i*j*k/n)
//
// The input slice is not modified. Any length n >= 1 is supported.
func Forward(xs []complex128) ([]complex128, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	out := make([]complex128, len(xs))
	copy(out, xs)
	transform(out, false)
	return out, nil
}

// Inverse returns the inverse DFT of xs, normalized by 1/n so that
// Inverse(Forward(x)) == x up to floating-point error.
func Inverse(xs []complex128) ([]complex128, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	out := make([]complex128, len(xs))
	copy(out, xs)
	transform(out, true)
	inv := complex(1/float64(len(out)), 0)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// ForwardReal transforms a real-valued series. It is a convenience wrapper
// that lifts xs into complex space; the asymptotics are unchanged.
func ForwardReal(xs []float64) ([]complex128, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	cs := make([]complex128, len(xs))
	for i, x := range xs {
		cs[i] = complex(x, 0)
	}
	transform(cs, false)
	return cs, nil
}

// transform runs an in-place DFT (or inverse DFT without normalization when
// inverse is true) on xs of any length. Power-of-two sizes go through the
// cached Plan for that size, so one-shot calls share precomputed
// bit-reversal and twiddle tables instead of rebuilding twiddles by
// repeated complex multiplication on every call.
func transform(xs []complex128, inverse bool) {
	n := len(xs)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		planFor(n).transform(xs, inverse)
		return
	}
	bluestein(xs, inverse)
}

// bluestein computes an arbitrary-size DFT as a convolution, which is then
// evaluated with power-of-two FFTs. This keeps every transform exact for
// its nominal length (unlike zero-padding the input, which would change
// the DFT being computed).
func bluestein(xs []complex128, inverse bool) {
	n := len(xs)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[j] = exp(sign * i * pi * j^2 / n).
	chirp := make([]complex128, n)
	for j := 0; j < n; j++ {
		// j^2 mod 2n avoids precision loss for large j.
		jj := (int64(j) * int64(j)) % int64(2*n)
		angle := sign * math.Pi * float64(jj) / float64(n)
		chirp[j] = cmplx.Exp(complex(0, angle))
	}

	m := nextPow2(2*n - 1)
	p := planFor(m)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		a[j] = xs[j] * chirp[j]
		b[j] = cmplx.Conj(chirp[j])
	}
	// b is symmetric: b[m-j] = b[j] for the wrapped part of the convolution.
	for j := 1; j < n; j++ {
		b[m-j] = b[j]
	}

	p.transform(a, false)
	p.transform(b, false)
	for j := range a {
		a[j] *= b[j]
	}
	p.transform(a, true)
	scale := complex(1/float64(m), 0)
	for j := 0; j < n; j++ {
		xs[j] = a[j] * scale * chirp[j]
	}
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// NextPow2 exposes nextPow2 for callers sizing FFT work buffers.
func NextPow2(n int) int { return nextPow2(n) }

// Convolve returns the linear convolution of a and b computed via FFT in
// O((|a|+|b|) log(|a|+|b|)) time. The result has length |a|+|b|-1.
func Convolve(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, ErrEmpty
	}
	n := len(a) + len(b) - 1
	m := nextPow2(n)
	p := planFor(m)
	ca := make([]complex128, m)
	cb := make([]complex128, m)
	for i, x := range a {
		ca[i] = complex(x, 0)
	}
	for i, x := range b {
		cb[i] = complex(x, 0)
	}
	p.transform(ca, false)
	p.transform(cb, false)
	for i := range ca {
		ca[i] *= cb[i]
	}
	p.transform(ca, true)
	out := make([]float64, n)
	scale := 1 / float64(m)
	for i := 0; i < n; i++ {
		out[i] = real(ca[i]) * scale
	}
	return out, nil
}

// PowerSpectrum returns |X[k]|^2 for the DFT X of the real series xs.
func PowerSpectrum(xs []float64) ([]float64, error) {
	cs, err := ForwardReal(xs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(cs))
	for i, c := range cs {
		re, im := real(c), imag(c)
		out[i] = re*re + im*im
	}
	return out, nil
}

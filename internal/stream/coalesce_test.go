package stream

import (
	"testing"
)

// batches slices xs into consecutive batches of size n (last one short).
func batches(xs []float64, n int) [][]float64 {
	var out [][]float64
	for len(xs) > 0 {
		k := n
		if k > len(xs) {
			k = len(xs)
		}
		out = append(out, xs[:k])
		xs = xs[k:]
	}
	return out
}

// TestPushBatchCoalescingMatchesPerPoint drives the same stream through
// a coalescing operator (batched) and a per-point operator, across
// ratios, cadences, and batch sizes that land refresh deadlines both on
// and off batch boundaries. The schedule accounting — whether a batch
// fires, Frame.Sequence, RawPoints/Panes/Searches — must be preserved
// exactly everywhere. Frame contents are additionally compared bit for
// bit once the window is warm (prefilled to capacity on a stationary
// stream), where the search outcome is seed-stable; during the growth
// phase the coalesced tail search is legitimately seeded by the
// pre-batch window instead of the skipped intermediate searches, which
// is the one documented semantic difference of coalescing.
func TestPushBatchCoalescingMatchesPerPoint(t *testing.T) {
	configs := []Config{
		{WindowPoints: 4000, Resolution: 400, RefreshEvery: 10},  // ratio 10, refresh per pane
		{WindowPoints: 4000, Resolution: 400, RefreshEvery: 170}, // deadline off pane boundaries
		{WindowPoints: 2000, Resolution: 200, RefreshEvery: 1},   // sub-pane cadence (memoized deadlines)
		{WindowPoints: 500, Resolution: 500, RefreshEvery: 3},    // ratio 1
		{WindowPoints: 1000, Resolution: 100, RefreshEvery: 250, MaxWindow: 20},
	}
	sizes := []int{1, 7, 64, 640, 1000, 5000}
	data := periodicStream(24000, 200, 0.3, 60)

	for ci, cfg := range configs {
		for _, size := range sizes {
			co, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pp, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pp.cfg.DisableBatchCoalescing = true
			co.Prefill(data[:cfg.WindowPoints])
			pp.Prefill(data[:cfg.WindowPoints])

			fires := 0
			for bi, b := range batches(data[cfg.WindowPoints:], size) {
				cf, cok := co.PushBatch(b)
				pf, pok := pp.PushBatch(b)
				if cok != pok {
					t.Fatalf("cfg %d size %d batch %d: coalesced fired=%v per-point fired=%v", ci, size, bi, cok, pok)
				}
				if !cok {
					continue
				}
				fires++
				if cf.Sequence != pf.Sequence || cf.Window != pf.Window {
					t.Fatalf("cfg %d size %d batch %d: (seq %d win %d) != per-point (seq %d win %d)",
						ci, size, bi, cf.Sequence, cf.Window, pf.Sequence, pf.Window)
				}
				// SeedReused describes the search actually run: on the first
				// firing batch the coalesced tail search is seeded by the
				// pre-batch window (still 1) while the per-point path seeded
				// from its own intermediate searches, so compare only once
				// both engines carry an established seed.
				if fires > 1 && cf.SeedReused != pf.SeedReused {
					t.Fatalf("cfg %d size %d batch %d: seed %v != per-point %v",
						ci, size, bi, cf.SeedReused, pf.SeedReused)
				}
				if cf.Roughness != pf.Roughness || cf.Kurtosis != pf.Kurtosis {
					t.Fatalf("cfg %d size %d batch %d: metrics differ", ci, size, bi)
				}
				if len(cf.Smoothed) != len(pf.Smoothed) {
					t.Fatalf("cfg %d size %d batch %d: %d values != %d", ci, size, bi, len(cf.Smoothed), len(pf.Smoothed))
				}
				for j := range cf.Smoothed {
					if cf.Smoothed[j] != pf.Smoothed[j] {
						t.Fatalf("cfg %d size %d batch %d value %d: %v != %v",
							ci, size, bi, j, cf.Smoothed[j], pf.Smoothed[j])
					}
				}
				cf.Release()
				pf.Release()
			}
			if fires == 0 {
				t.Fatalf("cfg %d size %d: no frames compared", ci, size)
			}

			cs, ps := co.Stats(), pp.Stats()
			if cs.RawPoints != ps.RawPoints || cs.Panes != ps.Panes || cs.Searches != ps.Searches {
				t.Fatalf("cfg %d size %d: stats raw/panes/searches %d/%d/%d != per-point %d/%d/%d",
					ci, size, cs.RawPoints, cs.Panes, cs.Searches, ps.RawPoints, ps.Panes, ps.Searches)
			}
			if ps.Coalesced != 0 {
				t.Errorf("cfg %d size %d: per-point path coalesced %d", ci, size, ps.Coalesced)
			}
		}
	}
}

// TestPushBatchCoalescingGrowthAccounting covers the cold-start phase
// the strict comparison above skips: from an empty window, batched and
// per-point ingest must agree on every scheduling observable (fire
// flags, sequences, stats) even when the chosen windows may differ.
func TestPushBatchCoalescingGrowthAccounting(t *testing.T) {
	cfg := Config{WindowPoints: 4000, Resolution: 400, RefreshEvery: 10}
	data := periodicStream(12000, 200, 0.3, 64)
	for _, size := range []int{7, 64, 640, 1000} {
		co, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pp.cfg.DisableBatchCoalescing = true
		for bi, b := range batches(data, size) {
			cf, cok := co.PushBatch(b)
			pf, pok := pp.PushBatch(b)
			if cok != pok {
				t.Fatalf("size %d batch %d: fired %v != per-point %v", size, bi, cok, pok)
			}
			if cok && cf.Sequence != pf.Sequence {
				t.Fatalf("size %d batch %d: seq %d != per-point %d", size, bi, cf.Sequence, pf.Sequence)
			}
		}
		cs, ps := co.Stats(), pp.Stats()
		if cs.RawPoints != ps.RawPoints || cs.Panes != ps.Panes || cs.Searches != ps.Searches {
			t.Fatalf("size %d: stats %d/%d/%d != per-point %d/%d/%d",
				size, cs.RawPoints, cs.Panes, cs.Searches, ps.RawPoints, ps.Panes, ps.Searches)
		}
		if size >= 64 && cs.Coalesced == 0 {
			t.Errorf("size %d: multi-deadline batches never coalesced", size)
		}
	}
}

// TestPushBatchCoalescedAccounting pins the counter arithmetic: a batch
// crossing k deadlines performs exactly one real search, accounts k-1
// in Coalesced, and the emitted frame's sequence equals Searches.
func TestPushBatchCoalescedAccounting(t *testing.T) {
	cfg := Config{WindowPoints: 4000, Resolution: 400, RefreshEvery: 10} // ratio 10, deadline per pane
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := periodicStream(20000, 200, 0.3, 61)
	op.Prefill(data[:4000])

	before := op.Stats()
	f, ok := op.PushBatch(data[4000:4640]) // 64 panes = 64 deadlines
	if !ok {
		t.Fatal("no frame from a 64-deadline batch")
	}
	defer f.Release()
	after := op.Stats()
	if got := after.Searches - before.Searches; got != 64 {
		t.Errorf("batch advanced Searches by %d, want 64", got)
	}
	if got := after.Coalesced - before.Coalesced; got != 63 {
		t.Errorf("batch coalesced %d deadlines, want 63", got)
	}
	if f.Sequence != after.Searches {
		t.Errorf("frame sequence %d != searches %d", f.Sequence, after.Searches)
	}
	// Candidate evaluations happened for one search only.
	if after.Candidates-before.Candidates <= 0 {
		t.Error("tail search evaluated no candidates")
	}
}

// TestPushBatchNoDeadline: a batch that crosses no refresh deadline
// must accumulate silently and leave the refresh phase intact.
func TestPushBatchNoDeadline(t *testing.T) {
	cfg := Config{WindowPoints: 4000, Resolution: 400, RefreshEvery: 1000}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pp.cfg.DisableBatchCoalescing = true
	data := periodicStream(6000, 200, 0.3, 62)

	// 999-point batches: most fire nothing; phase must stay aligned.
	for bi, b := range batches(data, 999) {
		cf, cok := co.PushBatch(b)
		pf, pok := pp.PushBatch(b)
		if cok != pok {
			t.Fatalf("batch %d: fired %v != per-point %v", bi, cok, pok)
		}
		if cok && cf.Sequence != pf.Sequence {
			t.Fatalf("batch %d: seq %d != %d", bi, cf.Sequence, pf.Sequence)
		}
	}
	if co.Stats() != pp.Stats() {
		t.Fatalf("stats diverged: %+v != %+v", co.Stats(), pp.Stats())
	}
}

// TestFrameSurvivesWithoutRelease: a frame the caller holds without
// releasing must stay immutable while the operator keeps refreshing and
// recycling other buffers through the pool.
func TestFrameSurvivesWithoutRelease(t *testing.T) {
	cfg := Config{WindowPoints: 1000, Resolution: 100, RefreshEvery: 10}
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := periodicStream(30000, 100, 0.2, 63)
	var held Frame
	var snapshot []float64
	for i, x := range data[:15000] {
		if f, ok := op.Push(x); ok {
			if held.Smoothed == nil && i > 5000 {
				held = f // keep this one, never Release
				snapshot = append([]float64(nil), f.Smoothed...)
			} else {
				f.Release()
			}
		}
	}
	if held.Smoothed == nil {
		t.Fatal("never captured a frame")
	}
	for _, x := range data[15000:] {
		if f, ok := op.Push(x); ok {
			f.Release()
		}
	}
	for i := range snapshot {
		if held.Smoothed[i] != snapshot[i] {
			t.Fatalf("held frame mutated at %d: %v != %v", i, held.Smoothed[i], snapshot[i])
		}
	}
	held.Release()
	held.Release() // idempotent on the same copy
}

// TestOperatorIncrementalACFMatchesAnalyzer: the incremental-ACF
// operator must pick the same windows — and therefore emit bit-identical
// frames, since values and metrics are functions of (data, window) —
// as the analyzer operator on streams away from decision boundaries.
func TestOperatorIncrementalACFMatchesAnalyzer(t *testing.T) {
	configs := []Config{
		{WindowPoints: 4000, Resolution: 400, RefreshEvery: 10},
		{WindowPoints: 4000, Resolution: 400, RefreshEvery: 170},
		{WindowPoints: 1000, Resolution: 100, RefreshEvery: 250, MaxWindow: 20},
	}
	streams := map[string][]float64{
		"periodic": periodicStream(20000, 200, 0.3, 70),
		"drift":    driftStream(20000, 71),
	}
	for ci, cfg := range configs {
		inc := cfg
		inc.IncrementalACF = true
		for name, data := range streams {
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(inc)
			if err != nil {
				t.Fatal(err)
			}
			if b.inc == nil {
				t.Fatalf("cfg %d: incremental operator has no maintainer", ci)
			}
			frames := 0
			for i, x := range data {
				af, aok := a.Push(x)
				bf, bok := b.Push(x)
				if aok != bok {
					t.Fatalf("cfg %d %s point %d: fired %v != %v", ci, name, i, aok, bok)
				}
				if !aok {
					continue
				}
				frames++
				if af.Window != bf.Window {
					t.Fatalf("cfg %d %s frame %d: window %d != incremental %d", ci, name, frames, af.Window, bf.Window)
				}
				for j := range af.Smoothed {
					if af.Smoothed[j] != bf.Smoothed[j] {
						t.Fatalf("cfg %d %s frame %d value %d differs", ci, name, frames, j)
					}
				}
				af.Release()
				bf.Release()
			}
			if frames == 0 {
				t.Fatalf("cfg %d %s: no frames compared", ci, name)
			}
		}
	}
}

// TestOperatorIncrementalACFRestore: an incremental-ACF operator that
// goes through Restore must keep producing frames (the maintainer is
// reset and rebuilt from the restored tail).
func TestOperatorIncrementalACFRestore(t *testing.T) {
	cfg := Config{WindowPoints: 400, Resolution: 100, RefreshEvery: 37, IncrementalACF: true}
	input := periodicStream(1000, 60, 0.2, 73)

	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := 600
	horizon := (op.capacity + 2) * op.ratio
	tail := input[:cut]
	if len(tail) > horizon {
		tail = tail[len(tail)-horizon:]
	}
	op.Restore(tail, cut)
	frames := 0
	for _, x := range input[cut:] {
		if f, ok := op.Push(x); ok {
			frames++
			if len(f.Smoothed) == 0 {
				t.Fatal("empty frame after restore")
			}
			f.Release()
		}
	}
	if frames == 0 {
		t.Fatal("no frames after restore")
	}
	// The maintainer tracks the rebuilt window, not the closed-form pane
	// counter (the restored tail is shorter than the lost history).
	if op.inc.Len() != op.count {
		t.Errorf("maintainer holds %d panes, ring holds %d", op.inc.Len(), op.count)
	}
}

// BenchmarkPushBatchCoalesced is the acceptance benchmark: ingesting
// 64-pane batches (one refresh deadline per pane) through the
// coalesced path against the per-pane refresh path it replaces. The
// acceptance bar is >= 3x.
func BenchmarkPushBatchCoalesced(b *testing.B) {
	data := periodicStream(16000, 400, 0.3, 80)
	cfg := Config{WindowPoints: 8000, Resolution: 800} // ratio 10, refresh per pane
	const batchPoints = 640                            // 64 panes = 64 deadlines

	run := func(b *testing.B, disable bool) {
		c := cfg
		c.DisableBatchCoalescing = disable
		op, err := New(c)
		if err != nil {
			b.Fatal(err)
		}
		op.Prefill(data[:8000])
		b.SetBytes(batchPoints * 8)
		b.ReportAllocs()
		b.ResetTimer()
		off := 8000
		for i := 0; i < b.N; i++ {
			if off+batchPoints > len(data) {
				off = 0
			}
			if f, ok := op.PushBatch(data[off : off+batchPoints]); ok {
				f.Release()
			}
			off += batchPoints
		}
	}

	b.Run("perpane", func(b *testing.B) { run(b, true) })
	b.Run("coalesced", func(b *testing.B) { run(b, false) })
	b.Run("coalesced-incremental", func(b *testing.B) {
		c := cfg
		c.IncrementalACF = true
		op, err := New(c)
		if err != nil {
			b.Fatal(err)
		}
		op.Prefill(data[:8000])
		b.SetBytes(batchPoints * 8)
		b.ReportAllocs()
		b.ResetTimer()
		off := 8000
		for i := 0; i < b.N; i++ {
			if off+batchPoints > len(data) {
				off = 0
			}
			if f, ok := op.PushBatch(data[off : off+batchPoints]); ok {
				f.Release()
			}
			off += batchPoints
		}
	})
}

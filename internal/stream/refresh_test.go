package stream

import (
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"runtime/debug"
	"testing"

	"github.com/asap-go/asap/internal/acf"
	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/fft"
	"github.com/asap-go/asap/internal/stats"
)

// legacyACF reproduces the pre-rework ACF estimator end to end: the
// iterated-twiddle full-complex FFT kernel, freshly allocated
// NextPow2(2n) complex buffers, and the separate two-pass
// stats.Variance/stats.Mean denominators — not today's acf.Compute,
// which delegates to the plan-based Analyzer. Routing the legacy
// operator through it means the differential test really compares the
// new engine against the previous implementation's numerics.
func legacyACF(xs []float64, maxLag int) (*acf.Result, error) {
	n := len(xs)
	if n < 2 || maxLag < 1 {
		return nil, acf.ErrTooShort
	}
	if maxLag > n-1 {
		maxLag = n - 1
	}
	corr := make([]float64, maxLag+1)
	variance := stats.Variance(xs) * float64(n)
	if variance == 0 {
		return &acf.Result{Correlations: corr}, nil
	}
	mean := stats.Mean(xs)
	m := fft.NextPow2(2 * n)
	buf := make([]complex128, m)
	for i, x := range xs {
		buf[i] = complex(x-mean, 0)
	}
	legacyRadix2(buf, false)
	for i, c := range buf {
		re, im := real(c), imag(c)
		buf[i] = complex(re*re+im*im, 0)
	}
	legacyRadix2(buf, true)
	scale := 1 / float64(m)
	corr[0] = 1
	for tau := 1; tau <= maxLag; tau++ {
		corr[tau] = real(buf[tau]) * scale / variance
	}
	res := &acf.Result{Correlations: corr}
	res.Peaks, res.MaxACF = acf.FindPeaks(corr)
	return res, nil
}

// legacyRadix2 is the pre-plan FFT kernel (twiddles rebuilt by repeated
// complex multiplication), copied verbatim from the original package.
func legacyRadix2(xs []complex128, inverse bool) {
	n := len(xs)
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		if j > i {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := xs[start+k]
				b := xs[start+k+half] * w
				xs[start+k] = a + b
				xs[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// legacyOperator is the refresh engine as it existed before the
// zero-allocation rework, kept for differential testing: it re-runs the
// full search on every refresh (no memoization), copies the ring with a
// modulo per element, computes the ACF through the legacy full-complex
// estimator above, and allocates the search result and smoothed series
// fresh each time. Frames produced by the new engine must match its
// frames bit for bit.
type legacyOperator struct {
	cfg      Config
	ratio    int
	capacity int

	paneSum   float64
	paneCount int

	ring  []float64
	head  int
	count int

	refreshEveryRaw int
	rawSinceRefresh int

	lastWindow int
	searches   int
	scratch    []float64
}

func newLegacy(cfg Config) (*legacyOperator, error) {
	op, err := New(cfg) // share validation and sizing
	if err != nil {
		return nil, err
	}
	return &legacyOperator{
		cfg:             cfg,
		ratio:           op.ratio,
		capacity:        op.capacity,
		ring:            make([]float64, op.capacity),
		refreshEveryRaw: op.refreshEveryRaw,
		lastWindow:      1,
		scratch:         make([]float64, op.capacity),
	}, nil
}

func (o *legacyOperator) push(x float64) *Frame {
	o.paneSum += x
	o.paneCount++
	if o.paneCount == o.ratio {
		v := o.paneSum / float64(o.ratio)
		o.paneSum, o.paneCount = 0, 0
		if o.count < o.capacity {
			o.ring[(o.head+o.count)%o.capacity] = v
			o.count++
		} else {
			o.ring[o.head] = v
			o.head = (o.head + 1) % o.capacity
		}
	}
	o.rawSinceRefresh++
	if o.rawSinceRefresh >= o.refreshEveryRaw && o.count >= 4 {
		o.rawSinceRefresh = 0
		return o.refresh()
	}
	return nil
}

func (o *legacyOperator) refresh() *Frame {
	data := o.scratch[:o.count]
	for i := 0; i < o.count; i++ {
		data[i] = o.ring[(o.head+i)%o.capacity]
	}
	o.searches++

	opts := core.SearchOptions{
		MaxWindow:  o.cfg.MaxWindow,
		SeedWindow: o.lastWindow,
	}
	if o.cfg.Strategy == core.StrategyASAP {
		maxWindow := opts.MaxWindow
		if maxWindow <= 0 {
			maxWindow = int(float64(len(data)) * core.DefaultMaxWindowFraction)
		}
		maxLag := maxWindow + 2
		if maxLag > len(data)-1 {
			maxLag = len(data) - 1
		}
		if maxLag >= 1 {
			if r, err := legacyACF(data, maxLag); err == nil {
				opts.ACF = r
			}
		}
	}
	res, err := core.Search(o.cfg.Strategy, data, opts)
	if err != nil {
		o.searches--
		return nil
	}

	smoothed := make([]float64, len(data)-res.Window+1)
	inv := 1 / float64(res.Window)
	var sum float64
	for i := 0; i < res.Window; i++ {
		sum += data[i]
	}
	smoothed[0] = sum * inv
	for i := 1; i < len(smoothed); i++ {
		sum += data[i+res.Window-1] - data[i-1]
		smoothed[i] = sum * inv
	}
	seedReused := o.lastWindow > 1 && res.Window == o.lastWindow
	o.lastWindow = res.Window
	return &Frame{
		Smoothed:   smoothed,
		Window:     res.Window,
		Roughness:  res.Roughness,
		Kurtosis:   res.Kurtosis,
		SeedReused: seedReused,
		Sequence:   o.searches,
	}
}

func driftStream(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	v := 0.0
	for i := range xs {
		v += 0.02*rng.NormFloat64() + 0.001
		xs[i] = v
	}
	return xs
}

// TestRefreshMatchesLegacyEngine is the tentpole differential test: for
// every refresh — including the memoized no-new-pane refreshes of
// sub-pane cadences — the new engine's frames must equal the
// search-every-time engine's frames in every field, bit for bit.
func TestRefreshMatchesLegacyEngine(t *testing.T) {
	configs := []Config{
		{WindowPoints: 4000, Resolution: 400, RefreshEvery: 1000},                                 // refresh per 100 panes
		{WindowPoints: 4000, Resolution: 400, RefreshEvery: 1},                                    // sub-pane cadence: memoized refreshes
		{WindowPoints: 2000, Resolution: 200, RefreshEvery: 7},                                    // interval not a pane multiple
		{WindowPoints: 500, Resolution: 500, RefreshEvery: 3},                                     // ratio 1: every refresh sees a new pane
		{WindowPoints: 3000, Resolution: 300, RefreshEvery: 2, Strategy: core.StrategyBinary},     // non-ASAP strategy, sub-pane
		{WindowPoints: 2000, Resolution: 100, RefreshEvery: 1, Strategy: core.StrategyExhaustive}, // lesion engine, sub-pane
		{WindowPoints: 1000, Resolution: 100, RefreshEvery: 250, MaxWindow: 20},                   // bounded search
	}
	streams := map[string][]float64{
		"periodic": periodicStream(20000, 200, 0.3, 21),
		"drift":    driftStream(20000, 22),
	}

	for ci, cfg := range configs {
		for name, data := range streams {
			op, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			leg, err := newLegacy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			frames := 0
			for i, x := range data {
				f, ok := op.Push(x)
				lf := leg.push(x)
				if ok != (lf != nil) {
					t.Fatalf("cfg %d %s point %d: new fired=%v legacy fired=%v", ci, name, i, ok, lf != nil)
				}
				if !ok {
					continue
				}
				frames++
				if f.Sequence != lf.Sequence || f.Window != lf.Window || f.SeedReused != lf.SeedReused {
					t.Fatalf("cfg %d %s frame %d: (seq %d win %d seed %v) != legacy (seq %d win %d seed %v)",
						ci, name, frames, f.Sequence, f.Window, f.SeedReused, lf.Sequence, lf.Window, lf.SeedReused)
				}
				if f.Roughness != lf.Roughness || f.Kurtosis != lf.Kurtosis {
					t.Fatalf("cfg %d %s frame %d: metrics (%v, %v) != legacy (%v, %v)",
						ci, name, frames, f.Roughness, f.Kurtosis, lf.Roughness, lf.Kurtosis)
				}
				if len(f.Smoothed) != len(lf.Smoothed) {
					t.Fatalf("cfg %d %s frame %d: %d values != legacy %d", ci, name, frames, len(f.Smoothed), len(lf.Smoothed))
				}
				for j := range f.Smoothed {
					if f.Smoothed[j] != lf.Smoothed[j] {
						t.Fatalf("cfg %d %s frame %d value %d: %v != legacy %v",
							ci, name, frames, j, f.Smoothed[j], lf.Smoothed[j])
					}
				}
			}
			if frames == 0 {
				t.Fatalf("cfg %d %s: no frames compared", ci, name)
			}
			// The sub-pane configs must actually exercise the memoized
			// path, or this test proves nothing about it.
			if cfg.RefreshEvery > 0 && cfg.RefreshEvery < op.ratio {
				if op.Stats().Skipped == 0 {
					t.Errorf("cfg %d %s: sub-pane cadence never memoized a refresh", ci, name)
				}
			}
		}
	}
}

// TestMemoizationAccounting checks the Skipped counter and that memoized
// frames keep Sequence == Searches (the invariant Restore's closed-form
// reconstruction depends on).
func TestMemoizationAccounting(t *testing.T) {
	op, err := New(Config{WindowPoints: 10000, Resolution: 100, RefreshEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last Frame
	for _, x := range periodicStream(50000, 1000, 0.2, 30) {
		if f, ok := op.Push(x); ok {
			last = f
		}
	}
	st := op.Stats()
	if st.Skipped == 0 {
		t.Fatal("sub-pane cadence produced no memoized refreshes")
	}
	if st.Skipped >= st.Searches {
		t.Fatalf("Skipped %d >= Searches %d", st.Skipped, st.Searches)
	}
	if last.Sequence != st.Searches {
		t.Errorf("last frame sequence %d != searches %d", last.Sequence, st.Searches)
	}
}

// warmOperator builds an operator, fills its window, and runs it to a
// steady state (buffers sized, search fixpoint reached).
func warmOperator(t testing.TB, cfg Config, data []float64) *Operator {
	t.Helper()
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	op.Prefill(data[:cfg.WindowPoints])
	i := 0
	for pushed := 0; pushed < 4*cfg.WindowPoints; pushed++ {
		op.Push(data[i])
		i++
		if i == len(data) {
			i = 0
		}
	}
	return op
}

// TestRefreshSteadyStateAllocations enforces the refresh path's
// allocation contract: a warmed operator whose emitted frames are
// Released performs ZERO steady-state heap allocations per refresh —
// the pooled frame buffer closes the loop the old "1 alloc (the values
// copy)" contract left open. GC is paused for the measurement because
// a collection legitimately empties the sync.Pool.
func TestRefreshSteadyStateAllocations(t *testing.T) {
	data := periodicStream(8000, 400, 0.3, 40)
	cfg := Config{WindowPoints: 8000, Resolution: 800} // ratio 10, refresh per pane
	op := warmOperator(t, cfg, data)
	ratio := op.Ratio()
	i := 0
	next := func() float64 {
		x := data[i]
		i++
		if i == len(data) {
			i = 0
		}
		return x
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Prime the pool: the first released frame seeds the buffer the
	// steady state recycles.
	for k := 0; k < 2*ratio; k++ {
		if f, ok := op.Push(next()); ok {
			f.Release()
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		fired := false
		for k := 0; k < ratio; k++ {
			if f, ok := op.Push(next()); ok {
				fired = true
				f.Release()
			}
		}
		if !fired {
			t.Fatal("pane-sized push burst did not refresh")
		}
	})
	if allocs != 0 {
		t.Errorf("pooled-frame refresh allocated %.2f objects/op, want 0", allocs)
	}
}

// TestRefreshAllocationsWithoutRelease bounds the graceful-degradation
// mode: a caller that never Releases frames gets at most the pre-pool
// behaviour back (one values buffer plus its pool header per refresh) —
// never corruption, never unbounded growth beyond what it retains.
func TestRefreshAllocationsWithoutRelease(t *testing.T) {
	data := periodicStream(8000, 400, 0.3, 42)
	cfg := Config{WindowPoints: 8000, Resolution: 800}
	op := warmOperator(t, cfg, data)
	ratio := op.Ratio()
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		for k := 0; k < ratio; k++ {
			op.Push(data[i%len(data)]) // frame discarded without Release
			i++
		}
	})
	if allocs > 2 {
		t.Errorf("release-free refresh allocated %.2f objects/op, want <= 2 (values + pool header)", allocs)
	}
}

// TestMemoizedRefreshZeroAllocations: a refresh that re-emits the cached
// result (no new pane since the last search) must not allocate at all.
func TestMemoizedRefreshZeroAllocations(t *testing.T) {
	data := periodicStream(10000, 1000, 0.2, 41)
	cfg := Config{WindowPoints: 10000, Resolution: 100, RefreshEvery: 1} // ratio 100
	op := warmOperator(t, cfg, data)
	// Land just past a pane boundary with a fixpoint search cached, so
	// the next 60 pushes all hit the memoized path.
	i := 0
	for op.paneCount != 0 || !op.searchFixpoint {
		op.Push(data[i%len(data)])
		i++
		if i > 3*len(data) {
			t.Fatal("operator never reached a fixpoint at a pane boundary")
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, ok := op.Push(data[i%len(data)]); !ok {
			t.Fatal("push did not refresh")
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("memoized refresh allocated %.2f objects/op, want 0", allocs)
	}
	if op.Stats().Skipped == 0 {
		t.Fatal("memoized path never taken")
	}
}

// BenchmarkRefresh measures one steady-state refresh per iteration:
// "search" runs the full zero-allocation engine once per completed pane,
// "memoized" the cached re-emission of sub-pane cadences, and "legacy"
// the pre-rework engine on the "search" schedule for the before/after
// record.
func BenchmarkRefresh(b *testing.B) {
	data := periodicStream(8000, 400, 0.3, 50)
	cfg := Config{WindowPoints: 8000, Resolution: 800} // ratio 10

	b.Run("search", func(b *testing.B) {
		op := warmOperator(b, cfg, data)
		ratio := op.Ratio()
		b.ReportAllocs()
		b.ResetTimer()
		i := 0
		for n := 0; n < b.N; n++ {
			for k := 0; k < ratio; k++ {
				if f, ok := op.Push(data[i%len(data)]); ok {
					f.Release() // the disciplined consumer path (what the hub does)
				}
				i++
			}
		}
	})

	b.Run("memoized", func(b *testing.B) {
		mcfg := Config{WindowPoints: 8000, Resolution: 80, RefreshEvery: 1} // ratio 100
		op := warmOperator(b, mcfg, data)
		b.ReportAllocs()
		b.ResetTimer()
		i := 0
		for n := 0; n < b.N; n++ {
			if f, ok := op.Push(data[i%len(data)]); ok {
				f.Release()
			}
			i++
		}
	})

	b.Run("legacy", func(b *testing.B) {
		op, err := newLegacy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, x := range data {
			op.push(x)
		}
		ratio := op.ratio
		b.ReportAllocs()
		b.ResetTimer()
		i := 0
		for n := 0; n < b.N; n++ {
			for k := 0; k < ratio; k++ {
				op.push(data[i%len(data)])
				i++
			}
		}
	})
}

package stream

import (
	"sync"
	"sync/atomic"
)

// frameBuf is a pooled frame-values buffer with a reference count. The
// operator holds one reference for its cached frame; every emission
// (Push/PushBatch return, Frame getter) hands the receiver another.
// When the last reference is released the buffer returns to the shared
// pool and the next refresh reuses it — the final allocation of the
// steady-state refresh path.
//
// Failure is graceful by construction: a caller that never calls
// Release merely keeps its buffer out of the pool (the GC reclaims it
// as before — exactly the pre-pool behaviour), while the values it
// holds stay immutable because a referenced buffer is never recycled.
type frameBuf struct {
	vals []float64
	refs atomic.Int32
	// gen increments every time the buffer is reissued from the pool.
	// Frames snapshot it at emission, which turns the worst misuse —
	// releasing two copies of one Frame, where the second release lands
	// after the buffer was already recycled to a new owner — from
	// silent cross-series data corruption into a harmless no-op (the
	// stale handle's generation no longer matches). A same-generation
	// double release (both copies released before the buffer is
	// reissued) remains undetectable without per-emission allocation;
	// see Release's contract.
	gen atomic.Uint32
}

// framePool recycles frame buffers across every operator in the
// process; the server hub's per-series operators all feed it.
var framePool = sync.Pool{New: func() interface{} { return new(frameBuf) }}

// newFrameBuf returns a buffer with n valid values and one reference
// (the operator's own).
func newFrameBuf(n int) *frameBuf {
	b := framePool.Get().(*frameBuf)
	if cap(b.vals) < n {
		b.vals = make([]float64, n)
	}
	b.vals = b.vals[:n]
	b.gen.Add(1)
	b.refs.Store(1)
	return b
}

func (b *frameBuf) retain() { b.refs.Add(1) }

func (b *frameBuf) release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		framePool.Put(b)
	case n < 0:
		panic("stream: frame buffer over-released")
	}
}

// Release returns the frame's values buffer to the shared pool once
// every holder has released it. After Release the frame's Smoothed
// slice must not be used; Release on a zero or already-released frame
// is a no-op. Callers that retain frames indefinitely may simply never
// call it — they keep today's immutable-frame contract and only forgo
// buffer reuse.
//
// Each emitted Frame carries exactly ONE release; do not copy a Frame
// and release both copies. The generation check below downgrades the
// late variant of that misuse (second release after the buffer was
// recycled to a new owner) to a no-op; a double release racing ahead
// of the recycle can still free a buffer its other holders share, so
// the contract stands.
func (f *Frame) Release() {
	b := f.buf
	if b == nil {
		return
	}
	f.buf = nil
	f.Smoothed = nil
	if b.gen.Load() != f.gen {
		return // stale handle: the buffer already belongs to a new owner
	}
	b.release()
}

// Retain returns a copy of the frame carrying its own reference to the
// pooled values buffer — the fan-out primitive: a holder that wants to
// hand the same frame to N consumers retains N copies and each consumer
// Releases its own. Call only on a frame whose reference is still live
// (between emission and that handle's Release); a zero or released
// frame is returned unchanged.
func (f Frame) Retain() Frame {
	if f.buf != nil {
		f.buf.retain()
	}
	return f
}

// Package stream implements streaming ASAP (Section 4.5, Algorithm 3): a
// stream operator that maintains a sliding visualization window over an
// unbounded series and re-runs the smoothing-parameter search on demand.
//
// Three optimizations from the paper are individually controllable so the
// factor analysis and lesion study of Figure 11 can be reproduced:
//
//   - pixel-aware preaggregation: incoming points are sub-aggregated into
//     panes of the point-to-pixel ratio before anything else touches them;
//   - autocorrelation pruning: the window search is ASAP's Algorithm 2
//     (disable it to fall back to exhaustive search over the same data);
//   - on-demand ("lazy") refresh: the search re-runs only once per refresh
//     interval rather than on every arriving point.
//
// Each refresh seeds the new search with the previous window
// (CheckLastWindow): if the old parameter still satisfies the kurtosis
// constraint it becomes the incumbent, activating the roughness and
// lower-bound pruning immediately.
//
// # The refresh engine
//
// The steady-state refresh path is allocation-free. The operator owns a
// reusable acf.Analyzer (FFT plan plus scratch buffers), a reusable
// core.Result, a chronological window scratch, and a smoothed-output
// buffer; a refresh runs the ACF, the search, and the SMA entirely in
// that state, then copies the smoothed series once into a pooled,
// reference-counted frame buffer. Consumers that Release frames when
// done return those buffers to the pool, closing the last per-refresh
// allocation; consumers that never Release degrade gracefully to the
// old one-allocation behaviour. When a refresh fires before any new
// aggregated pane has completed — a sub-pane refresh cadence — and the
// previous search was a fixed point (it returned its own seed), the
// search is skipped outright and the cached result is re-emitted with a
// bumped sequence number: re-running would repeat the identical
// computation on identical input, so the skip is bit-exact by
// construction, not by estimation.
//
// Two further optimizations target batch ingest and long windows:
// PushBatch coalesces the refresh deadlines a batch crosses into one
// search at the batch tail (Stats.Coalesced), and Config.IncrementalACF
// swaps the per-refresh FFT recomputation for an acf.Incremental
// maintainer updated in O(maxLag) per pane (see docs/PERFORMANCE.md for
// the semantics of both).
package stream

import (
	"errors"
	"fmt"

	"github.com/asap-go/asap/internal/acf"
	"github.com/asap-go/asap/internal/core"
)

// ErrConfig reports an invalid operator configuration.
var ErrConfig = errors.New("stream: invalid config")

// Config configures a streaming ASAP operator.
type Config struct {
	// WindowPoints is the number of raw points in the visualization window
	// (e.g. "the last 30 minutes" at the stream's rate). Required.
	WindowPoints int
	// Resolution is the target display width in pixels. Required.
	Resolution int
	// RefreshEvery is the on-demand update interval measured in raw
	// points, as in Figure 10. 0 picks one refresh per aggregated point
	// (the non-lazy baseline).
	RefreshEvery int
	// Strategy is the search algorithm to run at each refresh. The
	// default (StrategyASAP) enables autocorrelation pruning; the lesion
	// study uses StrategyExhaustive here ("no AC").
	Strategy core.Strategy
	// DisablePreaggregation turns off pixel-aware preaggregation ("no
	// Pixel" lesion): the search runs over raw points.
	DisablePreaggregation bool
	// MaxWindow optionally bounds the search on the aggregated window.
	MaxWindow int
	// IncrementalACF maintains the autocorrelation incrementally
	// (acf.Incremental: O(maxLag) per pane with periodic exact resync)
	// instead of recomputing it per refresh through the FFT analyzer.
	// Frames agree with the analyzer path to 1e-9 in the ACF estimate —
	// and are bit-identical whenever the search picks the same window,
	// which is everything except exact decision boundaries — but the
	// maintained state depends on the whole stream history, so enabling
	// it weakens the bit-exact restart/replica equivalence guarantee to
	// that tolerance. Off by default for that reason. Only affects
	// StrategyASAP.
	IncrementalACF bool
	// DisableBatchCoalescing forces PushBatch to refresh per deadline
	// exactly like repeated Push. It exists for the differential tests
	// and the before/after benchmark; production callers want the
	// default coalesced path.
	DisableBatchCoalescing bool
}

// Frame is one rendered output of the operator: the state of the smoothed
// visualization after a refresh. Frames are emitted by value; Smoothed is
// freshly copied on emission and never written by the operator while the
// frame is live, so a Frame may be retained indefinitely. Smoothed is
// backed by a pooled, reference-counted buffer: callers that are done
// with a frame should call Release so the buffer can be reused by a
// later refresh; callers that never Release simply leave the buffer to
// the garbage collector (it is never recycled under them).
type Frame struct {
	// Smoothed is the SMA of the aggregated window with the chosen window.
	Smoothed []float64
	// Window is the chosen SMA window (in aggregated points).
	Window int
	// Roughness and Kurtosis describe Smoothed.
	Roughness float64
	Kurtosis  float64
	// SeedReused reports whether the previous window satisfied the
	// kurtosis constraint and seeded this search (CheckLastWindow).
	SeedReused bool
	// Sequence numbers the refreshes, starting at 1.
	Sequence int

	// buf is the pooled backing store of Smoothed (nil for zero frames
	// and after Release); gen is the buffer generation this frame was
	// emitted against, letting Release ignore stale handles.
	buf *frameBuf
	gen uint32
}

// Stats counts the operator's work, the raw material of Figures 10 and 11.
type Stats struct {
	RawPoints  int // points pushed
	Panes      int // aggregated points produced
	Searches   int // refreshes (frames emitted)
	Candidates int // total candidate windows evaluated across searches
	// Skipped counts refreshes that re-emitted the cached search result
	// because no aggregated pane had completed since the previous search
	// (sub-pane refresh cadences). Skipped refreshes still count in
	// Searches — they emit a frame — but evaluate no candidates.
	Skipped int
	// Coalesced counts refresh deadlines that PushBatch folded into its
	// single batch-tail search: a batch crossing k deadlines runs one
	// real search and accounts the other k-1 here. Coalesced deadlines
	// count in Searches (they advance Frame.Sequence) but evaluate no
	// candidates and emit no intermediate frames.
	Coalesced int
}

// Operator is a streaming ASAP instance. It is not safe for concurrent
// use; callers own synchronization (one operator per stream partition is
// the intended deployment, mirroring the MacroBase operator).
type Operator struct {
	cfg      Config
	ratio    int // pane size in raw points (1 when preaggregation is off)
	capacity int // aggregated points kept in the window

	// pane accumulation
	paneSum   float64
	paneCount int

	// ring buffer of aggregated points
	ring  []float64
	head  int // index of oldest
	count int

	// refresh scheduling
	refreshEveryRaw int // raw points per refresh
	rawSinceRefresh int

	lastWindow int
	stats      Stats

	// Reusable refresh-engine state: the analyzer owns the FFT plan and
	// ACF scratch, searchRes the search output, scratch the chronological
	// window copy, and smooth the smoothed series before it is copied
	// into the emitted frame. With Config.IncrementalACF, inc fully
	// replaces the analyzer (New sizes it to cover every lag a refresh
	// can request, so no analyzer fallback exists on that path; an inc
	// error just runs the search without ACF pruning, like the analyzer
	// error path).
	analyzer  *acf.Analyzer
	inc       *acf.Incremental
	searchRes core.Result
	scratch   []float64
	smooth    []float64

	// Cached last frame plus the memoization guard. searchFixpoint
	// records whether the last real search returned its own seed; only
	// then is "skip the search when no pane completed" provably
	// bit-identical to re-searching (identical input and identical
	// options repeat the identical deterministic computation).
	frame          Frame
	hasFrame       bool
	panesAtSearch  int
	searchFixpoint bool

	// disableMemo forces every refresh through the full search; it exists
	// for the differential tests that pin the memoized path to the
	// search-every-refresh engine, bit for bit.
	disableMemo bool
}

// New validates cfg and returns a ready operator.
func New(cfg Config) (*Operator, error) {
	if cfg.WindowPoints < 4 {
		return nil, fmt.Errorf("%w: WindowPoints=%d (need >= 4)", ErrConfig, cfg.WindowPoints)
	}
	if cfg.Resolution < 1 {
		return nil, fmt.Errorf("%w: Resolution=%d", ErrConfig, cfg.Resolution)
	}
	if cfg.RefreshEvery < 0 {
		return nil, fmt.Errorf("%w: RefreshEvery=%d", ErrConfig, cfg.RefreshEvery)
	}
	ratio := 1
	if !cfg.DisablePreaggregation {
		ratio = cfg.WindowPoints / cfg.Resolution
		if ratio < 1 {
			ratio = 1
		}
	}
	capacity := cfg.WindowPoints / ratio
	if capacity < 4 {
		capacity = 4
	}
	refreshRaw := cfg.RefreshEvery
	if refreshRaw <= 0 {
		refreshRaw = ratio // one refresh per completed pane
	}
	o := &Operator{
		cfg:             cfg,
		ratio:           ratio,
		capacity:        capacity,
		ring:            make([]float64, capacity),
		refreshEveryRaw: refreshRaw,
		lastWindow:      1,
		scratch:         make([]float64, capacity),
		smooth:          make([]float64, 0, capacity),
	}
	if cfg.IncrementalACF && cfg.Strategy == core.StrategyASAP {
		// Size the maintainer for the at-capacity search: the lags a
		// refresh requests only shrink while the window is still growing,
		// so this one bound covers the operator's whole life.
		maxW := cfg.MaxWindow
		if maxW <= 0 {
			maxW = int(float64(capacity) * core.DefaultMaxWindowFraction)
		}
		maxLag := maxW + 2
		if maxLag > capacity-1 {
			maxLag = capacity - 1
		}
		if maxLag >= 1 {
			inc, err := acf.NewIncremental(acf.IncrementalConfig{Capacity: capacity, MaxLag: maxLag})
			if err != nil {
				return nil, fmt.Errorf("%w: incremental ACF: %v", ErrConfig, err)
			}
			o.inc = inc
		}
	}
	return o, nil
}

// Ratio returns the point-to-pixel ratio (pane size) in effect.
func (o *Operator) Ratio() int { return o.ratio }

// accumulate feeds one raw point into pane aggregation and the refresh
// clock without evaluating the refresh condition — the shared body of
// Push and the batched ingest paths.
func (o *Operator) accumulate(x float64) {
	o.stats.RawPoints++
	o.paneSum += x
	o.paneCount++
	if o.paneCount == o.ratio {
		o.appendAgg(o.paneSum / float64(o.ratio))
		o.paneSum, o.paneCount = 0, 0
	}
	o.rawSinceRefresh++
}

// refreshDue is THE refresh firing condition — the interval elapsed and
// enough aggregated panes exist to search. Push, PushBatch's real pass,
// and tickSchedule's dry-run mirror must all express exactly this rule;
// change it here and in tickSchedule together.
func (o *Operator) refreshDue() bool {
	return o.rawSinceRefresh >= o.refreshEveryRaw && o.count >= 4
}

// tickSchedule advances a dry-run copy of the scheduling state
// (paneCount, ring occupancy, raw points since refresh) by one raw
// point and reports whether a refresh fires there — the pure mirror of
// accumulate+refreshDue that PushBatch's pass 1 simulates with. It must
// stay in lockstep with accumulate/appendAgg/refreshDue; PushBatch's
// real pass tolerates divergence (degraded coalescing, a late flush
// search), but only this mirror being faithful makes coalesced frames
// land on exactly the per-point schedule.
func (o *Operator) tickSchedule(paneCount, count, rawSince int) (int, int, int, bool) {
	paneCount++
	if paneCount == o.ratio {
		paneCount = 0
		if count < o.capacity {
			count++
		}
	}
	rawSince++
	fire := false
	if rawSince >= o.refreshEveryRaw && count >= 4 {
		rawSince = 0
		fire = true
	}
	return paneCount, count, rawSince, fire
}

// Push feeds one raw point into the operator. It returns the new frame
// and true if this point triggered a refresh.
func (o *Operator) Push(x float64) (Frame, bool) {
	o.accumulate(x)
	if o.refreshDue() {
		o.rawSinceRefresh = 0
		return o.refresh()
	}
	return Frame{}, false
}

// PushBatch feeds a slice of points and returns the last frame produced
// during the batch (false when no refresh fired).
//
// Refresh deadlines inside the batch are coalesced: a batch crossing k
// deadlines runs ONE search, at the last deadline the batch reaches,
// instead of k. The skipped deadlines still advance the frame sequence
// and the Searches counter (so Frame.Sequence == Stats.Searches and the
// WAL restore arithmetic hold) and are reported in Stats.Coalesced; no
// intermediate frames are materialized — exactly what the per-point
// path's callers observed anyway, since only the last frame was ever
// returned. The one semantic difference is that the tail search is
// seeded by the window chosen before the batch rather than by the
// skipped intermediate searches; on streams where the search outcome is
// seed-independent (any stable periodicity) the emitted frame is
// bit-identical to the per-point path's last frame.
func (o *Operator) PushBatch(xs []float64) (Frame, bool) {
	if o.cfg.DisableBatchCoalescing {
		var last Frame
		var ok bool
		for _, x := range xs {
			if f, fired := o.Push(x); fired {
				if ok {
					last.Release() // superseded intermediate emission
				}
				last, ok = f, true
			}
		}
		return last, ok
	}

	// Pass 1: dry-run the schedule with tickSchedule to find the index
	// of the last point that will fire a refresh. This index is only a
	// PLACEMENT HINT for where the one real search runs; all counter
	// accounting below derives from the deadlines the real pass
	// actually hits, and a trailing flush covers the hint ever being
	// wrong, so a mirror divergence can only degrade coalescing — never
	// break Frame.Sequence == Stats.Searches or lose a refresh.
	paneCount, count, rawSince := o.paneCount, o.count, o.rawSinceRefresh
	lastFire := -1
	for i := range xs {
		var fire bool
		paneCount, count, rawSince, fire = o.tickSchedule(paneCount, count, rawSince)
		if fire {
			lastFire = i
		}
	}

	// Pass 2: accumulate, consuming deadlines as the per-point path
	// would. Deadlines before the hint are counted and folded into the
	// next real search; the hinted deadline (and, defensively, any the
	// mirror failed to predict after it) runs a real search.
	var out Frame
	var ok bool
	coalesced := 0
	flush := func() {
		// Fold the pending skipped deadlines in first so the emitted
		// frame's sequence lands where the per-point path's would.
		o.stats.Searches += coalesced
		o.stats.Coalesced += coalesced
		if f, fired := o.refresh(); fired {
			if ok {
				out.Release() // superseded earlier emission
			}
			out, ok = f, true
			coalesced = 0
		} else {
			// Unreachable (a due refresh guarantees >= 4 panes), but
			// keep the counters honest if it ever trips.
			o.stats.Searches -= coalesced
			o.stats.Coalesced -= coalesced
		}
	}
	for i, x := range xs {
		o.accumulate(x)
		if o.refreshDue() {
			o.rawSinceRefresh = 0
			if i < lastFire {
				coalesced++ // accounted when the tail search runs
				continue
			}
			flush()
		}
	}
	if coalesced > 0 && o.count >= 4 {
		// The mirror overpredicted lastFire and real deadlines were
		// consumed without their tail search ever running (impossible
		// while tickSchedule matches accumulate, by construction).
		// Flush them now: one late search instead of lost refreshes.
		coalesced--
		flush()
	}
	return out, ok
}

// Prefill loads historical points into the window without triggering any
// refreshes — a warm start for operators attached to a stream with
// existing history (and the untimed fill phase of throughput benchmarks).
// The next regular Push resumes the configured refresh cadence.
func (o *Operator) Prefill(xs []float64) {
	for _, x := range xs {
		o.accumulate(x)
	}
	o.rawSinceRefresh = 0
}

// Restore rebuilds the operator as if total raw points had been pushed
// since the beginning of the stream, of which tail holds the most
// recent len(tail) (tail may be shorter than the visualization window
// after data loss, never meaningfully longer than total). Like Prefill
// it emits no frames, but Restore additionally re-aligns preaggregation
// pane boundaries to the original stream offset and reconstructs the
// refresh phase and frame sequence, so after a crash the operator's
// next frames exactly match those of an operator that never went away.
// Candidate counters cannot be reconstructed and restart at zero, and
// Frame() reports no frame until the first post-restore refresh.
func (o *Operator) Restore(tail []float64, total int) {
	if total < len(tail) {
		total = len(tail)
	}
	o.paneSum, o.paneCount = 0, 0
	o.head, o.count = 0, 0
	o.rawSinceRefresh = 0
	o.lastWindow = 1
	o.frame.Release() // drop the cache's pooled buffer reference
	o.frame = Frame{}
	o.hasFrame = false
	o.panesAtSearch = 0
	o.searchFixpoint = false
	o.stats = Stats{}
	if o.inc != nil {
		o.inc.Reset()
	}

	// Pane boundaries in the original stream sit at multiples of the
	// ratio; start feeding at the first boundary at or after the tail's
	// stream offset so restored panes average the same point groups.
	start := total - len(tail)
	if rem := start % o.ratio; rem != 0 {
		skip := o.ratio - rem
		if skip > len(tail) {
			skip = len(tail)
		}
		tail = tail[skip:]
	}
	for _, x := range tail {
		o.paneSum += x
		o.paneCount++
		if o.paneCount == o.ratio {
			o.appendAgg(o.paneSum / float64(o.ratio))
			o.paneSum, o.paneCount = 0, 0
		}
	}
	o.stats.RawPoints = total
	o.stats.Panes = total / o.ratio

	// Push fires its first refresh at the first point where the refresh
	// interval has elapsed AND four aggregated points exist — raw index
	// max(refreshEveryRaw, 4*ratio) — then once per interval. Every such
	// fire succeeds (core.Search only fails below 4 points), each is one
	// search, and Frame.Sequence == stats.Searches, so the closed form
	// below restores both the sequence and the refresh phase exactly.
	first := o.refreshEveryRaw
	if m := 4 * o.ratio; m > first {
		first = m
	}
	if total >= first {
		frames := 1 + (total-first)/o.refreshEveryRaw
		o.stats.Searches = frames
		o.rawSinceRefresh = total - first - (frames-1)*o.refreshEveryRaw
	} else {
		o.rawSinceRefresh = total
	}
}

// appendAgg adds one aggregated point to the ring, evicting the oldest
// when the visualization window is full (data "transits" the window).
func (o *Operator) appendAgg(v float64) {
	o.stats.Panes++
	if o.inc != nil {
		o.inc.Push(v)
	}
	if o.count < o.capacity {
		o.ring[(o.head+o.count)%o.capacity] = v
		o.count++
		return
	}
	o.ring[o.head] = v
	o.head = (o.head + 1) % o.capacity
}

// window copies the ring into chronological order in the reusable scratch
// buffer: at most two straight copies (oldest..end, start..newest), never
// a per-element modulo.
func (o *Operator) window() []float64 {
	w := o.scratch[:o.count]
	tail := o.capacity - o.head
	if o.count <= tail {
		copy(w, o.ring[o.head:o.head+o.count])
	} else {
		n := copy(w, o.ring[o.head:])
		copy(w[n:], o.ring[:o.count-n])
	}
	return w
}

// refresh re-runs the parameter search over the current window
// (UpdateWindow in Algorithm 3) and renders a new frame.
func (o *Operator) refresh() (Frame, bool) {
	// Search-skip memoization: when no aggregated pane has completed
	// since the last search, the window contents are identical, and when
	// that search was additionally a fixed point (it returned its own
	// seed), re-running it would be the same deterministic computation on
	// the same input with the same options — so skip it and re-emit the
	// cached result with the next sequence number. The emitted values
	// slice is the previous emission's (already escaped and immutable);
	// this path allocates nothing.
	if o.hasFrame && o.searchFixpoint && o.stats.Panes == o.panesAtSearch && !o.disableMemo {
		o.stats.Searches++
		o.stats.Skipped++
		o.frame.Sequence = o.stats.Searches
		o.frame.SeedReused = o.lastWindow > 1
		out := o.frame
		if out.buf != nil {
			out.buf.retain() // the caller's reference to the shared buffer
		}
		return out, true
	}

	data := o.window()
	o.stats.Searches++

	// UPDATEACF + CHECKLASTWINDOW + FINDWINDOW, fused: core.Search
	// verifies the seed first when SeedWindow is set, which is exactly
	// CheckLastWindow's "known feasible window" fast path.
	opts := core.SearchOptions{
		MaxWindow:  o.cfg.MaxWindow,
		SeedWindow: o.lastWindow,
	}
	if o.cfg.Strategy == core.StrategyASAP {
		maxWindow := opts.MaxWindow
		if maxWindow <= 0 {
			maxWindow = int(float64(len(data)) * core.DefaultMaxWindowFraction)
		}
		maxLag := maxWindow + 2
		if maxLag > len(data)-1 {
			maxLag = len(data) - 1
		}
		if maxLag >= 1 {
			if o.inc != nil {
				// Incremental path: O(maxLag) maintenance already happened
				// at pane arrival; the query is O(n) for the drift sentinel
				// plus O(maxLag) for the correlations.
				if r, err := o.inc.Result(maxLag); err == nil {
					opts.ACF = r
				}
			} else {
				if o.analyzer == nil {
					o.analyzer = acf.NewAnalyzer()
				}
				if r, err := o.analyzer.Compute(data, maxLag); err == nil {
					opts.ACF = r
				}
			}
		}
	}
	if err := core.SearchInto(&o.searchRes, o.cfg.Strategy, data, opts); err != nil {
		// A window this small cannot be searched; keep the last frame.
		o.stats.Searches--
		return Frame{}, false
	}
	res := &o.searchRes
	o.stats.Candidates += res.Candidates

	// Smooth into the reusable buffer, then copy once into a pooled
	// frame buffer. When every downstream holder Releases its frames the
	// buffer comes straight back from the pool and the steady-state
	// refresh path allocates nothing at all.
	o.smooth = smaInto(o.smooth, data, res.Window)
	buf := newFrameBuf(len(o.smooth))
	copy(buf.vals, o.smooth)

	seedReused := o.lastWindow > 1 && res.Window == o.lastWindow
	o.searchFixpoint = res.Window == o.lastWindow
	o.lastWindow = res.Window
	o.panesAtSearch = o.stats.Panes
	o.frame.Release() // the cache's reference to the superseded buffer
	o.frame = Frame{
		Smoothed:   buf.vals,
		Window:     res.Window,
		Roughness:  res.Roughness,
		Kurtosis:   res.Kurtosis,
		SeedReused: seedReused,
		Sequence:   o.stats.Searches,
		buf:        buf,
		gen:        buf.gen.Load(),
	}
	o.hasFrame = true
	out := o.frame
	out.buf.retain()
	return out, true
}

// smaInto materializes SMA(data, w) with slide 1 into dst, growing it only
// when the output is longer than its capacity.
func smaInto(dst, data []float64, w int) []float64 {
	n := len(data) - w + 1
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	inv := 1 / float64(w)
	var sum float64
	for i := 0; i < w; i++ {
		sum += data[i]
	}
	dst[0] = sum * inv
	for i := 1; i < n; i++ {
		sum += data[i+w-1] - data[i-1]
		dst[i] = sum * inv
	}
	return dst
}

// Frame returns the most recent frame; the second result is false before
// the first refresh. The returned frame carries its own reference to the
// pooled values buffer — callers that want the buffer recycled call
// Release when done, and callers that keep the frame forever simply
// don't.
func (o *Operator) Frame() (Frame, bool) {
	out := o.frame
	if o.hasFrame && out.buf != nil {
		out.buf.retain()
	}
	return out, o.hasFrame
}

// Stats returns a copy of the operator's work counters.
func (o *Operator) Stats() Stats { return o.stats }

// WindowFill returns how many aggregated points are currently buffered and
// the buffer capacity, for observability.
func (o *Operator) WindowFill() (have, capacity int) { return o.count, o.capacity }

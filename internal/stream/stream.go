// Package stream implements streaming ASAP (Section 4.5, Algorithm 3): a
// stream operator that maintains a sliding visualization window over an
// unbounded series and re-runs the smoothing-parameter search on demand.
//
// Three optimizations from the paper are individually controllable so the
// factor analysis and lesion study of Figure 11 can be reproduced:
//
//   - pixel-aware preaggregation: incoming points are sub-aggregated into
//     panes of the point-to-pixel ratio before anything else touches them;
//   - autocorrelation pruning: the window search is ASAP's Algorithm 2
//     (disable it to fall back to exhaustive search over the same data);
//   - on-demand ("lazy") refresh: the search re-runs only once per refresh
//     interval rather than on every arriving point.
//
// Each refresh seeds the new search with the previous window
// (CheckLastWindow): if the old parameter still satisfies the kurtosis
// constraint it becomes the incumbent, activating the roughness and
// lower-bound pruning immediately.
//
// # The refresh engine
//
// The steady-state refresh path is allocation-free except for the values
// of the frame it emits. The operator owns a reusable acf.Analyzer (FFT
// plan plus scratch buffers), a reusable core.Result, a chronological
// window scratch, and a smoothed-output buffer; a refresh runs the ACF,
// the search, and the SMA entirely in that state, then copies the
// smoothed series once into the escaping frame. When a refresh fires
// before any new aggregated pane has completed — a sub-pane refresh
// cadence — and the previous search was a fixed point (it returned its
// own seed), the search is skipped outright and the cached result is
// re-emitted with a bumped sequence number: re-running would repeat the
// identical computation on identical input, so the skip is bit-exact by
// construction, not by estimation.
package stream

import (
	"errors"
	"fmt"

	"github.com/asap-go/asap/internal/acf"
	"github.com/asap-go/asap/internal/core"
)

// ErrConfig reports an invalid operator configuration.
var ErrConfig = errors.New("stream: invalid config")

// Config configures a streaming ASAP operator.
type Config struct {
	// WindowPoints is the number of raw points in the visualization window
	// (e.g. "the last 30 minutes" at the stream's rate). Required.
	WindowPoints int
	// Resolution is the target display width in pixels. Required.
	Resolution int
	// RefreshEvery is the on-demand update interval measured in raw
	// points, as in Figure 10. 0 picks one refresh per aggregated point
	// (the non-lazy baseline).
	RefreshEvery int
	// Strategy is the search algorithm to run at each refresh. The
	// default (StrategyASAP) enables autocorrelation pruning; the lesion
	// study uses StrategyExhaustive here ("no AC").
	Strategy core.Strategy
	// DisablePreaggregation turns off pixel-aware preaggregation ("no
	// Pixel" lesion): the search runs over raw points.
	DisablePreaggregation bool
	// MaxWindow optionally bounds the search on the aggregated window.
	MaxWindow int
}

// Frame is one rendered output of the operator: the state of the smoothed
// visualization after a refresh. Frames are emitted by value; Smoothed is
// freshly copied on emission and never written again by the operator, so a
// Frame may be retained indefinitely.
type Frame struct {
	// Smoothed is the SMA of the aggregated window with the chosen window.
	Smoothed []float64
	// Window is the chosen SMA window (in aggregated points).
	Window int
	// Roughness and Kurtosis describe Smoothed.
	Roughness float64
	Kurtosis  float64
	// SeedReused reports whether the previous window satisfied the
	// kurtosis constraint and seeded this search (CheckLastWindow).
	SeedReused bool
	// Sequence numbers the refreshes, starting at 1.
	Sequence int
}

// Stats counts the operator's work, the raw material of Figures 10 and 11.
type Stats struct {
	RawPoints  int // points pushed
	Panes      int // aggregated points produced
	Searches   int // refreshes (frames emitted)
	Candidates int // total candidate windows evaluated across searches
	// Skipped counts refreshes that re-emitted the cached search result
	// because no aggregated pane had completed since the previous search
	// (sub-pane refresh cadences). Skipped refreshes still count in
	// Searches — they emit a frame — but evaluate no candidates.
	Skipped int
}

// Operator is a streaming ASAP instance. It is not safe for concurrent
// use; callers own synchronization (one operator per stream partition is
// the intended deployment, mirroring the MacroBase operator).
type Operator struct {
	cfg      Config
	ratio    int // pane size in raw points (1 when preaggregation is off)
	capacity int // aggregated points kept in the window

	// pane accumulation
	paneSum   float64
	paneCount int

	// ring buffer of aggregated points
	ring  []float64
	head  int // index of oldest
	count int

	// refresh scheduling
	refreshEveryRaw int // raw points per refresh
	rawSinceRefresh int

	lastWindow int
	stats      Stats

	// Reusable refresh-engine state: the analyzer owns the FFT plan and
	// ACF scratch, searchRes the search output, scratch the chronological
	// window copy, and smooth the smoothed series before it is copied
	// into the emitted frame.
	analyzer  *acf.Analyzer
	searchRes core.Result
	scratch   []float64
	smooth    []float64

	// Cached last frame plus the memoization guard. searchFixpoint
	// records whether the last real search returned its own seed; only
	// then is "skip the search when no pane completed" provably
	// bit-identical to re-searching (identical input and identical
	// options repeat the identical deterministic computation).
	frame          Frame
	hasFrame       bool
	panesAtSearch  int
	searchFixpoint bool

	// disableMemo forces every refresh through the full search; it exists
	// for the differential tests that pin the memoized path to the
	// search-every-refresh engine, bit for bit.
	disableMemo bool
}

// New validates cfg and returns a ready operator.
func New(cfg Config) (*Operator, error) {
	if cfg.WindowPoints < 4 {
		return nil, fmt.Errorf("%w: WindowPoints=%d (need >= 4)", ErrConfig, cfg.WindowPoints)
	}
	if cfg.Resolution < 1 {
		return nil, fmt.Errorf("%w: Resolution=%d", ErrConfig, cfg.Resolution)
	}
	if cfg.RefreshEvery < 0 {
		return nil, fmt.Errorf("%w: RefreshEvery=%d", ErrConfig, cfg.RefreshEvery)
	}
	ratio := 1
	if !cfg.DisablePreaggregation {
		ratio = cfg.WindowPoints / cfg.Resolution
		if ratio < 1 {
			ratio = 1
		}
	}
	capacity := cfg.WindowPoints / ratio
	if capacity < 4 {
		capacity = 4
	}
	refreshRaw := cfg.RefreshEvery
	if refreshRaw <= 0 {
		refreshRaw = ratio // one refresh per completed pane
	}
	return &Operator{
		cfg:             cfg,
		ratio:           ratio,
		capacity:        capacity,
		ring:            make([]float64, capacity),
		refreshEveryRaw: refreshRaw,
		lastWindow:      1,
		scratch:         make([]float64, capacity),
		smooth:          make([]float64, 0, capacity),
	}, nil
}

// Ratio returns the point-to-pixel ratio (pane size) in effect.
func (o *Operator) Ratio() int { return o.ratio }

// Push feeds one raw point into the operator. It returns the new frame
// and true if this point triggered a refresh.
func (o *Operator) Push(x float64) (Frame, bool) {
	o.stats.RawPoints++
	o.paneSum += x
	o.paneCount++
	if o.paneCount == o.ratio {
		o.appendAgg(o.paneSum / float64(o.ratio))
		o.paneSum, o.paneCount = 0, 0
	}
	o.rawSinceRefresh++
	if o.rawSinceRefresh >= o.refreshEveryRaw && o.count >= 4 {
		o.rawSinceRefresh = 0
		return o.refresh()
	}
	return Frame{}, false
}

// PushBatch feeds a slice of points and returns the last frame produced
// during the batch (false when no refresh fired).
func (o *Operator) PushBatch(xs []float64) (Frame, bool) {
	var last Frame
	var ok bool
	for _, x := range xs {
		if f, fired := o.Push(x); fired {
			last, ok = f, true
		}
	}
	return last, ok
}

// Prefill loads historical points into the window without triggering any
// refreshes — a warm start for operators attached to a stream with
// existing history (and the untimed fill phase of throughput benchmarks).
// The next regular Push resumes the configured refresh cadence.
func (o *Operator) Prefill(xs []float64) {
	for _, x := range xs {
		o.stats.RawPoints++
		o.paneSum += x
		o.paneCount++
		if o.paneCount == o.ratio {
			o.appendAgg(o.paneSum / float64(o.ratio))
			o.paneSum, o.paneCount = 0, 0
		}
	}
	o.rawSinceRefresh = 0
}

// Restore rebuilds the operator as if total raw points had been pushed
// since the beginning of the stream, of which tail holds the most
// recent len(tail) (tail may be shorter than the visualization window
// after data loss, never meaningfully longer than total). Like Prefill
// it emits no frames, but Restore additionally re-aligns preaggregation
// pane boundaries to the original stream offset and reconstructs the
// refresh phase and frame sequence, so after a crash the operator's
// next frames exactly match those of an operator that never went away.
// Candidate counters cannot be reconstructed and restart at zero, and
// Frame() reports no frame until the first post-restore refresh.
func (o *Operator) Restore(tail []float64, total int) {
	if total < len(tail) {
		total = len(tail)
	}
	o.paneSum, o.paneCount = 0, 0
	o.head, o.count = 0, 0
	o.rawSinceRefresh = 0
	o.lastWindow = 1
	o.frame = Frame{}
	o.hasFrame = false
	o.panesAtSearch = 0
	o.searchFixpoint = false
	o.stats = Stats{}

	// Pane boundaries in the original stream sit at multiples of the
	// ratio; start feeding at the first boundary at or after the tail's
	// stream offset so restored panes average the same point groups.
	start := total - len(tail)
	if rem := start % o.ratio; rem != 0 {
		skip := o.ratio - rem
		if skip > len(tail) {
			skip = len(tail)
		}
		tail = tail[skip:]
	}
	for _, x := range tail {
		o.paneSum += x
		o.paneCount++
		if o.paneCount == o.ratio {
			o.appendAgg(o.paneSum / float64(o.ratio))
			o.paneSum, o.paneCount = 0, 0
		}
	}
	o.stats.RawPoints = total
	o.stats.Panes = total / o.ratio

	// Push fires its first refresh at the first point where the refresh
	// interval has elapsed AND four aggregated points exist — raw index
	// max(refreshEveryRaw, 4*ratio) — then once per interval. Every such
	// fire succeeds (core.Search only fails below 4 points), each is one
	// search, and Frame.Sequence == stats.Searches, so the closed form
	// below restores both the sequence and the refresh phase exactly.
	first := o.refreshEveryRaw
	if m := 4 * o.ratio; m > first {
		first = m
	}
	if total >= first {
		frames := 1 + (total-first)/o.refreshEveryRaw
		o.stats.Searches = frames
		o.rawSinceRefresh = total - first - (frames-1)*o.refreshEveryRaw
	} else {
		o.rawSinceRefresh = total
	}
}

// appendAgg adds one aggregated point to the ring, evicting the oldest
// when the visualization window is full (data "transits" the window).
func (o *Operator) appendAgg(v float64) {
	o.stats.Panes++
	if o.count < o.capacity {
		o.ring[(o.head+o.count)%o.capacity] = v
		o.count++
		return
	}
	o.ring[o.head] = v
	o.head = (o.head + 1) % o.capacity
}

// window copies the ring into chronological order in the reusable scratch
// buffer: at most two straight copies (oldest..end, start..newest), never
// a per-element modulo.
func (o *Operator) window() []float64 {
	w := o.scratch[:o.count]
	tail := o.capacity - o.head
	if o.count <= tail {
		copy(w, o.ring[o.head:o.head+o.count])
	} else {
		n := copy(w, o.ring[o.head:])
		copy(w[n:], o.ring[:o.count-n])
	}
	return w
}

// refresh re-runs the parameter search over the current window
// (UpdateWindow in Algorithm 3) and renders a new frame.
func (o *Operator) refresh() (Frame, bool) {
	// Search-skip memoization: when no aggregated pane has completed
	// since the last search, the window contents are identical, and when
	// that search was additionally a fixed point (it returned its own
	// seed), re-running it would be the same deterministic computation on
	// the same input with the same options — so skip it and re-emit the
	// cached result with the next sequence number. The emitted values
	// slice is the previous emission's (already escaped and immutable);
	// this path allocates nothing.
	if o.hasFrame && o.searchFixpoint && o.stats.Panes == o.panesAtSearch && !o.disableMemo {
		o.stats.Searches++
		o.stats.Skipped++
		o.frame.Sequence = o.stats.Searches
		o.frame.SeedReused = o.lastWindow > 1
		return o.frame, true
	}

	data := o.window()
	o.stats.Searches++

	// UPDATEACF + CHECKLASTWINDOW + FINDWINDOW, fused: core.Search
	// verifies the seed first when SeedWindow is set, which is exactly
	// CheckLastWindow's "known feasible window" fast path.
	opts := core.SearchOptions{
		MaxWindow:  o.cfg.MaxWindow,
		SeedWindow: o.lastWindow,
	}
	if o.cfg.Strategy == core.StrategyASAP {
		maxWindow := opts.MaxWindow
		if maxWindow <= 0 {
			maxWindow = int(float64(len(data)) * core.DefaultMaxWindowFraction)
		}
		maxLag := maxWindow + 2
		if maxLag > len(data)-1 {
			maxLag = len(data) - 1
		}
		if maxLag >= 1 {
			if o.analyzer == nil {
				o.analyzer = acf.NewAnalyzer()
			}
			if r, err := o.analyzer.Compute(data, maxLag); err == nil {
				opts.ACF = r
			}
		}
	}
	if err := core.SearchInto(&o.searchRes, o.cfg.Strategy, data, opts); err != nil {
		// A window this small cannot be searched; keep the last frame.
		o.stats.Searches--
		return Frame{}, false
	}
	res := &o.searchRes
	o.stats.Candidates += res.Candidates

	// Smooth into the reusable buffer, then copy once for the escaping
	// frame — the single steady-state allocation of the refresh path.
	o.smooth = smaInto(o.smooth, data, res.Window)
	vals := make([]float64, len(o.smooth))
	copy(vals, o.smooth)

	seedReused := o.lastWindow > 1 && res.Window == o.lastWindow
	o.searchFixpoint = res.Window == o.lastWindow
	o.lastWindow = res.Window
	o.panesAtSearch = o.stats.Panes
	o.frame = Frame{
		Smoothed:   vals,
		Window:     res.Window,
		Roughness:  res.Roughness,
		Kurtosis:   res.Kurtosis,
		SeedReused: seedReused,
		Sequence:   o.stats.Searches,
	}
	o.hasFrame = true
	return o.frame, true
}

// smaInto materializes SMA(data, w) with slide 1 into dst, growing it only
// when the output is longer than its capacity.
func smaInto(dst, data []float64, w int) []float64 {
	n := len(data) - w + 1
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	inv := 1 / float64(w)
	var sum float64
	for i := 0; i < w; i++ {
		sum += data[i]
	}
	dst[0] = sum * inv
	for i := 1; i < n; i++ {
		sum += data[i+w-1] - data[i-1]
		dst[i] = sum * inv
	}
	return dst
}

// Frame returns the most recent frame; the second result is false before
// the first refresh.
func (o *Operator) Frame() (Frame, bool) { return o.frame, o.hasFrame }

// Stats returns a copy of the operator's work counters.
func (o *Operator) Stats() Stats { return o.stats }

// WindowFill returns how many aggregated points are currently buffered and
// the buffer capacity, for observability.
func (o *Operator) WindowFill() (have, capacity int) { return o.count, o.capacity }

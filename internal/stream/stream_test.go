package stream

import (
	"math"
	"math/rand"
	"testing"

	"github.com/asap-go/asap/internal/core"
)

func periodicStream(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{WindowPoints: 0, Resolution: 100},
		{WindowPoints: 3, Resolution: 100},
		{WindowPoints: 100, Resolution: 0},
		{WindowPoints: 100, Resolution: 10, RefreshEvery: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should fail validation", cfg)
		}
	}
	if _, err := New(Config{WindowPoints: 100, Resolution: 10}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRatioComputation(t *testing.T) {
	op, err := New(Config{WindowPoints: 10000, Resolution: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if op.Ratio() != 10 {
		t.Errorf("ratio = %d, want 10", op.Ratio())
	}
	op, err = New(Config{WindowPoints: 500, Resolution: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if op.Ratio() != 1 {
		t.Errorf("ratio = %d, want 1 when points < resolution", op.Ratio())
	}
	op, err = New(Config{WindowPoints: 10000, Resolution: 1000, DisablePreaggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	if op.Ratio() != 1 {
		t.Errorf("ratio = %d, want 1 with preaggregation disabled", op.Ratio())
	}
}

func TestFramesProduced(t *testing.T) {
	op, err := New(Config{WindowPoints: 4000, Resolution: 400, RefreshEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.Frame(); ok {
		t.Error("frame before any data should not exist")
	}
	data := periodicStream(20000, 200, 0.3, 1)
	frame, ok := op.PushBatch(data)
	if !ok {
		t.Fatal("no frame produced after 20k points")
	}
	st := op.Stats()
	if st.RawPoints != 20000 {
		t.Errorf("RawPoints = %d", st.RawPoints)
	}
	// 20000 raw / 1000 per refresh = 20 refreshes (first few may be
	// skipped while the window has < 4 aggregated points).
	if st.Searches < 15 || st.Searches > 20 {
		t.Errorf("Searches = %d, want about 20", st.Searches)
	}
	if frame.Window < 1 {
		t.Errorf("window = %d", frame.Window)
	}
	if len(frame.Smoothed) == 0 {
		t.Error("empty smoothed frame")
	}
}

func TestSmoothingReducesRoughnessOnPeriodicStream(t *testing.T) {
	op, err := New(Config{WindowPoints: 8000, Resolution: 800, RefreshEvery: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// Period 400 raw points = 40 aggregated points: clearly periodic.
	frame, ok := op.PushBatch(periodicStream(8000, 400, 0.5, 2))
	if !ok {
		t.Fatal("no frame")
	}
	if frame.Window < 2 {
		t.Errorf("window = %d, want > 1 for periodic data", frame.Window)
	}
}

func TestSeedReuseAcrossRefreshes(t *testing.T) {
	// A stationary periodic stream should keep the same window from
	// refresh to refresh, flagged as reused.
	op, err := New(Config{WindowPoints: 6000, Resolution: 600, RefreshEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	data := periodicStream(30000, 300, 0.3, 3)
	var reused, total int
	for _, x := range data {
		if f, ok := op.Push(x); ok {
			total++
			if f.SeedReused {
				reused++
			}
		}
	}
	if total < 10 {
		t.Fatalf("only %d refreshes", total)
	}
	if reused == 0 {
		t.Error("seed window never reused on a stationary stream")
	}
}

func TestEvictionKeepsWindowBounded(t *testing.T) {
	op, err := New(Config{WindowPoints: 1000, Resolution: 100, RefreshEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	op.PushBatch(periodicStream(50000, 100, 0.2, 4))
	have, capacity := op.WindowFill()
	if have != capacity {
		t.Errorf("window fill = %d, want full (%d)", have, capacity)
	}
	if capacity != 100 {
		t.Errorf("capacity = %d, want 100 aggregated points", capacity)
	}
}

func TestEvictionContentIsMostRecent(t *testing.T) {
	// Push a ramp; after eviction the window must hold the latest values.
	op, err := New(Config{WindowPoints: 100, Resolution: 100, RefreshEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	var lastFrame Frame
	var got bool
	for i := 0; i < n; i++ {
		if f, ok := op.Push(float64(i)); ok {
			lastFrame, got = f, true
		}
	}
	if !got {
		t.Fatal("no frame")
	}
	// Ratio 1, capacity 100: the window is [400..499]. Any smoothed value
	// must lie within that range.
	for _, v := range lastFrame.Smoothed {
		if v < 400 || v > 499 {
			t.Fatalf("smoothed value %v outside the most recent window [400,499]", v)
		}
	}
}

func TestLazyRefreshReducesSearches(t *testing.T) {
	mk := func(refresh int) Stats {
		op, err := New(Config{WindowPoints: 2000, Resolution: 200, RefreshEvery: refresh})
		if err != nil {
			t.Fatal(err)
		}
		op.PushBatch(periodicStream(40000, 100, 0.2, 5))
		return op.Stats()
	}
	eager := mk(0)   // refresh per aggregated point
	lazy := mk(4000) // refresh every 4000 raw points
	if lazy.Searches >= eager.Searches {
		t.Errorf("lazy searches %d >= eager %d", lazy.Searches, eager.Searches)
	}
	// Refresh interval 4000 raw = 10x fewer searches than per-pane (400).
	ratio := float64(eager.Searches) / float64(lazy.Searches)
	if ratio < 5 {
		t.Errorf("lazy refresh only reduced searches by %.1fx", ratio)
	}
}

func TestExhaustiveStrategyLesion(t *testing.T) {
	// "no AC" lesion: exhaustive search produces the same or smoother
	// output but evaluates far more candidates.
	mk := func(s core.Strategy) (Stats, Frame) {
		op, err := New(Config{WindowPoints: 4000, Resolution: 400, RefreshEvery: 4000, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		f, ok := op.PushBatch(periodicStream(16000, 400, 0.3, 6))
		if !ok {
			t.Fatal("missing frames")
		}
		return op.Stats(), f
	}
	asapStats, asapFrame := mk(core.StrategyASAP)
	exStats, exFrame := mk(core.StrategyExhaustive)
	if asapStats.Candidates >= exStats.Candidates {
		t.Errorf("ASAP candidates %d >= exhaustive %d", asapStats.Candidates, exStats.Candidates)
	}
	if asapFrame.Roughness > exFrame.Roughness*1.5+1e-9 {
		t.Errorf("ASAP frame much rougher than exhaustive: %v vs %v",
			asapFrame.Roughness, exFrame.Roughness)
	}
}

func TestNoPreaggLesion(t *testing.T) {
	op, err := New(Config{WindowPoints: 2000, Resolution: 200, RefreshEvery: 2000, DisablePreaggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.PushBatch(periodicStream(4000, 100, 0.2, 7)); !ok {
		t.Fatal("no frame")
	}
	_, capacity := op.WindowFill()
	if capacity != 2000 {
		t.Errorf("no-preagg capacity = %d, want 2000 raw points", capacity)
	}
}

func TestStatsPaneAccounting(t *testing.T) {
	op, err := New(Config{WindowPoints: 1000, Resolution: 100, RefreshEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	op.PushBatch(periodicStream(10000, 100, 0.2, 8))
	st := op.Stats()
	if st.Panes != 1000 {
		t.Errorf("Panes = %d, want 1000 (ratio 10)", st.Panes)
	}
}

func TestFrameSequenceMonotonic(t *testing.T) {
	op, err := New(Config{WindowPoints: 400, Resolution: 100, RefreshEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, x := range periodicStream(5000, 50, 0.2, 9) {
		if f, ok := op.Push(x); ok {
			if f.Sequence != prev+1 {
				t.Fatalf("sequence jumped from %d to %d", prev, f.Sequence)
			}
			prev = f.Sequence
		}
	}
	if prev == 0 {
		t.Fatal("no frames")
	}
}

func BenchmarkStreamingPush(b *testing.B) {
	op, err := New(Config{WindowPoints: 100000, Resolution: 1000, RefreshEvery: 10000})
	if err != nil {
		b.Fatal(err)
	}
	data := periodicStream(100000, 500, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Push(data[i%len(data)])
	}
}

func TestPrefillNoRefresh(t *testing.T) {
	op, err := New(Config{WindowPoints: 1000, Resolution: 100, RefreshEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	op.Prefill(periodicStream(1000, 100, 0.2, 10))
	st := op.Stats()
	if st.Searches != 0 {
		t.Errorf("Prefill triggered %d searches, want 0", st.Searches)
	}
	if st.RawPoints != 1000 || st.Panes != 100 {
		t.Errorf("Prefill accounting: %+v", st)
	}
	have, capacity := op.WindowFill()
	if have != capacity {
		t.Errorf("window not filled: %d/%d", have, capacity)
	}
	// Regular pushes resume refreshes.
	if _, ok := op.Push(1.0); !ok {
		t.Error("first Push after Prefill should refresh (RefreshEvery=1)")
	}
}

// TestRestoreMatchesNeverRestarted is the operator-level half of the
// crash-recovery contract: an operator Restore'd from the raw tail of
// an interrupted stream must, from then on, produce frames identical in
// values, window, and sequence to an operator that never stopped —
// across preaggregation ratios, refresh cadences, and cut points that
// land mid-pane and mid-refresh-interval.
func TestRestoreMatchesNeverRestarted(t *testing.T) {
	configs := []Config{
		{WindowPoints: 400, Resolution: 100, RefreshEvery: 100}, // ratio 4
		{WindowPoints: 400, Resolution: 100, RefreshEvery: 37},  // interval not a pane multiple
		{WindowPoints: 97, Resolution: 40},                      // ratio 2, default refresh
		{WindowPoints: 64, Resolution: 64, RefreshEvery: 5},     // ratio 1
		{WindowPoints: 300, Resolution: 100, RefreshEvery: 1},   // refresh every point
	}
	cuts := []int{0, 1, 3, 150, 399, 401, 777}
	const extra = 600

	for ci, cfg := range configs {
		for _, cut := range cuts {
			input := periodicStream(cut+extra, 60, 0.2, int64(1000*ci+cut))

			cont, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var contFrames []Frame
			for i, x := range input {
				f, ok := cont.Push(x)
				if ok && i >= cut {
					contFrames = append(contFrames, f)
				}
			}

			rest, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The recovered tail is what WAL retention would keep: the
			// last (capacity+2)*ratio points, or everything if shorter.
			horizon := (rest.capacity + 2) * rest.ratio
			tail := input[:cut]
			if len(tail) > horizon {
				tail = tail[len(tail)-horizon:]
			}
			rest.Restore(tail, cut)
			if _, ok := rest.Frame(); ok {
				t.Fatalf("cfg %d cut %d: Restore emitted a frame", ci, cut)
			}
			var restFrames []Frame
			for _, x := range input[cut:] {
				if f, ok := rest.Push(x); ok {
					restFrames = append(restFrames, f)
				}
			}

			if len(restFrames) != len(contFrames) {
				t.Fatalf("cfg %d cut %d: %d frames after restore, want %d",
					ci, cut, len(restFrames), len(contFrames))
			}
			for i := range contFrames {
				a, b := contFrames[i], restFrames[i]
				if a.Sequence != b.Sequence {
					t.Fatalf("cfg %d cut %d frame %d: sequence %d != %d", ci, cut, i, b.Sequence, a.Sequence)
				}
				if a.Window != b.Window {
					t.Fatalf("cfg %d cut %d frame %d: window %d != %d", ci, cut, i, b.Window, a.Window)
				}
				if len(a.Smoothed) != len(b.Smoothed) {
					t.Fatalf("cfg %d cut %d frame %d: %d values != %d", ci, cut, i, len(b.Smoothed), len(a.Smoothed))
				}
				for j := range a.Smoothed {
					if a.Smoothed[j] != b.Smoothed[j] {
						t.Fatalf("cfg %d cut %d frame %d value %d: %v != %v",
							ci, cut, i, j, b.Smoothed[j], a.Smoothed[j])
					}
				}
			}

			// Work counters the restore contract promises to preserve.
			cs, rs := cont.Stats(), rest.Stats()
			if cs.RawPoints != rs.RawPoints || cs.Panes != rs.Panes || cs.Searches != rs.Searches {
				t.Errorf("cfg %d cut %d: stats raw/panes/searches = %d/%d/%d, want %d/%d/%d",
					ci, cut, rs.RawPoints, rs.Panes, rs.Searches, cs.RawPoints, cs.Panes, cs.Searches)
			}
		}
	}
}

// TestRestoreShortTailStillServes checks the data-loss path: a tail
// shorter than the alignment would like must not panic and must leave
// the operator able to produce frames.
func TestRestoreShortTailStillServes(t *testing.T) {
	op, err := New(Config{WindowPoints: 400, Resolution: 100, RefreshEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	op.Restore([]float64{1, 2, 3}, 100000) // almost everything lost
	xs := periodicStream(400, 40, 0.1, 7)
	var got Frame
	var ok bool
	for _, x := range xs {
		if f, fired := op.Push(x); fired {
			got, ok = f, true
		}
	}
	if !ok {
		t.Fatal("no frame after pushing a full window post-restore")
	}
	if got.Sequence <= 1 {
		t.Errorf("sequence %d did not continue from the restored total", got.Sequence)
	}
}

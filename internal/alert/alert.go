// Package alert implements the alerting integration sketched in the
// paper's conclusion (Section 7) against the motivating scenario of
// Section 1: an electrical utility needs to catch systematic shifts in
// generator metrics that are "sub-threshold" with respect to a critical
// alarm yet obvious in a properly smoothed plot.
//
// The detector consumes streaming ASAP frames. Because the frames are
// already smoothed to remove periodic structure and noise while preserving
// large-scale deviations (the kurtosis constraint), a simple sustained
// z-score rule on frames detects drifts that a raw-threshold alarm misses
// and that raw z-scores would bury in false positives.
package alert

import (
	"errors"
	"fmt"
	"math"

	"github.com/asap-go/asap/internal/stats"
)

// ErrConfig reports an invalid detector configuration.
var ErrConfig = errors.New("alert: invalid config")

// Config tunes the detector.
type Config struct {
	// DriftSigma is the |z| level a smoothed region must reach to be
	// considered deviating (default 2).
	DriftSigma float64
	// SustainFraction is the fraction of the frame's most recent points
	// that must deviate, in the same direction, for an alert to fire
	// (default 0.05, i.e. 5% of the visualization window).
	SustainFraction float64
	// Cooldown is the number of frames to stay silent after firing, so a
	// persisting drift raises one alert, not one per refresh (default 5).
	Cooldown int
}

func (c *Config) setDefaults() {
	if c.DriftSigma == 0 {
		c.DriftSigma = 2
	}
	if c.SustainFraction == 0 {
		c.SustainFraction = 0.05
	}
	if c.Cooldown == 0 {
		c.Cooldown = 5
	}
}

func (c *Config) validate() error {
	if c.DriftSigma < 0 {
		return fmt.Errorf("%w: DriftSigma=%v", ErrConfig, c.DriftSigma)
	}
	if c.SustainFraction < 0 || c.SustainFraction > 1 {
		return fmt.Errorf("%w: SustainFraction=%v", ErrConfig, c.SustainFraction)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("%w: Cooldown=%v", ErrConfig, c.Cooldown)
	}
	return nil
}

// Direction is the sign of a detected drift.
type Direction int

// Drift directions.
const (
	Down Direction = -1
	Up   Direction = +1
)

// String names the direction.
func (d Direction) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// Alert describes one detected sustained drift.
type Alert struct {
	// FrameSequence is the frame in which the drift was detected.
	FrameSequence int
	// Direction is the sign of the deviation.
	Direction Direction
	// Severity is the mean |z| of the deviating run.
	Severity float64
	// RunLength is the number of trailing frame points in the run.
	RunLength int
}

// Detector is a streaming drift detector over smoothed frames. It is not
// safe for concurrent use.
type Detector struct {
	cfg      Config
	cooldown int
	fired    []Alert
}

// New validates cfg (applying defaults for zero fields) and returns a
// detector.
func New(cfg Config) (*Detector, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Observe inspects one smoothed frame (the Values of an ASAP streaming
// frame plus its sequence number) and returns an alert if the trailing
// region of the frame is a sustained deviation. It returns nil otherwise.
func (d *Detector) Observe(values []float64, sequence int) *Alert {
	if d.cooldown > 0 {
		d.cooldown--
		return nil
	}
	if len(values) < 8 {
		return nil
	}
	z := stats.ZScores(values)
	need := int(d.cfg.SustainFraction * float64(len(z)))
	if need < 2 {
		need = 2
	}

	// Count the trailing run of same-direction deviations beyond the
	// sigma threshold. The run must touch the end of the frame: we alert
	// on what is happening *now*, not on history inside the window.
	run := 0
	var dir Direction
	var sum float64
	for i := len(z) - 1; i >= 0; i-- {
		if math.Abs(z[i]) < d.cfg.DriftSigma {
			break
		}
		sign := Up
		if z[i] < 0 {
			sign = Down
		}
		if run == 0 {
			dir = sign
		} else if sign != dir {
			break
		}
		run++
		sum += math.Abs(z[i])
	}
	if run < need {
		return nil
	}
	a := Alert{
		FrameSequence: sequence,
		Direction:     dir,
		Severity:      sum / float64(run),
		RunLength:     run,
	}
	d.fired = append(d.fired, a)
	d.cooldown = d.cfg.Cooldown
	return &a
}

// Alerts returns all alerts fired so far.
func (d *Detector) Alerts() []Alert {
	return append([]Alert(nil), d.fired...)
}

package alert

import (
	"math"
	"math/rand"
	"testing"

	"github.com/asap-go/asap/internal/stream"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{DriftSigma: -1},
		{SustainFraction: -0.1},
		{SustainFraction: 1.5},
		{Cooldown: -2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.DriftSigma != 2 || d.cfg.SustainFraction != 0.05 || d.cfg.Cooldown != 5 {
		t.Errorf("defaults not applied: %+v", d.cfg)
	}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" {
		t.Error("direction names wrong")
	}
}

// frameWith builds a synthetic smoothed frame: flat at 0 with a trailing
// drift of the given z-magnitude and length.
func frameWith(n, driftLen int, driftLevel float64) []float64 {
	xs := make([]float64, n)
	for i := n - driftLen; i < n; i++ {
		xs[i] = driftLevel
	}
	return xs
}

func TestDetectsTrailingDrift(t *testing.T) {
	d, err := New(Config{DriftSigma: 1.5, SustainFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	a := d.Observe(frameWith(200, 30, -5), 1)
	if a == nil {
		t.Fatal("no alert for a deep sustained trailing drift")
	}
	if a.Direction != Down {
		t.Errorf("direction = %v, want down", a.Direction)
	}
	if a.RunLength < 10 {
		t.Errorf("run length = %d, want the drift span", a.RunLength)
	}
	if a.Severity < 1.5 {
		t.Errorf("severity = %v, want >= threshold", a.Severity)
	}
	if a.FrameSequence != 1 {
		t.Errorf("sequence = %d", a.FrameSequence)
	}
}

func TestIgnoresInteriorDeviation(t *testing.T) {
	// A deviation that ended mid-frame (not touching the end) is history,
	// not an active drift.
	d, err := New(Config{DriftSigma: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 200)
	for i := 100; i < 130; i++ {
		xs[i] = -5
	}
	if a := d.Observe(xs, 1); a != nil {
		t.Errorf("alerted on interior deviation: %+v", a)
	}
}

func TestIgnoresShortBlip(t *testing.T) {
	d, err := New(Config{DriftSigma: 1.5, SustainFraction: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	// 3 trailing points of 200 deviate: under the 10% sustain requirement.
	if a := d.Observe(frameWith(200, 3, -6), 1); a != nil {
		t.Errorf("alerted on a blip: %+v", a)
	}
}

func TestQuietOnFlatNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 50; seq++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if a := d.Observe(xs, seq); a != nil {
			t.Fatalf("false positive on white noise at frame %d: %+v", seq, a)
		}
	}
}

func TestCooldownSuppressesRepeats(t *testing.T) {
	d, err := New(Config{DriftSigma: 1.5, Cooldown: 3})
	if err != nil {
		t.Fatal(err)
	}
	frame := frameWith(200, 40, 5)
	if a := d.Observe(frame, 1); a == nil {
		t.Fatal("first observation should alert")
	}
	for seq := 2; seq <= 4; seq++ {
		if a := d.Observe(frame, seq); a != nil {
			t.Errorf("frame %d alerted during cooldown", seq)
		}
	}
	if a := d.Observe(frame, 5); a == nil {
		t.Error("persisting drift should re-alert after cooldown")
	}
	if got := len(d.Alerts()); got != 2 {
		t.Errorf("total alerts = %d, want 2", got)
	}
}

func TestTinyFrameIgnored(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a := d.Observe([]float64{9, 9, 9}, 1); a != nil {
		t.Error("tiny frames should not alert")
	}
}

// TestEndToEndSubThresholdDrift reproduces the Section 1 utility scenario:
// a generator metric with daily periodicity and noise develops a slow
// drift that never crosses a raw-value alarm threshold, yet the
// ASAP-smoothed stream exposes it and the detector fires.
func TestEndToEndSubThresholdDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		perDay = 288
		days   = 30
	)
	n := perDay * days
	raw := make([]float64, n)
	alarmThreshold := 80.0 // the "critical alarm" level
	for i := range raw {
		daily := 8 * math.Sin(2*math.Pi*float64(i%perDay)/perDay)
		drift := 0.0
		if i > 25*perDay { // last five days: slow sub-threshold rise
			drift = 10 * float64(i-25*perDay) / float64(5*perDay)
		}
		raw[i] = 50 + daily + drift + 3*rng.NormFloat64()
		if raw[i] >= alarmThreshold {
			t.Fatalf("scenario broken: raw value %v crossed the alarm threshold", raw[i])
		}
	}

	op, err := stream.New(stream.Config{
		WindowPoints: n,
		Resolution:   400,
		RefreshEvery: perDay / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(Config{DriftSigma: 2, SustainFraction: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	var fired []Alert
	for _, x := range raw {
		if f, ok := op.Push(x); ok {
			if a := det.Observe(f.Smoothed, f.Sequence); a != nil {
				fired = append(fired, *a)
			}
		}
	}
	if len(fired) == 0 {
		t.Fatal("detector missed the sub-threshold drift")
	}
	first := fired[0]
	if first.Direction != Up {
		t.Errorf("drift direction = %v, want up", first.Direction)
	}
	// The drift starts at day 25 of 30; the first alert must come from the
	// final sixth of the stream's refreshes.
	totalFrames := op.Stats().Searches
	if first.FrameSequence < totalFrames*3/4 {
		t.Errorf("alert at frame %d of %d — too early to be the drift", first.FrameSequence, totalFrames)
	}
}

// TestRawZScoresWouldFalseAlarm demonstrates why the detector runs on
// smoothed frames: the same rule applied to raw windows fires on periodic
// structure long before any drift exists.
func TestRawZScoresWouldFalseAlarm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const perDay = 288
	n := perDay * 10
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = 50 + 8*math.Sin(2*math.Pi*float64(i%perDay)/perDay) + 3*rng.NormFloat64()
	}
	det, err := New(Config{DriftSigma: 2, SustainFraction: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	falseAlarms := 0
	window := perDay * 3
	for end := window; end <= n; end += perDay / 2 {
		if a := det.Observe(raw[end-window:end], end); a != nil {
			falseAlarms++
		}
	}
	if falseAlarms == 0 {
		t.Skip("raw windows happened not to false-alarm with this seed; the smoothed path is still the robust one")
	}
	// This is the expected outcome: raw periodic peaks look like drifts.
	t.Logf("raw-window rule produced %d false alarms on a healthy metric", falseAlarms)
}

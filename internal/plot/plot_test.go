package plot

import (
	"strings"
	"testing"

	"github.com/asap-go/asap/internal/baselines"
)

func TestASCIIBasic(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	out, err := ASCII(xs, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data marks in chart")
	}
	if !strings.Contains(out, "n=10") {
		t.Error("footer missing point count")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // height rows + footer
		t.Errorf("chart has %d lines, want 7", len(lines))
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	out, err := ASCII(xs, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("constant series should still render")
	}
}

func TestASCIIErrors(t *testing.T) {
	if _, err := ASCII(nil, 10, 5); err == nil {
		t.Error("empty series should error")
	}
	if _, err := ASCII([]float64{1, 2}, 1, 5); err == nil {
		t.Error("width 1 should error")
	}
	if _, err := ASCII([]float64{1, 2}, 5, 1); err == nil {
		t.Error("height 1 should error")
	}
}

func TestASCIIContinuity(t *testing.T) {
	// A jump must be connected with '|' characters.
	xs := []float64{0, 0, 0, 10, 10, 10}
	out, err := ASCII(xs, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|") {
		t.Error("vertical connector missing at a jump")
	}
}

func TestResampleReduce(t *testing.T) {
	xs := []float64{1, 1, 3, 3}
	got := resample(xs, 2)
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("resample reduce = %v", got)
	}
}

func TestResampleStretch(t *testing.T) {
	xs := []float64{0, 10}
	got := resample(xs, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stretch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestResampleIdentity(t *testing.T) {
	xs := []float64{3, 1, 4}
	got := resample(xs, 3)
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("identity resample changed values: %v", got)
		}
	}
}

func TestSVGWellFormed(t *testing.T) {
	lines := []Line{
		{Name: "raw", Points: baselines.PointsFromSeries([]float64{1, 3, 2, 5, 4})},
		{Name: "smooth", Points: baselines.PointsFromSeries([]float64{2, 2.5, 3, 3.5, 4})},
	}
	svg, err := SVG("Demo & Test", 400, 200, lines...)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "<path", "Demo &amp; Test", "raw", "smooth"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<path") != 2 {
		t.Errorf("expected 2 paths, got %d", strings.Count(svg, "<path"))
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := SVG("t", 400, 200); err == nil {
		t.Error("no lines should error")
	}
	if _, err := SVG("t", 10, 10, Line{Name: "a", Points: baselines.PointsFromSeries([]float64{1})}); err == nil {
		t.Error("tiny canvas should error")
	}
	if _, err := SVG("t", 400, 200, Line{Name: "empty"}); err == nil {
		t.Error("empty line should error")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	svg, err := SVG("flat", 400, 200,
		Line{Name: "flat", Points: baselines.PointsFromSeries([]float64{2, 2, 2})})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<path") {
		t.Error("flat line missing path")
	}
}

func TestSVGSeries(t *testing.T) {
	svg, err := SVGSeries("multi", 400, 200,
		map[string][]float64{"a": {1, 2}, "b": {2, 1}}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, ">a<") || !strings.Contains(svg, ">b<") {
		t.Error("legend entries missing")
	}
	if _, err := SVGSeries("x", 400, 200, map[string][]float64{}, []string{"missing"}); err == nil {
		t.Error("missing series should error")
	}
}

// Package plot renders time series as ASCII charts (for terminals and the
// examples) and as standalone SVG documents (for the demo server and the
// figure outputs of cmd/asap-bench). Only the standard library is used.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/stats"
)

// ErrInput reports unusable plot input.
var ErrInput = errors.New("plot: invalid input")

// ASCII renders xs as a width x height character chart with a braille-like
// density: each column shows the series' value at that position. It is the
// quick-look renderer used by the examples and CLI.
func ASCII(xs []float64, width, height int) (string, error) {
	if len(xs) == 0 {
		return "", fmt.Errorf("%w: empty series", ErrInput)
	}
	if width < 2 || height < 2 {
		return "", fmt.Errorf("%w: %dx%d canvas", ErrInput, width, height)
	}
	// Resample to width columns (mean per column preserves level).
	cols := resample(xs, width)
	lo, hi, err := stats.MinMax(cols)
	if err != nil {
		return "", err
	}
	if hi == lo {
		hi, lo = hi+0.5, lo-0.5
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	prevRow := -1
	for c, v := range cols {
		f := (v - lo) / (hi - lo)
		row := int(math.Round((1 - f) * float64(height-1)))
		grid[row][c] = '*'
		// Connect vertically to the previous column for continuity.
		if prevRow >= 0 && row != prevRow {
			step := 1
			if row < prevRow {
				step = -1
			}
			for r := prevRow + step; r != row; r += step {
				if grid[r][c] == ' ' {
					grid[r][c] = '|'
				}
			}
		}
		prevRow = row
	}
	var b strings.Builder
	for r := range grid {
		b.WriteString(strings.TrimRight(string(grid[r]), " "))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "[min %.4g, max %.4g, n=%d]\n", lo, hi, len(xs))
	return b.String(), nil
}

// resample reduces or stretches xs to exactly width values via bucket
// means (reduction) or linear interpolation (stretch).
func resample(xs []float64, width int) []float64 {
	n := len(xs)
	out := make([]float64, width)
	if n == width {
		copy(out, xs)
		return out
	}
	if n > width {
		for c := 0; c < width; c++ {
			lo, hi := c*n/width, (c+1)*n/width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range xs[lo:hi] {
				sum += v
			}
			out[c] = sum / float64(hi-lo)
		}
		return out
	}
	for c := 0; c < width; c++ {
		pos := float64(c) * float64(n-1) / float64(width-1)
		i := int(pos)
		if i >= n-1 {
			out[c] = xs[n-1]
			continue
		}
		t := pos - float64(i)
		out[c] = xs[i] + t*(xs[i+1]-xs[i])
	}
	return out
}

// Line describes one polyline in an SVG chart.
type Line struct {
	Name   string
	Points []baselines.Point
	// Color is any SVG color string; empty picks from a default palette.
	Color string
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG renders one or more series as a standalone SVG line chart with a
// shared y-range and a small legend. The output is a complete SVG document.
func SVG(title string, width, height int, lines ...Line) (string, error) {
	if width < 50 || height < 50 {
		return "", fmt.Errorf("%w: %dx%d canvas too small", ErrInput, width, height)
	}
	if len(lines) == 0 {
		return "", fmt.Errorf("%w: no lines", ErrInput)
	}
	// Shared viewport across all lines.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, l := range lines {
		if len(l.Points) == 0 {
			return "", fmt.Errorf("%w: line %q has no points", ErrInput, l.Name)
		}
		for _, p := range l.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if xmax == xmin {
		xmin, xmax = xmin-0.5, xmax+0.5
	}
	if ymax == ymin {
		ymin, ymax = ymin-0.5, ymax+0.5
	}

	const margin = 40.0
	plotW := float64(width) - 2*margin
	plotH := float64(height) - 2*margin
	tx := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	ty := func(y float64) float64 { return margin + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16">%s</text>`+"\n",
		int(margin), escapeXML(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444"/>`+"\n",
		margin, margin+plotH, margin+plotW, margin+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444"/>`+"\n",
		margin, margin, margin, margin+plotH)
	fmt.Fprintf(&b, `<text x="4" y="%.1f" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", margin+6, ymax)
	fmt.Fprintf(&b, `<text x="4" y="%.1f" font-family="sans-serif" font-size="10">%.3g</text>`+"\n", margin+plotH, ymin)

	for i, l := range lines {
		color := l.Color
		if color == "" {
			color = palette[i%len(palette)]
		}
		var path strings.Builder
		for j, p := range l.Points {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.2f %.2f ", cmd, tx(p.X), ty(p.Y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.2"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		// Legend entry.
		lx := margin + plotW - 140
		lyOff := margin + 14*float64(i)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, lyOff, lx+18, lyOff, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, lyOff+4, escapeXML(l.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// SVGSeries is a convenience wrapper plotting dense series (index as x).
func SVGSeries(title string, width, height int, named map[string][]float64, order []string) (string, error) {
	lines := make([]Line, 0, len(named))
	for _, name := range order {
		vals, ok := named[name]
		if !ok {
			return "", fmt.Errorf("%w: series %q not in map", ErrInput, name)
		}
		lines = append(lines, Line{Name: name, Points: baselines.PointsFromSeries(vals)})
	}
	return SVG(title, width, height, lines...)
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

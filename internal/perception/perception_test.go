package perception

import (
	"math"
	"math/rand"
	"testing"

	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/datasets"
)

func TestPerceptInterpolation(t *testing.T) {
	pts := []baselines.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}
	p, err := Percept(pts, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if math.Abs(v-float64(i)) > 1e-9 {
			t.Errorf("percept[%d] = %v, want %v", i, v, i)
		}
	}
}

func TestPerceptConstantX(t *testing.T) {
	pts := []baselines.Point{{X: 5, Y: 3}}
	p, err := Percept(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if v != 3 {
			t.Errorf("degenerate percept = %v, want 3", v)
		}
	}
}

func TestPerceptErrors(t *testing.T) {
	if _, err := Percept(nil, 10); err == nil {
		t.Error("empty points should error")
	}
	if _, err := Percept([]baselines.Point{{X: 0, Y: 0}}, 1); err == nil {
		t.Error("width < 2 should error")
	}
}

func TestPerceptPiecewise(t *testing.T) {
	pts := []baselines.Point{{X: 0, Y: 0}, {X: 4, Y: 4}, {X: 8, Y: 0}}
	p, err := Percept(pts, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2, 3, 4, 3, 2, 1, 0}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-9 {
			t.Errorf("percept[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestIdentifyCleanStepIsEasy(t *testing.T) {
	// A clean level shift in region 3 with no clutter: every observer
	// should find it.
	xs := make([]float64, 1000)
	for i := 650; i < 750; i++ {
		xs[i] = 5
	}
	pts := baselines.PointsFromSeries(xs)
	res, err := RunIdentification(pts, 3, 800, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("clean anomaly accuracy = %v, want ~1", res.Accuracy)
	}
}

func TestIdentifyPureNoiseIsChance(t *testing.T) {
	// Pure white noise has no true anomaly: accuracy should hover near
	// chance (1/5), definitely below 0.5.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pts := baselines.PointsFromSeries(xs)
	res, err := RunIdentification(pts, 2, 800, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy > 0.45 {
		t.Errorf("noise accuracy = %v, want near chance 0.2", res.Accuracy)
	}
}

func TestClutterSlowsObservers(t *testing.T) {
	// Same anomaly, one plot clean and one buried in noise: the noisy plot
	// must take longer.
	rng := rand.New(rand.NewSource(4))
	clean := make([]float64, 1000)
	noisy := make([]float64, 1000)
	for i := range clean {
		step := 0.0
		if i >= 650 && i < 750 {
			step = 3
		}
		clean[i] = step
		noisy[i] = step + 2.5*rng.NormFloat64()
	}
	resClean, err := RunIdentification(baselines.PointsFromSeries(clean), 3, 800, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	resNoisy, err := RunIdentification(baselines.PointsFromSeries(noisy), 3, 800, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if resNoisy.MeanTime <= resClean.MeanTime {
		t.Errorf("noisy plot faster than clean: %v <= %v", resNoisy.MeanTime, resClean.MeanTime)
	}
	if resNoisy.Accuracy >= resClean.Accuracy {
		t.Errorf("noisy plot as accurate as clean: %v >= %v", resNoisy.Accuracy, resClean.Accuracy)
	}
}

func TestASAPBeatsOriginalOnTaxi(t *testing.T) {
	// The headline Figure 6 ordering on the Taxi dataset: ASAP's smoothed
	// plot yields higher accuracy and lower response time than the raw
	// plot.
	spec, _ := datasets.ByName("Taxi")
	xs := spec.Generate(7).Values
	region := spec.AnomalyRegion(len(xs))

	asapPts, err := baselines.Apply(baselines.TechASAP, xs, 800)
	if err != nil {
		t.Fatal(err)
	}
	origPts, err := baselines.Apply(baselines.TechOriginal, xs, 800)
	if err != nil {
		t.Fatal(err)
	}
	asapRes, err := RunIdentification(asapPts, region, 800, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	origRes, err := RunIdentification(origPts, region, 800, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if asapRes.Accuracy <= origRes.Accuracy {
		t.Errorf("ASAP accuracy %v <= original %v", asapRes.Accuracy, origRes.Accuracy)
	}
	if asapRes.MeanTime >= origRes.MeanTime {
		t.Errorf("ASAP time %v >= original %v", asapRes.MeanTime, origRes.MeanTime)
	}
}

func TestOversmoothWinsOnTemp(t *testing.T) {
	// Figure 6 / Figure 7's one exception: on the Temp dataset (monotone
	// warming trend) the oversmoothed plot highlights the anomaly at least
	// as well as ASAP, and both beat the raw plot.
	spec, _ := datasets.ByName("Temp")
	xs := spec.Generate(9).Values
	region := spec.AnomalyRegion(len(xs))

	prom := func(tech baselines.Technique) float64 {
		pts, err := baselines.Apply(tech, xs, 800)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prominence(pts, region, 800)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	over := prom(baselines.TechOversmooth)
	asap := prom(baselines.TechASAP)
	orig := prom(baselines.TechOriginal)
	if over < asap {
		t.Errorf("oversmooth prominence %v < ASAP %v on Temp", over, asap)
	}
	if asap <= orig {
		t.Errorf("ASAP prominence %v <= original %v on Temp", asap, orig)
	}
}

func TestPreferenceStudyFavorsASAPOnTaxi(t *testing.T) {
	// Figure 7: on Taxi, a strong majority prefers ASAP over original,
	// PAA100 and oversmooth.
	spec, _ := datasets.ByName("Taxi")
	xs := spec.Generate(13).Values
	region := spec.AnomalyRegion(len(xs))

	techs := []baselines.Technique{
		baselines.TechOriginal, baselines.TechASAP, baselines.TechPAA100, baselines.TechOversmooth,
	}
	plots := make([][]baselines.Point, len(techs))
	for i, tech := range techs {
		pts, err := baselines.Apply(tech, xs, 800)
		if err != nil {
			t.Fatal(err)
		}
		plots[i] = pts
	}
	shares, err := RunPreference(plots, region, 800, 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != len(techs) {
		t.Fatalf("%d shares for %d plots", len(shares), len(techs))
	}
	var total float64
	for _, s := range shares {
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
	asapShare := shares[1]
	for i, s := range shares {
		if i != 1 && asapShare <= s {
			t.Errorf("ASAP share %v not strictly greatest (plot %d has %v)", asapShare, i, s)
		}
	}
	if asapShare < 0.5 {
		t.Errorf("ASAP share %v, want a majority on Taxi", asapShare)
	}
}

func TestRunIdentificationErrors(t *testing.T) {
	pts := baselines.PointsFromSeries([]float64{1, 2, 3})
	if _, err := RunIdentification(pts, -1, 800, 10, 1); err == nil {
		t.Error("negative region should error")
	}
	if _, err := RunIdentification(pts, 7, 800, 10, 1); err == nil {
		t.Error("region >= 5 should error")
	}
	if _, err := RunIdentification(pts, 1, 800, 0, 1); err == nil {
		t.Error("zero observers should error")
	}
}

func TestRunPreferenceErrors(t *testing.T) {
	pts := baselines.PointsFromSeries([]float64{1, 2, 3})
	if _, err := RunPreference([][]baselines.Point{pts}, 1, 800, 10, 1); err == nil {
		t.Error("single plot should error")
	}
	if _, err := RunPreference([][]baselines.Point{pts, pts}, 1, 800, 0, 1); err == nil {
		t.Error("zero observers should error")
	}
}

func TestProminenceErrors(t *testing.T) {
	pts := baselines.PointsFromSeries([]float64{1, 2, 3})
	if _, err := Prominence(pts, 9, 800); err == nil {
		t.Error("bad region should error")
	}
	if _, err := Prominence(nil, 1, 800); err == nil {
		t.Error("empty points should error")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	spec, _ := datasets.ByName("Sine")
	xs := spec.Generate(3).Values
	pts := baselines.PointsFromSeries(xs)
	a, err := RunIdentification(pts, spec.AnomalyRegion(len(xs)), 800, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIdentification(pts, spec.AnomalyRegion(len(xs)), 800, 30, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

// Package perception simulates the user studies of Section 5.1. The
// paper's studies put rendered time-series plots in front of 700 Mechanical
// Turk workers (anomaly identification, Figure 6) and 20 graduate students
// (visual preference, Figure 7). Humans are not available to an offline
// reproduction, so this package substitutes a simple saliency-based
// observer model that encodes the paper's own causal explanation of the
// results:
//
//   - an observer perceives the plot at display resolution, not the data;
//   - small-scale fluctuations ("clutter") mask large-scale deviations —
//     perceptual noise grows with the roughness of the rendered plot;
//   - observers report the region whose perceived deviation from typical
//     behaviour is largest, and take longer when the plot is cluttered or
//     the choice is ambiguous.
//
// The model's free parameters are fixed constants chosen once (not fit per
// dataset); the reproduction targets the *ordering* of techniques —
// smoothed plots beat raw plots, oversmoothing wins only when the anomaly
// is a monotone trend — not the paper's absolute percentages. DESIGN.md
// Section 3 documents this substitution.
package perception

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/stats"
)

// Regions is the number of equal-width answer regions in the
// identification task (the study's five-way multiple choice).
const Regions = 5

// Model constants. Chosen once for the whole evaluation; see package
// comment.
const (
	// foveaWindow is the local averaging window (in pixels) of the
	// percept: the visual system integrates nearby pixels when judging
	// level, so single-pixel detail does not read as "level shift".
	foveaWindow = 9
	// clutterNoise scales perceptual noise by the rendered plot's
	// roughness: noisy plots mask deviations.
	clutterNoise = 1.1
	// baseSeconds, clutterSeconds and ambiguitySeconds compose the
	// response-time model.
	baseSeconds      = 6.0
	clutterSeconds   = 26.0
	ambiguitySeconds = 14.0
)

// ErrInput reports unusable study input.
var ErrInput = errors.New("perception: invalid input")

// Trial is one observer's answer in the identification task.
type Trial struct {
	ChosenRegion    int
	Correct         bool
	ResponseSeconds float64
}

// StudyResult aggregates trials: mean accuracy and response time with
// standard errors, as plotted in Figure 6.
type StudyResult struct {
	Observers  int
	Accuracy   float64 // fraction correct, 0..1
	AccuracySE float64
	MeanTime   float64 // seconds
	TimeSE     float64
}

// Percept resamples a rendered polyline at the given pixel width: the
// value an ideal display shows in each column. Points must be sorted by X
// (every baselines technique returns them sorted).
func Percept(pts []baselines.Point, width int) ([]float64, error) {
	if len(pts) == 0 || width < 2 {
		return nil, ErrInput
	}
	out := make([]float64, width)
	x0, x1 := pts[0].X, pts[len(pts)-1].X
	if x1 == x0 {
		for i := range out {
			out[i] = pts[0].Y
		}
		return out, nil
	}
	j := 0
	for i := 0; i < width; i++ {
		x := x0 + (x1-x0)*float64(i)/float64(width-1)
		for j < len(pts)-2 && pts[j+1].X < x {
			j++
		}
		a, b := pts[j], pts[j+1]
		if b.X == a.X {
			out[i] = b.Y
			continue
		}
		t := (x - a.X) / (b.X - a.X)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		out[i] = a.Y + t*(b.Y-a.Y)
	}
	return out, nil
}

// saliency computes the perceptual signal: z-scored percept, foveally
// averaged, plus the clutter level of the rendered plot.
func saliency(percept []float64) (signal []float64, clutter float64) {
	z := stats.ZScores(percept)
	clutter = stats.Roughness(z)
	w := foveaWindow
	if w > len(z) {
		w = len(z)
	}
	if w < 1 {
		w = 1
	}
	signal = make([]float64, len(z))
	// Centered moving average with shrinking edges.
	half := w / 2
	for i := range z {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(z) {
			hi = len(z) - 1
		}
		var sum float64
		for k := lo; k <= hi; k++ {
			sum += z[k]
		}
		signal[i] = sum / float64(hi-lo+1)
	}
	return signal, clutter
}

// IdentifyAnomaly simulates one observer answering the five-region
// identification question: the observer's eye lands on the single most
// salient point of the noisy percept and reports the region containing it.
// Using the global argmax (rather than comparing per-region maxima) models
// how people answer when an anomaly smears across a region boundary: they
// point at its deepest part.
func IdentifyAnomaly(pts []baselines.Point, trueRegion, width int, rng *rand.Rand) (Trial, error) {
	if trueRegion < 0 || trueRegion >= Regions {
		return Trial{}, ErrInput
	}
	percept, err := Percept(pts, width)
	if err != nil {
		return Trial{}, err
	}
	signal, clutter := saliency(percept)
	n := len(signal)
	noise := clutterNoise * clutter

	var scores [Regions]float64
	bestIdx, best := 0, math.Inf(-1)
	for r := 0; r < Regions; r++ {
		lo, hi := r*n/Regions, (r+1)*n/Regions
		for i := lo; i < hi; i++ {
			v := math.Abs(signal[i] + noise*rng.NormFloat64())
			if v > scores[r] {
				scores[r] = v
			}
			if v > best {
				best, bestIdx = v, i
			}
		}
	}
	bestRegion := bestIdx * Regions / n
	if bestRegion >= Regions {
		bestRegion = Regions - 1
	}
	// Decision confidence: how far the chosen region's peak stands above
	// the strongest competitor, for the response-time model.
	second := math.Inf(-1)
	for r, s := range scores {
		if r != bestRegion && s > second {
			second = s
		}
	}
	margin := 0.0
	if best > 0 && second > 0 {
		margin = (best - second) / best
	}
	clutterNorm := clutter / (clutter + 1)
	rt := baseSeconds + clutterSeconds*clutterNorm + ambiguitySeconds*(1-margin) +
		2*rng.NormFloat64()
	if rt < 2 {
		rt = 2
	}
	return Trial{
		ChosenRegion:    bestRegion,
		Correct:         bestRegion == trueRegion,
		ResponseSeconds: rt,
	}, nil
}

// RunIdentification simulates a population of observers on one plot and
// aggregates accuracy and response time.
func RunIdentification(pts []baselines.Point, trueRegion, width, observers int, seed int64) (StudyResult, error) {
	if observers < 1 {
		return StudyResult{}, ErrInput
	}
	rng := rand.New(rand.NewSource(seed))
	var correct int
	times := make([]float64, 0, observers)
	var accs []float64
	for i := 0; i < observers; i++ {
		tr, err := IdentifyAnomaly(pts, trueRegion, width, rng)
		if err != nil {
			return StudyResult{}, err
		}
		if tr.Correct {
			correct++
			accs = append(accs, 1)
		} else {
			accs = append(accs, 0)
		}
		times = append(times, tr.ResponseSeconds)
	}
	res := StudyResult{
		Observers: observers,
		Accuracy:  float64(correct) / float64(observers),
		MeanTime:  stats.Mean(times),
	}
	n := float64(observers)
	res.AccuracySE = stats.StdDev(accs) / math.Sqrt(n)
	res.TimeSE = stats.StdDev(times) / math.Sqrt(n)
	return res, nil
}

// Prominence scores how strongly a rendered plot highlights the known
// anomaly region: the gap between the true region's peak deviation and the
// strongest competing region, under a noise-free percept. This is the
// quantity preference-study subjects are asked to judge ("select the
// visualization that best highlights the described anomaly").
func Prominence(pts []baselines.Point, trueRegion, width int) (float64, error) {
	if trueRegion < 0 || trueRegion >= Regions {
		return 0, ErrInput
	}
	percept, err := Percept(pts, width)
	if err != nil {
		return 0, err
	}
	signal, clutter := saliency(percept)
	n := len(signal)
	lo, hi := trueRegion*n/Regions, (trueRegion+1)*n/Regions
	var trueScore float64
	background := make([]float64, 0, n)
	for i, v := range signal {
		a := math.Abs(v)
		if i >= lo && i < hi {
			if a > trueScore {
				trueScore = a
			}
		} else {
			background = append(background, a)
		}
	}
	// Compare the anomaly's peak against the *typical* deviation elsewhere
	// (the median), not the maximum: an anomaly smeared slightly past its
	// region boundary should not count against the plot, but a plot whose
	// background is everywhere as extreme as the anomaly highlights
	// nothing. Clutter further lowers perceived prominence.
	sort.Float64s(background)
	typical := 0.0
	if len(background) > 0 {
		typical = background[len(background)/2]
	}
	return (trueScore - typical) / (1 + clutterNoise*clutter), nil
}

// RunPreference simulates the Figure 7 study: each observer sees every
// plot (anonymized, shuffled) and picks the one that best highlights the
// described anomaly. It returns the share of observers choosing each plot,
// in input order.
func RunPreference(plots [][]baselines.Point, trueRegion, width, observers int, seed int64) ([]float64, error) {
	if len(plots) < 2 || observers < 1 {
		return nil, ErrInput
	}
	proms := make([]float64, len(plots))
	for i, pts := range plots {
		p, err := Prominence(pts, trueRegion, width)
		if err != nil {
			return nil, err
		}
		proms[i] = p
	}
	// Observers rank with individual judgment noise proportional to the
	// spread of prominences. The noise scale is large enough that close
	// calls split the population (as the paper's subjects split between
	// ASAP and PAA100 on Sine) while clear winners still take strong
	// majorities.
	spread := spreadOf(proms)
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, len(plots))
	for o := 0; o < observers; o++ {
		bestIdx, best := 0, math.Inf(-1)
		for i, p := range proms {
			v := p + 0.8*spread*rng.NormFloat64()
			if v > best {
				best, bestIdx = v, i
			}
		}
		counts[bestIdx]++
	}
	shares := make([]float64, len(plots))
	for i, c := range counts {
		shares[i] = float64(c) / float64(observers)
	}
	return shares, nil
}

// spreadOf returns a robust scale of the values (IQR-like: the gap between
// the top and median), used to size judgment noise.
func spreadOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := sorted[len(sorted)-1] - sorted[len(sorted)/2]
	if s <= 0 {
		s = 1e-3
	}
	return s
}

package sma

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveSMA is the straightforward O(n*w) reference.
func naiveSMA(xs []float64, window, slide int) []float64 {
	var out []float64
	for start := 0; start+window <= len(xs); start += slide {
		var sum float64
		for _, v := range xs[start : start+window] {
			sum += v
		}
		out = append(out, sum/float64(window))
	}
	return out
}

func randSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 5
	}
	return xs
}

func TestTransformMatchesNaive(t *testing.T) {
	xs := randSeries(500, 1)
	for _, w := range []int{1, 2, 3, 7, 100, 499, 500} {
		got, err := Transform(xs, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		want := naiveSMA(xs, w, 1)
		if len(got) != len(want) {
			t.Fatalf("w=%d: length %d, want %d", w, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("w=%d i=%d: got %v, want %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestTransformSlideMatchesNaive(t *testing.T) {
	xs := randSeries(300, 2)
	for _, w := range []int{1, 4, 10, 50} {
		for _, s := range []int{1, 2, 3, 10, 50, 60} {
			got, err := TransformSlide(xs, w, s)
			if err != nil {
				t.Fatalf("w=%d s=%d: %v", w, s, err)
			}
			want := naiveSMA(xs, w, s)
			if len(got) != len(want) {
				t.Fatalf("w=%d s=%d: length %d, want %d", w, s, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Errorf("w=%d s=%d i=%d: got %v, want %v", w, s, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTransformProperty(t *testing.T) {
	prop := func(seed int64, wRaw, sRaw uint8) bool {
		xs := randSeries(257, seed)
		w := int(wRaw)%len(xs) + 1
		s := int(sRaw)%64 + 1
		got, err := TransformSlide(xs, w, s)
		if err != nil {
			return false
		}
		want := naiveSMA(xs, w, s)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTransformErrors(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, err := Transform(xs, 0); err == nil {
		t.Error("window 0 should error")
	}
	if _, err := Transform(xs, 4); err == nil {
		t.Error("window > len should error")
	}
	if _, err := TransformSlide(xs, 2, 0); err == nil {
		t.Error("slide 0 should error")
	}
	if _, err := Transform(nil, 1); err == nil {
		t.Error("window on empty series should error")
	}
}

func TestTransformWindowOne(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	got, err := Transform(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("w=1 should be identity; got[%d]=%v", i, got[i])
		}
	}
	// Must be a copy, not an alias.
	got[0] = 99
	if xs[0] == 99 {
		t.Error("Transform(x,1) aliases its input")
	}
}

func TestTransformConstantSeries(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7.5
	}
	got, err := Transform(xs, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-7.5) > 1e-12 {
			t.Errorf("constant series smoothed[%d] = %v, want 7.5", i, v)
		}
	}
}

func TestTransformDriftResumation(t *testing.T) {
	// A long series with large offset: rolling sums drift without periodic
	// re-summation. Verify every output stays within strict tolerance of
	// the exact mean.
	n := 20000
	xs := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range xs {
		xs[i] = 1e9 + rng.Float64()
	}
	w := 37
	got, err := Transform(xs, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(got); i += 977 {
		var sum float64
		for _, v := range xs[i : i+w] {
			sum += v
		}
		want := sum / float64(w)
		if math.Abs(got[i]-want) > 1e-4 {
			t.Fatalf("drift at %d: got %v, want %v", i, got[i], want)
		}
	}
}

func TestWindowIncremental(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Full() || w.Count() != 0 || w.Mean() != 0 {
		t.Error("fresh window should be empty with mean 0")
	}
	w.Push(3)
	if w.Mean() != 3 {
		t.Errorf("mean after one push = %v", w.Mean())
	}
	w.Push(6)
	w.Push(9)
	if !w.Full() || w.Mean() != 6 {
		t.Errorf("full window mean = %v, want 6", w.Mean())
	}
	w.Push(12) // evicts 3
	if w.Mean() != 9 {
		t.Errorf("after eviction mean = %v, want 9", w.Mean())
	}
	if w.Size() != 3 {
		t.Errorf("Size = %d", w.Size())
	}
}

func TestWindowMatchesTransform(t *testing.T) {
	xs := randSeries(1000, 4)
	size := 25
	w, err := NewWindow(size)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Transform(xs, size)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for _, x := range xs {
		w.Push(x)
		if w.Full() {
			got = append(got, w.Mean())
		}
	}
	if len(got) != len(want) {
		t.Fatalf("incremental emitted %d means, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("i=%d: incremental %v, batch %v", i, got[i], want[i])
		}
	}
}

func TestWindowLongRunStability(t *testing.T) {
	// After many pushes (crossing the recompute threshold) the incremental
	// mean must still match a fresh computation.
	w, err := NewWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var last10 []float64
	for i := 0; i < 1<<17; i++ {
		x := rng.NormFloat64() * 1e6
		w.Push(x)
		last10 = append(last10, x)
		if len(last10) > 10 {
			last10 = last10[1:]
		}
	}
	var sum float64
	for _, v := range last10 {
		sum += v
	}
	if math.Abs(w.Mean()-sum/10) > 1e-6 {
		t.Errorf("long-run mean drifted: %v vs %v", w.Mean(), sum/10)
	}
}

func TestNewWindowInvalid(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Error("NewWindow(0) should error")
	}
}

func TestPane(t *testing.T) {
	var p Pane
	if p.Mean() != 0 {
		t.Error("empty pane mean should be 0")
	}
	p.Add(2)
	p.Add(8)
	p.Add(-1)
	if p.Count != 3 || p.Sum != 9 || p.Mean() != 3 {
		t.Errorf("pane = %+v", p)
	}
	if p.Min != -1 || p.Max != 8 {
		t.Errorf("pane min/max = %v/%v, want -1/8", p.Min, p.Max)
	}
}

func TestPanerEmitsDisjointPanes(t *testing.T) {
	var panes []Pane
	p, err := NewPaner(4, func(pn Pane) { panes = append(panes, pn) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		p.Push(float64(i))
	}
	if len(panes) != 2 {
		t.Fatalf("emitted %d panes, want 2 before flush", len(panes))
	}
	if panes[0].Mean() != 2.5 || panes[1].Mean() != 6.5 {
		t.Errorf("pane means = %v, %v; want 2.5, 6.5", panes[0].Mean(), panes[1].Mean())
	}
	if p.Pending() != 2 {
		t.Errorf("pending = %d, want 2", p.Pending())
	}
	p.Flush()
	if len(panes) != 3 || panes[2].Mean() != 9.5 {
		t.Fatalf("flush: %d panes, last mean %v", len(panes), panes[len(panes)-1].Mean())
	}
	if p.Pending() != 0 {
		t.Errorf("pending after flush = %d", p.Pending())
	}
	// Flushing again is a no-op.
	p.Flush()
	if len(panes) != 3 {
		t.Error("second flush emitted a pane")
	}
}

func TestPanerEquivalentToTransformSlide(t *testing.T) {
	// Pane means with pane size p == TransformSlide(xs, p, p) on inputs
	// whose length is a multiple of p.
	xs := randSeries(960, 6)
	paneSize := 32
	var got []float64
	p, err := NewPaner(paneSize, func(pn Pane) { got = append(got, pn.Mean()) })
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		p.Push(x)
	}
	want, err := TransformSlide(xs, paneSize, paneSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("paner emitted %d, transform %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("i=%d: paner %v, transform %v", i, got[i], want[i])
		}
	}
}

func TestNewPanerInvalid(t *testing.T) {
	if _, err := NewPaner(0, func(Pane) {}); err == nil {
		t.Error("pane size 0 should error")
	}
	if _, err := NewPaner(3, nil); err == nil {
		t.Error("nil emit should error")
	}
}

func BenchmarkTransformRolling(b *testing.B) {
	xs := randSeries(1_000_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transform(xs, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowPush(b *testing.B) {
	w, _ := NewWindow(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(float64(i))
	}
}

// Package sma implements the simple moving average — ASAP's smoothing
// function (Section 3.3) — in three forms: a batch transform, an
// incremental sliding-window evaluator, and the pane-based sub-aggregation
// of Li et al. ("No pane, no gain", SIGMOD Record 2005) that ASAP's
// streaming mode builds on (Section 4.5).
//
// Following the paper, SMA(X, w) produces y_i = (1/w) * sum_{j=0}^{w-1}
// x_{i+j}, one output per *slide* of the window. Batch search uses slide 1;
// the pixel-aware policy picks slide = window for preaggregation.
package sma

import (
	"errors"
	"fmt"
)

// ErrWindow reports an invalid window or slide configuration.
var ErrWindow = errors.New("sma: invalid window configuration")

// Transform returns the simple moving average of xs with the given window
// and slide 1: output i is the mean of xs[i : i+window]. The result has
// length len(xs)-window+1. window==1 returns a copy of xs. It returns
// ErrWindow when window < 1 or window > len(xs).
func Transform(xs []float64, window int) ([]float64, error) {
	return TransformSlide(xs, window, 1)
}

// TransformSlide returns the moving average with an explicit slide:
// output k is the mean of xs[k*slide : k*slide+window]. Windows that would
// run past the end of the input are not emitted.
func TransformSlide(xs []float64, window, slide int) ([]float64, error) {
	if window < 1 || slide < 1 {
		return nil, fmt.Errorf("%w: window=%d slide=%d", ErrWindow, window, slide)
	}
	if window > len(xs) {
		return nil, fmt.Errorf("%w: window %d exceeds series length %d", ErrWindow, window, len(xs))
	}
	n := (len(xs)-window)/slide + 1
	out := make([]float64, n)

	if slide >= window {
		// Disjoint or gapped windows: direct summation is both faster and
		// exact (no drift).
		for k := 0; k < n; k++ {
			start := k * slide
			var sum float64
			for _, v := range xs[start : start+window] {
				sum += v
			}
			out[k] = sum / float64(window)
		}
		return out, nil
	}

	// Overlapping windows: rolling sum with periodic re-summation to bound
	// floating-point drift. A full re-sum every `resum` outputs keeps the
	// error of any output within `window` additions of a fresh sum.
	const resum = 4096
	inv := 1 / float64(window)
	var sum float64
	for _, v := range xs[:window] {
		sum += v
	}
	out[0] = sum * inv
	for k := 1; k < n; k++ {
		start := k * slide
		if k%resum == 0 {
			sum = 0
			for _, v := range xs[start : start+window] {
				sum += v
			}
		} else {
			for i := start - slide; i < start; i++ {
				sum -= xs[i]
			}
			for i := start - slide + window; i < start+window; i++ {
				sum += xs[i]
			}
		}
		out[k] = sum * inv
	}
	return out, nil
}

// Window is an incremental sliding-window mean over a stream. Push adds a
// point; once Full, Mean returns the average of the most recent Size
// points in O(1).
type Window struct {
	size  int
	buf   []float64
	next  int
	count int
	sum   float64
	// pushes since the last full recompute; bounds floating-point drift.
	sincePushReset int
}

// NewWindow returns an incremental window of the given size.
func NewWindow(size int) (*Window, error) {
	if size < 1 {
		return nil, fmt.Errorf("%w: size=%d", ErrWindow, size)
	}
	return &Window{size: size, buf: make([]float64, size)}, nil
}

// Push adds x, evicting the oldest value once the window is full.
func (w *Window) Push(x float64) {
	if w.count == w.size {
		w.sum -= w.buf[w.next]
	} else {
		w.count++
	}
	w.buf[w.next] = x
	w.sum += x
	w.next = (w.next + 1) % w.size
	w.sincePushReset++
	if w.sincePushReset >= 1<<16 {
		w.recompute()
	}
}

func (w *Window) recompute() {
	w.sum = 0
	for i := 0; i < w.count; i++ {
		w.sum += w.buf[i]
	}
	w.sincePushReset = 0
}

// Full reports whether Size points have been pushed.
func (w *Window) Full() bool { return w.count == w.size }

// Count returns the number of points currently in the window.
func (w *Window) Count() int { return w.count }

// Size returns the configured window size.
func (w *Window) Size() int { return w.size }

// Mean returns the mean of the points in the window (all pushed points
// until the window fills). It returns 0 when empty.
func (w *Window) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// Pane is a disjoint sub-aggregate of a stream: the count and sum of a
// fixed-size batch of input points. Sliding-window aggregates over panes
// need only O(window/pane) work per slide instead of O(window), the
// technique ASAP adopts for pixel-aware streaming (Section 4.5).
type Pane struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Add folds a point into the pane.
func (p *Pane) Add(x float64) {
	if p.Count == 0 {
		p.Min, p.Max = x, x
	} else {
		if x < p.Min {
			p.Min = x
		}
		if x > p.Max {
			p.Max = x
		}
	}
	p.Count++
	p.Sum += x
}

// Mean returns the pane average, or 0 for an empty pane.
func (p *Pane) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

// Paner splits an incoming stream into consecutive disjoint panes of a
// fixed size and emits each completed pane. This is the pixel-aware
// preaggregation of Section 4.4 applied online: pane size = point-to-pixel
// ratio.
type Paner struct {
	paneSize int
	current  Pane
	emit     func(Pane)
}

// NewPaner returns a Paner that calls emit for every completed pane of
// paneSize points.
func NewPaner(paneSize int, emit func(Pane)) (*Paner, error) {
	if paneSize < 1 {
		return nil, fmt.Errorf("%w: pane size=%d", ErrWindow, paneSize)
	}
	if emit == nil {
		return nil, errors.New("sma: nil emit callback")
	}
	return &Paner{paneSize: paneSize, emit: emit}, nil
}

// Push adds a point, emitting the pane when it completes.
func (p *Paner) Push(x float64) {
	p.current.Add(x)
	if p.current.Count == p.paneSize {
		p.emit(p.current)
		p.current = Pane{}
	}
}

// Flush emits any partial pane and resets. Use at end-of-stream.
func (p *Paner) Flush() {
	if p.current.Count > 0 {
		p.emit(p.current)
		p.current = Pane{}
	}
}

// Pending returns the number of points buffered in the unfinished pane.
func (p *Paner) Pending() int { return p.current.Count }

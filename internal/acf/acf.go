// Package acf computes the autocorrelation function of a time series and
// detects its peaks, the machinery behind ASAP's autocorrelation pruning
// (Section 4.3 of the paper).
//
// The ACF at lag tau is estimated as
//
//	ACF(X, tau) = sum_{i=1..N-tau} (x_i - mean)(x_{i+tau} - mean) / sum_i (x_i - mean)^2
//
// which matches the estimator in Appendix A.1. Computing all lags naively is
// O(n^2); Compute uses the Wiener–Khinchin theorem (two FFTs over the
// zero-padded, demeaned series) for O(n log n), the optimization the paper
// credits for making peak-based pruning cheaper than the search it prunes.
package acf

import (
	"errors"
	"math"

	"github.com/asap-go/asap/internal/stats"
)

// ErrTooShort is returned when the series is too short for autocorrelation
// analysis (fewer than two points, or zero requested lags).
var ErrTooShort = errors.New("acf: series too short")

// CorrelationThreshold is the minimum autocorrelation a local maximum must
// reach to count as a periodicity peak. Peaks below this level are noise;
// the value matches the threshold used by the reference implementations of
// the paper.
const CorrelationThreshold = 0.2

// Result holds the autocorrelation function of a series and its detected
// peaks.
type Result struct {
	// Correlations[tau] is the ACF estimate at lag tau. Correlations[0] is
	// always 1 for non-constant series. Length is maxLag+1.
	Correlations []float64
	// Peaks are lags that are local maxima of the ACF above
	// CorrelationThreshold, in increasing lag order. These are ASAP's
	// candidate window lengths.
	Peaks []int
	// MaxACF is the largest peak correlation (0 when there are no peaks).
	// It feeds the lower-bound pruning rule (Equation 6).
	MaxACF float64
}

// Compute returns the ACF of xs for lags 1..maxLag using FFT-based
// estimation, along with detected peaks. maxLag is clamped to len(xs)-1.
//
// Compute is the one-shot form of Analyzer: it builds the FFT plan and
// scratch buffers, uses them once, and lets them go. Callers that compute
// ACFs repeatedly (the streaming refresh path) should hold an Analyzer
// instead, which reuses all of that state and allocates nothing at steady
// state while producing identical results.
//
// Constant series (zero variance) have an undefined ACF; Compute returns a
// Result with all correlations zero and no peaks, which makes ASAP fall
// back to binary search — the correct behaviour, since a constant series
// has no periodicity to exploit.
func Compute(xs []float64, maxLag int) (*Result, error) {
	return NewAnalyzer().Compute(xs, maxLag)
}

// ComputeBruteForce is the O(n*maxLag) reference estimator, retained for
// differential testing and for the ablation benchmarks that quantify the
// FFT speedup. It shares Compute's single-pass moment estimates for the
// mean and the normalizing sum of squared deviations, so the two
// estimators differ only by the transform.
func ComputeBruteForce(xs []float64, maxLag int) (*Result, error) {
	n := len(xs)
	if n < 2 || maxLag < 1 {
		return nil, ErrTooShort
	}
	if maxLag > n-1 {
		maxLag = n - 1
	}
	corr := make([]float64, maxLag+1)
	mom := stats.ComputeMoments(xs)
	mean, denom := mom.Mean, mom.M2
	if denom == 0 {
		return &Result{Correlations: corr}, nil
	}
	corr[0] = 1
	for tau := 1; tau <= maxLag; tau++ {
		var num float64
		for i := 0; i+tau < n; i++ {
			num += (xs[i] - mean) * (xs[i+tau] - mean)
		}
		corr[tau] = num / denom
	}
	res := &Result{Correlations: corr}
	res.Peaks, res.MaxACF = FindPeaks(corr)
	return res, nil
}

// FindPeaks returns the lags in corr (excluding lag 0) that are local
// maxima above CorrelationThreshold, plus the maximum peak value. A point
// is a local maximum when it is strictly greater than one neighbor and at
// least as large as the other, which tolerates the flat-topped peaks that
// preaggregated series produce.
func FindPeaks(corr []float64) (peaks []int, maxACF float64) {
	return appendPeaks(nil, corr)
}

// appendPeaks appends detected peaks to dst (the allocation-free core of
// FindPeaks; the Analyzer passes a reused buffer).
func appendPeaks(dst []int, corr []float64) (peaks []int, maxACF float64) {
	peaks = dst
	for tau := 1; tau < len(corr)-1; tau++ {
		c := corr[tau]
		if c < CorrelationThreshold {
			continue
		}
		left, right := corr[tau-1], corr[tau+1]
		if (c > left && c >= right) || (c >= left && c > right) {
			peaks = append(peaks, tau)
			if c > maxACF {
				maxACF = c
			}
		}
	}
	return peaks, maxACF
}

// At returns the ACF value at the given lag, or 0 when out of range. It
// lets search code index the ACF without bounds bookkeeping.
func (r *Result) At(lag int) float64 {
	if lag < 0 || lag >= len(r.Correlations) {
		return 0
	}
	return r.Correlations[lag]
}

// EstimateRoughness evaluates Equation 5 of the paper: the predicted
// roughness of SMA(X, w) for a weakly stationary series X with standard
// deviation sigma and N points:
//
//	roughness(Y) = sqrt(2)*sigma/w * sqrt(1 - N/(N-w) * ACF(X, w))
//
// When the term under the square root is negative (possible because the
// ACF is an estimate), it is clamped to zero. The estimate lets ASAP prune
// candidate windows without smoothing (IsRougher in Algorithm 1).
func (r *Result) EstimateRoughness(sigma float64, n, w int) float64 {
	if w <= 0 || w >= n {
		return math.Inf(1)
	}
	term := 1 - float64(n)/float64(n-w)*r.At(w)
	if term < 0 {
		term = 0
	}
	return math.Sqrt2 * sigma / float64(w) * math.Sqrt(term)
}

package acf

import (
	"github.com/asap-go/asap/internal/stats"
)

// Analyzer computes autocorrelations repeatedly — one series window after
// another, as the streaming refresh path does — without per-call
// allocation. It owns a real-input FFT plan and every scratch buffer the
// Wiener–Khinchin round trip needs, and returns a Result whose slices it
// also owns and reuses.
//
// An Analyzer produces results identical to the package-level Compute
// (Compute is a one-shot Analyzer). It sizes itself lazily to the series
// it is given: the first call, and any call that changes the series
// length beyond what the current tables cover, rebuilds the plan and
// buffers; calls at a steady length allocate nothing. That matches the
// stream operator's life cycle — the window grows while the ring fills,
// then stays at capacity forever.
//
// The returned Result (including Correlations and Peaks) is overwritten
// by the next Compute call. An Analyzer is not safe for concurrent use;
// it is designed to be owned by a single stream operator.
type Analyzer struct {
	wk wkEngine // the Wiener–Khinchin round trip (plan + scratch)

	corr  []float64 // Result.Correlations backing store
	peaks []int     // Result.Peaks backing store
	res   Result
}

// NewAnalyzer returns an empty Analyzer; buffers are built on first use.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

// Compute returns the ACF of xs for lags 1..maxLag exactly as the
// package-level Compute does, reusing the Analyzer's plan and buffers.
// The result is valid until the next call.
func (a *Analyzer) Compute(xs []float64, maxLag int) (*Result, error) {
	n := len(xs)
	if n < 2 || maxLag < 1 {
		return nil, ErrTooShort
	}
	if maxLag > n-1 {
		maxLag = n - 1
	}
	if err := a.resize(n, maxLag); err != nil {
		return nil, err
	}
	corr := a.corr[:maxLag+1]

	// Single pass for mean and the sum of squared deviations (the ACF
	// denominator), shared with ComputeBruteForce.
	mom := stats.ComputeMoments(xs)
	if mom.M2 == 0 {
		// Constant series: undefined ACF, reported as all-zero, no peaks.
		for i := range corr {
			corr[i] = 0
		}
		a.res = Result{Correlations: corr}
		return &a.res, nil
	}

	// Wiener–Khinchin: autocovariance = IFFT(|FFT(x - mean)|^2), zero-
	// padded to at least 2n so the circular correlation is linear. The
	// series is real, so the whole round trip runs at half size through
	// the RealPlan (shared with Incremental's resync via wkEngine).
	cov := a.wk.lagProducts(xs, mom.Mean)

	corr[0] = 1
	inv := 1 / mom.M2
	for tau := 1; tau <= maxLag; tau++ {
		corr[tau] = cov[tau] * inv
	}

	peaks, maxACF := appendPeaks(a.peaks[:0], corr)
	a.peaks = peaks
	a.res = Result{Correlations: corr, Peaks: peaks, MaxACF: maxACF}
	return &a.res, nil
}

// resize (re)builds the engine when the series length changes, and
// grows the correlation store to cover maxLag. Steady-state calls
// (same n, maxLag within capacity) do nothing.
func (a *Analyzer) resize(n, maxLag int) error {
	if err := a.wk.resize(n); err != nil {
		return err
	}
	if cap(a.corr) < maxLag+1 {
		a.corr = make([]float64, maxLag+1)
	}
	return nil
}

package acf

import "github.com/asap-go/asap/internal/fft"

// wkEngine owns one Wiener–Khinchin round trip: a real FFT plan sized
// for linear (non-circular) autocorrelation of an n-point series, plus
// every scratch buffer the trip needs. It is the machinery shared by
// Analyzer (which runs it per refresh on the demeaned window) and
// Incremental.resync (which runs it on the raw shifted window to
// rebuild the maintained lagged products) — one copy of the plan
// sizing and power-spectrum pipeline, so kernel changes (radix-4,
// split-complex) land in both consumers at once.
type wkEngine struct {
	n    int           // series length the buffers are currently sized for
	m    int           // FFT length, NextPow2(2n)
	plan *fft.RealPlan // real transform of length m
	rbuf []float64     // (shifted) zero-padded input, length m
	spec []complex128  // half spectrum / power spectrum
	cov  []float64     // lagged products by lag, length m
}

// resize (re)builds the plan and scratch when the series length
// changes; steady-length calls do nothing.
func (e *wkEngine) resize(n int) error {
	if n == e.n && e.plan != nil {
		return nil
	}
	m := fft.NextPow2(2 * n)
	if m != e.m || e.plan == nil {
		plan, err := fft.NewRealPlan(m)
		if err != nil {
			return err
		}
		e.plan = plan
		e.m = m
		e.rbuf = make([]float64, m)
		e.spec = make([]complex128, plan.SpectrumLen())
		e.cov = make([]float64, m)
	}
	e.n = n
	return nil
}

// lagProducts computes cov[τ] = Σ_{i} (xs[i]−shift)·(xs[i+τ]−shift)
// for every lag into the engine's cov buffer and returns it (valid
// until the next call). resize(len(xs)) must have succeeded first.
// Zero-padding to m ≥ 2n makes the circular correlation linear.
func (e *wkEngine) lagProducts(xs []float64, shift float64) []float64 {
	for i, x := range xs {
		e.rbuf[i] = x - shift
	}
	for i := len(xs); i < e.m; i++ {
		e.rbuf[i] = 0
	}
	e.plan.Forward(e.spec, e.rbuf)
	for i, c := range e.spec {
		re, im := real(c), imag(c)
		e.spec[i] = complex(re*re+im*im, 0)
	}
	e.plan.Inverse(e.cov, e.spec)
	return e.cov
}

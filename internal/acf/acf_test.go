package acf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sine(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func TestComputeMatchesBruteForce(t *testing.T) {
	for _, n := range []int{10, 64, 100, 257, 1000} {
		xs := sine(n, 16, 0.3, int64(n))
		maxLag := n / 2
		fast, err := Compute(xs, maxLag)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		slow, err := ComputeBruteForce(xs, maxLag)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for tau := 0; tau <= maxLag; tau++ {
			if d := math.Abs(fast.Correlations[tau] - slow.Correlations[tau]); d > 1e-8 {
				t.Errorf("n=%d tau=%d: fft=%v brute=%v (diff %g)",
					n, tau, fast.Correlations[tau], slow.Correlations[tau], d)
			}
		}
	}
}

func TestACFPropertyBounds(t *testing.T) {
	// ACF(0)=1 and |ACF(tau)| <= 1 + tiny numerical slack for all inputs.
	prop := func(seed int64, sz uint8) bool {
		n := int(sz)%400 + 10
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		res, err := Compute(xs, n-1)
		if err != nil {
			return false
		}
		if res.Correlations[0] != 1 {
			return false
		}
		for _, c := range res.Correlations {
			if math.Abs(c) > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicPeakDetection(t *testing.T) {
	// A clean sine of period 50 must produce an ACF peak at (nearly) every
	// multiple of 50.
	xs := sine(1000, 50, 0.05, 42)
	res, err := Compute(xs, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Peaks) == 0 {
		t.Fatal("no peaks found for periodic series")
	}
	foundFundamental := false
	for _, p := range res.Peaks {
		if p%50 <= 2 || 50-p%50 <= 2 {
			foundFundamental = true
		} else {
			t.Errorf("peak at %d not near a multiple of the period 50", p)
		}
	}
	if !foundFundamental {
		t.Errorf("no peak near period 50; peaks=%v", res.Peaks)
	}
	if res.MaxACF < 0.8 {
		t.Errorf("MaxACF = %v, want high correlation for clean sine", res.MaxACF)
	}
}

func TestAperiodicHasFewPeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	res, err := Compute(xs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// White noise ACF hovers near 0; nothing should clear the threshold.
	if len(res.Peaks) != 0 {
		t.Errorf("white noise produced %d peaks: %v", len(res.Peaks), res.Peaks)
	}
	if res.MaxACF != 0 {
		t.Errorf("MaxACF = %v, want 0", res.MaxACF)
	}
}

func TestConstantSeries(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 3.25
	}
	res, err := Compute(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Peaks) != 0 {
		t.Errorf("constant series produced peaks: %v", res.Peaks)
	}
	for tau, c := range res.Correlations {
		if c != 0 {
			t.Errorf("constant series ACF[%d] = %v, want 0", tau, c)
		}
	}
}

func TestErrTooShort(t *testing.T) {
	if _, err := Compute([]float64{1}, 5); err != ErrTooShort {
		t.Errorf("Compute short err = %v, want ErrTooShort", err)
	}
	if _, err := Compute([]float64{1, 2, 3}, 0); err != ErrTooShort {
		t.Errorf("Compute maxLag=0 err = %v, want ErrTooShort", err)
	}
	if _, err := ComputeBruteForce(nil, 3); err != ErrTooShort {
		t.Errorf("brute force short err = %v, want ErrTooShort", err)
	}
}

func TestMaxLagClamped(t *testing.T) {
	xs := sine(50, 10, 0, 1)
	res, err := Compute(xs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Correlations) != 50 {
		t.Errorf("correlations length = %d, want 50 (lags 0..49)", len(res.Correlations))
	}
}

func TestFindPeaksFlatTop(t *testing.T) {
	// Plateau peaks (equal neighbors) must still be detected once.
	corr := []float64{1, 0.1, 0.5, 0.5, 0.1, 0.05}
	peaks, maxACF := FindPeaks(corr)
	if len(peaks) == 0 {
		t.Fatal("flat-top peak not detected")
	}
	if maxACF != 0.5 {
		t.Errorf("maxACF = %v, want 0.5", maxACF)
	}
}

func TestFindPeaksThreshold(t *testing.T) {
	corr := []float64{1, 0.05, 0.15, 0.05, 0.01}
	peaks, _ := FindPeaks(corr)
	if len(peaks) != 0 {
		t.Errorf("sub-threshold bump detected as peak: %v", peaks)
	}
}

func TestAtOutOfRange(t *testing.T) {
	res := &Result{Correlations: []float64{1, 0.5}}
	if res.At(-1) != 0 || res.At(2) != 0 {
		t.Error("At out of range should return 0")
	}
	if res.At(1) != 0.5 {
		t.Errorf("At(1) = %v, want 0.5", res.At(1))
	}
}

func TestEstimateRoughnessIID(t *testing.T) {
	// For IID data ACF ~ 0, so Equation 5 degenerates to Equation 2:
	// roughness = sqrt(2)*sigma/w.
	rng := rand.New(rand.NewSource(17))
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	res, err := Compute(xs, n/2)
	if err != nil {
		t.Fatal(err)
	}
	sigma := 1.0
	for _, w := range []int{2, 5, 10, 50} {
		got := res.EstimateRoughness(sigma, n, w)
		want := math.Sqrt2 * sigma / float64(w)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("w=%d: estimate %v, want about %v", w, got, want)
		}
	}
}

func TestEstimateRoughnessDegenerateWindows(t *testing.T) {
	res := &Result{Correlations: []float64{1, 0.9}}
	if !math.IsInf(res.EstimateRoughness(1, 10, 0), 1) {
		t.Error("w=0 should estimate +Inf")
	}
	if !math.IsInf(res.EstimateRoughness(1, 10, 10), 1) {
		t.Error("w=n should estimate +Inf")
	}
	// Clamp: ACF near 1 can push the radicand negative.
	if got := res.EstimateRoughness(1, 10, 1); got < 0 || math.IsNaN(got) {
		t.Errorf("estimate should clamp to >= 0, got %v", got)
	}
}

func BenchmarkComputeFFT(b *testing.B) {
	xs := sine(100000, 500, 0.2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(xs, len(xs)/2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeBruteForce(b *testing.B) {
	xs := sine(10000, 500, 0.2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeBruteForce(xs, len(xs)/2); err != nil {
			b.Fatal(err)
		}
	}
}

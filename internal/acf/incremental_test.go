package acf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// incRefWindow mirrors the Incremental's sliding window with a plain
// slice so tests can hand the exact same data to Analyzer.
type incRefWindow struct {
	vals []float64
	cap  int
}

func (w *incRefWindow) push(v float64) {
	w.vals = append(w.vals, v)
	if len(w.vals) > w.cap {
		w.vals = w.vals[1:]
	}
}

// maxCorrDiff compares two correlation slices index by index.
func maxCorrDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var worst float64
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// incStreams are the pane streams the differential tests run over:
// periodic with noise, a drifting random walk on a large offset (the
// cancellation-hostile case), and white noise.
func incStreams(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	periodic := make([]float64, n)
	walk := make([]float64, n)
	noise := make([]float64, n)
	level := 1e6 // large absolute level: stresses the shifted origin
	for i := range periodic {
		periodic[i] = math.Sin(2*math.Pi*float64(i)/64) + 0.3*rng.NormFloat64()
		level += 0.5*rng.NormFloat64() + 0.01
		walk[i] = level
		noise[i] = rng.NormFloat64()
	}
	return map[string][]float64{"periodic": periodic, "walk": walk, "noise": noise}
}

// TestIncrementalMatchesAnalyzer is the tentpole differential test: at
// every window state — growing, full, and long after many slides and
// scheduled resyncs — the incremental ACF must stay within 1e-9 of the
// FFT Analyzer on the identical window.
func TestIncrementalMatchesAnalyzer(t *testing.T) {
	const capacity = 256
	const maxLag = 40
	for name, xs := range incStreams(6*capacity, 7) {
		inc, err := NewIncremental(IncrementalConfig{Capacity: capacity, MaxLag: maxLag})
		if err != nil {
			t.Fatal(err)
		}
		an := NewAnalyzer()
		ref := &incRefWindow{cap: capacity}
		for i, v := range xs {
			inc.Push(v)
			ref.push(v)
			if len(ref.vals) < 2 {
				continue
			}
			q := maxLag
			if q > len(ref.vals)-1 {
				q = len(ref.vals) - 1
			}
			got, err := inc.Result(q)
			if err != nil {
				t.Fatalf("%s point %d: %v", name, i, err)
			}
			want, err := an.Compute(ref.vals, q)
			if err != nil {
				t.Fatalf("%s point %d: analyzer: %v", name, i, err)
			}
			if d := maxCorrDiff(got.Correlations, want.Correlations); d > 1e-9 {
				t.Fatalf("%s point %d: corr diff %.3g > 1e-9", name, i, d)
			}
		}
		if st := inc.Stats(); st.ScheduledResyncs == 0 {
			t.Errorf("%s: %d slides produced no scheduled resync", name, st.Slides)
		}
	}
}

// TestIncrementalPeaksMatchAnalyzer checks the part the search actually
// consumes: on a strongly periodic stream the detected peak set and
// MaxACF agree with the Analyzer's.
func TestIncrementalPeaksMatchAnalyzer(t *testing.T) {
	const capacity, maxLag = 512, 80
	xs := incStreams(4*capacity, 11)["periodic"]
	inc, err := NewIncremental(IncrementalConfig{Capacity: capacity, MaxLag: maxLag})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer()
	ref := &incRefWindow{cap: capacity}
	for _, v := range xs {
		inc.Push(v)
		ref.push(v)
	}
	got, err := inc.Result(maxLag)
	if err != nil {
		t.Fatal(err)
	}
	want, err := an.Compute(ref.vals, maxLag)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Peaks) != len(want.Peaks) {
		t.Fatalf("peaks %v != analyzer %v", got.Peaks, want.Peaks)
	}
	for i := range got.Peaks {
		if got.Peaks[i] != want.Peaks[i] {
			t.Fatalf("peaks %v != analyzer %v", got.Peaks, want.Peaks)
		}
	}
	if math.Abs(got.MaxACF-want.MaxACF) > 1e-9 {
		t.Errorf("MaxACF %v != analyzer %v", got.MaxACF, want.MaxACF)
	}
}

// TestIncrementalPropertyRandomStreams is the satellite property test:
// across randomized capacities, lags, resync cadences, and pane
// streams, incremental + periodic resync stays within 1e-9 of Analyzer.
func TestIncrementalPropertyRandomStreams(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 16 + rng.Intn(200)
		maxLag := 1 + rng.Intn(capacity-1)
		cfg := IncrementalConfig{
			Capacity:    capacity,
			MaxLag:      maxLag,
			ResyncEvery: 1 + rng.Intn(3*capacity),
		}
		inc, err := NewIncremental(cfg)
		if err != nil {
			t.Logf("seed %d: config %+v rejected: %v", seed, cfg, err)
			return false
		}
		an := NewAnalyzer()
		ref := &incRefWindow{cap: capacity}
		level := rng.NormFloat64() * 1e5
		n := capacity * (2 + rng.Intn(4))
		for i := 0; i < n; i++ {
			level += rng.NormFloat64()
			v := level + 10*math.Sin(2*math.Pi*float64(i)/float64(8+rng.Intn(64)))
			inc.Push(v)
			ref.push(v)
			if len(ref.vals) < 2 || rng.Intn(7) != 0 {
				continue
			}
			q := 1 + rng.Intn(maxLag)
			if q > len(ref.vals)-1 {
				q = len(ref.vals) - 1
			}
			got, err := inc.Result(q)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			want, err := an.Compute(ref.vals, q)
			if err != nil {
				t.Logf("seed %d: analyzer: %v", seed, err)
				return false
			}
			if d := maxCorrDiff(got.Correlations, want.Correlations); d > 1e-9 {
				t.Logf("seed %d point %d: corr diff %.3g", seed, i, d)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(1)), // deterministic in CI
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalDriftSentinelForcesResync corrupts a maintained lagged
// product directly and checks the rotating sentinel catches it and the
// FFT fallback repairs the estimate.
func TestIncrementalDriftSentinelForcesResync(t *testing.T) {
	const capacity, maxLag = 64, 8
	inc, err := NewIncremental(IncrementalConfig{Capacity: capacity, MaxLag: maxLag, ResyncEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer()
	ref := &incRefWindow{cap: capacity}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2*capacity; i++ {
		v := rng.NormFloat64()
		inc.Push(v)
		ref.push(v)
	}
	// Inject drift far beyond tolerance into every maintained lag.
	for tau := 1; tau <= maxLag; tau++ {
		inc.lagSum[tau] += 1e3
	}
	// One query per lag: the rotating sentinel must hit a corrupted lag
	// on the first pass and trigger the fallback.
	var resynced bool
	for q := 0; q < maxLag; q++ {
		if _, err := inc.Result(maxLag); err != nil {
			t.Fatal(err)
		}
		if inc.Stats().DriftResyncs > 0 {
			resynced = true
			break
		}
	}
	if !resynced {
		t.Fatal("sentinel never caught an injected 1e3 drift")
	}
	got, err := inc.Result(maxLag)
	if err != nil {
		t.Fatal(err)
	}
	want, err := an.Compute(ref.vals, maxLag)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxCorrDiff(got.Correlations, want.Correlations); d > 1e-9 {
		t.Fatalf("post-resync corr diff %.3g > 1e-9", d)
	}
}

// TestIncrementalLevelStepStaysAccurate: a stream whose level steps far
// above the seeded shift origin mid-stream (counter reset, unit change,
// sensor rebase) is the cancellation-hostile case the drift sentinel
// cannot see — it audits the raw sums in the same shifted basis. The
// origin-staleness guard must re-center and keep the estimate accurate
// throughout, including across the mixed-level transition window.
//
// The comparison bound carries a conditioning term on top of the usual
// 1e-9: the Analyzer demeans raw float64 values, so at level D its own
// inputs quantize at ulp(D) — with σ≈1 that alone perturbs its
// correlations by ~1e-8·(D/1e8). The incremental maintainer stores
// origin-shifted values and is immune; the bound charges the reference's
// noise, not the maintainer's.
func TestIncrementalLevelStepStaysAccurate(t *testing.T) {
	const capacity, maxLag = 128, 16
	for _, step := range []float64{1e8, -3e9, 4.2e6} {
		bound := 1e-9 + 1e-15*math.Abs(step)
		inc, err := NewIncremental(IncrementalConfig{Capacity: capacity, MaxLag: maxLag, ResyncEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		an := NewAnalyzer()
		ref := &incRefWindow{cap: capacity}
		rng := rand.New(rand.NewSource(21))
		level := 0.0
		for i := 0; i < 6*capacity; i++ {
			if i == 2*capacity {
				level = step // the rebase
			}
			v := level + math.Sin(2*math.Pi*float64(i)/24) + 0.3*rng.NormFloat64()
			inc.Push(v)
			ref.push(v)
			if len(ref.vals) < 2 {
				continue
			}
			got, err := inc.Result(maxLag)
			if err != nil {
				t.Fatalf("step %g point %d: %v", step, i, err)
			}
			want, err := an.Compute(ref.vals, maxLag)
			if err != nil {
				t.Fatalf("step %g point %d: analyzer: %v", step, i, err)
			}
			if d := maxCorrDiff(got.Correlations, want.Correlations); d > bound {
				t.Fatalf("step %g point %d: corr diff %.3g > %.3g", step, i, d, bound)
			}
		}
		if inc.Stats().OriginResyncs == 0 {
			t.Errorf("step %g: level rebase never triggered an origin resync", step)
		}
	}
}

// TestIncrementalConstantWindow: a constant window has an undefined
// ACF; like Analyzer, the incremental reports all-zero and no peaks.
func TestIncrementalConstantWindow(t *testing.T) {
	inc, err := NewIncremental(IncrementalConfig{Capacity: 16, MaxLag: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		inc.Push(42.0)
	}
	res, err := inc.Result(4)
	if err != nil {
		t.Fatal(err)
	}
	for tau, c := range res.Correlations {
		if c != 0 {
			t.Fatalf("constant window corr[%d] = %v, want 0", tau, c)
		}
	}
	if len(res.Peaks) != 0 {
		t.Fatalf("constant window produced peaks %v", res.Peaks)
	}
}

// TestIncrementalFlatlineDoesNotResyncPerQuery: an idle series stuck at
// one value must not pay a full FFT resync on every Result call — the
// degenerate latch allows at most one unproductive origin resync until
// real variance returns. And when the flatline ends with a level step,
// the guard must wake back up and re-center.
func TestIncrementalFlatlineDoesNotResyncPerQuery(t *testing.T) {
	const capacity, maxLag = 256, 24
	inc, err := NewIncremental(IncrementalConfig{Capacity: capacity, MaxLag: maxLag, ResyncEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*capacity; i++ {
		inc.Push(42.0)
		if i > 0 {
			if _, err := inc.Result(maxLag); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := inc.Stats().OriginResyncs; got > 1 {
		t.Fatalf("flatline caused %d origin resyncs across %d queries, want <= 1", got, 2*capacity-1)
	}

	// The flatline ends: a level step far from the stale origin must
	// re-arm the guard and stay accurate against the Analyzer.
	an := NewAnalyzer()
	ref := &incRefWindow{cap: capacity}
	for i := 0; i < capacity; i++ {
		ref.push(42.0)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 3*capacity; i++ {
		v := 1e7 + math.Sin(float64(i)/9) + 0.3*rng.NormFloat64()
		inc.Push(v)
		ref.push(v)
		got, err := inc.Result(maxLag)
		if err != nil {
			t.Fatal(err)
		}
		want, err := an.Compute(ref.vals, maxLag)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxCorrDiff(got.Correlations, want.Correlations); d > 1e-9+1e-15*1e7 {
			t.Fatalf("post-flatline point %d: corr diff %.3g", i, d)
		}
	}
	if inc.Stats().OriginResyncs < 2 {
		t.Errorf("level step after flatline never re-armed the origin guard (resyncs %d)", inc.Stats().OriginResyncs)
	}
}

// TestIncrementalValidation pins the config contract.
func TestIncrementalValidation(t *testing.T) {
	bad := []IncrementalConfig{
		{Capacity: 3, MaxLag: 1},
		{Capacity: 16, MaxLag: 0},
		{Capacity: 16, MaxLag: 16},
	}
	for _, cfg := range bad {
		if _, err := NewIncremental(cfg); err == nil {
			t.Errorf("config %+v should fail validation", cfg)
		}
	}
}

// TestIncrementalResetReusesCleanly: after Reset the maintainer must
// behave exactly like a fresh one (the operator Restore path).
func TestIncrementalResetReusesCleanly(t *testing.T) {
	const capacity, maxLag = 32, 6
	mk := func() *Incremental {
		inc, err := NewIncremental(IncrementalConfig{Capacity: capacity, MaxLag: maxLag})
		if err != nil {
			t.Fatal(err)
		}
		return inc
	}
	used := mk()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3*capacity; i++ {
		used.Push(rng.NormFloat64() * 100)
	}
	used.Reset()

	fresh := mk()
	rng2 := rand.New(rand.NewSource(10))
	for i := 0; i < 2*capacity; i++ {
		v := rng2.NormFloat64()
		used.Push(v)
		fresh.Push(v)
	}
	a, err := used.Result(maxLag)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Result(maxLag)
	if err != nil {
		t.Fatal(err)
	}
	for tau := range a.Correlations {
		if a.Correlations[tau] != b.Correlations[tau] {
			t.Fatalf("corr[%d]: reset %v != fresh %v", tau, a.Correlations[tau], b.Correlations[tau])
		}
	}
}

// TestIncrementalAllocSteadyState: warm Push+Result must not allocate
// (the refresh hot path — allocations here would undo the pooled-frame
// work downstream).
func TestIncrementalAllocSteadyState(t *testing.T) {
	const capacity, maxLag = 256, 28
	inc, err := NewIncremental(IncrementalConfig{Capacity: capacity, MaxLag: maxLag})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = math.Sin(float64(i)/17) + 0.2*rng.NormFloat64()
	}
	for _, v := range data {
		inc.Push(v)
	}
	if _, err := inc.Result(maxLag); err != nil {
		t.Fatal(err)
	}
	// Force one resync so the FFT plan and buffers exist before counting.
	inc.resync()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		inc.Push(data[i%len(data)])
		i++
		if _, err := inc.Result(maxLag); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("incremental push+result allocated %.2f objects/op, want 0", allocs)
	}
}

// BenchmarkIncrementalACF is the acceptance benchmark: one steady-state
// window update + ACF query at n=4096 for the incremental maintainer
// against the plan-based FFT Analyzer recomputation it replaces. The
// maxLag mirrors what the stream operator requests at this window size
// (10% search bound + 2).
func BenchmarkIncrementalACF(b *testing.B) {
	const n = 4096
	maxLag := n/10 + 2
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 2*n)
	for i := range data {
		data[i] = math.Sin(2*math.Pi*float64(i)/128) + 0.3*rng.NormFloat64()
	}

	b.Run("fft", func(b *testing.B) {
		an := NewAnalyzer()
		window := make([]float64, n)
		copy(window, data[:n])
		if _, err := an.Compute(window, maxLag); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Slide by one pane, then recompute the whole ACF — what the
			// per-refresh Analyzer path costs.
			copy(window, window[1:])
			window[n-1] = data[(n+i)%len(data)]
			if _, err := an.Compute(window, maxLag); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		inc, err := NewIncremental(IncrementalConfig{Capacity: n, MaxLag: maxLag})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range data[:n] {
			inc.Push(v)
		}
		if _, err := inc.Result(maxLag); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inc.Push(data[(n+i)%len(data)])
			if _, err := inc.Result(maxLag); err != nil {
				b.Fatal(err)
			}
		}
	})
}

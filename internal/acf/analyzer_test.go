package acf

import (
	"math"
	"math/bits"
	"math/cmplx"
	"testing"

	"github.com/asap-go/asap/internal/fft"
	"github.com/asap-go/asap/internal/stats"
)

// legacyRadix2 is the pre-plan FFT kernel, kept verbatim: an iterative
// in-place Cooley–Tukey that recomputes each stage's twiddles by repeated
// complex multiplication. It anchors the before/after benchmark and the
// differential test to what the refresh path actually ran before this
// engine existed.
func legacyRadix2(xs []complex128, inverse bool) {
	n := len(xs)
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		if j > i {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := xs[start+k]
				b := xs[start+k+half] * w
				xs[start+k] = a + b
				xs[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// computePrePlan is the refresh path's ACF estimator as it existed before
// the plan/analyzer engine: a full-size complex FFT round trip on the
// legacy iterated-twiddle kernel with three freshly allocated
// NextPow2(2n)-sized complex buffers and separate mean and variance
// passes. It is the differential baseline for correctness and for
// BenchmarkACFPlan's before/after comparison.
func computePrePlan(xs []float64, maxLag int) (*Result, error) {
	n := len(xs)
	if n < 2 || maxLag < 1 {
		return nil, ErrTooShort
	}
	if maxLag > n-1 {
		maxLag = n - 1
	}
	corr := make([]float64, maxLag+1)
	variance := stats.Variance(xs) * float64(n)
	if variance == 0 {
		return &Result{Correlations: corr}, nil
	}
	mean := stats.Mean(xs)
	m := fft.NextPow2(2 * n)
	buf := make([]complex128, m)
	for i, x := range xs {
		buf[i] = complex(x-mean, 0)
	}
	f := make([]complex128, m)
	copy(f, buf)
	legacyRadix2(f, false)
	for i, c := range f {
		re, im := real(c), imag(c)
		f[i] = complex(re*re+im*im, 0)
	}
	inv := make([]complex128, m)
	copy(inv, f)
	legacyRadix2(inv, true)
	scale := 1 / float64(m)
	corr[0] = 1
	for tau := 1; tau <= maxLag; tau++ {
		corr[tau] = real(inv[tau]) * scale / variance
	}
	res := &Result{Correlations: corr}
	res.Peaks, res.MaxACF = FindPeaks(corr)
	return res, nil
}

// TestAnalyzerMatchesCompute pins the reusable analyzer to the one-shot
// Compute bit for bit — they must run the identical code path — across
// repeated calls with changing series lengths.
func TestAnalyzerMatchesCompute(t *testing.T) {
	a := NewAnalyzer()
	for _, n := range []int{10, 64, 100, 257, 100, 1000, 64} {
		xs := sine(n, 16, 0.3, int64(n))
		maxLag := n / 2
		got, err := a.Compute(xs, maxLag)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := Compute(xs, maxLag)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got.Correlations) != len(want.Correlations) {
			t.Fatalf("n=%d: %d correlations, want %d", n, len(got.Correlations), len(want.Correlations))
		}
		for tau := range want.Correlations {
			if got.Correlations[tau] != want.Correlations[tau] {
				t.Fatalf("n=%d tau=%d: analyzer %v != compute %v",
					n, tau, got.Correlations[tau], want.Correlations[tau])
			}
		}
		if len(got.Peaks) != len(want.Peaks) {
			t.Fatalf("n=%d: peaks %v, want %v", n, got.Peaks, want.Peaks)
		}
		for i := range want.Peaks {
			if got.Peaks[i] != want.Peaks[i] {
				t.Fatalf("n=%d: peaks %v, want %v", n, got.Peaks, want.Peaks)
			}
		}
		if got.MaxACF != want.MaxACF {
			t.Fatalf("n=%d: MaxACF %v, want %v", n, got.MaxACF, want.MaxACF)
		}
	}
}

// TestAnalyzerMatchesPrePlan checks the new real-FFT engine against the
// historical full-complex implementation to FFT accuracy.
func TestAnalyzerMatchesPrePlan(t *testing.T) {
	a := NewAnalyzer()
	for _, n := range []int{16, 100, 513, 2048} {
		xs := sine(n, 24, 0.4, int64(n)+5)
		maxLag := n / 2
		got, err := a.Compute(xs, maxLag)
		if err != nil {
			t.Fatal(err)
		}
		want, err := computePrePlan(xs, maxLag)
		if err != nil {
			t.Fatal(err)
		}
		for tau := range want.Correlations {
			if d := math.Abs(got.Correlations[tau] - want.Correlations[tau]); d > 1e-9 {
				t.Errorf("n=%d tau=%d: analyzer %v vs pre-plan %v (diff %g)",
					n, tau, got.Correlations[tau], want.Correlations[tau], d)
			}
		}
	}
}

func TestAnalyzerConstantSeries(t *testing.T) {
	a := NewAnalyzer()
	// Prime the scratch buffers with a non-trivial series first, so the
	// constant-series path must actively clear them.
	if _, err := a.Compute(sine(100, 10, 0.2, 1), 50); err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 3.25
	}
	res, err := a.Compute(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Peaks) != 0 {
		t.Errorf("constant series produced peaks: %v", res.Peaks)
	}
	for tau, c := range res.Correlations {
		if c != 0 {
			t.Errorf("constant series ACF[%d] = %v, want 0", tau, c)
		}
	}
}

func TestAnalyzerErrTooShort(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.Compute([]float64{1}, 5); err != ErrTooShort {
		t.Errorf("short err = %v, want ErrTooShort", err)
	}
	if _, err := a.Compute([]float64{1, 2, 3}, 0); err != ErrTooShort {
		t.Errorf("maxLag=0 err = %v, want ErrTooShort", err)
	}
}

// TestAnalyzerReuseDoesNotAllocate is the analyzer's allocation contract:
// after the first call sizes the buffers, repeated analysis of same-length
// series performs zero heap allocations.
func TestAnalyzerReuseDoesNotAllocate(t *testing.T) {
	a := NewAnalyzer()
	xs := sine(1000, 50, 0.3, 7)
	maxLag := len(xs) / 2
	if _, err := a.Compute(xs, maxLag); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := a.Compute(xs, maxLag); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Analyzer.Compute allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkACFPlan is the before/after record for the refresh engine's
// ACF stage: "preplan" is the historical allocating full-complex path,
// "analyzer" the reusable real-FFT plan path, "oneshot" today's Compute
// (the analyzer engine paying first-use allocation every call).
func BenchmarkACFPlan(b *testing.B) {
	xs := sine(4096, 128, 0.3, 11)
	maxLag := len(xs) / 10
	b.Run("preplan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := computePrePlan(xs, maxLag); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analyzer", func(b *testing.B) {
		a := NewAnalyzer()
		if _, err := a.Compute(xs, maxLag); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Compute(xs, maxLag); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compute(xs, maxLag); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package acf

import (
	"fmt"
	"math"
)

// Incremental defaults for IncrementalConfig fields left zero.
const (
	// DefaultIncrementalTolerance is the relative drift a sentinel check
	// may observe before the maintainer falls back to an exact FFT
	// resync. 1e-12 keeps the reported correlations well inside the 1e-9
	// band the differential tests pin against Analyzer.
	DefaultIncrementalTolerance = 1e-12
	// DefaultResyncFactor sizes the scheduled exact resync: every
	// capacity*DefaultResyncFactor slides when IncrementalConfig.
	// ResyncEvery is zero.
	DefaultResyncFactor = 4
)

// IncrementalConfig configures an Incremental ACF maintainer.
type IncrementalConfig struct {
	// Capacity is the sliding window's size in panes. Required, >= 4.
	Capacity int
	// MaxLag is the highest autocorrelation lag maintained. Required,
	// in [1, Capacity-1].
	MaxLag int
	// Tolerance is the relative drift allowed between the incrementally
	// maintained lagged product and an exactly recomputed one before the
	// maintainer resyncs through the FFT path. Zero means
	// DefaultIncrementalTolerance.
	Tolerance float64
	// ResyncEvery schedules an unconditional exact resync every this
	// many window slides, bounding worst-case drift even when the
	// rotating sentinel misses it. Zero means
	// Capacity*DefaultResyncFactor.
	ResyncEvery int
}

// IncrementalStats counts the maintainer's work and its resyncs, for
// observability and the drift-policy tests.
type IncrementalStats struct {
	Pushes           int64 // panes pushed
	Slides           int64 // pushes that evicted the oldest pane
	ScheduledResyncs int64 // exact resyncs on the ResyncEvery schedule
	DriftResyncs     int64 // exact resyncs forced by the drift sentinel
	OriginResyncs    int64 // exact resyncs forced by a stale shift origin
}

// originStaleRatio bounds how far the window mean may wander from the
// shift origin, measured against the window's own variance: a resync
// (which re-centers the origin) fires once mean² > ratio·(M2/n), i.e.
// |mean| beyond ~32 standard deviations. Past that point two error
// terms grow with mean²: the cancellation in the analytic demeaning
// (M2 = Σx'² − n·mean², and the covariance recovery subtracts
// O(n·mean²) terms to recover O(n·σ²) results), and the benign
// per-push rounding of the maintained sums (~eps·n·mean²), which must
// stay comfortably below the drift sentinel's tolerance·M2 budget or
// every query would resync. At ratio 1e3 both sit near 1e-13·M2 — an
// order of magnitude inside the 1e-12 default tolerance and four
// orders inside the documented 1e-9 agreement with Analyzer. Level
// steps (counter resets, unit changes, sensor rebases) are the trigger
// in practice.
const originStaleRatio = 1e3

// Incremental maintains the autocorrelation of a sliding pane window
// with O(MaxLag) work per arriving pane instead of the O(n log n) FFT
// recomputation Analyzer performs per refresh (the Gokcesu & Gokcesu
// style auto-regressive recurrence the ROADMAP names).
//
// It keeps, over the current window x_0..x_{n-1} (stored relative to a
// shifted origin to kill catastrophic cancellation):
//
//   - the pane moments: total = Σ x_i and sumsq = Σ x_i²,
//   - the raw lagged products S(τ) = Σ_{i=0..n-1-τ} x_i·x_{i+τ} for
//     τ = 1..MaxLag.
//
// A pane arrival updates every S(τ) with the rank-1 contribution of the
// new pane (and, once the window is full, removes the expiring pane's):
//
//	S(τ) += x_{n-τ}·x_new − x_0·x_τ
//
// Result then recovers the demeaned autocovariance analytically,
//
//	cov(τ) = S(τ) − mean·(2·total − head(τ) − tail(τ)) + (n−τ)·mean²
//
// where head/tail are the τ-element prefix and suffix sums, and
// normalizes by M2 = sumsq − n·mean² — algebraically identical to the
// estimator Analyzer computes through the Wiener–Khinchin round trip,
// so the two agree to floating-point rounding.
//
// Floating error accumulates in the running sums, so the maintainer
// resyncs exactly through the plan-based FFT path (the same RealPlan
// machinery Analyzer uses) in two cases: on a fixed slide schedule
// (ResyncEvery), and whenever a rotating per-query sentinel — one lag's
// S(τ) recomputed exactly per Result call — drifts beyond Tolerance.
//
// An Incremental is not safe for concurrent use; like Analyzer it is
// designed to be owned by a single stream operator. The Result it
// returns is overwritten by the next Result call.
type Incremental struct {
	cfg IncrementalConfig

	// ring holds the window values minus shift, chronologically from
	// head. shift is re-centered to the window mean at every resync so
	// the maintained sums stay near zero regardless of the stream's
	// absolute level.
	ring  []float64
	head  int
	count int
	shift float64

	total  float64   // Σ shifted values
	sumsq  float64   // Σ shifted values²
	lagSum []float64 // lagSum[τ] = S(τ) for τ in 1..MaxLag (index 0 unused)

	slidesSinceResync int
	sentinel          int  // rotating lag verified exactly per Result call
	dirty             bool // panes arrived since the last exact resync
	degenerate        bool // last origin resync still left M2 <= 0 (flatline)
	stats             IncrementalStats

	// Exact-resync engine: a real FFT of the raw (shifted, not demeaned)
	// window recovers every S(τ) in one O(n log n) pass — the same
	// Wiener–Khinchin machinery Analyzer runs per refresh.
	wk wkEngine

	// Result backing stores, reused across calls like Analyzer's. lin
	// is the window linearized chronologically (two copies, no modulo)
	// for the sentinel dot product and the prefix/suffix sums.
	lin   []float64
	corr  []float64
	peaks []int
	res   Result

	seeded bool // shift initialized from the first pane
}

// NewIncremental validates cfg and returns an empty maintainer.
func NewIncremental(cfg IncrementalConfig) (*Incremental, error) {
	if cfg.Capacity < 4 {
		return nil, fmt.Errorf("acf: incremental capacity %d (need >= 4)", cfg.Capacity)
	}
	if cfg.MaxLag < 1 || cfg.MaxLag >= cfg.Capacity {
		return nil, fmt.Errorf("acf: incremental max lag %d for capacity %d", cfg.MaxLag, cfg.Capacity)
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = DefaultIncrementalTolerance
	}
	if cfg.ResyncEvery <= 0 {
		cfg.ResyncEvery = cfg.Capacity * DefaultResyncFactor
	}
	return &Incremental{
		cfg:    cfg,
		ring:   make([]float64, cfg.Capacity),
		lagSum: make([]float64, cfg.MaxLag+1),
		lin:    make([]float64, cfg.Capacity),
		corr:   make([]float64, cfg.MaxLag+1),
	}, nil
}

// Reset empties the maintainer (keeping its buffers) so it can track a
// rebuilt window — the stream operator's Restore path.
func (inc *Incremental) Reset() {
	inc.head, inc.count = 0, 0
	inc.shift, inc.total, inc.sumsq = 0, 0, 0
	for i := range inc.lagSum {
		inc.lagSum[i] = 0
	}
	inc.slidesSinceResync = 0
	inc.sentinel = 0
	inc.dirty = false
	inc.degenerate = false
	inc.seeded = false
	inc.stats = IncrementalStats{}
}

// Len returns how many panes the window currently holds.
func (inc *Incremental) Len() int { return inc.count }

// Stats returns a copy of the maintainer's work counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// at returns the i-th chronological window value (shifted).
func (inc *Incremental) at(i int) float64 {
	return inc.ring[(inc.head+i)%len(inc.ring)]
}

// Push feeds one aggregated pane, evicting the oldest once the window
// is full. O(MaxLag).
func (inc *Incremental) Push(v float64) {
	inc.stats.Pushes++
	if !inc.seeded {
		// Center the origin on the first pane so a stream riding a large
		// offset (CPU temperatures, request totals) keeps the running
		// sums small from the start.
		inc.shift = v
		inc.seeded = true
	}
	sv := v - inc.shift
	maxLag := inc.cfg.MaxLag
	size := len(inc.ring)

	if inc.count == size {
		// Expire x_0: remove its pairs (x_0, x_τ) from every lagged sum
		// and its contribution to the moments.
		old := inc.at(0)
		for tau := 1; tau <= maxLag && tau < inc.count; tau++ {
			inc.lagSum[tau] -= old * inc.at(tau)
		}
		inc.total -= old
		inc.sumsq -= old * old
		inc.head = (inc.head + 1) % size
		inc.count--
		inc.stats.Slides++
		inc.slidesSinceResync++
	}

	// Append: the new pane pairs with the τ-th newest existing value.
	for tau := 1; tau <= maxLag && tau <= inc.count; tau++ {
		inc.lagSum[tau] += inc.at(inc.count-tau) * sv
	}
	inc.ring[(inc.head+inc.count)%size] = sv
	inc.count++
	inc.total += sv
	inc.sumsq += sv * sv
	inc.dirty = true

	if inc.slidesSinceResync >= inc.cfg.ResyncEvery {
		inc.resync()
		inc.stats.ScheduledResyncs++
	}
}

// linearize copies the window into inc.lin in chronological order (at
// most two straight copies, never a per-element modulo) and returns it.
func (inc *Incremental) linearize() []float64 {
	w := inc.lin[:inc.count]
	tail := len(inc.ring) - inc.head
	if inc.count <= tail {
		copy(w, inc.ring[inc.head:inc.head+inc.count])
	} else {
		n := copy(w, inc.ring[inc.head:])
		copy(w[n:], inc.ring[:inc.count-n])
	}
	return w
}

// exactLag recomputes S(τ) over the linearized window by direct
// summation — the drift sentinel's ground truth. O(n).
func exactLag(w []float64, tau int) float64 {
	var sum float64
	for i := 0; i+tau < len(w); i++ {
		sum += w[i] * w[i+tau]
	}
	return sum
}

// Result computes the ACF for lags 1..maxLag (clamped to both the
// configured MaxLag and count-1), detecting peaks exactly as Analyzer
// does. The returned Result is valid until the next call.
func (inc *Incremental) Result(maxLag int) (*Result, error) {
	n := inc.count
	if n < 2 || maxLag < 1 {
		return nil, ErrTooShort
	}
	if maxLag > inc.cfg.MaxLag {
		maxLag = inc.cfg.MaxLag
	}
	if maxLag > n-1 {
		maxLag = n - 1
	}

	w := inc.linearize()
	mean := inc.total / float64(n)
	m2 := inc.sumsq - float64(n)*mean*mean

	// Origin-staleness guard: when the stream's level has stepped far
	// from the shift origin (or cancellation already drove M2 to zero on
	// a non-recentered window), the analytic demeaning below would lose
	// precision catastrophically. Resync — it re-centers the origin on
	// the current mean — and recompute the moments from the fresh basis.
	// The degenerate latch breaks the retry loop a flatlined stream
	// would otherwise cause: once a resync fails to produce a positive
	// M2 the window is genuinely (or numerically) constant, and
	// re-centering again cannot help, so the guard stands down until a
	// query sees real variance again — without it, every refresh of an
	// idle series would pay a full FFT.
	if m2 > 0 {
		inc.degenerate = false
	}
	if inc.dirty && !inc.degenerate && (m2 <= 0 || mean*mean*float64(n) > originStaleRatio*m2) {
		inc.resync()
		inc.stats.OriginResyncs++
		w = inc.linearize()
		mean = inc.total / float64(n)
		m2 = inc.sumsq - float64(n)*mean*mean
		inc.degenerate = m2 <= 0
	}

	// Drift sentinel: verify one maintained lag exactly per query,
	// rotating through 1..maxLag so every lag is audited once per maxLag
	// queries. Drift matters relative to M2 — the denominator every
	// correlation is divided by — so that is the comparison scale (NOT
	// sumsq, which the allowed origin offset can inflate by orders of
	// magnitude over the variance, silently loosening the audit).
	if inc.dirty {
		inc.sentinel++
		if inc.sentinel > maxLag {
			inc.sentinel = 1
		}
		exact := exactLag(w, inc.sentinel)
		scale := m2
		if scale < 1 {
			scale = 1
		}
		if math.Abs(exact-inc.lagSum[inc.sentinel]) > inc.cfg.Tolerance*scale {
			inc.resync()
			inc.stats.DriftResyncs++
			w = inc.linearize() // resync re-centered the stored values
			mean = inc.total / float64(n)
			m2 = inc.sumsq - float64(n)*mean*mean
		}
	}

	corr := inc.corr[:maxLag+1]
	if m2 <= 0 {
		// Genuinely constant (or numerically constant even at a fresh
		// origin) window: undefined ACF, reported as all-zero with no
		// peaks, matching Analyzer.
		for i := range corr {
			corr[i] = 0
		}
		inc.res = Result{Correlations: corr}
		return &inc.res, nil
	}

	corr[0] = 1
	inv := 1 / m2
	var headSum, tailSum float64
	for tau := 1; tau <= maxLag; tau++ {
		headSum += w[tau-1]
		tailSum += w[n-tau]
		cov := inc.lagSum[tau] - mean*(2*inc.total-headSum-tailSum) + float64(n-tau)*mean*mean
		corr[tau] = cov * inv
	}

	peaks, maxACF := appendPeaks(inc.peaks[:0], corr)
	inc.peaks = peaks
	inc.res = Result{Correlations: corr, Peaks: peaks, MaxACF: maxACF}
	return &inc.res, nil
}

// resync recomputes every maintained sum exactly: the origin is
// re-centered on the current window mean, the moments are resummed, and
// the raw lagged products are rebuilt through the plan-based real FFT
// (|FFT(x)|² of the raw shifted window is exactly the full set of S(τ)
// — no demeaning, the analytic query handles the mean). This is the
// same fallback path a cold start would take, so drift can never
// outlive one resync.
func (inc *Incremental) resync() {
	n := inc.count
	if n == 0 {
		inc.slidesSinceResync = 0
		return
	}

	// Re-center: new stored values are x_i - mean(x), pulling the origin
	// back onto the window so the sums stay cancellation-free.
	mean := inc.total / float64(n)
	for i := 0; i < n; i++ {
		inc.ring[(inc.head+i)%len(inc.ring)] -= mean
	}
	inc.shift += mean

	if err := inc.wk.resize(n); err != nil {
		// NextPow2 output is always a valid plan size; unreachable, but
		// never panic in a hot path.
		return
	}
	w := inc.linearize()
	var total, sumsq float64
	for _, v := range w {
		total += v
		sumsq += v * v
	}
	inc.total, inc.sumsq = total, sumsq

	cov := inc.wk.lagProducts(w, 0)
	for tau := 1; tau <= inc.cfg.MaxLag; tau++ {
		if tau < n {
			inc.lagSum[tau] = cov[tau]
		} else {
			inc.lagSum[tau] = 0
		}
	}
	inc.slidesSinceResync = 0
	inc.dirty = false
}

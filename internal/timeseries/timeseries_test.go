package timeseries

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2014, 10, 1, 0, 0, 0, 0, time.UTC)

func TestTimeDerivation(t *testing.T) {
	s := New("taxi", t0, 30*time.Minute, []float64{1, 2, 3, 4})
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.TimeAt(2); !got.Equal(t0.Add(time.Hour)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
	if got := s.End(); !got.Equal(t0.Add(90 * time.Minute)) {
		t.Errorf("End = %v", got)
	}
	if got := s.Duration(); got != 90*time.Minute {
		t.Errorf("Duration = %v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	s := New("empty", t0, time.Second, nil)
	if !s.End().Equal(t0) {
		t.Errorf("End of empty = %v, want start", s.End())
	}
	if s.Duration() != 0 {
		t.Errorf("Duration of empty = %v", s.Duration())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("empty series should validate: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New("a", t0, time.Second, []float64{1, 2, 3})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] == 99 {
		t.Error("Clone shares values")
	}
	if c.Name != s.Name || !c.Start.Equal(s.Start) || c.Interval != s.Interval {
		t.Error("Clone lost metadata")
	}
}

func TestSlice(t *testing.T) {
	s := New("a", t0, time.Minute, []float64{0, 1, 2, 3, 4, 5})
	sub, err := s.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Values[0] != 2 {
		t.Errorf("Slice values = %v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(2 * time.Minute)) {
		t.Errorf("Slice start = %v", sub.Start)
	}
	for _, bad := range [][2]int{{-1, 3}, {0, 7}, {4, 2}} {
		if _, err := s.Slice(bad[0], bad[1]); err == nil {
			t.Errorf("Slice%v should error", bad)
		}
	}
}

func TestWindow(t *testing.T) {
	s := New("a", t0, time.Minute, []float64{0, 1, 2, 3, 4, 5})
	w := s.Window(2)
	if w.Len() != 2 || w.Values[0] != 4 {
		t.Errorf("Window(2) = %v", w.Values)
	}
	all := s.Window(100)
	if all.Len() != 6 {
		t.Errorf("Window larger than series should return everything, got %d", all.Len())
	}
}

func TestZScored(t *testing.T) {
	s := New("a", t0, time.Minute, []float64{2, 4, 6, 8})
	z := s.ZScored()
	sum := 0.0
	for _, v := range z.Values {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("z-scored mean = %v", sum/4)
	}
	if s.Values[0] != 2 {
		t.Error("ZScored mutated original")
	}
}

func TestWithValues(t *testing.T) {
	s := New("raw", t0, time.Minute, []float64{1, 2, 3, 4})
	sm := s.WithValues("smoothed", []float64{1.5, 2.5})
	if sm.Name != "smoothed" || sm.Len() != 2 {
		t.Errorf("WithValues = %+v", sm)
	}
	if !sm.Start.Equal(s.Start) || sm.Interval != s.Interval {
		t.Error("WithValues lost timing metadata")
	}
}

func TestValidate(t *testing.T) {
	var nilSeries *Series
	if err := nilSeries.Validate(); err == nil {
		t.Error("nil series should fail validation")
	}
	bad := New("nan", t0, time.Second, []float64{1, math.NaN()})
	if err := bad.Validate(); err == nil {
		t.Error("NaN should fail validation")
	}
	inf := New("inf", t0, time.Second, []float64{math.Inf(1)})
	if err := inf.Validate(); err == nil {
		t.Error("Inf should fail validation")
	}
	neg := &Series{Interval: -time.Second}
	if err := neg.Validate(); err == nil {
		t.Error("negative interval should fail validation")
	}
	ok := New("ok", t0, time.Second, []float64{1, 2})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid series failed validation: %v", err)
	}
}

func TestSummary(t *testing.T) {
	s := New("a", t0, time.Second, []float64{2, 4, 4, 4, 5, 5, 7, 9})
	st := s.Summary()
	if st.N != 8 {
		t.Errorf("N = %d", st.N)
	}
	if math.Abs(st.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v", st.Mean)
	}
	if math.Abs(st.StdDev-2) > 1e-12 {
		t.Errorf("StdDev = %v", st.StdDev)
	}
	if st.Roughness <= 0 {
		t.Errorf("Roughness = %v, want > 0", st.Roughness)
	}
}

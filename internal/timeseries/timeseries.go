// Package timeseries defines the regularly-sampled series type shared by
// every layer of the library: datasets produce Series, ASAP transforms
// them, renderers and plotters consume them.
//
// ASAP operates on a single, temporally ordered stream (Section 2 of the
// paper), so Series models exactly that: a start instant, a fixed sampling
// interval, and the sample values. Timestamps are derived, never stored
// per-point, which keeps million-point series compact.
package timeseries

import (
	"errors"
	"fmt"
	"time"

	"github.com/asap-go/asap/internal/stats"
)

// Series is a regularly sampled, temporally ordered sequence of values.
type Series struct {
	// Name identifies the series (dataset name, metric name).
	Name string
	// Start is the timestamp of Values[0].
	Start time.Time
	// Interval is the spacing between consecutive samples. It must be
	// positive for time-derived operations; a zero Interval is permitted
	// for index-only use.
	Interval time.Duration
	// Values are the samples.
	Values []float64
}

// New returns a Series with the given name, start, interval and values.
func New(name string, start time.Time, interval time.Duration, values []float64) *Series {
	return &Series{Name: name, Start: start, Interval: interval, Values: values}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// End returns the timestamp of the last sample, or Start for an empty
// series.
func (s *Series) End() time.Time {
	if len(s.Values) == 0 {
		return s.Start
	}
	return s.TimeAt(len(s.Values) - 1)
}

// Duration returns the time spanned from the first to the last sample.
func (s *Series) Duration() time.Duration {
	if len(s.Values) < 2 {
		return 0
	}
	return time.Duration(len(s.Values)-1) * s.Interval
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	vals := make([]float64, len(s.Values))
	copy(vals, s.Values)
	return &Series{Name: s.Name, Start: s.Start, Interval: s.Interval, Values: vals}
}

// Slice returns a view of samples [i, j) as a new Series with adjusted
// start time. The underlying values are shared, matching Go slice
// semantics; use Clone for an independent copy.
func (s *Series) Slice(i, j int) (*Series, error) {
	if i < 0 || j > len(s.Values) || i > j {
		return nil, fmt.Errorf("timeseries: slice [%d:%d) out of range for %d samples", i, j, len(s.Values))
	}
	return &Series{
		Name:     s.Name,
		Start:    s.TimeAt(i),
		Interval: s.Interval,
		Values:   s.Values[i:j],
	}, nil
}

// Window returns the trailing window of at most n samples — the "last N
// points" visualization target ASAP smooths in streaming mode.
func (s *Series) Window(n int) *Series {
	if n >= len(s.Values) {
		out, _ := s.Slice(0, len(s.Values))
		return out
	}
	out, _ := s.Slice(len(s.Values)-n, len(s.Values))
	return out
}

// ZScored returns a copy of the series normalized to zero mean and unit
// standard deviation, the presentation form used throughout the paper's
// plots (Section 1, footnote 1).
func (s *Series) ZScored() *Series {
	return &Series{
		Name:     s.Name,
		Start:    s.Start,
		Interval: s.Interval,
		Values:   stats.ZScores(s.Values),
	}
}

// WithValues returns a series with the same identity and timing metadata
// but different values, e.g. a smoothed transform of s. When the new
// values are shorter than the original, the start and interval are kept:
// the transform semantics (a sliding window average) align the i-th output
// with the i-th input window.
func (s *Series) WithValues(name string, values []float64) *Series {
	return &Series{Name: name, Start: s.Start, Interval: s.Interval, Values: values}
}

// Validate reports structural problems: nil receiver, negative interval,
// or non-finite values.
func (s *Series) Validate() error {
	if s == nil {
		return errors.New("timeseries: nil series")
	}
	if s.Interval < 0 {
		return fmt.Errorf("timeseries: negative interval %v", s.Interval)
	}
	for i, v := range s.Values {
		if v != v { // NaN
			return fmt.Errorf("timeseries: NaN at index %d", i)
		}
		if v > maxFinite || v < -maxFinite {
			return fmt.Errorf("timeseries: non-finite value at index %d", i)
		}
	}
	return nil
}

const maxFinite = 1.7976931348623157e308

// Stats bundles the summary statistics used across the evaluation.
type Stats struct {
	N         int
	Mean      float64
	StdDev    float64
	Kurtosis  float64
	Roughness float64
}

// Summary computes the series' summary statistics in a single pass per
// statistic.
func (s *Series) Summary() Stats {
	m := stats.ComputeMoments(s.Values)
	return Stats{
		N:         m.N,
		Mean:      m.Mean,
		StdDev:    m.StdDev(),
		Kurtosis:  m.Kurtosis(),
		Roughness: stats.Roughness(s.Values),
	}
}

// Package faultfs wraps a vfs.FS with deterministic, scripted I/O
// faults so the failure paths of the write-ahead log can be tested
// instead of imagined: an fsync that fails on exactly the Nth call, a
// short (torn) write, ENOSPC on segment creation, or injected per-op
// latency. Every fault that fires is counted, so tests assert exactly
// what was exercised rather than hoping the right syscall failed.
//
// Faults are matched by operation and an optional path substring, and
// fire either on the Nth matching call (one-shot) or on every matching
// call while armed (optionally bounded by Count). Clear disarms all
// faults — the "operator fixed the disk" moment in a recovery test.
package faultfs

import (
	"errors"
	"io/fs"
	"strings"
	"sync"
	"time"

	"github.com/asap-go/asap/internal/vfs"
)

// ErrInjected is the default error returned by a fault with no Err of
// its own. Injected faults are never wrapped: what the code under test
// sees is exactly what the script configured.
var ErrInjected = errors.New("faultfs: injected I/O error")

// Op names one filesystem operation class a Fault can target.
type Op string

const (
	OpOpen     Op = "open"     // FS.OpenFile
	OpRead     Op = "read"     // FS.ReadFile
	OpWrite    Op = "write"    // File.Write
	OpSync     Op = "sync"     // File.Sync
	OpClose    Op = "close"    // File.Close
	OpRemove   Op = "remove"   // FS.Remove
	OpRename   Op = "rename"   // FS.Rename
	OpTruncate Op = "truncate" // FS.Truncate
)

// Fault is one scripted fault.
type Fault struct {
	// Op selects the operation class the fault applies to.
	Op Op
	// Path, when non-empty, restricts the fault to calls whose path
	// contains it as a substring (for Rename, either path).
	Path string
	// Nth fires the fault on exactly the Nth matching call (1-based)
	// and never again. Zero means every matching call fires, subject
	// to Count.
	Nth int
	// Count bounds how many times an Nth==0 fault fires; zero means
	// unlimited (until Clear).
	Count int
	// Err is the error to inject. Nil means ErrInjected — unless the
	// fault is latency-only (Latency set, ShortWrite zero), which
	// delays without failing.
	Err error
	// ShortWrite, for OpWrite, writes only this many bytes through to
	// the underlying file before returning the error — a torn write.
	ShortWrite int
	// Latency delays the matching call before anything else happens.
	Latency time.Duration
}

// latencyOnly reports whether the fault injects delay but no error.
func (f Fault) latencyOnly() bool {
	return f.Err == nil && f.Latency > 0 && f.ShortWrite == 0
}

type armed struct {
	Fault
	seen int // matching calls observed
	hits int // times fired
}

// FS wraps an inner vfs.FS with scripted faults. Safe for concurrent
// use; the zero value is not usable — construct with New.
type FS struct {
	inner vfs.FS

	mu     sync.Mutex
	faults []*armed
	calls  map[Op]int
	fired  map[Op]int
}

// New wraps inner (nil means the real filesystem) with an injector
// holding no faults; until Inject is called it is transparent.
func New(inner vfs.FS) *FS {
	if inner == nil {
		inner = vfs.OS
	}
	return &FS{inner: inner, calls: make(map[Op]int), fired: make(map[Op]int)}
}

// Inject arms one fault. Multiple armed faults are evaluated in
// injection order; the first that fires with an error wins, while
// latency from every firing fault accumulates.
func (f *FS) Inject(ft Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, &armed{Fault: ft})
}

// Clear disarms every fault. Counters are preserved.
func (f *FS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
}

// Calls reports how many op calls have been observed (faulted or not).
func (f *FS) Calls(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// Fired reports how many faults have fired for op.
func (f *FS) Fired(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired[op]
}

// outcome is the combined result of evaluating all armed faults
// against one call.
type outcome struct {
	err     error
	short   int
	latency time.Duration
}

func (f *FS) eval(op Op, path string) outcome {
	f.mu.Lock()
	f.calls[op]++
	var o outcome
	for _, a := range f.faults {
		if a.Op != op {
			continue
		}
		if a.Path != "" && !strings.Contains(path, a.Path) {
			continue
		}
		a.seen++
		if a.Nth > 0 {
			if a.seen != a.Nth {
				continue
			}
		} else if a.Count > 0 && a.hits >= a.Count {
			continue
		}
		a.hits++
		f.fired[op]++
		o.latency += a.Latency
		if a.latencyOnly() {
			continue
		}
		if o.err == nil {
			o.err = a.Err
			if o.err == nil {
				o.err = ErrInjected
			}
			o.short = a.ShortWrite
		}
	}
	f.mu.Unlock()
	if o.latency > 0 {
		time.Sleep(o.latency)
	}
	return o
}

func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	if o := f.eval(OpOpen, name); o.err != nil {
		return nil, o.err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{inner: inner, fs: f, path: name}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if o := f.eval(OpRead, name); o.err != nil {
		return nil, o.err
	}
	return f.inner.ReadFile(name)
}

func (f *FS) Remove(name string) error {
	if o := f.eval(OpRemove, name); o.err != nil {
		return o.err
	}
	return f.inner.Remove(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if o := f.eval(OpRename, oldpath+"\x00"+newpath); o.err != nil {
		return o.err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Truncate(name string, size int64) error {
	if o := f.eval(OpTruncate, name); o.err != nil {
		return o.err
	}
	return f.inner.Truncate(name, size)
}

// file wraps one open file with the injector's write/sync/close faults.
type file struct {
	inner vfs.File
	fs    *FS
	path  string
}

func (w *file) Write(p []byte) (int, error) {
	o := w.fs.eval(OpWrite, w.path)
	if o.err != nil {
		if o.short > 0 && o.short < len(p) {
			n, err := w.inner.Write(p[:o.short])
			if err != nil {
				return n, err
			}
			return n, o.err // torn: a prefix landed, then the device failed
		}
		return 0, o.err
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	if o := w.fs.eval(OpSync, w.path); o.err != nil {
		return o.err
	}
	return w.inner.Sync()
}

func (w *file) Close() error {
	if o := w.fs.eval(OpClose, w.path); o.err != nil {
		return o.err
	}
	return w.inner.Close()
}

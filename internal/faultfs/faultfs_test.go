package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/asap-go/asap/internal/vfs"
)

func openRW(t *testing.T, fs *FS, path string) vfs.File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestNthSyncFails: a one-shot fault fires on exactly the Nth matching
// call, and the call before and after pass through.
func TestNthSyncFails(t *testing.T) {
	ffs := New(nil)
	ffs.Inject(Fault{Op: OpSync, Nth: 2})
	f := openRW(t, ffs, filepath.Join(t.TempDir(), "f"))
	defer f.Close()

	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
	if got := ffs.Fired(OpSync); got != 1 {
		t.Errorf("Fired(sync) = %d, want 1", got)
	}
	if got := ffs.Calls(OpSync); got != 3 {
		t.Errorf("Calls(sync) = %d, want 3", got)
	}
}

// TestShortWrite: a torn write lands exactly ShortWrite bytes and
// reports the injected error; the file holds only the prefix.
func TestShortWrite(t *testing.T) {
	ffs := New(nil)
	ffs.Inject(Fault{Op: OpWrite, Nth: 1, ShortWrite: 3})
	path := filepath.Join(t.TempDir(), "torn")
	f := openRW(t, ffs, path)

	n, err := f.Write([]byte("hello world"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (3, ErrInjected)", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hel" {
		t.Fatalf("file holds %q, want the 3-byte torn prefix", data)
	}
}

// TestPathFilterAndCustomError: faults match by substring and surface
// the scripted error verbatim (here ENOSPC on segment creation).
func TestPathFilterAndCustomError(t *testing.T) {
	ffs := New(nil)
	ffs.Inject(Fault{Op: OpOpen, Path: "seg-", Err: syscall.ENOSPC})
	dir := t.TempDir()

	if _, err := ffs.OpenFile(filepath.Join(dir, "seg-001.wal"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("segment open = %v, want ENOSPC", err)
	}
	f, err := ffs.OpenFile(filepath.Join(dir, "snap-001.snap"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("non-matching open: %v", err)
	}
	f.Close()
	if got := ffs.Fired(OpOpen); got != 1 {
		t.Errorf("Fired(open) = %d, want 1", got)
	}
}

// TestClearHeals: after Clear, previously-armed every-call faults stop
// firing and counters survive.
func TestClearHeals(t *testing.T) {
	ffs := New(nil)
	ffs.Inject(Fault{Op: OpSync})
	f := openRW(t, ffs, filepath.Join(t.TempDir(), "f"))
	defer f.Close()

	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed sync %d = %v", i, err)
		}
	}
	ffs.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("post-Clear sync: %v", err)
	}
	if got := ffs.Fired(OpSync); got != 3 {
		t.Errorf("Fired(sync) = %d after Clear, want 3 preserved", got)
	}
}

// TestCountBound: an every-call fault with Count fires at most Count
// times.
func TestCountBound(t *testing.T) {
	ffs := New(nil)
	ffs.Inject(Fault{Op: OpRemove, Count: 2})
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		if err := ffs.Remove(filepath.Join(dir, "x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("remove %d = %v, want injected", i, err)
		}
	}
	err := ffs.Remove(filepath.Join(dir, "x"))
	if errors.Is(err, ErrInjected) {
		t.Fatalf("remove 3 still injected after Count=2")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("remove 3 = %v, want the real ENOENT", err)
	}
}

// TestTruncateFault covers the op used by degraded-shard reopen.
func TestTruncateFault(t *testing.T) {
	ffs := New(nil)
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, ffs, path)
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ffs.Inject(Fault{Op: OpTruncate, Nth: 1})
	if err := ffs.Truncate(path, 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("truncate 1 = %v, want injected", err)
	}
	if err := ffs.Truncate(path, 2); err != nil {
		t.Fatalf("truncate 2: %v", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "ab" {
		t.Fatalf("file = %q after truncate", data)
	}
}

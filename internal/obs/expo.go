package obs

// Prometheus text exposition (format version 0.0.4): one HELP/TYPE
// pair per family, samples beneath, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// expositionContentType is the Content-Type of the 0.0.4 text format.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// openMetricsContentType is the Content-Type of the OpenMetrics text
// format, served when the scraper negotiates for it.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WritePrometheus renders every registered metric in text exposition
// format, families sorted by name, series in registration order.
// Collectors run first (once), then every value function is read under
// the registry lock — value functions must not re-enter the registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders the same catalog in a pragmatic subset of
// the OpenMetrics text format: identical family names and TYPE lines,
// histogram bucket samples carrying `# {trace_id="..."} value ts`
// exemplars when one was recorded, and the mandatory `# EOF`
// terminator. (Full OpenMetrics would rename counter samples to a
// _total suffix; our counters already follow that convention, so the
// output is scrapeable by Prometheus in either mode.)
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.write(w, true)
}

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.collectors {
		fn()
	}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, s, openMetrics)
				continue
			}
			bw.WriteString(f.name + s.labels + " " + formatValue(s.value()) + "\n")
		}
	}
	if openMetrics {
		bw.WriteString("# EOF\n")
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into its exposition
// lines. Bucket cumulative counts come from a single snapshot read, so
// they are monotone by construction even under concurrent observers.
func writeHistogram(bw *bufio.Writer, name string, s series, openMetrics bool) {
	cum, total, sum := s.hist.snapshot()
	for i, ub := range s.hist.upper {
		bw.WriteString(name + "_bucket" + withLabel(s.labels, `le="`+formatValue(ub)+`"`) +
			" " + strconv.FormatInt(cum[i], 10))
		if openMetrics {
			writeExemplar(bw, s.hist, i)
		}
		bw.WriteString("\n")
	}
	bw.WriteString(name + "_bucket" + withLabel(s.labels, `le="+Inf"`) +
		" " + strconv.FormatInt(total, 10))
	if openMetrics {
		writeExemplar(bw, s.hist, len(s.hist.upper))
	}
	bw.WriteString("\n")
	bw.WriteString(name + "_sum" + s.labels + " " + formatValue(sum) + "\n")
	bw.WriteString(name + "_count" + s.labels + " " + strconv.FormatInt(total, 10) + "\n")
}

// writeExemplar appends the bucket's exemplar suffix, if one was
// recorded: ` # {trace_id="..."} value timestamp` (OpenMetrics
// timestamps are seconds).
func writeExemplar(bw *bufio.Writer, h *Histogram, bucket int) {
	e := h.ex[bucket].Load()
	if e == nil {
		return
	}
	bw.WriteString(` # {trace_id="` + escapeLabelValue(e.traceID) + `"} ` +
		formatValue(e.value) + " " +
		strconv.FormatFloat(float64(e.at.UnixNano())/1e9, 'f', 3, 64))
}

// withLabel merges one extra rendered label pair into a pre-rendered
// constant label block.
func withLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the exposition format (backslash
// and newline only; quotes are legal in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns the GET /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		if acceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", expositionContentType)
		_ = r.WritePrometheus(w)
	})
}

// acceptsOpenMetrics is the content negotiation for /metrics: the
// OpenMetrics exposition (with exemplars) is opt-in via the Accept
// header, so default scrapes keep the 0.0.4 text format byte-for-byte.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

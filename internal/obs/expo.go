package obs

// Prometheus text exposition (format version 0.0.4): one HELP/TYPE
// pair per family, samples beneath, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// expositionContentType is the Content-Type of the 0.0.4 text format.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in text exposition
// format, families sorted by name, series in registration order.
// Collectors run first (once), then every value function is read under
// the registry lock — value functions must not re-enter the registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.collectors {
		fn()
	}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			bw.WriteString(f.name + s.labels + " " + formatValue(s.value()) + "\n")
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into its exposition
// lines. Bucket cumulative counts come from a single snapshot read, so
// they are monotone by construction even under concurrent observers.
func writeHistogram(bw *bufio.Writer, name string, s series) {
	cum, total, sum := s.hist.snapshot()
	for i, ub := range s.hist.upper {
		bw.WriteString(name + "_bucket" + withLabel(s.labels, `le="`+formatValue(ub)+`"`) +
			" " + strconv.FormatInt(cum[i], 10) + "\n")
	}
	bw.WriteString(name + "_bucket" + withLabel(s.labels, `le="+Inf"`) +
		" " + strconv.FormatInt(total, 10) + "\n")
	bw.WriteString(name + "_sum" + s.labels + " " + formatValue(sum) + "\n")
	bw.WriteString(name + "_count" + s.labels + " " + strconv.FormatInt(total, 10) + "\n")
}

// withLabel merges one extra rendered label pair into a pre-rendered
// constant label block.
func withLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the exposition format (backslash
// and newline only; quotes are legal in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns the GET /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", expositionContentType)
		_ = r.WritePrometheus(w)
	})
}

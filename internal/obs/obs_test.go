package obs

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Opts{Name: "test_total", Help: "h"})
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge(Opts{Name: "test_gauge"})
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Opts{Name: "test_seconds"}, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4 (NaN dropped)", got)
	}
	if got := h.Sum(); math.Abs(got-5.555) > 1e-9 {
		t.Fatalf("sum = %v, want 5.555", got)
	}
	cum, total, _ := h.snapshot()
	want := []int64{1, 2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter(Opts{Name: "bad-name"}) }},
		{"invalid label", func(r *Registry) {
			r.Counter(Opts{Name: "ok_total", Labels: []Label{{Key: "bad-key", Value: "v"}}})
		}},
		{"duplicate series", func(r *Registry) {
			r.Counter(Opts{Name: "dup_total"})
			r.Counter(Opts{Name: "dup_total"})
		}},
		{"kind mismatch", func(r *Registry) {
			r.Counter(Opts{Name: "kind_total"})
			r.Gauge(Opts{Name: "kind_total"})
		}},
		{"empty buckets", func(r *Registry) { r.Histogram(Opts{Name: "h_seconds"}, nil) }},
		{"descending buckets", func(r *Registry) { r.Histogram(Opts{Name: "h_seconds"}, []float64{1, 0.5}) }},
		{"non-finite bucket", func(r *Registry) { r.Histogram(Opts{Name: "h_seconds"}, []float64{1, math.Inf(1)}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestSameFamilyDistinctLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(Opts{Name: "reqs_total", Labels: []Label{{Key: "route", Value: "/a"}}})
	b := r.Counter(Opts{Name: "reqs_total", Labels: []Label{{Key: "route", Value: "/b"}}})
	a.Inc()
	b.Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE reqs_total counter") != 1 {
		t.Fatalf("want exactly one TYPE line, got:\n%s", out)
	}
	if !strings.Contains(out, `reqs_total{route="/a"} 1`) || !strings.Contains(out, `reqs_total{route="/b"} 2`) {
		t.Fatalf("missing series:\n%s", out)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Opts{Name: "rt_requests_total", Help: "requests", Labels: []Label{{Key: "code", Value: "200"}}})
	c.Add(7)
	g := r.Gauge(Opts{Name: "rt_in_flight", Help: "in flight"})
	g.Set(3)
	h := r.Histogram(Opts{Name: "rt_latency_seconds", Help: "latency"}, []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	r.GaugeFunc(Opts{Name: "rt_func_gauge"}, func() float64 { return 42 })
	collected := false
	r.AddCollector(func() { collected = true })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !collected {
		t.Fatal("collector did not run")
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, buf.String())
	}
	if f := fams["rt_requests_total"]; f == nil || f.Type != "counter" || f.Help != "requests" {
		t.Fatalf("bad counter family: %+v", f)
	} else if f.Samples[0].Value != 7 || f.Samples[0].Labels["code"] != "200" {
		t.Fatalf("bad counter sample: %+v", f.Samples[0])
	}
	if f := fams["rt_func_gauge"]; f == nil || f.Samples[0].Value != 42 {
		t.Fatalf("bad func gauge: %+v", f)
	}
	f := fams["rt_latency_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("bad histogram family: %+v", f)
	}
	var infBucket, count float64
	for _, s := range f.Samples {
		if s.Labels["le"] == "+Inf" {
			infBucket = s.Value
		}
		if s.Name == "rt_latency_seconds_count" {
			count = s.Value
		}
	}
	if infBucket != 3 || count != 3 {
		t.Fatalf("+Inf bucket %v, count %v, want 3", infBucket, count)
	}
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	nasty := "a\\b\"c\nd"
	c := r.Counter(Opts{Name: "esc_total", Help: "line1\nline2", Labels: []Label{{Key: "series", Value: nasty}}})
	c.Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	got := fams["esc_total"].Samples[0].Labels["series"]
	if got != nasty {
		t.Fatalf("label round-trip = %q, want %q", got, nasty)
	}
	if fams["esc_total"].Help != `line1\nline2` {
		t.Fatalf("help not escaped: %q", fams["esc_total"].Help)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"untyped sample", "foo_total 1\n"},
		{"bad type", "# TYPE x gaugee\nx 1\n"},
		{"type after samples", "# TYPE x gauge\nx 1\n# TYPE x gauge\n"},
		{"bad value", "# TYPE x gauge\nx one\n"},
		{"unterminated label", "# TYPE x gauge\nx{a=\"b 1\n"},
		{"bad escape", "# TYPE x gauge\nx{a=\"\\q\"} 1\n"},
		{"duplicate label", "# TYPE x gauge\nx{a=\"1\",a=\"2\"} 1\n"},
		{"non-monotone buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\nh_count 3\n"},
		{"missing +Inf", "# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n" + "h_sum 1\nh_count 5\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\nh_count 4\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseExposition(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("expected error for:\n%s", tc.doc)
			}
		})
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "x_total"}).Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != expositionContentType {
		t.Fatalf("content-type = %q", ct)
	}
	if _, err := ParseExposition(resp.Body); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Opts{Name: "alloc_total"})
	g := r.Gauge(Opts{Name: "alloc_gauge"})
	h := r.Histogram(Opts{Name: "alloc_seconds"}, ExpBuckets(0.0001, 4, 12))
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.002)
		h.ObserveDuration(3 * time.Millisecond)
		nilH.Observe(1)
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger("json", "warn", &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("info line leaked past warn level: %s", out)
	}
	if !strings.Contains(out, `"msg":"kept"`) || !strings.Contains(out, `"k":"v"`) {
		t.Fatalf("json output malformed: %s", out)
	}
	if _, err := NewLogger("xml", "", &buf); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if _, err := NewLogger("", "loud", &buf); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("request IDs must be unique: %q", a)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context should have no ID, got %q", got)
	}
}

func TestPrintfAdapter(t *testing.T) {
	var buf bytes.Buffer
	l, _ := NewLogger("text", "info", &buf)
	logf := Printf(l, 0, "wal") // slog.LevelInfo == 0
	logf("segment %d rotated", 7)
	out := buf.String()
	if !strings.Contains(out, "segment 7 rotated") || !strings.Contains(out, "subsystem=wal") {
		t.Fatalf("adapter output: %s", out)
	}
	Printf(nil, 0, "x")("must not panic")
}

package trace

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// Traceparent is a parsed W3C trace-context header
// (https://www.w3.org/TR/trace-context/):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^version  ^trace-id (32 hex)        ^parent-id (16)  ^flags
type Traceparent struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// ErrTraceparent is the sentinel wrapped by every parse failure.
var ErrTraceparent = errors.New("malformed traceparent")

// String renders the header value (always version 00).
func (tp Traceparent) String() string {
	return formatTraceparent(tp.TraceID, tp.SpanID, tp.Sampled)
}

func formatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, tid[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sid[:])
	if sampled {
		buf = append(buf, "-01"...)
	} else {
		buf = append(buf, "-00"...)
	}
	return string(buf)
}

// Parse validates and decodes a traceparent header. Per the W3C rules:
// the version must be two lowercase hex digits and not "ff"; version 00
// admits exactly the 55-byte four-field form; higher versions are
// accepted if their first four fields match the 00 layout and more data
// follows a dash (forward compatibility). All-zero trace or parent ids
// are invalid. Only the sampled bit of the flags is interpreted.
func Parse(s string) (Traceparent, error) {
	var tp Traceparent
	if len(s) < 55 {
		return tp, fmt.Errorf("%w: too short (%d bytes)", ErrTraceparent, len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tp, fmt.Errorf("%w: bad field separators", ErrTraceparent)
	}
	if !isHexLower(s[0:2]) {
		return tp, fmt.Errorf("%w: bad version", ErrTraceparent)
	}
	if s[0:2] == "ff" {
		return tp, fmt.Errorf("%w: version ff is forbidden", ErrTraceparent)
	}
	if len(s) > 55 {
		if s[0:2] == "00" {
			return tp, fmt.Errorf("%w: version 00 must be exactly 55 bytes", ErrTraceparent)
		}
		if s[55] != '-' {
			return tp, fmt.Errorf("%w: trailing data without separator", ErrTraceparent)
		}
	}
	if !isHexLower(s[3:35]) || !isHexLower(s[36:52]) || !isHexLower(s[53:55]) {
		return tp, fmt.Errorf("%w: non-hex field", ErrTraceparent)
	}
	if _, err := hex.Decode(tp.TraceID[:], []byte(s[3:35])); err != nil {
		return tp, fmt.Errorf("%w: trace-id: %v", ErrTraceparent, err)
	}
	if _, err := hex.Decode(tp.SpanID[:], []byte(s[36:52])); err != nil {
		return tp, fmt.Errorf("%w: parent-id: %v", ErrTraceparent, err)
	}
	if tp.TraceID.IsZero() {
		return tp, fmt.Errorf("%w: all-zero trace-id", ErrTraceparent)
	}
	if tp.SpanID.IsZero() {
		return tp, fmt.Errorf("%w: all-zero parent-id", ErrTraceparent)
	}
	flags := hexNibble(s[53])<<4 | hexNibble(s[54])
	tp.Sampled = flags&0x01 != 0
	return tp, nil
}

// hexNibble decodes one pre-validated lowercase hex digit.
func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// isHexLower reports whether s is entirely lowercase hex digits — the
// W3C header is case-sensitive (uppercase hex is invalid).
func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

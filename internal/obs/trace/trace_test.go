package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tp := Traceparent{
		TraceID: TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36},
		SpanID:  SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7},
		Sampled: true,
	}
	s := tp.String()
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != tp {
		t.Fatalf("round trip: %+v != %+v", got, tp)
	}

	tp.Sampled = false
	got, err = Parse(tp.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled {
		t.Fatal("unsampled flag did not round-trip")
	}
}

func TestTraceparentParseRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",   // short flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-012", // version 00 must be exactly 55 bytes
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
		"01-4bf92f3577b34da6a3ce929d0e0e473600f067aa0ba902b7-01x",  // future version without separator at 55
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", s)
		}
	}
	// A future version with extra trailing fields after byte 55 parses.
	if _, err := Parse("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestStartRequestJoinsSampledTraceparent(t *testing.T) {
	tr0 := New(Config{})
	inbound := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx, tr := tr0.StartRequest(context.Background(), "/ingest", inbound)
	if tr == nil {
		t.Fatal("sampled traceparent did not join")
	}
	if tr.ID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("joined trace id = %s", tr.ID())
	}
	if !tr.remote || tr.parent.String() != "00f067aa0ba902b7" {
		t.Fatalf("remote parent not recorded: remote=%v parent=%s", tr.remote, tr.parent)
	}
	if IDFromContext(ctx) != tr.ID() {
		t.Fatal("context does not carry the joined trace")
	}

	// An unsampled inbound traceparent suppresses recording entirely.
	if _, got := tr0.StartRequest(context.Background(), "/ingest",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); got != nil {
		t.Fatal("unsampled traceparent recorded a trace")
	}
	// A malformed one falls through to the head sampler (record all here).
	if _, got := tr0.StartRequest(context.Background(), "/ingest", "garbage"); got == nil {
		t.Fatal("malformed traceparent suppressed the head sampler")
	}
}

func TestHeadSampling(t *testing.T) {
	tr0 := New(Config{HeadEvery: -1})
	if _, tr := tr0.StartRequest(context.Background(), "/x", ""); tr != nil {
		t.Fatal("negative HeadEvery recorded an unjoined request")
	}
	if _, tr := tr0.StartRequest(context.Background(), "/x",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); tr == nil {
		t.Fatal("negative HeadEvery must still join sampled traceparents")
	}

	tr3 := New(Config{HeadEvery: 3})
	recorded := 0
	for i := 0; i < 9; i++ {
		if _, tr := tr3.StartRequest(context.Background(), "/x", ""); tr != nil {
			recorded++
		}
	}
	if recorded != 3 {
		t.Fatalf("HeadEvery=3 recorded %d of 9", recorded)
	}
}

func TestTailRetention(t *testing.T) {
	tr0 := New(Config{Slow: 50 * time.Millisecond, ReservoirEvery: -1})

	// Errored: always kept, regardless of latency.
	_, tr := tr0.StartTrace(context.Background(), "op")
	tr.Root().SetError("boom")
	if v := tr0.Finish(tr); v != VerdictError {
		t.Fatalf("errored trace verdict %s", v)
	}
	if tr0.Store().Get(tr.ID()) == nil {
		t.Fatal("errored trace not in store")
	}

	// Fast and clean: dropped (reservoir disabled).
	_, tr = tr0.StartTrace(context.Background(), "op")
	if v := tr0.Finish(tr); v != VerdictDropped {
		t.Fatalf("fast trace verdict %s", v)
	}
	if tr0.Store().Get(tr.ID()) != nil {
		t.Fatal("dropped trace still in store")
	}

	// Slow: kept. Backdate the root instead of sleeping.
	_, tr = tr0.StartTrace(context.Background(), "op")
	tr.start = tr.start.Add(-time.Second)
	tr.Root().startNS = 0
	if v := tr0.Finish(tr); v != VerdictSlow {
		t.Fatalf("slow trace verdict %s", v)
	}

	// Per-route override: the same latency under a neverSlow route drops.
	trR := New(Config{Slow: 50 * time.Millisecond, ReservoirEvery: -1,
		SlowRoute: map[string]time.Duration{"op": time.Hour}})
	_, tr = trR.StartTrace(context.Background(), "op")
	tr.start = tr.start.Add(-time.Second)
	tr.Root().startNS = 0
	if v := trR.Finish(tr); v != VerdictDropped {
		t.Fatalf("neverSlow route verdict %s", v)
	}

	c := tr0.Counters()
	if c.KeptError != 1 || c.KeptSlow != 1 || c.Dropped != 1 || c.TracesSampled != 3 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestReservoirKeepsBaseline(t *testing.T) {
	tr0 := New(Config{ReservoirEvery: 4})
	kept := 0
	for i := 0; i < 8; i++ {
		_, tr := tr0.StartTrace(context.Background(), "op")
		if tr0.Finish(tr) == VerdictReservoir {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("reservoir kept %d of 8 (every 4)", kept)
	}
}

func TestStoreRingAndFilters(t *testing.T) {
	tr0 := New(Config{Capacity: 4, Slow: time.Nanosecond}) // everything kept as slow
	for i := 0; i < 6; i++ {
		route := "/a"
		if i%2 == 1 {
			route = "/b"
		}
		_, tr := tr0.StartTrace(context.Background(), route)
		if route == "/b" {
			tr.Root().SetError("x")
		}
		tr0.Finish(tr)
	}
	if n := tr0.Store().Len(); n != 4 {
		t.Fatalf("ring holds %d, want capacity 4", n)
	}
	all := tr0.Store().List(Filter{})
	if len(all) != 4 {
		t.Fatalf("List returned %d", len(all))
	}
	// Newest first.
	if !all[0].Start.After(all[3].Start) && !all[0].Start.Equal(all[3].Start) {
		t.Fatal("List not newest-first")
	}
	if got := tr0.Store().List(Filter{Route: "/a"}); len(got) != 2 {
		t.Fatalf("route filter returned %d", len(got))
	}
	errs := tr0.Store().List(Filter{ErrorsOnly: true})
	if len(errs) != 2 {
		t.Fatalf("errors filter returned %d", len(errs))
	}
	for _, s := range errs {
		if s.Route != "/b" || !s.Error {
			t.Fatalf("errors filter leaked %+v", s)
		}
	}
	if got := tr0.Store().List(Filter{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit filter returned %d", len(got))
	}
	if got := tr0.Store().List(Filter{MinDur: time.Hour}); len(got) != 0 {
		t.Fatalf("min-duration filter returned %d", len(got))
	}
}

func TestSpanTreeExport(t *testing.T) {
	tr0 := New(Config{Slow: time.Nanosecond})
	ctx, tr := tr0.StartTrace(context.Background(), "/ingest")
	ctx2, parse := StartSpan(ctx, "parse")
	parse.SetInt("points", 42)
	parse.End()
	_, push := StartSpan(ctx2, "hub.push")
	fsync := push.Child("wal.fsync")
	fsync.SetBool("leader", true)
	fsync.End()
	push.End()
	tr0.Finish(tr)

	ex := tr0.Store().Get(tr.ID()).Export()
	if len(ex.Spans) != 1 {
		t.Fatalf("want 1 root, got %d", len(ex.Spans))
	}
	root := ex.Spans[0]
	if root.Name != "/ingest" || len(root.Children) != 1 {
		t.Fatalf("root %q has %d children", root.Name, len(root.Children))
	}
	p := root.Children[0]
	if p.Name != "parse" || p.Attrs["points"] != int64(42) {
		t.Fatalf("parse node: %+v", p)
	}
	// hub.push was opened off parse's derived context, so it nests there.
	if len(p.Children) != 1 || p.Children[0].Name != "hub.push" {
		t.Fatalf("parse children: %+v", p.Children)
	}
	hp := p.Children[0]
	if len(hp.Children) != 1 || hp.Children[0].Name != "wal.fsync" {
		t.Fatalf("hub.push children: %+v", hp.Children)
	}
	if hp.Children[0].Attrs["leader"] != true {
		t.Fatalf("fsync attrs: %+v", hp.Children[0].Attrs)
	}
	for _, n := range []*SpanNode{root, p, hp, hp.Children[0]} {
		if n.DurationNS <= 0 {
			t.Fatalf("span %s has zero duration", n.Name)
		}
	}
	if !strings.Contains(ex.Waterfall, "wal.fsync") || !strings.Contains(ex.Waterfall, "leader=true") {
		t.Fatalf("waterfall missing spans:\n%s", ex.Waterfall)
	}
	bd := tr.Breakdown()
	for _, name := range []string{"parse=", "hub.push=", "wal.fsync="} {
		if !strings.Contains(bd, name) {
			t.Fatalf("breakdown %q missing %s", bd, name)
		}
	}
}

func TestSpanCapDropsNotGrows(t *testing.T) {
	tr0 := New(Config{MaxSpans: 4, Slow: time.Nanosecond})
	ctx, tr := tr0.StartTrace(context.Background(), "op")
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End() // nil-safe past the cap
	}
	tr0.Finish(tr)
	ex := tr.Export()
	if ex.DroppedSpans != 7 { // 10 children + root - 4 cap
		t.Fatalf("dropped %d spans, want 7", ex.DroppedSpans)
	}
}

// TestTraceUnsampledAllocs pins the contract the hot paths rely on:
// starting (and not getting) a span on a context with no recorded
// trace costs zero allocations, as do all span methods on nil.
// Matched by make alloc-check (-run 'Alloc').
func TestTraceUnsampledAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := StartSpan(ctx, "wal.append")
		sp.SetInt("points", 1)
		sp.SetError("")
		sp.End()
		_ = ctx2
		if c := sp.Child("x"); c != nil {
			t.Fatal("nil span produced a child")
		}
		if Outbound(ctx) != "" {
			t.Fatal("outbound traceparent without a trace")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled span path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkTraceHotPath measures the unsampled StartSpan lookup the
// instrumented hot paths (WAL append, hub push) pay when tracing is
// off or the request was not sampled.
func BenchmarkTraceHotPath(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "wal.append")
		sp.SetInt("points", 1)
		sp.End()
	}
}

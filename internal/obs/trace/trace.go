// Package trace is the zero-dependency distributed-tracing layer
// behind asap-server: allocation-conscious spans threaded through
// context.Context, W3C traceparent propagation across the replication
// hop, and a fixed-size ring store with tail-based retention (slow,
// errored, or reservoir-sampled traces survive; uniform noise does
// not).
//
// The design constraints mirror internal/obs: the unsampled hot path —
// StartSpan on a context carrying no recorded trace — performs zero
// allocations and every span method is nil-receiver safe, so the WAL
// append path, the hub refresh, and the broadcast fan-out can be
// instrumented unconditionally. Recording is a head decision made once
// per request (honoring an inbound traceparent's sampled flag);
// retention is a tail decision made once per completed trace, so the
// ring holds the interesting latencies rather than a uniform sample.
//
// A span belongs to the goroutine that started it: Set* and End must
// not race from other goroutines. Adding spans to one trace from
// several goroutines is safe (the trace serializes its span list).
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config fields left zero.
const (
	DefaultCapacity       = 256
	DefaultMaxSpans       = 256
	DefaultSlow           = 250 * time.Millisecond
	DefaultReservoirEvery = 16
)

// maxAttrs bounds the key/value attributes one span can carry; setters
// beyond it overwrite by key or are dropped silently.
const maxAttrs = 8

// TraceID is the W3C 16-byte trace id.
type TraceID [16]byte

// SpanID is the W3C 8-byte span (parent) id.
type SpanID [8]byte

// IsZero reports whether the id is all-zero (invalid per W3C).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is all-zero (invalid per W3C).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the 32-hex-digit form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the 16-hex-digit form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// Process-unique id generation: a random seed XOR a counter, so ids
// are unique without a syscall per span. The seed comes from
// crypto/rand once at startup.
var (
	idSeedHi, idSeedLo, spanSeed uint64
	idCounter                    atomic.Uint64
)

func init() {
	var b [24]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Fall back to the clock: uniqueness within the process still
		// holds via the counter.
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
	}
	idSeedHi = binary.BigEndian.Uint64(b[0:8])
	idSeedLo = binary.BigEndian.Uint64(b[8:16])
	spanSeed = binary.BigEndian.Uint64(b[16:24])
	if idSeedHi == 0 {
		idSeedHi = 1 // keep generated trace ids non-zero by construction
	}
	if spanSeed == 0 {
		spanSeed = 1
	}
}

func newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[0:8], idSeedHi)
	binary.BigEndian.PutUint64(id[8:16], idSeedLo^idCounter.Add(1))
	return id
}

func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], spanSeed^idCounter.Add(1))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// attrKind tags which Attr field holds the value.
type attrKind uint8

const (
	attrNone attrKind = iota
	attrStr
	attrInt
	attrFloat
	attrBool
)

// Attr is one bounded key/value span attribute.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// Value returns the attribute's value as an interface, for export.
func (a Attr) Value() interface{} {
	switch a.kind {
	case attrStr:
		return a.s
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.i != 0
	default:
		return nil
	}
}

// Span is one timed operation inside a trace: child-linked via the
// parent index, with a monotonic start offset and duration relative to
// the trace's start. All methods are nil-receiver safe, so unsampled
// callers pay one branch.
type Span struct {
	tr      *Trace
	id      SpanID
	idx     int32
	parent  int32 // index into tr.spans; -1 for the root
	name    string
	startNS int64 // monotonic offset from tr.start
	durNS   int64 // 0 while open; End makes it >= 1
	err     bool
	attrs   [maxAttrs]Attr
	nattr   int
}

// End closes the span. Durations are clamped to >= 1ns so a finished
// span is distinguishable from an open one and never reads as "took no
// time". Idempotent: the first End wins.
func (sp *Span) End() {
	if sp == nil || sp.durNS != 0 {
		return
	}
	d := int64(time.Since(sp.tr.start)) - sp.startNS
	if d <= 0 {
		d = 1
	}
	sp.durNS = d
}

// setAttr overwrites an existing key or appends when there is room.
func (sp *Span) setAttr(a Attr) {
	if sp == nil {
		return
	}
	for i := 0; i < sp.nattr; i++ {
		if sp.attrs[i].Key == a.Key {
			sp.attrs[i] = a
			return
		}
	}
	if sp.nattr < maxAttrs {
		sp.attrs[sp.nattr] = a
		sp.nattr++
	}
}

// SetStr attaches a string attribute.
func (sp *Span) SetStr(key, v string) { sp.setAttr(Attr{Key: key, kind: attrStr, s: v}) }

// SetInt attaches an integer attribute.
func (sp *Span) SetInt(key string, v int64) { sp.setAttr(Attr{Key: key, kind: attrInt, i: v}) }

// SetFloat attaches a float attribute.
func (sp *Span) SetFloat(key string, v float64) { sp.setAttr(Attr{Key: key, kind: attrFloat, f: v}) }

// SetBool attaches a boolean attribute.
func (sp *Span) SetBool(key string, v bool) {
	var i int64
	if v {
		i = 1
	}
	sp.setAttr(Attr{Key: key, kind: attrBool, i: i})
}

// SetError flags the span (and therefore the trace) as errored; a
// non-empty message lands in the "error" attribute. Errored traces are
// always retained by the tail sampler.
func (sp *Span) SetError(msg string) {
	if sp == nil {
		return
	}
	sp.err = true
	if msg != "" {
		sp.SetStr("error", msg)
	}
}

// TraceID returns the owning trace's hex id ("" on nil) — the exemplar
// label value.
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.tr.idHex
}

// Trace is one recorded request (or background operation): a trace id
// plus the spans accumulated under it. Created by Tracer.StartRequest
// or StartTrace, completed by Tracer.Finish.
type Trace struct {
	tracer *Tracer
	id     TraceID
	idHex  string // cached: exemplars and log lines read it repeatedly
	route  string
	start  time.Time // wall clock; carries the monotonic reading
	remote bool      // joined from an inbound traceparent
	parent SpanID    // remote parent span id (zero when locally rooted)

	mu      sync.Mutex
	spans   []*Span
	dropped int // spans dropped by the per-trace cap

	keep Verdict // set by Finish
}

// ID returns the trace's hex id.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.idHex
}

// Route returns the route (or operation name) the trace was rooted
// under.
func (tr *Trace) Route() string {
	if tr == nil {
		return ""
	}
	return tr.route
}

// Root returns the root span (nil on nil trace).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.spans[0]
}

// Duration returns the root span's duration (zero while open).
func (tr *Trace) Duration() time.Duration {
	if tr == nil {
		return 0
	}
	return time.Duration(tr.spans[0].durNS)
}

// Traceparent renders the header value downstream hops (and response
// echoes) carry: the trace id plus the ROOT span as parent, sampled.
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	return formatTraceparent(tr.id, tr.spans[0].id, true)
}

// startSpan appends a child span (nil parent = root). Returns nil when
// the per-trace span cap is hit — callers get a no-op span rather than
// unbounded growth on pathological traces.
func (tr *Trace) startSpan(name string, parent *Span, start time.Time) *Span {
	startNS := int64(start.Sub(tr.start))
	tr.tracer.spansStarted.Add(1)
	sp := &Span{tr: tr, id: newSpanID(), parent: -1, name: name, startNS: startNS}
	if parent != nil {
		sp.parent = parent.idx
	}
	tr.mu.Lock()
	if len(tr.spans) >= tr.tracer.cfg.MaxSpans {
		tr.dropped++
		tr.mu.Unlock()
		return nil
	}
	sp.idx = int32(len(tr.spans))
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// anyError reports whether any span flagged an error.
func (tr *Trace) anyError() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, sp := range tr.spans {
		if sp.err {
			return true
		}
	}
	return false
}

// Verdict is the tail-sampling decision for a completed trace.
type Verdict uint8

const (
	// VerdictDropped: completed unremarkably and not reservoir-picked.
	VerdictDropped Verdict = iota
	// VerdictSlow: root latency at or over the route's threshold.
	VerdictSlow
	// VerdictError: some span flagged an error.
	VerdictError
	// VerdictReservoir: kept as the periodic sample of normal traffic.
	VerdictReservoir
)

func (v Verdict) String() string {
	switch v {
	case VerdictSlow:
		return "slow"
	case VerdictError:
		return "error"
	case VerdictReservoir:
		return "reservoir"
	default:
		return "dropped"
	}
}

// Config configures a Tracer.
type Config struct {
	// Capacity is the ring store size in retained traces (default 256).
	Capacity int
	// MaxSpans caps spans per trace (default 256); extra spans are
	// counted and dropped.
	MaxSpans int
	// Slow is the default per-route slow threshold: a completed root at
	// or over it is always retained (default 250ms).
	Slow time.Duration
	// SlowRoute overrides Slow per route — streaming routes whose
	// connection lifetime is intentionally long set effectively-infinite
	// thresholds here.
	SlowRoute map[string]time.Duration
	// HeadEvery records 1 in N requests that arrive without an inbound
	// sampled traceparent. 0 means 1 (record all); negative disables
	// head sampling entirely (only joined traces record).
	HeadEvery int64
	// ReservoirEvery retains 1 in N completed traces that were neither
	// slow nor errored, so the store always holds a baseline of normal
	// traffic. 0 means DefaultReservoirEvery; negative disables.
	ReservoirEvery int64
}

// Tracer owns the sampling decisions, the counters, and the ring
// store. A nil Tracer is valid and records nothing.
type Tracer struct {
	cfg   Config
	store *Store

	headN atomic.Int64
	resN  atomic.Int64

	spansStarted  atomic.Int64
	tracesSampled atomic.Int64
	keptSlow      atomic.Int64
	keptError     atomic.Int64
	keptReservoir atomic.Int64
	dropped       atomic.Int64
}

// New builds a Tracer, applying defaults to zero Config fields.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	if cfg.Slow <= 0 {
		cfg.Slow = DefaultSlow
	}
	if cfg.HeadEvery == 0 {
		cfg.HeadEvery = 1
	}
	if cfg.ReservoirEvery == 0 {
		cfg.ReservoirEvery = DefaultReservoirEvery
	}
	return &Tracer{cfg: cfg, store: newStore(cfg.Capacity)}
}

// Store returns the ring of retained traces (nil on a nil Tracer).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// SlowThreshold returns the route's slow threshold.
func (t *Tracer) SlowThreshold(route string) time.Duration {
	if t == nil {
		return 0
	}
	if d, ok := t.cfg.SlowRoute[route]; ok {
		return d
	}
	return t.cfg.Slow
}

// StartRequest roots a trace for an inbound request. An inbound
// traceparent is honored both ways: a valid sampled one joins its
// trace id (the cross-process hop), a valid unsampled one suppresses
// recording, and an absent or malformed one falls back to the head
// sampler. Returns the derived context and the trace, or (ctx, nil)
// unchanged — the allocation-free path — when the request is not
// recorded.
func (t *Tracer) StartRequest(ctx context.Context, route, traceparent string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	var tid TraceID
	var parent SpanID
	remote := false
	if traceparent != "" {
		if tp, err := Parse(traceparent); err == nil {
			if !tp.Sampled {
				return ctx, nil
			}
			tid, parent, remote = tp.TraceID, tp.SpanID, true
		}
	}
	if !remote {
		he := t.cfg.HeadEvery
		if he < 0 {
			return ctx, nil
		}
		if he > 1 && t.headN.Add(1)%he != 1 {
			return ctx, nil
		}
		tid = newTraceID()
	}
	return t.root(ctx, route, tid, parent, remote)
}

// StartTrace roots a trace for a background operation (e.g. the
// follower's replication poll) — the head sampler applies, there is no
// inbound traceparent.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	if he := t.cfg.HeadEvery; he < 0 || (he > 1 && t.headN.Add(1)%he != 1) {
		return ctx, nil
	}
	return t.root(ctx, name, newTraceID(), SpanID{}, false)
}

func (t *Tracer) root(ctx context.Context, route string, tid TraceID, parent SpanID, remote bool) (context.Context, *Trace) {
	now := time.Now()
	tr := &Trace{
		tracer: t, id: tid, idHex: tid.String(), route: route,
		start: now, remote: remote, parent: parent,
	}
	t.tracesSampled.Add(1)
	root := tr.startSpan(route, nil, now)
	return withSpan(ctx, tr, root), tr
}

// Finish ends the root span (if still open) and makes the tail
// decision: retain the trace when it was slow, errored, or picked by
// the reservoir; otherwise drop it. Safe on nil tracer/trace.
func (t *Tracer) Finish(tr *Trace) Verdict {
	if t == nil || tr == nil {
		return VerdictDropped
	}
	root := tr.Root()
	root.End()
	verdict := VerdictDropped
	switch {
	case tr.anyError():
		verdict = VerdictError
	case time.Duration(root.durNS) >= t.SlowThreshold(tr.route):
		verdict = VerdictSlow
	default:
		if n := t.cfg.ReservoirEvery; n > 0 && t.resN.Add(1)%n == 1 {
			verdict = VerdictReservoir
		}
	}
	tr.keep = verdict
	switch verdict {
	case VerdictSlow:
		t.keptSlow.Add(1)
	case VerdictError:
		t.keptError.Add(1)
	case VerdictReservoir:
		t.keptReservoir.Add(1)
	default:
		t.dropped.Add(1)
		return verdict
	}
	t.store.offer(tr)
	return verdict
}

// Counters is a point-in-time read of the tracer's self-accounting,
// exported as the asap_trace_* metric families.
type Counters struct {
	SpansStarted  int64
	TracesSampled int64
	KeptSlow      int64
	KeptError     int64
	KeptReservoir int64
	Dropped       int64
	StoreLen      int
}

// Counters snapshots the tracer's counters (zeros on nil).
func (t *Tracer) Counters() Counters {
	if t == nil {
		return Counters{}
	}
	return Counters{
		SpansStarted:  t.spansStarted.Load(),
		TracesSampled: t.tracesSampled.Load(),
		KeptSlow:      t.keptSlow.Load(),
		KeptError:     t.keptError.Load(),
		KeptReservoir: t.keptReservoir.Load(),
		Dropped:       t.dropped.Load(),
		StoreLen:      t.store.Len(),
	}
}

package trace

import (
	"context"
	"time"
)

// ctxKey is the context key for the active span. An empty struct key
// converts to interface{} without allocating, which keeps the
// unsampled StartSpan lookup free.
type ctxKey struct{}

// spanCtx pairs the trace with the goroutine's current span.
type spanCtx struct {
	tr *Trace
	sp *Span
}

func withSpan(ctx context.Context, tr *Trace, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr, sp})
}

// StartSpan opens a child of the context's current span and returns a
// derived context carrying the child. When the context holds no
// recorded trace it returns (ctx, nil) without allocating — the
// instrumented hot paths call this unconditionally and pay one map-free
// context lookup when tracing is off or the request was not sampled.
//
// The returned span may be nil even on a recorded trace (span cap);
// all Span methods tolerate that.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok {
		return ctx, nil
	}
	sp := sc.tr.startSpan(name, sc.sp, time.Now())
	if sp == nil {
		return ctx, nil
	}
	return withSpan(ctx, sc.tr, sp), sp
}

// StartSpanAt opens a leaf child whose start time is supplied by the
// caller — used where the measured interval began before the
// instrumentation point (e.g. the SSE flush span starts at the oldest
// queued event's publish time). The child is not placed into a derived
// context; callers End it directly.
func StartSpanAt(ctx context.Context, name string, start time.Time) *Span {
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok {
		return nil
	}
	return sc.tr.startSpan(name, sc.sp, start)
}

// Child opens a child span directly off sp, for call paths where
// threading a derived context is impractical (e.g. under a lock-scoped
// helper). Nil-safe; may return nil at the span cap.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tr.startSpan(name, sp, time.Now())
}

// ChildAt is Child with a caller-supplied start time, for intervals
// measured before the instrumentation point.
func (sp *Span) ChildAt(name string, start time.Time) *Span {
	if sp == nil {
		return nil
	}
	return sp.tr.startSpan(name, sp, start)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok {
		return nil
	}
	return sc.tr
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok {
		return nil
	}
	return sc.sp
}

// IDFromContext returns the active trace's hex id, or "" — the value
// log lines stamp alongside the request id.
func IDFromContext(ctx context.Context) string {
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok {
		return ""
	}
	return sc.tr.idHex
}

// Outbound renders the traceparent header an outgoing request should
// carry: the active trace's id with the CURRENT span as parent, so the
// remote side's spans join under the local operation that issued the
// call. Returns "" when the context holds no recorded trace.
func Outbound(ctx context.Context) string {
	sc, ok := ctx.Value(ctxKey{}).(spanCtx)
	if !ok || sc.sp == nil {
		return ""
	}
	return formatTraceparent(sc.tr.id, sc.sp.id, true)
}

package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is the fixed-size ring of retained traces. Offers overwrite
// the oldest entry; reads snapshot under the lock, so the explorer
// endpoints never block the tail sampler for long.
type Store struct {
	mu   sync.Mutex
	ring []*Trace
	next int
	n    int
}

func newStore(capacity int) *Store {
	return &Store{ring: make([]*Trace, capacity)}
}

func (s *Store) offer(tr *Trace) {
	s.mu.Lock()
	s.ring[s.next] = tr
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns the number of retained traces (0 on nil).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Filter narrows a List call. Zero values match everything.
type Filter struct {
	Route      string        // exact route match
	MinDur     time.Duration // root duration at or above
	ErrorsOnly bool          // only traces kept for (or containing) an error
	Limit      int           // max results (0 = all)
}

// Summary is one row of the trace list.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Route      string    `json:"route"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Error      bool      `json:"error"`
	Kept       string    `json:"kept"`
	Remote     bool      `json:"remote,omitempty"`
}

// List returns matching trace summaries, newest first.
func (s *Store) List(f Filter) []Summary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := make([]*Trace, 0, s.n)
	for i := 0; i < s.n; i++ {
		// Walk backwards from the most recent offer.
		idx := (s.next - 1 - i + len(s.ring) + len(s.ring)) % len(s.ring)
		if tr := s.ring[idx]; tr != nil {
			snap = append(snap, tr)
		}
	}
	s.mu.Unlock()

	out := make([]Summary, 0, len(snap))
	for _, tr := range snap {
		if f.Route != "" && tr.route != f.Route {
			continue
		}
		if tr.Duration() < f.MinDur {
			continue
		}
		errored := tr.keep == VerdictError || tr.anyError()
		if f.ErrorsOnly && !errored {
			continue
		}
		tr.mu.Lock()
		nspans := len(tr.spans)
		tr.mu.Unlock()
		out = append(out, Summary{
			TraceID:    tr.idHex,
			Route:      tr.route,
			Start:      tr.start,
			DurationMS: float64(tr.Duration()) / float64(time.Millisecond),
			Spans:      nspans,
			Error:      errored,
			Kept:       tr.keep.String(),
			Remote:     tr.remote,
		})
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Get returns the retained trace with the given hex id, or nil.
func (s *Store) Get(id string) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tr := range s.ring {
		if tr != nil && tr.idHex == id {
			return tr
		}
	}
	return nil
}

// SpanNode is one exported span with its children nested — the JSON
// span tree `/traces/{id}` serves.
type SpanNode struct {
	SpanID     string                 `json:"span_id"`
	Name       string                 `json:"name"`
	StartNS    int64                  `json:"start_ns"` // offset from trace start
	DurationNS int64                  `json:"duration_ns"`
	Error      bool                   `json:"error,omitempty"`
	Attrs      map[string]interface{} `json:"attrs,omitempty"`
	Children   []*SpanNode            `json:"children,omitempty"`
}

// Export is the full serialized trace.
type Export struct {
	TraceID      string      `json:"trace_id"`
	Route        string      `json:"route"`
	Start        time.Time   `json:"start"`
	DurationNS   int64       `json:"duration_ns"`
	Kept         string      `json:"kept"`
	RemoteParent string      `json:"remote_parent,omitempty"` // upstream span id we joined under
	DroppedSpans int         `json:"dropped_spans,omitempty"`
	Spans        []*SpanNode `json:"spans"`
	Waterfall    string      `json:"waterfall"`
}

// Export serializes the trace as a span tree plus a text waterfall.
func (tr *Trace) Export() *Export {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	spans := make([]*Span, len(tr.spans))
	copy(spans, tr.spans)
	dropped := tr.dropped
	tr.mu.Unlock()

	nodes := make([]*SpanNode, len(spans))
	for i, sp := range spans {
		n := &SpanNode{
			SpanID:     sp.id.String(),
			Name:       sp.name,
			StartNS:    sp.startNS,
			DurationNS: sp.durNS,
			Error:      sp.err,
		}
		if sp.nattr > 0 {
			n.Attrs = make(map[string]interface{}, sp.nattr)
			for j := 0; j < sp.nattr; j++ {
				n.Attrs[sp.attrs[j].Key] = sp.attrs[j].Value()
			}
		}
		nodes[i] = n
	}
	var roots []*SpanNode
	for i, sp := range spans {
		if sp.parent >= 0 && int(sp.parent) < len(nodes) {
			p := nodes[sp.parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	ex := &Export{
		TraceID:      tr.idHex,
		Route:        tr.route,
		Start:        tr.start,
		DurationNS:   int64(tr.Duration()),
		Kept:         tr.keep.String(),
		DroppedSpans: dropped,
		Spans:        roots,
	}
	if tr.remote {
		ex.RemoteParent = tr.parent.String()
	}
	ex.Waterfall = waterfall(ex)
	return ex
}

// waterfall renders the span tree as aligned text: start offset,
// duration, an indent-per-depth name, and a proportional bar scaled to
// the root duration.
func waterfall(ex *Export) string {
	const barWidth = 30
	total := ex.DurationNS
	if total <= 0 {
		total = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s route=%s dur=%s kept=%s\n",
		ex.TraceID, ex.Route, time.Duration(ex.DurationNS), ex.Kept)
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		startCol := int(n.StartNS * barWidth / total)
		width := int(n.DurationNS * barWidth / total)
		if startCol > barWidth {
			startCol = barWidth
		}
		if width < 1 {
			width = 1
		}
		if startCol+width > barWidth {
			width = barWidth - startCol
			if width < 1 {
				startCol, width = barWidth-1, 1
			}
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat("=", width) +
			strings.Repeat(" ", barWidth-startCol-width)
		name := strings.Repeat("  ", depth) + n.Name
		if n.Error {
			name += " !"
		}
		fmt.Fprintf(&b, "%12s %12s  |%s|  %s%s\n",
			time.Duration(n.StartNS).Round(time.Microsecond),
			time.Duration(n.DurationNS).Round(time.Microsecond),
			bar, name, attrSuffix(n.Attrs))
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].StartNS < n.Children[j].StartNS
		})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range ex.Spans {
		walk(r, 0)
	}
	return b.String()
}

func attrSuffix(attrs map[string]interface{}) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("  {")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v", k, attrs[k])
	}
	b.WriteString("}")
	return b.String()
}

// Breakdown renders the non-root spans inline — "parse=110µs
// wal.append=1.2ms ..." — for the structured slow-request log line.
func (tr *Trace) Breakdown() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	spans := make([]*Span, len(tr.spans))
	copy(spans, tr.spans)
	tr.mu.Unlock()
	var b strings.Builder
	for _, sp := range spans[1:] {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", sp.name, time.Duration(sp.durNS).Round(time.Microsecond))
	}
	return b.String()
}

package trace

import (
	"strings"
	"testing"
)

// FuzzTraceparent asserts Parse never panics on arbitrary input, and
// that anything it accepts round-trips: re-rendering the parsed header
// and parsing again yields the identical Traceparent.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("")
	f.Add("garbage")
	f.Add(strings.Repeat("0", 55))
	f.Fuzz(func(t *testing.T, s string) {
		tp, err := Parse(s)
		if err != nil {
			return // rejected without panicking: fine
		}
		if tp.TraceID.IsZero() || tp.SpanID.IsZero() {
			t.Fatalf("Parse(%q) accepted zero ids", s)
		}
		re, err := Parse(tp.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", tp.String(), s, err)
		}
		if re != tp {
			t.Fatalf("round trip drift: %q -> %+v -> %+v", s, tp, re)
		}
	})
}

// Package obs is the zero-dependency observability layer behind
// asap-server: a metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus text-format exposition, a minimal
// exposition-format parser for validation, and structured logging
// helpers built on log/slog with request-ID correlation.
//
// The design constraints mirror the refresh engine's: the hot path —
// Counter.Add, Gauge.Set, Histogram.Observe — is allocation-free and
// lock-free (plain atomics), so instrumenting the WAL append path, the
// refresh engine, and the broadcast fan-out costs a few nanoseconds and
// zero garbage. All instrument methods are nil-receiver safe, so a
// layer whose metrics were never wired (tests, benchmarks, library use)
// pays a single predictable branch instead of needing its own guards.
//
// Registration is startup-time and static: metric names are validated
// and duplicates panic immediately, the same contract as an invalid
// flag. Scrapes are best-effort point-in-time reads of the atomics —
// a histogram scraped concurrently with observers may be internally
// skewed by in-flight observations, but bucket cumulative sums are
// computed from one read per bucket and are therefore always monotone.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name=value pair attached to a metric at
// registration. Series-identity labels (route, code) are constant per
// registered instrument; obs has no dynamic label lookup by design —
// callers pre-register the small, bounded label sets they need, which
// is what keeps the hot path allocation-free.
type Label struct {
	Key   string
	Value string
}

// Opts names a metric: the full exposition name (convention:
// asap_<layer>_<name>_<unit>), a help line, and optional constant
// labels.
type Opts struct {
	Name   string
	Help   string
	Labels []Label
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use; nil receivers are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; negative n is ignored (counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down. The zero value is
// ready; nil receivers are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; safe for concurrent Add/Set).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of float64 observations.
// Buckets are upper bounds (exclusive of +Inf, which is implicit);
// Observe is a linear scan over them plus two atomic adds, so keep
// bucket counts modest (≤ ~24) on hot paths. Nil receivers are no-ops.
type Histogram struct {
	upper  []float64 // ascending; +Inf bucket is counts[len(upper)]
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
	// ex holds the latest exemplar per bucket (last-write-wins), only
	// written by ObserveExemplar — the plain Observe path never touches
	// it, so untraced observations stay allocation-free.
	ex []atomic.Pointer[exemplar]
}

// exemplar is one OpenMetrics exemplar: the observed value, the trace
// id it came from, and when it was recorded.
type exemplar struct {
	value   float64
	traceID string
	at      time.Time
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the base unit every
// *_seconds histogram uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records v and attaches it as the bucket's exemplar,
// labeled with the given trace id — rendered only in the OpenMetrics
// exposition (`# {trace_id="..."} v ts`). An empty trace id degrades
// to a plain Observe. Called only on sampled (traced) observations, so
// the one allocation per call never lands on the untraced hot path.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil || math.IsNaN(v) {
		return
	}
	if traceID == "" {
		h.Observe(v)
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.ex[i].Store(&exemplar{value: v, traceID: traceID, at: time.Now()})
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot reads one count per bucket and returns the cumulative
// counts (per exposition bucket, +Inf last), total, and sum.
func (h *Histogram) snapshot() (cum []int64, total int64, sum float64) {
	cum = make([]int64, len(h.counts))
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return cum, total, math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially spaced bucket upper bounds
// starting at start and growing by factor — the usual shape for
// latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// series is one registered time series within a family: its rendered
// label set plus the value source (exactly one of value / hist).
type series struct {
	labels string // pre-rendered `{k="v",...}`, or ""
	value  func() float64
	hist   *Histogram
}

// family groups every series registered under one metric name; the
// exposition emits one HELP/TYPE pair per family.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []series
	seen   map[string]bool // label-set dedup
}

// Registry holds registered metrics and renders them in Prometheus
// text exposition format. All methods are safe for concurrent use;
// registration is expected at startup, scraping at runtime.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// register validates o against the registry and returns the family,
// panicking on misuse (registration is static, startup-time code — a
// bad name is a programming error, not a runtime condition).
func (r *Registry) register(o Opts, kind metricKind, s series) *family {
	if !nameRe.MatchString(o.Name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", o.Name))
	}
	labels, key := renderLabels(o.Labels)
	s.labels = labels
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[o.Name]
	if f == nil {
		f = &family{name: o.Name, help: o.Help, kind: kind, seen: make(map[string]bool)}
		r.families[o.Name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", o.Name, kind, f.kind))
	}
	if f.seen[key] {
		panic(fmt.Sprintf("obs: duplicate metric %q%s", o.Name, labels))
	}
	f.seen[key] = true
	f.series = append(f.series, s)
	return f
}

// renderLabels renders constant labels into the exposition form and a
// canonical (sorted) dedup key.
func renderLabels(labels []Label) (rendered, key string) {
	if len(labels) == 0 {
		return "", ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	out := "{"
	for i, l := range sorted {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	out += "}"
	return out, out
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(o Opts) *Counter {
	c := &Counter{}
	r.register(o, kindCounter, series{value: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a counter whose value is read from fn at each
// scrape — the bridge for subsystems that already maintain their own
// atomic counters (WAL stats, broadcast stats) without double counting.
func (r *Registry) CounterFunc(o Opts, fn func() float64) {
	r.register(o, kindCounter, series{value: fn})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(o Opts) *Gauge {
	g := &Gauge{}
	r.register(o, kindGauge, series{value: g.Value})
	return g
}

// GaugeFunc registers a gauge read from fn at each scrape.
func (r *Registry) GaugeFunc(o Opts, fn func() float64) {
	r.register(o, kindGauge, series{value: fn})
}

// Histogram registers and returns a new histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(o Opts, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", o.Name))
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q: bucket %v must be finite", o.Name, b))
		}
		if i > 0 && buckets[i-1] >= b {
			panic(fmt.Sprintf("obs: histogram %q: buckets must be strictly ascending", o.Name))
		}
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
		ex:     make([]atomic.Pointer[exemplar], len(buckets)+1),
	}
	r.register(o, kindHistogram, series{hist: h})
	return h
}

// AddCollector registers fn to run at the start of every exposition —
// the hook for refreshing snapshot-style gauges (e.g. one sweep over
// the hub's per-series stats feeding several CounterFuncs) exactly
// once per scrape instead of once per metric.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

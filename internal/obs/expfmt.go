package obs

// A minimal parser/validator for the Prometheus text exposition
// format — enough to machine-check what /metrics serves (the golden
// tests and `make obs-check` use it) without depending on the real
// client library. It validates:
//
//   - HELP/TYPE comment syntax, known TYPE values, and TYPE-before-
//     samples ordering per family;
//   - metric and label name syntax and label-value escape sequences;
//   - that every sample belongs to a declared family (histogram
//     samples may use the _bucket/_sum/_count suffixes);
//   - histogram shape: an le label on every _bucket, cumulative bucket
//     counts monotone in ascending le order, a closing +Inf bucket
//     that equals _count.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpoSample is one parsed sample line. Exemplar holds the OpenMetrics
// exemplar's labels (e.g. trace_id) when the line carried one.
type ExpoSample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar map[string]string
}

// ExpoFamily is one parsed metric family: its TYPE, optional HELP, and
// samples in input order.
type ExpoFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []ExpoSample
}

var expoTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseExposition parses and validates a text-exposition document,
// returning the families keyed by name. Any format violation is an
// error naming the offending line.
func ParseExposition(r io.Reader) (map[string]*ExpoFamily, error) {
	families := make(map[string]*ExpoFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(families, sample.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return families, nil
}

// parseComment handles "# HELP name text" and "# TYPE name type";
// other comments are ignored.
func parseComment(line string, families map[string]*ExpoFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !nameRe.MatchString(name) {
		return fmt.Errorf("invalid metric name %q in %s", name, fields[1])
	}
	fam := families[name]
	if fam == nil {
		fam = &ExpoFamily{Name: name}
		families[name] = fam
	}
	if fields[1] == "HELP" {
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
		return nil
	}
	if len(fields) != 4 || !expoTypes[fields[3]] {
		return fmt.Errorf("unknown TYPE %q for %s", strings.Join(fields[3:], " "), name)
	}
	if fam.Type != "" {
		return fmt.Errorf("duplicate TYPE for %s", name)
	}
	if len(fam.Samples) > 0 {
		return fmt.Errorf("TYPE for %s after its samples", name)
	}
	fam.Type = fields[3]
	return nil
}

// familyFor resolves the family a sample belongs to: its exact name,
// or — for histogram/summary component samples — the name with the
// _bucket/_sum/_count suffix stripped.
func familyFor(families map[string]*ExpoFamily, sample string) *ExpoFamily {
	if f := families[sample]; f != nil && f.Type != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if f := families[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
			if suffix == "_bucket" && f.Type != "histogram" {
				continue
			}
			return f
		}
	}
	return nil
}

// parseSample parses `name{labels} value [timestamp]`, optionally
// followed by an OpenMetrics exemplar: ` # {labels} value [timestamp]`.
func parseSample(line string) (ExpoSample, error) {
	s := ExpoSample{Labels: map[string]string{}}
	rest := line
	if j := strings.Index(rest, " # "); j >= 0 {
		ex, err := parseExemplar(rest[j+3:])
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
		rest = rest[:j]
	}
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if rest[i] == '{' {
		var err error
		rest, err = parseLabels(rest[i+1:], s.Labels)
		if err != nil {
			return s, err
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after %q", s.Name)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseExemplar validates `{labels} value [timestamp]` after the " # "
// separator and returns the exemplar's labels. Exemplar timestamps are
// seconds and may be fractional, unlike sample timestamps.
func parseExemplar(rest string) (map[string]string, error) {
	if !strings.HasPrefix(rest, "{") {
		return nil, fmt.Errorf("exemplar must start with a label block, got %q", rest)
	}
	labels := map[string]string{}
	rest, err := parseLabels(rest[1:], labels)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("exemplar: expected value [timestamp], got %q", rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return nil, fmt.Errorf("exemplar: bad value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("exemplar: bad timestamp %q", fields[1])
		}
	}
	return labels, nil
}

// parseLabels consumes `key="value",...}` (the caller ate the opening
// brace), undoing the \\, \", and \n escapes, and returns what follows
// the closing brace.
func parseLabels(rest string, out map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("malformed label block near %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if !labelRe.MatchString(key) && key != "le" {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return "", fmt.Errorf("label %s value must be quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return "", fmt.Errorf("unterminated value for label %s", key)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '"' {
				break
			}
			if c != '\\' {
				val.WriteByte(c)
				continue
			}
			if rest == "" {
				return "", fmt.Errorf("dangling escape in label %s", key)
			}
			switch rest[0] {
			case '\\':
				val.WriteByte('\\')
			case '"':
				val.WriteByte('"')
			case 'n':
				val.WriteByte('\n')
			default:
				return "", fmt.Errorf("unknown escape \\%c in label %s", rest[0], key)
			}
			rest = rest[1:]
		}
		if _, dup := out[key]; dup {
			return "", fmt.Errorf("duplicate label %s", key)
		}
		out[key] = val.String()
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// validateHistogram checks one histogram family's shape across every
// distinct constant-label series it holds.
func validateHistogram(fam *ExpoFamily) error {
	type group struct {
		les    []float64
		counts map[float64]float64
		count  float64
		hasCnt bool
	}
	groups := make(map[string]*group)
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k + "=" + labels[k] + ";")
		}
		return b.String()
	}
	for _, s := range fam.Samples {
		g := groups[keyOf(s.Labels)]
		if g == nil {
			g = &group{counts: make(map[float64]float64)}
			groups[keyOf(s.Labels)] = g
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("bad le %q", leStr)
			}
			g.les = append(g.les, le)
			g.counts[le] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			g.count, g.hasCnt = s.Value, true
		}
	}
	for _, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("no buckets")
		}
		sort.Float64s(g.les)
		inf := g.les[len(g.les)-1]
		if !math.IsInf(inf, 1) {
			return fmt.Errorf("missing +Inf bucket")
		}
		prev := math.Inf(-1)
		last := 0.0
		for _, le := range g.les {
			if le == prev {
				return fmt.Errorf("duplicate le %v", le)
			}
			if c := g.counts[le]; c < last {
				return fmt.Errorf("bucket counts not monotone at le=%v (%v < %v)", le, c, last)
			} else {
				last = c
			}
			prev = le
		}
		if !g.hasCnt {
			return fmt.Errorf("missing _count")
		}
		if g.counts[inf] != g.count {
			return fmt.Errorf("_count %v != +Inf bucket %v", g.count, g.counts[inf])
		}
	}
	return nil
}

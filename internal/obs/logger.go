package obs

// Structured logging: a small veneer over log/slog so every layer of
// asap-server logs through one configurable pipeline (-log-format,
// -log-level), plus request-ID generation and context plumbing so a
// single request can be correlated across the HTTP access log, handler
// warnings, and error paths.

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// NewLogger builds a slog.Logger writing to w. format is "text" or
// "json"; level is "debug", "info", "warn", or "error". Empty strings
// default to text/info. Unknown values are an error so a typo'd flag
// fails at startup instead of silently logging wrong.
func NewLogger(format, level string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// Request IDs are an 8-hex-char random process prefix plus a counter:
// unique within the process, distinguishable across restarts, and
// generated without per-request entropy reads or allocations beyond
// the ID string itself.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Fall back to a fixed prefix; IDs stay unique in-process.
			binary.LittleEndian.PutUint32(b[:], 0xa5a90b5)
		}
		return hex.EncodeToString(b[:])
	}()
	ridCounter atomic.Uint64
)

// NewRequestID returns a process-unique request ID such as
// "3fa9c1d2-000042".
func NewRequestID() string {
	return fmt.Sprintf("%s-%06x", ridPrefix, ridCounter.Add(1))
}

type ridKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom returns the request ID stored in ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// Printf returns a printf-style adapter over l at the given level —
// the bridge for subsystems (wal, replica) that take a `Logf func` so
// their messages flow through the structured pipeline.
func Printf(l *slog.Logger, level slog.Level, subsystem string) func(format string, args ...any) {
	if l == nil {
		return func(string, ...any) {}
	}
	l = l.With("subsystem", subsystem)
	return func(format string, args ...any) {
		l.Log(context.Background(), level, fmt.Sprintf(format, args...))
	}
}

package csvio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/asap-go/asap/internal/timeseries"
)

func TestRoundTrip(t *testing.T) {
	start := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	s := timeseries.New("demo", start, 30*time.Second, []float64{1.5, -2, 3.25})
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Start.Equal(start) {
		t.Errorf("start = %v, want %v", back.Start, start)
	}
	if back.Interval != 30*time.Second {
		t.Errorf("interval = %v", back.Interval)
	}
	if back.Len() != 3 || back.Values[2] != 3.25 {
		t.Errorf("values = %v", back.Values)
	}
}

func TestReadSingleColumn(t *testing.T) {
	in := "value\n1\n2.5\n-3\n"
	s, err := Read(strings.NewReader(in), "vals")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Values[1] != 2.5 {
		t.Errorf("values = %v", s.Values)
	}
	if s.Interval != time.Second {
		t.Errorf("default interval = %v", s.Interval)
	}
}

func TestReadNoHeader(t *testing.T) {
	in := "1\n2\n3\n"
	s, err := Read(strings.NewReader(in), "raw")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestReadUnixTimestamps(t *testing.T) {
	in := "100,1.5\n160,2.5\n220,3.5\n"
	s, err := Read(strings.NewReader(in), "unix")
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval != time.Minute {
		t.Errorf("interval = %v, want 1m", s.Interval)
	}
	if !s.Start.Equal(time.Unix(100, 0).UTC()) {
		t.Errorf("start = %v", s.Start)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"header only\n",
		"1,2,3\n",
		"abc\n",
		"2020-01-01T00:00:00Z,notanumber\n",
		"nottime,5\n",
		"200,1\n100,2\n", // non-increasing timestamps
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in), "x"); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestWriteValues(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteValues(&buf, []float64{1, 2.5}); err != nil {
		t.Fatal(err)
	}
	want := "value\n1\n2.5\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteInvalidSeries(t *testing.T) {
	var buf bytes.Buffer
	var nilSeries *timeseries.Series
	if err := Write(&buf, nilSeries); err == nil {
		t.Error("nil series should fail")
	}
}

func TestReadRaggedRowsRejected(t *testing.T) {
	// Regression (found by FuzzRead): ragged rows used to panic the
	// two-column path.
	if _, err := Read(strings.NewReader("0,0\n0"), "x"); err == nil {
		t.Error("ragged rows should be rejected")
	}
	if _, err := Read(strings.NewReader("1\n2,3\n"), "x"); err == nil {
		t.Error("widening rows should be rejected")
	}
}

func TestReadTimestampRange(t *testing.T) {
	// Regression (found by FuzzRead): unix timestamps past year 9999 are
	// not representable in RFC 3339 and must be rejected on input so
	// every accepted series round-trips through Write.
	if _, err := Read(strings.NewReader("1000000050055,1\n1000000050056,2\n"), "x"); err == nil {
		t.Error("year-33658 timestamp should be rejected")
	}
	if _, err := Read(strings.NewReader("-5,1\n-4,2\n"), "x"); err == nil {
		t.Error("negative unix timestamp should be rejected")
	}
	if _, err := Read(strings.NewReader("253402300799,1\n"), "x"); err != nil {
		t.Errorf("max representable timestamp rejected: %v", err)
	}
}

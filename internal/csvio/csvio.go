// Package csvio loads and saves time series as CSV, the interchange format
// of the CLI and examples. Two layouts are supported: a single value
// column, or timestamp,value rows (RFC 3339 or Unix-seconds timestamps).
package csvio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/asap-go/asap/internal/timeseries"
)

// ErrFormat reports unparseable CSV content.
var ErrFormat = errors.New("csvio: bad format")

// Write emits the series as timestamp,value rows in RFC 3339.
func Write(w io.Writer, s *timeseries.Series) error {
	if err := s.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "value"}); err != nil {
		return err
	}
	for i, v := range s.Values {
		rec := []string{
			s.TimeAt(i).Format(time.RFC3339),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteValues emits one value per line with a "value" header.
func WriteValues(w io.Writer, values []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"value"}); err != nil {
		return err
	}
	for _, v := range values {
		if err := cw.Write([]string{strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a series from CSV. Accepted layouts:
//
//	value              (single column; interval defaults to 1s)
//	timestamp,value    (RFC 3339 or Unix seconds; interval inferred from
//	                    the first two rows)
//
// A non-numeric first row is treated as a header and skipped.
func Read(r io.Reader, name string) (*timeseries.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrFormat)
	}
	// Header detection: first row where no field parses as a number/time.
	startRow := 0
	if isHeader(records[0]) {
		startRow = 1
	}
	rows := records[startRow:]
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: no data rows", ErrFormat)
	}

	width := len(rows[0])
	for i, rec := range rows {
		if len(rec) != width {
			return nil, fmt.Errorf("%w: row %d has %d columns, expected %d",
				ErrFormat, startRow+i+1, len(rec), width)
		}
	}

	switch width {
	case 1:
		values := make([]float64, 0, len(rows))
		for i, rec := range rows {
			v, err := strconv.ParseFloat(rec[0], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: row %d: %v", ErrFormat, startRow+i+1, err)
			}
			values = append(values, v)
		}
		return timeseries.New(name, time.Unix(0, 0).UTC(), time.Second, values), nil
	case 2:
		values := make([]float64, 0, len(rows))
		times := make([]time.Time, 0, len(rows))
		for i, rec := range rows {
			ts, err := parseTime(rec[0])
			if err != nil {
				return nil, fmt.Errorf("%w: row %d timestamp: %v", ErrFormat, startRow+i+1, err)
			}
			v, err := strconv.ParseFloat(rec[1], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: row %d value: %v", ErrFormat, startRow+i+1, err)
			}
			times = append(times, ts)
			values = append(values, v)
		}
		interval := time.Second
		if len(times) >= 2 {
			interval = times[1].Sub(times[0])
			if interval <= 0 {
				return nil, fmt.Errorf("%w: non-increasing timestamps", ErrFormat)
			}
		}
		return timeseries.New(name, times[0], interval, values), nil
	default:
		return nil, fmt.Errorf("%w: expected 1 or 2 columns, got %d", ErrFormat, len(rows[0]))
	}
}

func isHeader(rec []string) bool {
	for _, f := range rec {
		if _, err := strconv.ParseFloat(f, 64); err == nil {
			return false
		}
		if _, err := parseTime(f); err == nil {
			return false
		}
	}
	return true
}

// maxUnixSeconds is 9999-12-31T23:59:59Z — the largest instant RFC 3339
// can represent, and therefore the largest Unix timestamp Read accepts so
// that every accepted series can be rewritten by Write and read back.
const maxUnixSeconds = 253402300799

func parseTime(s string) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339, s); err == nil {
		return ts, nil
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		if secs < 0 || secs > maxUnixSeconds {
			return time.Time{}, fmt.Errorf("unix timestamp %d out of range [0, %d]", secs, int64(maxUnixSeconds))
		}
		return time.Unix(secs, 0).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("unrecognized timestamp %q", s)
}

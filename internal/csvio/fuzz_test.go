package csvio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the CSV reader and
// that everything it accepts round-trips through Write and parses again
// to the same values.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"value\n1\n2\n3\n",
		"1\n2\n3\n",
		"timestamp,value\n2020-01-01T00:00:00Z,1.5\n2020-01-01T00:01:00Z,2\n",
		"100,1\n160,2\n",
		"",
		"a,b,c\n",
		"value\nNaN\n",
		"value\n1e309\n",
		"\x00\xff\n",
		"value\r\n1\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := s.Validate(); err != nil {
			// Read accepted values that Validate rejects (NaN/Inf parse as
			// floats). That is acceptable for Read — the CLI validates —
			// but must not panic anywhere below.
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("Write of accepted series failed: %v", err)
		}
		back, err := Read(strings.NewReader(buf.String()), "fuzz")
		if err != nil {
			t.Fatalf("round-trip Read failed: %v", err)
		}
		if back.Len() != s.Len() {
			t.Fatalf("round-trip length %d != %d", back.Len(), s.Len())
		}
		for i := range s.Values {
			if back.Values[i] != s.Values[i] {
				t.Fatalf("round-trip value %d: %v != %v", i, back.Values[i], s.Values[i])
			}
		}
	})
}

package devices

import "testing"

func TestTable1Reductions(t *testing.T) {
	// The published reductions for 1M points. The paper prints 291x for
	// the Dell (we compute floor(1e6/3440) = 290 — the paper rounds the
	// real-valued ratio 290.7); all others match exactly.
	want := map[string]float64{
		"38mm Apple Watch":       3676,
		"Samsung Galaxy S7":      694,
		"13\" MacBook Pro":       434,
		"Dell 34 Curved Monitor": 290,
		"27\" iMac Retina":       195,
	}
	for _, d := range Table1 {
		r, err := d.Reduction(1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if r != want[d.Name] {
			t.Errorf("%s reduction = %v, want %v", d.Name, r, want[d.Name])
		}
	}
}

func TestByName(t *testing.T) {
	d, ok := ByName("38mm Apple Watch")
	if !ok || d.Width != 272 {
		t.Errorf("ByName watch = %+v, %v", d, ok)
	}
	if _, ok := ByName("CRT"); ok {
		t.Error("bogus device found")
	}
}

func TestReductionError(t *testing.T) {
	d := Table1[0]
	if _, err := d.Reduction(0); err == nil {
		t.Error("n=0 should error")
	}
}

func TestTable1Order(t *testing.T) {
	if len(Table1) != 5 {
		t.Fatalf("Table1 has %d devices, want 5", len(Table1))
	}
	if Table1[0].Name != "38mm Apple Watch" || Table1[4].Name != "27\" iMac Retina" {
		t.Error("Table1 not in paper order")
	}
}

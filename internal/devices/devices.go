// Package devices catalogs the display devices of Table 1 and computes the
// search-space reduction that pixel-aware preaggregation achieves on each
// (Section 4.4).
package devices

import "github.com/asap-go/asap/internal/preagg"

// Device is a display target with its native resolution.
type Device struct {
	Name   string
	Width  int // horizontal pixels — the dimension that bounds a time axis
	Height int
}

// Table1 lists the devices of Table 1 in the paper's order.
var Table1 = []Device{
	{Name: "38mm Apple Watch", Width: 272, Height: 340},
	{Name: "Samsung Galaxy S7", Width: 1440, Height: 2560},
	{Name: "13\" MacBook Pro", Width: 2304, Height: 1440},
	{Name: "Dell 34 Curved Monitor", Width: 3440, Height: 1440},
	{Name: "27\" iMac Retina", Width: 5120, Height: 2880},
}

// Reduction returns the factor by which preaggregating an n-point series
// for this device shrinks ASAP's search space (Table 1, right column).
func (d Device) Reduction(n int) (float64, error) {
	return preagg.SearchSpaceReduction(n, d.Width)
}

// ByName finds a device in Table1.
func ByName(name string) (Device, bool) {
	for _, d := range Table1 {
		if d.Name == name {
			return d, true
		}
	}
	return Device{}, false
}

// Package preagg implements ASAP's pixel-aware preaggregation
// (Section 4.4 of the paper): before searching for a smoothing window, the
// input is grouped into buckets of size equal to the point-to-pixel ratio
// N/resolution, and the search runs over the bucket means. This bounds the
// search space by the target display resolution instead of the input size,
// the paper's largest single speedup (Table 1, Figure 9).
package preagg

import (
	"errors"
	"fmt"

	"github.com/asap-go/asap/internal/sma"
)

// ErrResolution reports an invalid target resolution.
var ErrResolution = errors.New("preagg: invalid resolution")

// Ratio returns the point-to-pixel ratio for n input points displayed at
// the given resolution: floor(n/resolution), but never less than 1. A
// series already at or below the target resolution has ratio 1
// (preaggregation is the identity).
func Ratio(n, resolution int) (int, error) {
	if resolution < 1 {
		return 0, fmt.Errorf("%w: %d", ErrResolution, resolution)
	}
	if n <= 0 {
		return 0, errors.New("preagg: empty series")
	}
	r := n / resolution
	if r < 1 {
		r = 1
	}
	return r, nil
}

// Aggregate groups xs into consecutive buckets of size ratio and returns
// the bucket means. A trailing partial bucket is averaged over its actual
// size, so no data is dropped. ratio==1 returns a copy.
func Aggregate(xs []float64, ratio int) ([]float64, error) {
	if ratio < 1 {
		return nil, fmt.Errorf("preagg: invalid ratio %d", ratio)
	}
	if len(xs) == 0 {
		return nil, errors.New("preagg: empty series")
	}
	out := make([]float64, 0, (len(xs)+ratio-1)/ratio)
	for start := 0; start < len(xs); start += ratio {
		end := start + ratio
		if end > len(xs) {
			end = len(xs)
		}
		var sum float64
		for _, v := range xs[start:end] {
			sum += v
		}
		out = append(out, sum/float64(end-start))
	}
	return out, nil
}

// ForResolution preaggregates xs for the given target resolution and
// returns the aggregated series along with the point-to-pixel ratio used.
func ForResolution(xs []float64, resolution int) (agg []float64, ratio int, err error) {
	ratio, err = Ratio(len(xs), resolution)
	if err != nil {
		return nil, 0, err
	}
	agg, err = Aggregate(xs, ratio)
	if err != nil {
		return nil, 0, err
	}
	return agg, ratio, nil
}

// Panes groups xs into consecutive buckets of size ratio and returns full
// pane aggregates (count/sum/min/max), for consumers that need more than
// the mean (e.g. the M4-style renderer and the streaming operator).
func Panes(xs []float64, ratio int) ([]sma.Pane, error) {
	if ratio < 1 {
		return nil, fmt.Errorf("preagg: invalid ratio %d", ratio)
	}
	if len(xs) == 0 {
		return nil, errors.New("preagg: empty series")
	}
	out := make([]sma.Pane, 0, (len(xs)+ratio-1)/ratio)
	var p sma.Pane
	for _, x := range xs {
		p.Add(x)
		if p.Count == ratio {
			out = append(out, p)
			p = sma.Pane{}
		}
	}
	if p.Count > 0 {
		out = append(out, p)
	}
	return out, nil
}

// SearchSpaceReduction returns the factor by which preaggregation shrinks
// the window-search space for n points at the given resolution — the
// quantity reported in Table 1 ("Reduction on 1M pts"). It equals the
// point-to-pixel ratio.
func SearchSpaceReduction(n, resolution int) (float64, error) {
	r, err := Ratio(n, resolution)
	if err != nil {
		return 0, err
	}
	return float64(r), nil
}

package preagg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/asap-go/asap/internal/stats"
)

func TestRatio(t *testing.T) {
	cases := []struct {
		n, res, want int
	}{
		{1_000_000, 272, 3676}, // 38mm Apple Watch row of Table 1
		{1_000_000, 1440, 694}, // Galaxy S7
		{1_000_000, 2304, 434}, // 13" MacBook Pro
		{1_000_000, 3440, 290}, // Dell 34 (paper rounds to 291)
		{1_000_000, 5120, 195}, // iMac Retina
		{604800, 2304, 262},    // Section 4.4 CPU example
		{100, 200, 1},          // fewer points than pixels
		{100, 100, 1},
		{101, 100, 1},
	}
	for _, c := range cases {
		got, err := Ratio(c.n, c.res)
		if err != nil {
			t.Fatalf("Ratio(%d,%d): %v", c.n, c.res, err)
		}
		if got != c.want {
			t.Errorf("Ratio(%d,%d) = %d, want %d", c.n, c.res, got, c.want)
		}
	}
}

func TestRatioErrors(t *testing.T) {
	if _, err := Ratio(100, 0); err == nil {
		t.Error("resolution 0 should error")
	}
	if _, err := Ratio(0, 100); err == nil {
		t.Error("empty series should error")
	}
}

func TestAggregateExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	got, err := Aggregate(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3.5, 5.5}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("agg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAggregatePartialTail(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got, err := Aggregate(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 5 {
		t.Errorf("partial tail: got %v, want [1.5 3.5 5]", got)
	}
}

func TestAggregateIdentity(t *testing.T) {
	xs := []float64{3, 1, 4}
	got, err := Aggregate(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 42
	if xs[0] == 42 {
		t.Error("ratio-1 aggregate aliases input")
	}
}

func TestAggregatePreservesMean(t *testing.T) {
	// When ratio divides n evenly, the mean of the aggregate equals the
	// mean of the input exactly (up to float error).
	prop := func(seed int64, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ratio := int(rRaw)%16 + 1
		n := ratio * (rng.Intn(50) + 2)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		agg, err := Aggregate(xs, ratio)
		if err != nil {
			return false
		}
		return math.Abs(stats.Mean(agg)-stats.Mean(xs)) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAggregateReducesVariance(t *testing.T) {
	// Averaging IID noise over buckets of size r divides variance by ~r.
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	agg, err := Aggregate(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	v := stats.Variance(agg)
	if v < 0.005 || v > 0.02 {
		t.Errorf("variance of 100-bucket aggregate = %v, want about 0.01", v)
	}
}

func TestForResolution(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i)
	}
	agg, ratio, err := ForResolution(xs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 10 {
		t.Errorf("ratio = %d, want 10", ratio)
	}
	if len(agg) != 1000 {
		t.Errorf("aggregated length = %d, want 1000", len(agg))
	}
	// First bucket mean of 0..9 = 4.5.
	if agg[0] != 4.5 {
		t.Errorf("agg[0] = %v, want 4.5", agg[0])
	}
}

func TestPanes(t *testing.T) {
	xs := []float64{5, 1, 3, 9, 2}
	panes, err := Panes(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(panes) != 3 {
		t.Fatalf("panes = %d, want 3", len(panes))
	}
	if panes[0].Min != 1 || panes[0].Max != 5 || panes[0].Mean() != 3 {
		t.Errorf("pane0 = %+v", panes[0])
	}
	if panes[2].Count != 1 || panes[2].Mean() != 2 {
		t.Errorf("tail pane = %+v", panes[2])
	}
}

func TestPanesConsistentWithAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 1003)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	agg, err := Aggregate(xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	panes, err := Panes(xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != len(panes) {
		t.Fatalf("aggregate %d vs panes %d", len(agg), len(panes))
	}
	for i := range agg {
		if math.Abs(agg[i]-panes[i].Mean()) > 1e-12 {
			t.Errorf("bucket %d: %v vs %v", i, agg[i], panes[i].Mean())
		}
	}
}

func TestSearchSpaceReductionTable1(t *testing.T) {
	// The headline numbers of Table 1.
	devices := []struct {
		res  int
		want float64
	}{
		{272, 3676}, {1440, 694}, {2304, 434}, {5120, 195},
	}
	for _, d := range devices {
		got, err := SearchSpaceReduction(1_000_000, d.res)
		if err != nil {
			t.Fatal(err)
		}
		if got != d.want {
			t.Errorf("reduction at %dpx = %v, want %v", d.res, got, d.want)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Aggregate(nil, 2); err == nil {
		t.Error("empty aggregate should error")
	}
	if _, err := Aggregate([]float64{1}, 0); err == nil {
		t.Error("ratio 0 should error")
	}
	if _, err := Panes(nil, 2); err == nil {
		t.Error("empty panes should error")
	}
	if _, err := Panes([]float64{1}, 0); err == nil {
		t.Error("pane ratio 0 should error")
	}
	if _, _, err := ForResolution(nil, 100); err == nil {
		t.Error("empty ForResolution should error")
	}
}

func BenchmarkAggregate1M(b *testing.B) {
	xs := make([]float64, 1_000_000)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(xs, 434); err != nil {
			b.Fatal(err)
		}
	}
}

package core

// Property-based tests of the search invariants that hold for *every*
// strategy on *any* input (DESIGN.md Section 7): results stay in bounds,
// the kurtosis constraint is never violated, exhaustive search dominates,
// and preaggregation composes with search without breaking either.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSeries generates a random mix of periodic, trend, and noise
// components — the space of inputs ASAP is designed for.
func randomSeries(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(2000) + 100
	period := float64(rng.Intn(100) + 4)
	amp := rng.Float64() * 10
	noise := rng.Float64() * 2
	trend := (rng.Float64() - 0.5) * 0.01
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = amp*math.Sin(2*math.Pi*float64(i)/period) +
			trend*float64(i) + noise*rng.NormFloat64()
	}
	// Occasionally inject an outlier spike.
	if rng.Intn(3) == 0 {
		xs[rng.Intn(n)] += amp*10 + 50
	}
	return xs
}

func TestInvariantWindowInBounds(t *testing.T) {
	prop := func(seed int64, stratRaw uint8) bool {
		xs := randomSeries(seed)
		strat := Strategy(int(stratRaw) % 5)
		res, err := Search(strat, xs, SearchOptions{})
		if err != nil {
			return false
		}
		return res.Window >= 1 && res.Window <= res.MaxWindow
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestInvariantKurtosisNeverViolated(t *testing.T) {
	prop := func(seed int64, stratRaw uint8) bool {
		xs := randomSeries(seed)
		strat := Strategy(int(stratRaw) % 5)
		res, err := Search(strat, xs, SearchOptions{})
		if err != nil {
			return false
		}
		return res.Kurtosis >= res.OriginalKurtosis-1e-9 || res.Window == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestInvariantExhaustiveDominates(t *testing.T) {
	// No strategy may achieve strictly lower roughness than exhaustive
	// search under the same constraint — exhaustive is the optimum by
	// construction.
	prop := func(seed int64, stratRaw uint8) bool {
		xs := randomSeries(seed)
		strat := Strategy(int(stratRaw)%4 + 1) // grid/binary variants; ASAP checked below
		ex, err := Search(StrategyExhaustive, xs, SearchOptions{})
		if err != nil {
			return false
		}
		res, err := Search(strat, xs, SearchOptions{})
		if err != nil {
			return false
		}
		asapRes, err := Search(StrategyASAP, xs, SearchOptions{})
		if err != nil {
			return false
		}
		eps := 1e-9 * (1 + ex.Roughness)
		return res.Roughness >= ex.Roughness-eps && asapRes.Roughness >= ex.Roughness-eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInvariantRoughnessNeverIncreases(t *testing.T) {
	prop := func(seed int64, stratRaw uint8) bool {
		xs := randomSeries(seed)
		strat := Strategy(int(stratRaw) % 5)
		res, err := Search(strat, xs, SearchOptions{})
		if err != nil {
			return false
		}
		return res.Roughness <= res.OriginalRoughness+1e-9*(1+res.OriginalRoughness)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestInvariantCandidatesBounded(t *testing.T) {
	// Candidate evaluations are bounded by the search space: exhaustive
	// tries at most maxWindow-1, ASAP strictly fewer than exhaustive plus
	// O(log maxWindow) refinement, binary O(log maxWindow).
	prop := func(seed int64) bool {
		xs := randomSeries(seed)
		ex, err := Search(StrategyExhaustive, xs, SearchOptions{})
		if err != nil {
			return false
		}
		if ex.Candidates > ex.MaxWindow-1 {
			return false
		}
		as, err := Search(StrategyASAP, xs, SearchOptions{})
		if err != nil {
			return false
		}
		logBound := 2*int(math.Log2(float64(as.MaxWindow))) + 4
		if as.Candidates > ex.Candidates+logBound {
			return false
		}
		bi, err := Search(StrategyBinary, xs, SearchOptions{})
		if err != nil {
			return false
		}
		return bi.Candidates <= logBound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestInvariantSmoothComposesWithPreaggregation(t *testing.T) {
	// Smooth(resolution=r) must equal preaggregating then searching: the
	// two code paths may not drift apart.
	prop := func(seed int64) bool {
		xs := randomSeries(seed)
		if len(xs) < 200 {
			return true
		}
		res := 64
		full, err := Smooth(xs, SmoothOptions{Resolution: res})
		if err != nil {
			return false
		}
		if len(xs) < 2*res {
			return full.Ratio == 1
		}
		manual, err := Search(StrategyASAP, full.Aggregated, SearchOptions{})
		if err != nil {
			return false
		}
		return manual.Window == full.Window
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInvariantOutputsFinite(t *testing.T) {
	prop := func(seed int64) bool {
		xs := randomSeries(seed)
		res, err := Smooth(xs, SmoothOptions{Resolution: 100})
		if err != nil {
			return false
		}
		for _, v := range res.Smoothed {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Package core implements ASAP's smoothing-parameter search — the paper's
// primary contribution (Sections 3 and 4).
//
// The problem (Section 3.4): given series X, find the SMA window w that
// minimizes roughness(SMA(X,w)) subject to Kurt[SMA(X,w)] >= Kurt[X].
//
// The package provides the optimized ASAP search (Algorithm 2:
// autocorrelation-peak candidates with the Algorithm 1 pruning rules, then
// a binary-search refinement over the remaining range) alongside the
// comparison strategies evaluated in Section 5: exhaustive search, grid
// search with configurable step, and plain binary search. All strategies
// share one fused candidate evaluator and report how many candidate
// windows they actually smoothed, which is the bookkeeping behind Table 2.
//
// Where the paper's pseudocode and the authors' released implementation
// diverge, this package follows the implementation: feasible candidates
// update the pruning lower bound even when they do not improve the
// incumbent roughness, which prunes strictly more of the space and is what
// the reported candidate counts reflect.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/asap-go/asap/internal/acf"
	"github.com/asap-go/asap/internal/preagg"
	"github.com/asap-go/asap/internal/stats"
)

// ErrInput reports an unusable input series.
var ErrInput = errors.New("core: invalid input")

// DefaultMaxWindowFraction bounds the window search at this fraction of the
// (preaggregated) series length, matching the paper's prototypes. Users can
// override via SearchOptions.MaxWindow.
const DefaultMaxWindowFraction = 0.10

// Strategy selects a window-search algorithm.
type Strategy int

// Available search strategies (Table 3 of the paper).
const (
	// StrategyASAP is Algorithm 2: ACF-peak search plus binary refinement.
	StrategyASAP Strategy = iota
	// StrategyExhaustive tries every window 2..MaxWindow.
	StrategyExhaustive
	// StrategyGrid2 tries every second window.
	StrategyGrid2
	// StrategyGrid10 tries every tenth window.
	StrategyGrid10
	// StrategyBinary bisects on the kurtosis constraint (Section 4.2).
	StrategyBinary
)

// String returns the name used in benchmark output.
func (s Strategy) String() string {
	switch s {
	case StrategyASAP:
		return "ASAP"
	case StrategyExhaustive:
		return "Exhaustive"
	case StrategyGrid2:
		return "Grid2"
	case StrategyGrid10:
		return "Grid10"
	case StrategyBinary:
		return "Binary"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// SearchOptions configures a window search over an already-preaggregated
// series. The zero value picks the paper's defaults.
type SearchOptions struct {
	// MaxWindow bounds candidate windows. 0 means
	// max(2, n*DefaultMaxWindowFraction).
	MaxWindow int
	// SeedWindow, when >1, is a previously chosen window that the search
	// verifies first (streaming ASAP's CheckLastWindow, Algorithm 3). A
	// feasible seed activates the roughness and lower-bound pruning from
	// the start of the search.
	SeedWindow int
	// ACF, when non-nil, is a precomputed autocorrelation for the series
	// (streaming mode maintains one incrementally). When nil, ASAP
	// computes it; other strategies never need it.
	ACF *acf.Result
}

// Result describes the outcome of a window search.
type Result struct {
	// Window is the chosen SMA window (1 = leave the series unsmoothed).
	Window int
	// Roughness is sigma(diff(SMA(X, Window))).
	Roughness float64
	// Kurtosis of the smoothed series.
	Kurtosis float64
	// OriginalRoughness and OriginalKurtosis describe the input.
	OriginalRoughness float64
	OriginalKurtosis  float64
	// Candidates is the number of windows for which the series was
	// actually smoothed and measured (the cost metric of Table 2).
	Candidates int
	// MaxWindow is the bound the search used.
	MaxWindow int
}

// Metrics holds the two quality measures of a smoothed candidate.
type Metrics struct {
	Roughness float64
	Kurtosis  float64
}

// Evaluate computes roughness and kurtosis of SMA(xs, w) in a single
// streaming pass without materializing the smoothed series. It is the
// shared inner loop of every search strategy. w must be in [1, len(xs)].
func Evaluate(xs []float64, w int) (Metrics, error) {
	n := len(xs)
	if w < 1 || w > n {
		return Metrics{}, fmt.Errorf("%w: window %d for %d points", ErrInput, w, n)
	}
	var valMoments, diffMoments stats.Moments
	inv := 1 / float64(w)
	var sum float64
	for i := 0; i < w; i++ {
		sum += xs[i]
	}
	prev := sum * inv
	valMoments.Add(prev)
	// Rolling update: y_{i+1} - y_i = (x_{i+w} - x_i)/w, so the rolling sum
	// update is exact in the same arithmetic as the difference series.
	for i := 1; i+w <= n; i++ {
		sum += xs[i+w-1] - xs[i-1]
		y := sum * inv
		valMoments.Add(y)
		diffMoments.Add(y - prev)
		prev = y
	}
	return Metrics{
		Roughness: diffMoments.StdDev(),
		Kurtosis:  valMoments.Kurtosis(),
	}, nil
}

// defaultMaxWindow returns the search bound for an n-point series.
func defaultMaxWindow(n int) int {
	mw := int(float64(n) * DefaultMaxWindowFraction)
	if mw < 2 {
		mw = 2
	}
	if mw >= n {
		mw = n - 1
	}
	return mw
}

// searchState carries the incumbent solution plus pruning state through
// Algorithms 1 and 2.
type searchState struct {
	window        int
	minRoughness  float64
	origRoughness float64 // roughness of the unsmoothed series, computed once
	origKurtosis  float64
	lb            int
	candidates    int
}

// feasible records a candidate evaluation, updating the incumbent when it
// improves roughness while preserving kurtosis. It reports whether the
// kurtosis constraint held.
func (s *searchState) observe(w int, m Metrics) bool {
	s.candidates++
	if m.Kurtosis >= s.origKurtosis {
		if m.Roughness < s.minRoughness {
			s.minRoughness = m.Roughness
			s.window = w
		}
		return true
	}
	return false
}

// Search runs the requested strategy over xs (assumed already
// preaggregated if desired) and returns the chosen window and metrics.
func Search(strategy Strategy, xs []float64, opts SearchOptions) (*Result, error) {
	res := new(Result)
	if err := SearchInto(res, strategy, xs, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchInto is Search writing into a caller-owned Result, the entry point
// for refresh paths that must not allocate at steady state: every piece of
// search state lives on the stack or in res. On error res is left
// unspecified.
func SearchInto(res *Result, strategy Strategy, xs []float64, opts SearchOptions) error {
	n := len(xs)
	if n < 4 {
		return fmt.Errorf("%w: need at least 4 points, have %d", ErrInput, n)
	}
	maxWindow := opts.MaxWindow
	if maxWindow <= 0 {
		maxWindow = defaultMaxWindow(n)
	}
	if maxWindow >= n {
		maxWindow = n - 1
	}
	if maxWindow < 2 {
		maxWindow = 2
	}

	origMoments := stats.ComputeMoments(xs)
	origRoughness := stats.Roughness(xs)
	st := searchState{
		window:        1,
		minRoughness:  origRoughness,
		origRoughness: origRoughness,
		origKurtosis:  origMoments.Kurtosis(),
		lb:            1,
	}

	var err error
	switch strategy {
	case StrategyASAP:
		err = searchASAP(xs, maxWindow, opts, &st)
	case StrategyExhaustive:
		err = searchGrid(xs, maxWindow, 1, &st)
	case StrategyGrid2:
		err = searchGrid(xs, maxWindow, 2, &st)
	case StrategyGrid10:
		err = searchGrid(xs, maxWindow, 10, &st)
	case StrategyBinary:
		err = searchBinary(xs, 2, maxWindow, &st)
	default:
		err = fmt.Errorf("%w: unknown strategy %d", ErrInput, int(strategy))
	}
	if err != nil {
		return err
	}

	final, err := Evaluate(xs, st.window)
	if err != nil {
		return err
	}
	*res = Result{
		Window:            st.window,
		Roughness:         final.Roughness,
		Kurtosis:          final.Kurtosis,
		OriginalRoughness: st.origRoughness,
		OriginalKurtosis:  st.origKurtosis,
		Candidates:        st.candidates,
		MaxWindow:         maxWindow,
	}
	return nil
}

// searchGrid evaluates windows 2, 2+step, ... <= maxWindow (step 1 is
// exhaustive search). The roughness metric is not monotonic in window
// length (Section 4.1), so the grid keeps the best feasible candidate seen
// anywhere rather than stopping early.
func searchGrid(xs []float64, maxWindow, step int, st *searchState) error {
	for w := 2; w <= maxWindow; w += step {
		m, err := Evaluate(xs, w)
		if err != nil {
			return err
		}
		st.observe(w, m)
	}
	return nil
}

// searchBinary bisects [head, tail] on the kurtosis constraint, per the IID
// analysis of Section 4.2: when the constraint holds the search moves to
// larger windows (roughness decreases with window length under IID), and
// when it fails the search moves to smaller windows.
func searchBinary(xs []float64, head, tail int, st *searchState) error {
	for head <= tail {
		w := (head + tail) / 2
		if w < 1 {
			break
		}
		m, err := Evaluate(xs, w)
		if err != nil {
			return err
		}
		if st.observe(w, m) {
			head = w + 1
		} else {
			tail = w - 1
		}
	}
	return nil
}

// searchASAP is Algorithm 2 (FindWindow): evaluate ACF peaks from large to
// small with Algorithm 1's pruning, then refine with binary search over the
// surviving range.
func searchASAP(xs []float64, maxWindow int, opts SearchOptions, st *searchState) error {
	n := len(xs)
	acfRes := opts.ACF
	if acfRes == nil {
		var err error
		// Compute two lags past the search bound: a peak at exactly
		// maxWindow (a common case — the dominant period often sets the
		// bound) needs a right neighbor to be detectable as a local max.
		acfRes, err = acf.Compute(xs, minInt(n-1, maxWindow+2))
		if err != nil {
			return err
		}
	}
	corr := acfRes.Correlations

	// Streaming seed (CheckLastWindow): verify the previous window first.
	// A feasible seed becomes the incumbent, enabling both pruning rules
	// for the whole search.
	if opts.SeedWindow > 1 && opts.SeedWindow <= maxWindow {
		m, err := Evaluate(xs, opts.SeedWindow)
		if err != nil {
			return err
		}
		if st.observe(opts.SeedWindow, m) {
			st.lb = maxInt(st.lb, lowerBound(opts.SeedWindow, acfRes.MaxACF, acfAt(corr, opts.SeedWindow)))
		}
	}

	peaks := acfRes.Peaks
	largestFeasible := -1
	tail := maxWindow
	for i := len(peaks) - 1; i >= 0; i-- {
		w := peaks[i]
		if w > maxWindow {
			continue
		}
		if w < st.lb || w == 1 {
			break // peaks are sorted ascending; everything left is smaller
		}
		// Roughness pruning (IsRougher): skip candidates whose Equation 5
		// estimate cannot beat the incumbent.
		if isRougher(corr, st.window, w) {
			continue
		}
		m, err := Evaluate(xs, w)
		if err != nil {
			return err
		}
		if st.observe(w, m) {
			st.lb = maxInt(st.lb, lowerBound(w, acfRes.MaxACF, acfAt(corr, w)))
			if largestFeasible < 0 {
				largestFeasible = i
			}
		}
	}

	// Refinement range: between the pruning lower bound and the first peak
	// above the largest feasible one (windows beyond it were infeasible at
	// their period-aligned positions, and per Section 4.3.2 off-period
	// windows near an infeasible peak rarely satisfy the constraint).
	head := st.lb
	if largestFeasible >= 0 {
		if largestFeasible < len(peaks)-1 {
			tail = minInt(tail, peaks[largestFeasible+1])
		}
		head = maxInt(head, peaks[largestFeasible]+1)
	}
	return searchBinary(xs, maxInt(2, head), minInt(tail, n-1), st)
}

// isRougher reports whether candidate w's estimated roughness exceeds the
// incumbent's, using the ACF-based estimate of Equation 5 (the common
// sqrt(2)*sigma factor cancels; the N/(N-w) correction is dropped exactly
// as in Algorithm 1's ISROUGHER).
func isRougher(corr []float64, incumbent, w int) bool {
	if incumbent <= 1 {
		return false // no incumbent estimate to compare against
	}
	return clampSqrt(1-acfAt(corr, w))*float64(incumbent) >
		clampSqrt(1-acfAt(corr, incumbent))*float64(w)
}

// lowerBound is UpdateLB / Equation 6: the smallest window that could beat
// a feasible window w with autocorrelation a, given the global maximum
// peak correlation maxACF.
func lowerBound(w int, maxACF, a float64) int {
	denom := 1 - a
	if denom <= 0 {
		// Perfectly correlated candidate: nothing smaller can be smoother.
		return w
	}
	lb := float64(w) * clampSqrt((1-maxACF)/denom)
	return int(math.Round(lb))
}

func acfAt(corr []float64, lag int) float64 {
	if lag < 0 || lag >= len(corr) {
		return 0
	}
	return corr[lag]
}

// clampSqrt returns sqrt(max(x, 0)); ACF estimates can exceed 1 by a few
// ulps, which would otherwise produce NaN.
func clampSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SmoothOptions configures the end-to-end Smooth pipeline.
type SmoothOptions struct {
	// Resolution is the target display width in pixels. When > 0 and the
	// series has at least twice as many points, the series is
	// pixel-aware preaggregated before searching (Section 4.4).
	Resolution int
	// Strategy selects the search algorithm (default StrategyASAP).
	Strategy Strategy
	// MaxWindow optionally bounds the search on the preaggregated series.
	MaxWindow int
	// SeedWindow forwards a previous result to the search (streaming).
	SeedWindow int
}

// SmoothResult is Smooth's full output: the chosen window, the smoothed
// series, and the search diagnostics.
type SmoothResult struct {
	Result
	// Smoothed is SMA(preaggregated series, Window).
	Smoothed []float64
	// Aggregated is the preaggregated series the search ran on (aliases
	// the input when no preaggregation was applied).
	Aggregated []float64
	// Ratio is the point-to-pixel ratio used (1 = no preaggregation).
	Ratio int
}

// Smooth runs the full ASAP pipeline on a raw series: pixel-aware
// preaggregation, window search with the chosen strategy, and final SMA.
func Smooth(xs []float64, opts SmoothOptions) (*SmoothResult, error) {
	if len(xs) < 4 {
		return nil, fmt.Errorf("%w: need at least 4 points, have %d", ErrInput, len(xs))
	}
	agg := xs
	ratio := 1
	if opts.Resolution > 0 && len(xs) >= 2*opts.Resolution {
		var err error
		agg, ratio, err = preagg.ForResolution(xs, opts.Resolution)
		if err != nil {
			return nil, err
		}
	}
	res, err := Search(opts.Strategy, agg, SearchOptions{
		MaxWindow:  opts.MaxWindow,
		SeedWindow: opts.SeedWindow,
	})
	if err != nil {
		return nil, err
	}
	smoothed, err := smaTransform(agg, res.Window)
	if err != nil {
		return nil, err
	}
	return &SmoothResult{
		Result:     *res,
		Smoothed:   smoothed,
		Aggregated: agg,
		Ratio:      ratio,
	}, nil
}

// smaTransform materializes SMA(xs, w) with slide 1. Kept local to avoid an
// import cycle with heavier helpers; mirrors sma.Transform.
func smaTransform(xs []float64, w int) ([]float64, error) {
	n := len(xs)
	if w < 1 || w > n {
		return nil, fmt.Errorf("%w: window %d for %d points", ErrInput, w, n)
	}
	out := make([]float64, n-w+1)
	inv := 1 / float64(w)
	var sum float64
	for i := 0; i < w; i++ {
		sum += xs[i]
	}
	out[0] = sum * inv
	for i := 1; i < len(out); i++ {
		sum += xs[i+w-1] - xs[i-1]
		out[i] = sum * inv
	}
	return out, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/asap-go/asap/internal/sma"
	"github.com/asap-go/asap/internal/stats"
)

// noisySine builds the kind of periodic-with-anomaly series ASAP targets.
func noisySine(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

// anomalousSine is the Section 4.3.2 example: a sine whose peak in one
// region is taller than usual.
func anomalousSine(n, period int, from, to int, boost, noise float64, seed int64) []float64 {
	xs := noisySine(n, period, noise, seed)
	for i := from; i < to && i < n; i++ {
		xs[i] += boost
	}
	return xs
}

func TestEvaluateMatchesNaive(t *testing.T) {
	xs := noisySine(500, 25, 0.5, 1)
	for _, w := range []int{1, 2, 7, 25, 50, 499, 500} {
		got, err := Evaluate(xs, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		sm, err := sma.Transform(xs, w)
		if err != nil {
			t.Fatal(err)
		}
		wantRough := stats.Roughness(sm)
		wantKurt := stats.Kurtosis(sm)
		if math.Abs(got.Roughness-wantRough) > 1e-9*(1+wantRough) {
			t.Errorf("w=%d roughness: fused %v, naive %v", w, got.Roughness, wantRough)
		}
		if math.Abs(got.Kurtosis-wantKurt) > 1e-9*(1+wantKurt) {
			t.Errorf("w=%d kurtosis: fused %v, naive %v", w, got.Kurtosis, wantKurt)
		}
	}
}

func TestEvaluateProperty(t *testing.T) {
	prop := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
		}
		w := int(wRaw)%len(xs) + 1
		got, err := Evaluate(xs, w)
		if err != nil {
			return false
		}
		sm, err := sma.Transform(xs, w)
		if err != nil {
			return false
		}
		return math.Abs(got.Roughness-stats.Roughness(sm)) < 1e-8 &&
			math.Abs(got.Kurtosis-stats.Kurtosis(sm)) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateErrors(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, err := Evaluate(xs, 0); err == nil {
		t.Error("window 0 should error")
	}
	if _, err := Evaluate(xs, 4); err == nil {
		t.Error("window beyond length should error")
	}
}

func TestIIDRoughnessClosedForm(t *testing.T) {
	// Equation 2: for IID data, roughness(SMA(X,w)) ~ sqrt(2)*sigma/w.
	rng := rand.New(rand.NewSource(21))
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	sigma := stats.StdDev(xs)
	for _, w := range []int{2, 5, 10, 40} {
		m, err := Evaluate(xs, w)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Sqrt2 * sigma / float64(w)
		if math.Abs(m.Roughness-want)/want > 0.05 {
			t.Errorf("w=%d: roughness %v, closed form %v", w, m.Roughness, want)
		}
	}
}

func TestIIDKurtosisClosedForm(t *testing.T) {
	// Equation 4: Kurt[Y]-3 = (Kurt[X]-3)/w for IID X. A uniform series
	// (kurtosis 1.8 < 3) must see kurtosis increase toward 3 with w, and a
	// Laplace series (kurtosis 6 > 3) must see it decrease toward 3.
	rng := rand.New(rand.NewSource(22))
	n := 400000
	uniform := make([]float64, n)
	laplace := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64()
		u := rng.Float64() - 0.5
		laplace[i] = -math.Copysign(math.Log(1-2*math.Abs(u)), u)
	}
	for _, w := range []int{2, 4, 8} {
		mu, err := Evaluate(uniform, w)
		if err != nil {
			t.Fatal(err)
		}
		wantU := 3 + (1.8-3)/float64(w)
		if math.Abs(mu.Kurtosis-wantU) > 0.1 {
			t.Errorf("uniform w=%d: kurtosis %v, closed form %v", w, mu.Kurtosis, wantU)
		}
		ml, err := Evaluate(laplace, w)
		if err != nil {
			t.Fatal(err)
		}
		wantL := 3 + (6.0-3)/float64(w)
		if math.Abs(ml.Kurtosis-wantL) > 0.2 {
			t.Errorf("laplace w=%d: kurtosis %v, closed form %v", w, ml.Kurtosis, wantL)
		}
	}
}

func TestASAPMatchesExhaustiveOnPeriodicData(t *testing.T) {
	// The Table 2 headline: ASAP finds the same window as exhaustive search
	// while evaluating far fewer candidates. Period-aligned windows are not
	// always the unique argmin on noisy data, so we accept windows whose
	// achieved roughness matches the exhaustive optimum within 2%, but we
	// require exact window agreement for the clean anomalous sine (the
	// paper's own worked example).
	cases := []struct {
		name  string
		xs    []float64
		exact bool
	}{
		{"anomalous-sine", anomalousSine(800, 32, 320, 336, 1.5, 0.12, 3), true},
		{"noisy-sine-p50", noisySine(2000, 50, 0.4, 4), false},
		{"two-period", func() []float64 {
			xs := noisySine(3000, 30, 0.3, 5)
			for i := range xs {
				xs[i] += 0.5 * math.Sin(2*math.Pi*float64(i)/300)
			}
			return xs
		}(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ex, err := Search(StrategyExhaustive, c.xs, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			as, err := Search(StrategyASAP, c.xs, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if c.exact && as.Window != ex.Window {
				t.Errorf("ASAP window %d != exhaustive %d", as.Window, ex.Window)
			}
			if ex.Roughness > 0 && as.Roughness > ex.Roughness*1.02 {
				t.Errorf("ASAP roughness %v worse than exhaustive %v", as.Roughness, ex.Roughness)
			}
			if as.Candidates >= ex.Candidates {
				t.Errorf("ASAP evaluated %d candidates, exhaustive %d — no pruning happened",
					as.Candidates, ex.Candidates)
			}
			if as.Kurtosis < as.OriginalKurtosis {
				t.Errorf("ASAP violated kurtosis constraint: %v < %v", as.Kurtosis, as.OriginalKurtosis)
			}
		})
	}
}

func TestSpikySeriesLeftUnsmoothed(t *testing.T) {
	// Twitter-AAPL behaviour (Table 2, Figure C.1): a series that is smooth
	// except for a few extreme spikes has very high kurtosis; any SMA
	// averages the spikes away, so both exhaustive and ASAP must return
	// window 1.
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 10 + 0.05*rng.NormFloat64()
	}
	xs[700] = 400 // isolated news spike: any averaging dilutes it
	for _, strat := range []Strategy{StrategyExhaustive, StrategyASAP} {
		res, err := Search(strat, xs, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Window != 1 {
			t.Errorf("%v chose window %d for spiky series, want 1 (unsmoothed)", strat, res.Window)
		}
	}
}

func TestKurtosisConstraintBinds(t *testing.T) {
	// For every strategy, the returned window must satisfy the constraint.
	xs := anomalousSine(1200, 40, 500, 520, 2.0, 0.3, 9)
	for _, strat := range []Strategy{StrategyASAP, StrategyExhaustive, StrategyGrid2, StrategyGrid10, StrategyBinary} {
		res, err := Search(strat, xs, SearchOptions{})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Kurtosis < res.OriginalKurtosis-1e-9 {
			t.Errorf("%v: kurtosis %v < original %v", strat, res.Kurtosis, res.OriginalKurtosis)
		}
		if res.Window < 1 || res.Window > res.MaxWindow {
			t.Errorf("%v: window %d outside [1, %d]", strat, res.Window, res.MaxWindow)
		}
	}
}

func TestExhaustiveIsOptimal(t *testing.T) {
	// Exhaustive search must achieve the minimum roughness over all
	// feasible windows; verify against a direct scan.
	xs := noisySine(600, 24, 0.5, 10)
	res, err := Search(StrategyExhaustive, xs, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	origKurt := stats.Kurtosis(xs)
	best, bestW := stats.Roughness(xs), 1
	for w := 2; w <= res.MaxWindow; w++ {
		m, err := Evaluate(xs, w)
		if err != nil {
			t.Fatal(err)
		}
		if m.Kurtosis >= origKurt && m.Roughness < best {
			best, bestW = m.Roughness, w
		}
	}
	if res.Window != bestW {
		t.Errorf("exhaustive window %d, direct scan %d", res.Window, bestW)
	}
	if math.Abs(res.Roughness-best) > 1e-12 {
		t.Errorf("exhaustive roughness %v, direct scan %v", res.Roughness, best)
	}
}

func TestGridCoarserIsNoBetter(t *testing.T) {
	xs := noisySine(1500, 60, 0.4, 11)
	ex, _ := Search(StrategyExhaustive, xs, SearchOptions{})
	g2, _ := Search(StrategyGrid2, xs, SearchOptions{})
	g10, _ := Search(StrategyGrid10, xs, SearchOptions{})
	if g2.Roughness < ex.Roughness-1e-12 {
		t.Errorf("grid2 beat exhaustive: %v < %v", g2.Roughness, ex.Roughness)
	}
	if g10.Roughness < ex.Roughness-1e-12 {
		t.Errorf("grid10 beat exhaustive: %v < %v", g10.Roughness, ex.Roughness)
	}
	if g2.Candidates >= ex.Candidates || g10.Candidates >= g2.Candidates {
		t.Errorf("candidate counts not decreasing: ex=%d g2=%d g10=%d",
			ex.Candidates, g2.Candidates, g10.Candidates)
	}
}

func TestBinarySearchOnIID(t *testing.T) {
	// Section 4.2: for IID data binary search is accurate. With uniform
	// noise (kurtosis < 3) every window is feasible, so binary search must
	// drive to (near) the maximum window.
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	res, err := Search(StrategyBinary, xs, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Window < res.MaxWindow-1 {
		t.Errorf("binary window %d, want close to max %d for uniform IID", res.Window, res.MaxWindow)
	}
	if res.Candidates > 20 {
		t.Errorf("binary search evaluated %d candidates, want O(log n)", res.Candidates)
	}
}

func TestSeedWindowSpeedsSearch(t *testing.T) {
	xs := noisySine(4000, 100, 0.3, 13)
	plain, err := Search(StrategyASAP, xs, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Search(StrategyASAP, xs, SearchOptions{SeedWindow: plain.Window})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Window != plain.Window {
		t.Errorf("seeded window %d != plain %d", seeded.Window, plain.Window)
	}
	if seeded.Candidates > plain.Candidates+1 {
		t.Errorf("seeding increased candidates: %d > %d", seeded.Candidates, plain.Candidates)
	}
}

func TestSeedWindowInfeasibleIgnored(t *testing.T) {
	// A seed that violates the kurtosis constraint must not pollute the
	// result.
	rng := rand.New(rand.NewSource(14))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 10 + 0.05*rng.NormFloat64()
	}
	xs[900] = 500 // single extreme outlier: smoothing infeasible
	res, err := Search(StrategyASAP, xs, SearchOptions{SeedWindow: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Window != 1 {
		t.Errorf("infeasible seed produced window %d, want 1", res.Window)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(StrategyASAP, []float64{1, 2, 3}, SearchOptions{}); err == nil {
		t.Error("3-point series should error")
	}
	if _, err := Search(Strategy(99), noisySine(100, 10, 0.1, 1), SearchOptions{}); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestMaxWindowOverride(t *testing.T) {
	xs := noisySine(1000, 40, 0.3, 15)
	res, err := Search(StrategyExhaustive, xs, SearchOptions{MaxWindow: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWindow != 25 {
		t.Errorf("MaxWindow = %d, want 25", res.MaxWindow)
	}
	if res.Window > 25 {
		t.Errorf("window %d exceeds explicit max 25", res.Window)
	}
	// Larger than series: clamped.
	res, err = Search(StrategyExhaustive, xs, SearchOptions{MaxWindow: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWindow >= len(xs) {
		t.Errorf("MaxWindow %d not clamped below n=%d", res.MaxWindow, len(xs))
	}
}

func TestSmoothEndToEnd(t *testing.T) {
	// 36,000-point daily-periodic series at 1200 px: ratio 30, aggregated
	// length 1200, and the smoothed output must be close to the target
	// resolution and smoother than the input.
	xs := noisySine(36000, 1440, 0.5, 16)
	res, err := Smooth(xs, SmoothOptions{Resolution: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio != 30 {
		t.Errorf("ratio = %d, want 30", res.Ratio)
	}
	if len(res.Aggregated) != 1200 {
		t.Errorf("aggregated length = %d, want 1200", len(res.Aggregated))
	}
	if got := len(res.Smoothed); got != len(res.Aggregated)-res.Window+1 {
		t.Errorf("smoothed length = %d, want %d", got, len(res.Aggregated)-res.Window+1)
	}
	if res.Roughness >= res.OriginalRoughness {
		t.Errorf("smoothing did not reduce roughness: %v >= %v", res.Roughness, res.OriginalRoughness)
	}
}

func TestSmoothNoPreaggWhenSmall(t *testing.T) {
	xs := noisySine(900, 30, 0.3, 17)
	res, err := Smooth(xs, SmoothOptions{Resolution: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio != 1 {
		t.Errorf("ratio = %d, want 1 (series < 2x resolution)", res.Ratio)
	}
	if len(res.Aggregated) != len(xs) {
		t.Errorf("aggregated length changed: %d", len(res.Aggregated))
	}
}

func TestSmoothZeroResolution(t *testing.T) {
	xs := noisySine(500, 25, 0.3, 18)
	res, err := Smooth(xs, SmoothOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio != 1 {
		t.Errorf("ratio = %d, want 1 with resolution 0", res.Ratio)
	}
}

func TestSmoothErrors(t *testing.T) {
	if _, err := Smooth(nil, SmoothOptions{}); err == nil {
		t.Error("empty input should error")
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		StrategyASAP: "ASAP", StrategyExhaustive: "Exhaustive",
		StrategyGrid2: "Grid2", StrategyGrid10: "Grid10", StrategyBinary: "Binary",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("String() = %q, want %q", s.String(), name)
		}
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Errorf("unknown strategy String() = %q", Strategy(42).String())
	}
}

func TestConstantSeriesSearch(t *testing.T) {
	// A constant series has zero roughness and zero kurtosis everywhere;
	// every strategy should terminate and return a valid window.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5
	}
	for _, strat := range []Strategy{StrategyASAP, StrategyExhaustive, StrategyBinary} {
		res, err := Search(strat, xs, SearchOptions{})
		if err != nil {
			t.Fatalf("%v on constant series: %v", strat, err)
		}
		if res.Window < 1 {
			t.Errorf("%v window = %d", strat, res.Window)
		}
	}
}

func BenchmarkSearchASAP(b *testing.B) {
	xs := noisySine(1200, 48, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(StrategyASAP, xs, SearchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchExhaustive(b *testing.B) {
	xs := noisySine(1200, 48, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(StrategyExhaustive, xs, SearchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	xs := noisySine(1200, 48, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(xs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

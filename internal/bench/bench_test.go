package bench

import (
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Quick: true, Seed: 20170901}
}

func TestRegistryComplete(t *testing.T) {
	wantIDs := []string{
		"table1", "table2", "table4",
		"figure1", "figure4", "figure5", "figure6", "figure7",
		"figure8", "figure9", "figure10", "figure11",
		"figureA1", "figureA2", "figureA3", "figureB1", "figureB2", "figureC",
	}
	for _, id := range wantIDs {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(wantIDs) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(wantIDs))
	}
	if _, ok := ByID("bogus"); ok {
		t.Error("bogus experiment found")
	}
}

func TestAllOrdering(t *testing.T) {
	ids := make([]string, 0)
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	// tables first, then main figures numerically, then appendix figures.
	idx := func(id string) int {
		for i, v := range ids {
			if v == id {
				return i
			}
		}
		t.Fatalf("%s missing", id)
		return -1
	}
	if !(idx("table1") < idx("table2") && idx("table2") < idx("figure1")) {
		t.Errorf("tables not first: %v", ids)
	}
	if idx("figure8") > idx("figure10") {
		t.Errorf("figure10 sorted before figure8: %v", ids)
	}
	if idx("figure11") > idx("figureA1") {
		t.Errorf("appendix figures before main: %v", ids)
	}
}

func TestTableString(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tbl.String()
	for _, want := range []string{"demo", "a", "bb", "333", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentsRunQuick executes every registered experiment in quick
// mode — the integration test that the whole harness produces output.
// Heavier experiments get their own subtests so failures are attributable.
func TestExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tbl.Title)
				}
				if out := tbl.String(); len(out) < 10 {
					t.Errorf("%s: table renders to %q", e.ID, out)
				}
			}
		})
	}
}

func TestSweepInts(t *testing.T) {
	got := sweepInts(2, 10, 5)
	if got[0] != 2 || got[len(got)-1] != 10 {
		t.Errorf("sweep endpoints wrong: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("sweep not increasing: %v", got)
		}
	}
	if len(sweepInts(5, 5, 3)) != 1 {
		t.Error("degenerate sweep should dedupe")
	}
	if len(sweepInts(5, 2, 3)) < 1 {
		t.Error("inverted range should clamp")
	}
}

func TestOrderKey(t *testing.T) {
	if !(orderKey("table1") < orderKey("table2")) {
		t.Error("table order")
	}
	if !(orderKey("figure2") < orderKey("figure10")) {
		t.Error("numeric figure order")
	}
	if !(orderKey("figure11") < orderKey("figureA1")) {
		t.Error("appendix after main figures")
	}
}

package bench

import (
	"fmt"

	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/devices"
	"github.com/asap-go/asap/internal/render"
)

// loadValues generates a dataset, capping its size in quick mode so the
// whole suite stays fast.
func loadValues(spec datasets.Spec, cfg Config) []float64 {
	n := spec.N
	if cfg.Quick && n > 100_000 {
		n = 100_000
	}
	return spec.GenerateN(n, cfg.Seed).Values
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: search-space reduction from pixel-aware preaggregation (1M points)",
		PaperClaim: "Reductions of 3676x (Apple Watch) down to 195x (iMac 5K) on a " +
			"1M-point series; reduction equals the point-to-pixel ratio.",
		Run: runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: batch window choice and candidates, ASAP vs exhaustive (1200 px)",
		PaperClaim: "ASAP finds the same window as exhaustive search on all 11 datasets " +
			"while checking an average of 13x fewer candidates (8.64 vs 113.64); " +
			"Twitter AAPL is left unsmoothed (window 1).",
		Run: runTable2,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Table 4: pixel error of ASAP, M4, line simplification and PAA800 (800 px)",
		PaperClaim: "ASAP has very high pixel error (~0.92-0.94) on every dataset; M4 is " +
			"near zero (<= 0.04); simplification and PAA800 fall in between. ASAP " +
			"optimizes attention, not pixel fidelity.",
		Run: runTable4,
	})
}

func runTable1(cfg Config) ([]*Table, error) {
	const n = 1_000_000
	t := &Table{
		Title:  "Search-space reduction via pixel-aware preaggregation, 1M points",
		Header: []string{"Device", "Resolution", "Reduction", "Paper"},
	}
	paper := map[string]string{
		"38mm Apple Watch":       "3676x",
		"Samsung Galaxy S7":      "694x",
		"13\" MacBook Pro":       "434x",
		"Dell 34 Curved Monitor": "291x",
		"27\" iMac Retina":       "195x",
	}
	for _, d := range devices.Table1 {
		r, err := d.Reduction(n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprintf("%d x %d", d.Width, d.Height),
			fmt.Sprintf("%.0fx", r),
			paper[d.Name],
		})
	}
	t.Notes = append(t.Notes,
		"reduction = floor(N/width); the paper rounds the real-valued ratio for the Dell (290.7 -> 291).")
	return []*Table{t}, nil
}

func runTable2(cfg Config) ([]*Table, error) {
	t := &Table{
		Title: "Batch search at target resolution 1200 px",
		Header: []string{"Dataset", "#points", "win(exh)", "win(ASAP)", "same",
			"#cand(exh)", "#cand(ASAP)", "paper win", "paper #cand e/A"},
	}
	var sumExh, sumASAP, agree, rows float64
	for _, spec := range datasets.Catalog() {
		xs := loadValues(spec, cfg)
		exh, err := core.Smooth(xs, core.SmoothOptions{Resolution: 1200, Strategy: core.StrategyExhaustive})
		if err != nil {
			return nil, fmt.Errorf("%s exhaustive: %w", spec.Name, err)
		}
		as, err := core.Smooth(xs, core.SmoothOptions{Resolution: 1200, Strategy: core.StrategyASAP})
		if err != nil {
			return nil, fmt.Errorf("%s ASAP: %w", spec.Name, err)
		}
		same := "no"
		// "Same result" in the paper's sense: identical window, or a
		// window achieving the same optimal roughness within 2%.
		if as.Window == exh.Window || (exh.Roughness > 0 && as.Roughness <= exh.Roughness*1.02) {
			agree++
			if as.Window == exh.Window {
				same = "yes"
			} else {
				same = "~ (equal roughness)"
			}
		}
		sumExh += float64(exh.Candidates)
		sumASAP += float64(as.Candidates)
		rows++
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", len(xs)),
			fmt.Sprintf("%d", exh.Window),
			fmt.Sprintf("%d", as.Window),
			same,
			fmt.Sprintf("%d", exh.Candidates),
			fmt.Sprintf("%d", as.Candidates),
			fmt.Sprintf("%d", spec.PaperWindow),
			fmt.Sprintf("%d/%d", spec.PaperCandExhaustive, spec.PaperCandASAP),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean candidates: exhaustive %.1f, ASAP %.1f (%.1fx fewer); paper: 113.64 vs 8.64 (13x)",
			sumExh/rows, sumASAP/rows, sumExh/sumASAP),
		fmt.Sprintf("window agreement (exact or equal-roughness): %.0f/%.0f datasets", agree, rows),
		"absolute windows differ from the paper because the datasets are synthetic reconstructions; "+
			"the qualitative behaviour (periodic windows found, Twitter AAPL unsmoothed) is preserved.")
	return []*Table{t}, nil
}

func runTable4(cfg Config) ([]*Table, error) {
	t := &Table{
		Title:  "Pixel error vs original plot, 800x300 canvas",
		Header: []string{"Dataset", "ASAP", "M4", "simp (VW)", "PAA800", "paper ASAP/M4/simp/PAA800"},
	}
	paper := map[string]string{
		"Temp":  "0.94/0.02/0.06/0.36",
		"Taxi":  "0.94/0.02/0.05/0.22",
		"EEG":   "0.92/0.02/0.21/0.61",
		"Sine":  "0.93/0/0/0",
		"Power": "0.94/0.04/0.17/0.56",
	}
	techniques := []baselines.Technique{
		baselines.TechASAP, baselines.TechM4, baselines.TechSimplify, baselines.TechPAA800,
	}
	const width, height = 800, 300
	for _, spec := range datasets.UserStudySpecs() {
		xs := loadValues(spec, cfg)
		row := []string{spec.Name}
		for _, tech := range techniques {
			e, err := render.TechniquePixelError(tech, xs, width, height)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", spec.Name, tech, err)
			}
			row = append(row, fmtF(e))
		}
		row = append(row, paper[spec.Name])
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected ordering: ASAP >> PAA800 > simp > M4 ~ 0. ASAP trades pixel fidelity for attention (Sec. 6).")
	return []*Table{t}, nil
}

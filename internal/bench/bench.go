// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 5 and the appendix). Each
// experiment is registered with an ID matching DESIGN.md's per-experiment
// index; cmd/asap-bench runs them from the command line and bench_test.go
// exposes each as a testing.B benchmark.
//
// Timings are wall-clock on the host running the harness; as in the paper,
// the reported quantities are *relative* (speedups over a baseline,
// roughness ratios), which transfer across machines even though absolute
// numbers do not.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Config adjusts experiment cost.
type Config struct {
	// Quick shrinks workloads (smaller datasets, fewer observers, fewer
	// sweep points) so the full suite finishes in seconds. The full-size
	// runs match the paper's configurations.
	Quick bool
	// Seed makes every randomized component deterministic.
	Seed int64
	// OutDir, when non-empty, receives SVG renderings for the figure
	// experiments that produce plots.
	OutDir string
}

// DefaultConfig is the configuration used by cmd/asap-bench unless
// overridden by flags.
var DefaultConfig = Config{Seed: 20170901} // arXiv v2 date of the paper

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes hold the paper-vs-measured commentary appended to the table.
	Notes []string
}

// String renders the table as aligned monospaced text.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID matches the DESIGN.md index (e.g. "table2", "figure8").
	ID string
	// Title describes the artifact.
	Title string
	// PaperClaim summarizes what the paper reports, for the side-by-side
	// in EXPERIMENTS.md.
	PaperClaim string
	// Run executes the experiment and returns its result tables.
	Run func(cfg Config) ([]*Table, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment sorted by ID (tables first, then
// figures, in their natural order).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts table1 < table2 < table4 < figure1 < ... < figure11 <
// figureA1 ... despite lexicographic quirks ("figure10" < "figure2").
func orderKey(id string) string {
	pad := func(prefix, rest string) string {
		if len(rest) == 1 {
			rest = "0" + rest
		}
		return prefix + rest
	}
	switch {
	case strings.HasPrefix(id, "table"):
		return pad("0", id[len("table"):])
	case strings.HasPrefix(id, "figure"):
		rest := id[len("figure"):]
		if rest != "" && rest[0] >= '0' && rest[0] <= '9' {
			return pad("1", rest)
		}
		return "2" + rest // appendix figures: A1, A2, ..., B1, B2, C
	default:
		return "9" + id
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// timeIt measures f's wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// timeAtLeast runs f repeatedly until minDuration has elapsed and returns
// the mean duration per call. It stabilizes timings for very fast
// operations without the full testing.B machinery.
func timeAtLeast(minDuration time.Duration, f func() error) (time.Duration, error) {
	var total time.Duration
	n := 0
	for total < minDuration || n < 1 {
		d, err := timeIt(f)
		if err != nil {
			return 0, err
		}
		total += d
		n++
		if n >= 1000 {
			break
		}
	}
	return total / time.Duration(n), nil
}

// fmtDuration renders a duration with 3 significant digits.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3gms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3gus", float64(d.Nanoseconds())/1000)
	}
}

// fmtF renders a float with 3 significant digits.
func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }

// fmtX renders a ratio as "12.3x".
func fmtX(v float64) string { return fmt.Sprintf("%.3gx", v) }

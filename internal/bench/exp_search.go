package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/asap-go/asap/internal/acf"
	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/preagg"
	"github.com/asap-go/asap/internal/sma"
	"github.com/asap-go/asap/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "figure8",
		Title: "Figure 8: speed-up and roughness ratio vs exhaustive search (preaggregated)",
		PaperClaim: "ASAP is up to 60x faster than exhaustive search with near-identical " +
			"roughness; binary search is similarly fast but up to 7.5x rougher; Grid2 " +
			"matches quality but fails to scale; Grid10 is worst overall.",
		Run: runFigure8,
	})
	register(Experiment{
		ID:    "figure9",
		Title: "Figure 9: impact of pixel-aware preaggregation vs raw exhaustive baseline",
		PaperClaim: "ASAP on aggregated series is up to 4 orders of magnitude faster than " +
			"exhaustive search on raw data, with roughness within 1.2x of the baseline.",
		Run: runFigure9,
	})
	register(Experiment{
		ID:    "figureA1",
		Title: "Figure A.1: accuracy of the Equation 5 roughness estimate (Temp)",
		PaperClaim: "The ACF-based roughness estimate is within 1.2% of the true roughness " +
			"across all window sizes; roughness dips at period-aligned windows.",
		Run: runFigureA1,
	})
	register(Experiment{
		ID:    "figureA2",
		Title: "Figure A.2: throughput with/without preaggregation (1200 px)",
		PaperClaim: "ASAP on preaggregated data is up to 5 orders of magnitude faster than " +
			"exhaustive search on raw data (machine temp, traffic data).",
		Run: runFigureA2,
	})
	register(Experiment{
		ID:    "figureA3",
		Title: "Figure A.3: runtime of ASAP vs the O(n) baselines PAA and M4 (1200 px)",
		PaperClaim: "ASAP is up to 19.6x slower than PAA and 13.2x slower than M4; means " +
			"across datasets: 72.9 / 33.4 / 35.9 ms. Same order of magnitude, more work.",
		Run: runFigureA3,
	})
}

// figure8Datasets are the seven largest datasets of Table 2, per Figure 8's
// caption.
func figure8Datasets() []string {
	return []string{"gas sensor", "EEG", "Power", "traffic data", "machine temp", "Twitter AAPL", "ramp traffic"}
}

func runFigure8(cfg Config) ([]*Table, error) {
	resolutions := []int{1000, 2000, 3000, 4000, 5000}
	minDur := 30 * time.Millisecond
	if cfg.Quick {
		resolutions = []int{1000, 3000, 5000}
		minDur = 3 * time.Millisecond
	}
	strategies := []core.Strategy{core.StrategyGrid2, core.StrategyGrid10, core.StrategyBinary, core.StrategyASAP}

	speedT := &Table{
		Title:  "Average speed-up over exhaustive search (per-candidate search only, preaggregated input)",
		Header: []string{"Resolution", "Grid2", "Grid10", "Binary", "ASAP"},
	}
	roughT := &Table{
		Title:  "Average roughness ratio vs exhaustive search (1.0 = identical quality)",
		Header: []string{"Resolution", "Grid2", "Grid10", "Binary", "ASAP"},
	}

	for _, res := range resolutions {
		speedups := make(map[core.Strategy][]float64)
		ratios := make(map[core.Strategy][]float64)
		for _, name := range figure8Datasets() {
			spec, _ := datasets.ByName(name)
			xs := loadValues(spec, cfg)
			agg, _, err := preagg.ForResolution(xs, res)
			if err != nil {
				return nil, err
			}
			exhTime, err := timeAtLeast(minDur, func() error {
				_, err := core.Search(core.StrategyExhaustive, agg, core.SearchOptions{})
				return err
			})
			if err != nil {
				return nil, err
			}
			exhRes, err := core.Search(core.StrategyExhaustive, agg, core.SearchOptions{})
			if err != nil {
				return nil, err
			}
			for _, strat := range strategies {
				st, err := timeAtLeast(minDur, func() error {
					_, err := core.Search(strat, agg, core.SearchOptions{})
					return err
				})
				if err != nil {
					return nil, err
				}
				sr, err := core.Search(strat, agg, core.SearchOptions{})
				if err != nil {
					return nil, err
				}
				speedups[strat] = append(speedups[strat], float64(exhTime)/float64(st))
				if exhRes.Roughness > 0 {
					ratios[strat] = append(ratios[strat], sr.Roughness/exhRes.Roughness)
				}
			}
		}
		speedRow := []string{fmt.Sprintf("%d", res)}
		roughRow := []string{fmt.Sprintf("%d", res)}
		for _, strat := range strategies {
			speedRow = append(speedRow, fmtX(mean(speedups[strat])))
			roughRow = append(roughRow, fmtX(mean(ratios[strat])))
		}
		speedT.Rows = append(speedT.Rows, speedRow)
		roughT.Rows = append(roughT.Rows, roughRow)
	}
	speedT.Notes = append(speedT.Notes,
		"expected shape: ASAP and Binary scale far better than Grid2; Grid10 sits between.",
		"paper: ASAP up to 60x over exhaustive, within ~50% of Binary's speed.")
	roughT.Notes = append(roughT.Notes,
		"expected shape: ASAP and Grid2 stay near 1.0x; Binary and Grid10 degrade (paper: Binary up to 7.5x).")
	return []*Table{speedT, roughT}, nil
}

func runFigure9(cfg Config) ([]*Table, error) {
	resolutions := []int{1000, 2000, 3000, 4000, 5000}
	if cfg.Quick {
		resolutions = []int{1000, 3000, 5000}
	}
	names := []string{"machine temp", "traffic data"}

	speedT := &Table{
		Title:  "Average speed-up over the baseline (exhaustive search on the raw series)",
		Header: []string{"Resolution", "ASAPraw", "Grid1 (exh, preagg)", "ASAP (preagg)"},
	}
	roughT := &Table{
		Title:  "Average roughness ratio vs the raw-exhaustive baseline",
		Header: []string{"Resolution", "ASAPraw", "Grid1 (exh, preagg)", "ASAP (preagg)"},
	}

	type variant struct {
		name   string
		preagg bool
		strat  core.Strategy
	}
	variants := []variant{
		{"ASAPraw", false, core.StrategyASAP},
		{"Grid1", true, core.StrategyExhaustive},
		{"ASAP", true, core.StrategyASAP},
	}

	// Baseline: exhaustive on raw. Expensive by design and independent of
	// resolution — measure once per dataset.
	type baseline struct {
		xs   []float64
		time float64
		res  *core.Result
	}
	bases := make(map[string]baseline)
	for _, name := range names {
		spec, _ := datasets.ByName(name)
		xs := loadValues(spec, cfg)
		baseTime, err := timeIt(func() error {
			_, err := core.Search(core.StrategyExhaustive, xs, core.SearchOptions{})
			return err
		})
		if err != nil {
			return nil, err
		}
		baseRes, err := core.Search(core.StrategyExhaustive, xs, core.SearchOptions{})
		if err != nil {
			return nil, err
		}
		bases[name] = baseline{xs: xs, time: float64(baseTime), res: baseRes}
	}

	for _, res := range resolutions {
		speed := make(map[string][]float64)
		rough := make(map[string][]float64)
		for _, name := range names {
			b := bases[name]
			xs, baseTime, baseRes := b.xs, b.time, b.res
			// The raw baseline's roughness is measured on the raw smoothed
			// series; preaggregated variants are compared on theirs. As in
			// the paper, the ratio compares achieved plot smoothness.
			for _, v := range variants {
				data := xs
				if v.preagg {
					agg, _, err := preagg.ForResolution(xs, res)
					if err != nil {
						return nil, err
					}
					data = agg
				}
				vt, err := timeAtLeast(2*time.Millisecond, func() error {
					_, err := core.Search(v.strat, data, core.SearchOptions{})
					return err
				})
				if err != nil {
					return nil, err
				}
				vr, err := core.Search(v.strat, data, core.SearchOptions{})
				if err != nil {
					return nil, err
				}
				speed[v.name] = append(speed[v.name], float64(baseTime)/float64(vt))
				// Roughness is compared *as plotted*: the raw pipeline's
				// smoothed output is sampled at the point-to-pixel stride
				// so both pipelines measure per-pixel steps.
				ratio, err := preagg.Ratio(len(xs), res)
				if err != nil {
					return nil, err
				}
				bn := plotRoughness(xs, baseRes.Window, ratio)
				vn := vr.Roughness
				if !v.preagg {
					vn = plotRoughness(xs, vr.Window, ratio)
				}
				if bn > 0 {
					rough[v.name] = append(rough[v.name], vn/bn)
				}
			}
		}
		speedT.Rows = append(speedT.Rows, []string{
			fmt.Sprintf("%d", res),
			fmtX(mean(speed["ASAPraw"])), fmtX(mean(speed["Grid1"])), fmtX(mean(speed["ASAP"])),
		})
		roughT.Rows = append(roughT.Rows, []string{
			fmt.Sprintf("%d", res),
			fmtX(mean(rough["ASAPraw"])), fmtX(mean(rough["Grid1"])), fmtX(mean(rough["ASAP"])),
		})
	}
	speedT.Notes = append(speedT.Notes,
		"expected shape: preaggregated variants orders of magnitude above 1x, ASAPraw well above 1x but below them;",
		"paper: preaggregation contributes ~5 (vs raw exhaustive) and ~2.5 (vs raw ASAP) orders of magnitude.")
	roughT.Notes = append(roughT.Notes,
		"expected shape: all variants within ~1.2x of baseline roughness (scale-normalized).")
	return []*Table{speedT, roughT}, nil
}

func runFigureA1(cfg Config) ([]*Table, error) {
	spec, _ := datasets.ByName("Temp")
	xs := loadValues(spec, cfg)
	agg, _, err := preagg.ForResolution(xs, 1200)
	if err != nil {
		return nil, err
	}
	n := len(agg)
	maxW := n / 10
	res, err := acf.Compute(agg, maxW+2)
	if err != nil {
		return nil, err
	}
	sigma := stats.StdDev(agg)

	t := &Table{
		Title:  "Equation 5 roughness estimate vs true roughness (Temp, preaggregated to 1200 px)",
		Header: []string{"Window", "True", "Estimate", "Error %"},
	}
	var maxErr, sumErr float64
	count := 0
	step := 1
	if maxW > 40 {
		step = maxW / 40 // keep the table readable; stats use all windows
	}
	for w := 2; w <= maxW; w++ {
		m, err := core.Evaluate(agg, w)
		if err != nil {
			return nil, err
		}
		est := res.EstimateRoughness(sigma, n, w)
		errPct := 0.0
		if m.Roughness > 0 {
			errPct = math.Abs(est-m.Roughness) / m.Roughness * 100
		}
		if errPct > maxErr {
			maxErr = errPct
		}
		sumErr += errPct
		count++
		if (w-2)%step == 0 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", w), fmtF(m.Roughness), fmtF(est), fmtF(errPct),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("across all %d windows: mean error %.2f%%, max error %.2f%% (paper: within 1.2%%)",
			count, sumErr/float64(count), maxErr),
		"roughness dips at windows aligned with the (preaggregated) annual period.")
	return []*Table{t}, nil
}

func runFigureA2(cfg Config) ([]*Table, error) {
	t := &Table{
		Title:  "Search throughput, points/sec (1200 px target)",
		Header: []string{"Dataset", "Exhaustive(raw)", "ASAPraw", "Grid1(preagg)", "ASAP(preagg)", "paper (exh/ASAPnoagg/Grid1/ASAP)"},
	}
	paper := map[string]string{
		"machine temp": "57 / 18K / 233K / 5.9M",
		"traffic data": "26 / 5K / 336K / 4.7M",
	}
	for _, name := range []string{"machine temp", "traffic data"} {
		spec, _ := datasets.ByName(name)
		xs := loadValues(spec, cfg)
		agg, _, err := preagg.ForResolution(xs, 1200)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		type v struct {
			data  []float64
			strat core.Strategy
		}
		for _, variant := range []v{
			{xs, core.StrategyExhaustive},
			{xs, core.StrategyASAP},
			{agg, core.StrategyExhaustive},
			{agg, core.StrategyASAP},
		} {
			minDur := 20 * time.Millisecond
			if cfg.Quick {
				minDur = 2 * time.Millisecond
			}
			d, err := timeAtLeast(minDur, func() error {
				_, err := core.Search(variant.strat, variant.data, core.SearchOptions{})
				return err
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtThroughput(float64(len(xs))/d.Seconds()))
		}
		row = append(row, paper[name])
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"throughput = raw points per search second; expected ordering Exhaustive(raw) << ASAPraw << Grid1 << ASAP.")
	return []*Table{t}, nil
}

func runFigureA3(cfg Config) ([]*Table, error) {
	t := &Table{
		Title:  "Runtime per render: ASAP vs PAA vs M4 (1200 px target)",
		Header: []string{"Dataset", "ASAP", "PAA", "M4", "ASAP/PAA", "ASAP/M4"},
	}
	minDur := 20 * time.Millisecond
	if cfg.Quick {
		minDur = 2 * time.Millisecond
	}
	var sumASAP, sumPAA, sumM4 float64
	for _, spec := range datasets.Catalog() {
		if spec.Name == "sim daily" {
			continue // Figure A.3 reports ten datasets, omitting sim daily
		}
		xs := loadValues(spec, cfg)
		asapTime, err := timeAtLeast(minDur, func() error {
			_, err := core.Smooth(xs, core.SmoothOptions{Resolution: 1200})
			return err
		})
		if err != nil {
			return nil, err
		}
		paaTime, err := timeAtLeast(minDur, func() error {
			_, err := baselines.PAA(xs, 1200)
			return err
		})
		if err != nil {
			return nil, err
		}
		m4Time, err := timeAtLeast(minDur, func() error {
			_, err := baselines.M4(xs, 1200)
			return err
		})
		if err != nil {
			return nil, err
		}
		sumASAP += asapTime.Seconds()
		sumPAA += paaTime.Seconds()
		sumM4 += m4Time.Seconds()
		t.Rows = append(t.Rows, []string{
			spec.Name, fmtDuration(asapTime), fmtDuration(paaTime), fmtDuration(m4Time),
			fmtX(float64(asapTime) / float64(paaTime)),
			fmtX(float64(asapTime) / float64(m4Time)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("totals: ASAP %.1fms, PAA %.1fms, M4 %.1fms (paper means: 72.9 / 33.4 / 35.9 ms)",
			sumASAP*1000, sumPAA*1000, sumM4*1000),
		"expected shape: ASAP within ~20x of the linear-time reducers on every dataset (paper max: 19.6x).")
	return []*Table{t}, nil
}

// plotRoughness measures the roughness of SMA(xs, window) as drawn at a
// display whose point-to-pixel stride is the given ratio: only every
// stride-th output lands on a distinct pixel column.
func plotRoughness(xs []float64, window, stride int) float64 {
	sm, err := sma.Transform(xs, window)
	if err != nil {
		return 0
	}
	if stride < 1 {
		stride = 1
	}
	sampled := make([]float64, 0, len(sm)/stride+1)
	for i := 0; i < len(sm); i += stride {
		sampled = append(sampled, sm[i])
	}
	return stats.Roughness(sampled)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func fmtThroughput(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/plot"
	"github.com/asap-go/asap/internal/sma"
	"github.com/asap-go/asap/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "figure1",
		Title: "Figure 1: NYC taxi — unsmoothed vs ASAP vs oversmoothed",
		PaperClaim: "The hourly-average raw plot hides the Thanksgiving dip behind daily " +
			"fluctuations; ASAP's (roughly weekly) smoothing makes it prominent; monthly " +
			"oversmoothing nearly erases it.",
		Run: runFigure1,
	})
	register(Experiment{
		ID:    "figure4",
		Title: "Figure 4: three series with identical mean/std but different roughness",
		PaperClaim: "Jagged, bent, and straight series all have mean 0 and std 1, yet " +
			"roughness 2.04, 0.4, and 0 — roughness captures visual smoothness where " +
			"summary statistics cannot.",
		Run: runFigure4,
	})
	register(Experiment{
		ID:    "figure5",
		Title: "Figure 5: kurtosis separates normal from Laplace at equal mean/variance",
		PaperClaim: "Normal and Laplace samples with mean 0 and variance 2 have kurtosis " +
			"3 and 6: kurtosis captures the tendency to produce outliers.",
		Run: runFigure5,
	})
	register(Experiment{
		ID:    "figureB2",
		Title: "Figure B.2: achieved roughness of alternative smoothers relative to SMA",
		PaperClaim: "Under the same selection criterion, FFT-dominant and minmax are 30-320x " +
			"rougher than SMA; FFT-low, SG1 and SG4 are competitive and occasionally smoother.",
		Run: runFigureB2,
	})
	register(Experiment{
		ID:    "figureC",
		Title: "Figures C.1-C.2: raw vs ASAP renderings for the remaining datasets",
		PaperClaim: "ASAP smooths every remaining dataset except Twitter AAPL, which stays " +
			"unsmoothed due to its high initial kurtosis.",
		Run: runFigureC,
	})
}

// writeSVG emits an SVG artifact when cfg.OutDir is set.
func writeSVG(cfg Config, name, content string) error {
	if cfg.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.OutDir, name), []byte(content), 0o644)
}

func runFigure1(cfg Config) ([]*Table, error) {
	spec, _ := datasets.ByName("Taxi")
	xs := loadValues(spec, cfg)

	// Raw plot (paper: hourly average of the 30-minute series).
	hourly, err := sma.TransformSlide(xs, 2, 2)
	if err != nil {
		return nil, err
	}
	asapRes, err := core.Smooth(xs, core.SmoothOptions{Resolution: 800})
	if err != nil {
		return nil, err
	}
	over, err := baselines.Oversmooth(asapRes.Aggregated)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 1 plots (z-scored for presentation, as in the paper)",
		Header: []string{"Plot", "Window", "Roughness", "Kurtosis", "Dip visible?"},
	}
	lo, hi := spec.AnomalySpan(len(xs))
	addRow := func(name string, values []float64, window int, scale int) {
		z := stats.ZScores(values)
		// Dip visibility proxy: mean z-score inside the anomaly span vs
		// the minimum the plot reaches elsewhere. Visible when the span
		// is clearly the lowest sustained region.
		sLo, sHi := lo/scale, hi/scale
		if sHi > len(z) {
			sHi = len(z)
		}
		visible := "no"
		if sLo < sHi && sHi <= len(z) {
			dip := stats.Mean(z[sLo:sHi])
			rest := append(append([]float64{}, z[:sLo]...), z[sHi:]...)
			m := stats.ComputeMoments(rest)
			if dip < m.Mean-1.0*m.StdDev() {
				visible = "yes"
			}
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", window), fmtF(stats.Roughness(z)), fmtF(stats.Kurtosis(z)), visible,
		})
	}
	addRow("Unsmoothed (hourly avg)", hourly, 1, 2)
	addRow("ASAP", asapRes.Smoothed, asapRes.Window, asapRes.Ratio)
	addRow("Oversmoothed (n/4 avg)", over, len(asapRes.Aggregated)/4, asapRes.Ratio)
	t.Notes = append(t.Notes,
		"expected shape: the dip is a sustained >1-sigma deviation only in the ASAP plot;",
		"oversmoothing lowers roughness further but flattens the dip's contrast (and the rest of the plot).")

	svg, err := plot.SVGSeries("Figure 1: NYC Taxi (z-scores)", 900, 420, map[string][]float64{
		"unsmoothed": stats.ZScores(hourly),
		"ASAP":       stats.ZScores(asapRes.Smoothed),
		"oversmooth": stats.ZScores(over),
	}, []string{"unsmoothed", "ASAP", "oversmooth"})
	if err != nil {
		return nil, err
	}
	if err := writeSVG(cfg, "figure1_taxi.svg", svg); err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

func runFigure4(cfg Config) ([]*Table, error) {
	n := 64
	jagged := make([]float64, n)
	bent := make([]float64, n)
	straight := make([]float64, n)
	for i := range jagged {
		if i%2 == 0 {
			jagged[i] = 1
		} else {
			jagged[i] = -1
		}
		if i < n/2 {
			bent[i] = 0.5 * float64(i)
		} else {
			bent[i] = 0.5*float64(n/2) + 1.5*float64(i-n/2)
		}
		straight[i] = float64(i)
	}
	t := &Table{
		Title:  "Three series normalized to mean 0, std 1",
		Header: []string{"Series", "Mean", "StdDev", "Roughness", "Paper roughness"},
	}
	for _, row := range []struct {
		name  string
		vals  []float64
		paper string
	}{
		{"A (jagged)", jagged, "2.04"},
		{"B (bent line)", bent, "0.4"},
		{"C (straight line)", straight, "0"},
	} {
		z := stats.ZScores(row.vals)
		m := stats.ComputeMoments(z)
		t.Rows = append(t.Rows, []string{
			row.name, fmtF(m.Mean), fmtF(m.StdDev()), fmtF(stats.Roughness(z)), row.paper,
		})
	}
	t.Notes = append(t.Notes,
		"the paper's exact point sets are unpublished; these series have the same construction and the",
		"same ordering, with the straight line at exactly 0.")
	return []*Table{t}, nil
}

func runFigure5(cfg Config) ([]*Table, error) {
	n := 200_000
	if cfg.Quick {
		n = 50_000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	normal := make([]float64, n)
	laplace := make([]float64, n)
	for i := 0; i < n; i++ {
		normal[i] = rng.NormFloat64() * math.Sqrt2
		u := rng.Float64() - 0.5
		laplace[i] = -math.Copysign(math.Log(1-2*math.Abs(u)), u)
	}
	t := &Table{
		Title:  "Kurtosis of equal mean/variance samples",
		Header: []string{"Distribution", "Mean", "Variance", "Kurtosis", "Paper kurtosis"},
	}
	for _, row := range []struct {
		name  string
		vals  []float64
		paper string
	}{
		{"Normal(0, 2)", normal, "3"},
		{"Laplace(0, 1)", laplace, "6"},
	} {
		m := stats.ComputeMoments(row.vals)
		t.Rows = append(t.Rows, []string{
			row.name, fmtF(m.Mean), fmtF(m.Variance()), fmtF(m.Kurtosis()), row.paper,
		})
	}
	return []*Table{t}, nil
}

// bestFeasibleRoughness sweeps a smoother's parameter, returning the lowest
// roughness among outputs satisfying the kurtosis-preservation constraint.
// Falls back to the unsmoothed roughness when nothing is feasible (the
// selection criterion then leaves the series alone).
func bestFeasibleRoughness(agg []float64, candidates []int, smooth func(k int) ([]float64, error)) (float64, error) {
	origKurt := stats.Kurtosis(agg)
	best := stats.Roughness(agg)
	for _, k := range candidates {
		out, err := smooth(k)
		if err != nil {
			continue // infeasible parameter for this length; skip
		}
		if len(out) < 3 {
			continue
		}
		if stats.Kurtosis(out) >= origKurt {
			if r := stats.Roughness(out); r < best {
				best = r
			}
		}
	}
	return best, nil
}

func runFigureB2(cfg Config) ([]*Table, error) {
	t := &Table{
		Title:  "Achieved roughness relative to SMA (same selection criterion), 800 px",
		Header: []string{"Dataset", "FFT-low", "FFT-dominant", "SG1", "SG4", "minmax", "SMA", "paper (low/dom/SG1/SG4/minmax)"},
	}
	paper := map[string]string{
		"Temp":  "0.08/315.82/1.77/6.50/316.35",
		"Taxi":  "0.36/169.51/8.30/20.98/204.84",
		"EEG":   "0.03/120.81/0.63/2.44/148.77",
		"Sine":  "0.04/49.21/2.58/23.91/50.45",
		"Power": "0.23/31.13/0.60/1.04/38.17",
	}
	for _, spec := range datasets.UserStudySpecs() {
		xs := loadValues(spec, cfg)
		smoothRes, err := core.Smooth(xs, core.SmoothOptions{Resolution: studyWidth, Strategy: core.StrategyExhaustive})
		if err != nil {
			return nil, err
		}
		agg := smoothRes.Aggregated
		smaRough := smoothRes.Roughness
		if smaRough <= 0 {
			smaRough = 1e-12
		}
		maxWindow := len(agg) / 10
		if maxWindow < 4 {
			maxWindow = 4
		}
		windows := sweepInts(2, maxWindow, 16)
		comps := sweepInts(1, len(agg)/4, 16)

		fftLow, err := bestFeasibleRoughness(agg, comps, func(k int) ([]float64, error) {
			return baselines.FFTSmooth(agg, k, baselines.FFTLow)
		})
		if err != nil {
			return nil, err
		}
		fftDom, err := bestFeasibleRoughness(agg, comps, func(k int) ([]float64, error) {
			return baselines.FFTSmooth(agg, k, baselines.FFTDominant)
		})
		if err != nil {
			return nil, err
		}
		sg1, err := bestFeasibleRoughness(agg, windows, func(w int) ([]float64, error) {
			return baselines.SavitzkyGolay(agg, w, 1)
		})
		if err != nil {
			return nil, err
		}
		sg4, err := bestFeasibleRoughness(agg, windows, func(w int) ([]float64, error) {
			if w < 6 {
				w = 6
			}
			return baselines.SavitzkyGolay(agg, w, 4)
		})
		if err != nil {
			return nil, err
		}
		mm, err := bestFeasibleRoughness(agg, windows, func(w int) ([]float64, error) {
			pts, err := baselines.MinMax(agg, w)
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(pts))
			for i, p := range pts {
				out[i] = p.Y
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmtX(fftLow / smaRough), fmtX(fftDom / smaRough),
			fmtX(sg1 / smaRough), fmtX(sg4 / smaRough), fmtX(mm / smaRough),
			"1.00x", paper[spec.Name],
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: FFT-dominant and minmax orders of magnitude rougher than SMA;",
		"FFT-low often smoother than SMA (it may violate trend shape, which is why ASAP still uses SMA);",
		"SG1/SG4 within a small factor of SMA.")
	return []*Table{t}, nil
}

// sweepInts returns up to count values spread evenly across [lo, hi].
func sweepInts(lo, hi, count int) []int {
	if hi < lo {
		hi = lo
	}
	if count < 1 {
		count = 1
	}
	out := make([]int, 0, count)
	seen := make(map[int]bool)
	for i := 0; i < count; i++ {
		v := lo
		if count > 1 {
			v = lo + i*(hi-lo)/(count-1)
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func runFigureC(cfg Config) ([]*Table, error) {
	t := &Table{
		Title:  "Raw vs ASAP for the non-user-study datasets (1200 px)",
		Header: []string{"Dataset", "Window", "Roughness raw", "Roughness ASAP", "Reduction", "Paper note"},
	}
	notes := map[string]string{
		"Twitter AAPL": "left unsmoothed (Figure C.1)",
		"sim daily":    "smoothed (Figure C.2a)",
		"gas sensor":   "smoothed (Figure C.2b)",
		"ramp traffic": "smoothed (Figure C.2c)",
		"machine temp": "smoothed (Figure C.2d)",
		"traffic data": "smoothed (Figure C.2e)",
	}
	for _, spec := range datasets.Catalog() {
		if spec.UserStudy {
			continue
		}
		xs := loadValues(spec, cfg)
		res, err := core.Smooth(xs, core.SmoothOptions{Resolution: 1200})
		if err != nil {
			return nil, err
		}
		rawRough := stats.Roughness(stats.ZScores(res.Aggregated))
		asapRough := stats.Roughness(stats.ZScores(res.Smoothed))
		reduction := "1x"
		if asapRough > 0 {
			reduction = fmtX(rawRough / asapRough)
		}
		t.Rows = append(t.Rows, []string{
			spec.Name, fmt.Sprintf("%d", res.Window), fmtF(rawRough), fmtF(asapRough), reduction, notes[spec.Name],
		})
		svg, err := plot.SVGSeries("Figure C: "+spec.Name+" (z-scores)", 900, 320, map[string][]float64{
			"original": stats.ZScores(res.Aggregated),
			"ASAP":     stats.ZScores(res.Smoothed),
		}, []string{"original", "ASAP"})
		if err != nil {
			return nil, err
		}
		if err := writeSVG(cfg, fmt.Sprintf("figureC_%s.svg", sanitize(spec.Name)), svg); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: every dataset smoothed except Twitter AAPL (window 1, high kurtosis spikes).")
	return []*Table{t}, nil
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

package bench

import (
	"fmt"
	"time"

	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/stream"
)

func init() {
	register(Experiment{
		ID:    "figure10",
		Title: "Figure 10: streaming throughput vs refresh interval (log-log linear)",
		PaperClaim: "Throughput grows linearly with the refresh interval on traffic data " +
			"and machine temp at 2000 px: refreshing 10x less often processes ~10x more " +
			"points per second.",
		Run: runFigure10,
	})
	register(Experiment{
		ID:    "figure11",
		Title: "Figure 11: factor analysis and lesion study of ASAP's three optimizations",
		PaperClaim: "Cumulatively enabling pixel-aware preaggregation, autocorrelation " +
			"pruning, and on-demand updates each adds orders of magnitude of throughput " +
			"(0.01 -> 113K pts/s at 2000 px, ~7 orders total); removing any one " +
			"optimization costs 2-3 orders of magnitude.",
		Run: runFigure11,
	})
}

// streamThroughput measures sustained points/sec through a streaming
// operator: the visualization window is filled untimed, then points are
// pushed (recycling the tail of the dataset) for the given budget.
func streamThroughput(xs []float64, cfg stream.Config, budget time.Duration) (float64, error) {
	op, err := stream.New(cfg)
	if err != nil {
		return 0, err
	}
	fill := cfg.WindowPoints
	if fill > len(xs) {
		fill = len(xs)
	}
	op.Prefill(xs[:fill])

	i := fill
	if i >= len(xs) {
		i = 0
	}
	next := func() float64 {
		x := xs[i]
		i++
		if i == len(xs) {
			i = fill / 2 // recycle recent data, keep the stream stationary
		}
		return x
	}

	start := time.Now()
	// Calibrate: if a single push is expensive (unoptimized baseline
	// configurations), check the deadline after every push instead of per
	// chunk, so slow configs do not overshoot the budget by seconds.
	op.Push(next())
	pushed := 1
	chunk := 64
	if time.Since(start) > budget/20 {
		chunk = 1
	}
	for time.Since(start) < budget {
		for k := 0; k < chunk; k++ {
			op.Push(next())
		}
		pushed += chunk
		if pushed >= 20_000_000 {
			break
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, fmt.Errorf("bench: zero elapsed time")
	}
	return float64(pushed) / elapsed.Seconds(), nil
}

func runFigure10(cfg Config) ([]*Table, error) {
	intervals := []int{1, 10, 100, 1000}
	budget := 300 * time.Millisecond
	if cfg.Quick {
		intervals = []int{1, 100, 1000}
		budget = 60 * time.Millisecond
	}
	t := &Table{
		Title:  "Streaming throughput (points/sec) vs refresh interval, 2000 px",
		Header: []string{"Refresh interval (pts)", "traffic data", "machine temp"},
	}
	rows := make(map[int][]string)
	for _, name := range []string{"traffic data", "machine temp"} {
		spec, _ := datasets.ByName(name)
		xs := loadValues(spec, cfg)
		for _, iv := range intervals {
			tp, err := streamThroughput(xs, stream.Config{
				WindowPoints: len(xs) / 2,
				Resolution:   2000,
				RefreshEvery: iv,
			}, budget)
			if err != nil {
				return nil, err
			}
			rows[iv] = append(rows[iv], fmtThroughput(tp))
		}
	}
	for _, iv := range intervals {
		t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", iv)}, rows[iv]...))
	}
	t.Notes = append(t.Notes,
		"expected shape: near-linear growth — 10x the interval, ~10x the throughput (paper Figure 10).")
	return []*Table{t}, nil
}

func runFigure11(cfg Config) ([]*Table, error) {
	spec, _ := datasets.ByName("machine temp")
	xs := loadValues(spec, cfg)
	// Daily refresh = 288 points of the original series, per the paper.
	const daily = 288
	budget := 250 * time.Millisecond
	if cfg.Quick {
		budget = 50 * time.Millisecond
	}

	type variant struct {
		name string
		cfg  func(res int) stream.Config
	}
	base := func(res int) stream.Config {
		return stream.Config{
			WindowPoints:          len(xs),
			Resolution:            res,
			RefreshEvery:          1,
			Strategy:              core.StrategyExhaustive,
			DisablePreaggregation: true,
		}
	}
	factor := []variant{
		{"Baseline", base},
		{"+Pixel", func(res int) stream.Config {
			c := base(res)
			c.DisablePreaggregation = false
			c.RefreshEvery = 0 // per aggregated point
			return c
		}},
		{"+AC", func(res int) stream.Config {
			c := base(res)
			c.DisablePreaggregation = false
			c.RefreshEvery = 0
			c.Strategy = core.StrategyASAP
			return c
		}},
		{"+Lazy", func(res int) stream.Config {
			c := base(res)
			c.DisablePreaggregation = false
			c.Strategy = core.StrategyASAP
			c.RefreshEvery = daily
			return c
		}},
	}
	full := func(res int) stream.Config {
		return stream.Config{
			WindowPoints: len(xs),
			Resolution:   res,
			RefreshEvery: daily,
			Strategy:     core.StrategyASAP,
		}
	}
	lesion := []variant{
		{"no Pixel", func(res int) stream.Config {
			c := full(res)
			c.DisablePreaggregation = true
			return c
		}},
		{"no AC", func(res int) stream.Config {
			c := full(res)
			c.Strategy = core.StrategyExhaustive
			return c
		}},
		{"no Lazy", func(res int) stream.Config {
			c := full(res)
			c.RefreshEvery = 0
			return c
		}},
		{"ASAP", full},
	}

	resolutions := []int{2000, 5000}
	run := func(title string, variants []variant, paper map[string]string) (*Table, error) {
		t := &Table{
			Title:  title,
			Header: []string{"Configuration", "2000px (pts/s)", "5000px (pts/s)", "paper 2000/5000"},
		}
		for _, v := range variants {
			row := []string{v.name}
			for _, res := range resolutions {
				b := budget
				if v.name == "Baseline" {
					// The unoptimized baseline needs a longer budget to
					// complete even a handful of refreshes.
					b = 2 * budget
				}
				tp, err := streamThroughput(xs, v.cfg(res), b)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtThroughput(tp))
			}
			row = append(row, paper[v.name])
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}

	factorT, err := run("Factor analysis: cumulatively enabling optimizations (machine temp)",
		factor, map[string]string{
			"Baseline": "0.01 / 0.01", "+Pixel": "141 / 3.6", "+AC": "4.0K / 271", "+Lazy": "113K / 20.4K",
		})
	if err != nil {
		return nil, err
	}
	factorT.Notes = append(factorT.Notes,
		"expected shape: each optimization adds throughput; combined gain is many orders of magnitude.",
		"absolute gaps differ from the paper (our fused evaluator makes the exhaustive baseline faster).")
	lesionT, err := run("Lesion study: removing one optimization at a time (machine temp)",
		lesion, map[string]string{
			"no Pixel": "879 / 834", "no AC": "4.2K / 274", "no Lazy": "614 / 65.8", "ASAP": "113K / 20.4K",
		})
	if err != nil {
		return nil, err
	}
	lesionT.Notes = append(lesionT.Notes,
		"expected shape: every lesion costs a large factor; full ASAP is fastest at both resolutions.")
	return []*Table{factorT, lesionT}, nil
}

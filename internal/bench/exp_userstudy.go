package bench

import (
	"fmt"
	"math"

	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/perception"
	"github.com/asap-go/asap/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "figure6",
		Title: "Figure 6: simulated anomaly-identification study (accuracy & response time)",
		PaperClaim: "ASAP improves accuracy by 32.7% and cuts response time by 28.8% on " +
			"average vs other visualizations; best on every dataset except Temp, where " +
			"oversmoothing wins by 14.6%; +38.4% accuracy vs raw on Temp.",
		Run: runFigure6,
	})
	register(Experiment{
		ID:    "figure7",
		Title: "Figure 7: simulated visual-preference study",
		PaperClaim: "Users prefer ASAP in 65% of trials overall (random: 25%); >70% on " +
			"Taxi/EEG/Power, 60% on Sine; on Temp 70% prefer the oversmoothed plot and " +
			"nobody prefers the original.",
		Run: runFigure7,
	})
	register(Experiment{
		ID:    "figureB1",
		Title: "Figure B.1: sensitivity of accuracy/time to the roughness and kurtosis targets",
		PaperClaim: "Rougher-than-ASAP plots (8x, 4x) hurt accuracy (61.5%, 55.8%) vs " +
			"smoother ones (2x: 78.6%, 1/2x: 79.8%); ASAP's own configuration achieves " +
			"the best accuracy and lowest time; kurtosis variations matter less.",
		Run: runFigureB1,
	})
}

const studyWidth = 800

func observerCount(cfg Config, full int) int {
	if cfg.Quick {
		return full / 2
	}
	return full
}

func runFigure6(cfg Config) ([]*Table, error) {
	observers := observerCount(cfg, 50)
	accT := &Table{
		Title:  fmt.Sprintf("Anomaly identification accuracy %% (%d simulated observers per cell)", observers),
		Header: append([]string{"Technique"}, studyDatasetNames()...),
	}
	timeT := &Table{
		Title:  "Response time (seconds)",
		Header: append([]string{"Technique"}, studyDatasetNames()...),
	}

	specs := datasets.UserStudySpecs()
	type cell struct{ acc, rt float64 }
	results := make(map[baselines.Technique][]cell)
	for di, spec := range specs {
		xs := loadValues(spec, cfg)
		region := spec.AnomalyRegion(len(xs))
		for _, tech := range baselines.AllTechniques {
			pts, err := baselines.Apply(tech, xs, studyWidth)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", spec.Name, tech, err)
			}
			seed := cfg.Seed + int64(di*100) + int64(tech)
			res, err := perception.RunIdentification(pts, region, studyWidth, observers, seed)
			if err != nil {
				return nil, err
			}
			results[tech] = append(results[tech], cell{res.Accuracy, res.MeanTime})
		}
	}
	for _, tech := range baselines.AllTechniques {
		accRow := []string{tech.String()}
		timeRow := []string{tech.String()}
		for _, c := range results[tech] {
			accRow = append(accRow, fmt.Sprintf("%.0f", c.acc*100))
			timeRow = append(timeRow, fmt.Sprintf("%.1f", c.rt))
		}
		accT.Rows = append(accT.Rows, accRow)
		timeT.Rows = append(timeT.Rows, timeRow)
	}

	// Summary statistics in the paper's terms.
	avg := func(tech baselines.Technique) (acc, rt float64) {
		for _, c := range results[tech] {
			acc += c.acc
			rt += c.rt
		}
		n := float64(len(results[tech]))
		return acc / n, rt / n
	}
	asapAcc, asapRT := avg(baselines.TechASAP)
	origAcc, origRT := avg(baselines.TechOriginal)
	var otherAcc, otherRT float64
	others := 0
	for _, tech := range baselines.AllTechniques {
		if tech == baselines.TechASAP {
			continue
		}
		a, r := avg(tech)
		otherAcc += a
		otherRT += r
		others++
	}
	otherAcc /= float64(others)
	otherRT /= float64(others)
	accT.Notes = append(accT.Notes,
		fmt.Sprintf("ASAP vs original: accuracy %+0.1f%% (paper: +21.3%%), time %+0.1f%% (paper: -23.9%%)",
			(asapAcc-origAcc)*100, (asapRT-origRT)/origRT*100),
		fmt.Sprintf("ASAP vs mean of others: accuracy %+0.1f%% (paper: +35.0%%), time %+0.1f%% (paper: -29.8%%)",
			(asapAcc-otherAcc)*100, (asapRT-otherRT)/otherRT*100),
		"expected shape: ASAP leads on every dataset except Temp, where Oversmooth wins.")
	return []*Table{accT, timeT}, nil
}

func studyDatasetNames() []string {
	names := make([]string, 0, 5)
	for _, s := range datasets.UserStudySpecs() {
		names = append(names, s.Name)
	}
	return names
}

func runFigure7(cfg Config) ([]*Table, error) {
	observers := observerCount(cfg, 20)
	techs := []baselines.Technique{
		baselines.TechOriginal, baselines.TechASAP, baselines.TechPAA100, baselines.TechOversmooth,
	}
	t := &Table{
		Title:  fmt.Sprintf("Visual preference shares %% (%d simulated observers)", observers),
		Header: []string{"Dataset", "Original", "ASAP", "PAA100", "Oversmooth"},
	}
	var asapTotal float64
	for di, spec := range datasets.UserStudySpecs() {
		xs := loadValues(spec, cfg)
		region := spec.AnomalyRegion(len(xs))
		plots := make([][]baselines.Point, len(techs))
		for i, tech := range techs {
			pts, err := baselines.Apply(tech, xs, studyWidth)
			if err != nil {
				return nil, err
			}
			plots[i] = pts
		}
		shares, err := perception.RunPreference(plots, region, studyWidth, observers, cfg.Seed+int64(di))
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, s := range shares {
			row = append(row, fmt.Sprintf("%.0f", s*100))
		}
		t.Rows = append(t.Rows, row)
		asapTotal += shares[1]
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean ASAP share: %.0f%% (paper: 65%%, random would be 25%%)", asapTotal/5*100),
		"expected shape: ASAP majority on Taxi/EEG/Power/Sine; Oversmooth preferred on Temp.")
	return []*Table{t}, nil
}

// windowWithRoughness finds the SMA window whose roughness is closest to
// the target, ignoring the kurtosis constraint (used to construct the
// off-target plots of the sensitivity study).
func windowWithRoughness(agg []float64, maxWindow int, target float64) (int, error) {
	bestW, bestDiff := 1, math.Inf(1)
	for w := 1; w <= maxWindow; w++ {
		m, err := core.Evaluate(agg, w)
		if err != nil {
			return 0, err
		}
		if d := math.Abs(m.Roughness - target); d < bestDiff {
			bestDiff, bestW = d, w
		}
	}
	return bestW, nil
}

// windowWithKurtosisFactor runs exhaustive search with the constraint
// Kurt[Y] >= factor*Kurt[X].
func windowWithKurtosisFactor(agg []float64, maxWindow int, factor float64) (int, error) {
	origKurt := stats.Kurtosis(agg)
	bestW, bestRough := 1, math.Inf(1)
	for w := 1; w <= maxWindow; w++ {
		m, err := core.Evaluate(agg, w)
		if err != nil {
			return 0, err
		}
		if m.Kurtosis >= factor*origKurt && m.Roughness < bestRough {
			bestRough, bestW = m.Roughness, w
		}
	}
	return bestW, nil
}

func runFigureB1(cfg Config) ([]*Table, error) {
	observers := observerCount(cfg, 50)
	variants := []string{"ASAP", "8x", "4x", "2x", "1/2x", "k0.5", "k1.5", "k2"}
	roughFactors := map[string]float64{"8x": 8, "4x": 4, "2x": 2, "1/2x": 0.5}
	kurtFactors := map[string]float64{"k0.5": 0.5, "k1.5": 1.5, "k2": 2}

	accT := &Table{
		Title:  "Sensitivity: accuracy % by roughness/kurtosis target",
		Header: append([]string{"Variant"}, studyDatasetNames()...),
	}
	timeT := &Table{
		Title:  "Sensitivity: response time (s)",
		Header: append([]string{"Variant"}, studyDatasetNames()...),
	}
	sums := make(map[string]float64)

	for di, spec := range datasets.UserStudySpecs() {
		xs := loadValues(spec, cfg)
		region := spec.AnomalyRegion(len(xs))
		smoothRes, err := core.Smooth(xs, core.SmoothOptions{Resolution: studyWidth})
		if err != nil {
			return nil, err
		}
		agg := smoothRes.Aggregated
		maxWindow := len(agg) / 10
		if maxWindow < 2 {
			maxWindow = 2
		}
		for vi, variant := range variants {
			var w int
			switch {
			case variant == "ASAP":
				w = smoothRes.Window
			case roughFactors[variant] != 0:
				w, err = windowWithRoughness(agg, maxWindow, roughFactors[variant]*smoothRes.Roughness)
			default:
				w, err = windowWithKurtosisFactor(agg, maxWindow, kurtFactors[variant])
			}
			if err != nil {
				return nil, err
			}
			pts, err := smaPoints(agg, w, smoothRes.Ratio)
			if err != nil {
				return nil, err
			}
			seed := cfg.Seed + int64(di*1000+vi)
			res, err := perception.RunIdentification(pts, region, studyWidth, observers, seed)
			if err != nil {
				return nil, err
			}
			appendCell(accT, timeT, vi, variant, res)
			sums[variant] += res.Accuracy
		}
	}
	accT.Notes = append(accT.Notes,
		fmt.Sprintf("mean accuracy: ASAP %.1f%%, 8x %.1f%%, 4x %.1f%%, 2x %.1f%%, 1/2x %.1f%% "+
			"(paper: rough plots 61.5/55.8 vs smooth 78.6/79.8; ASAP best overall)",
			sums["ASAP"]/5*100, sums["8x"]/5*100, sums["4x"]/5*100, sums["2x"]/5*100, sums["1/2x"]/5*100),
		"expected shape: accuracy degrades as plots get rougher than ASAP's choice; kurtosis variants move little.")
	return []*Table{accT, timeT}, nil
}

// appendCell adds one study cell to the paired accuracy/time tables,
// creating the variant's row on first use.
func appendCell(accT, timeT *Table, rowIdx int, variant string, res perception.StudyResult) {
	for len(accT.Rows) <= rowIdx {
		accT.Rows = append(accT.Rows, []string{variant})
		timeT.Rows = append(timeT.Rows, []string{variant})
	}
	accT.Rows[rowIdx] = append(accT.Rows[rowIdx], fmt.Sprintf("%.0f", res.Accuracy*100))
	timeT.Rows[rowIdx] = append(timeT.Rows[rowIdx], fmt.Sprintf("%.1f", res.MeanTime))
}

// smaPoints renders SMA(agg, w) into plot points positioned in raw-index
// units (matching baselines.Apply's ASAP positioning).
func smaPoints(agg []float64, w, ratio int) ([]baselines.Point, error) {
	if w < 1 || w > len(agg) {
		return nil, fmt.Errorf("bench: window %d out of range", w)
	}
	smoothed := make([]float64, len(agg)-w+1)
	var sum float64
	for i := 0; i < w; i++ {
		sum += agg[i]
	}
	inv := 1 / float64(w)
	smoothed[0] = sum * inv
	for i := 1; i < len(smoothed); i++ {
		sum += agg[i+w-1] - agg[i-1]
		smoothed[i] = sum * inv
	}
	pts := make([]baselines.Point, len(smoothed))
	half := float64(w-1) / 2
	for i, v := range smoothed {
		pts[i] = baselines.Point{X: (float64(i) + half + 0.5) * float64(ratio), Y: v}
	}
	return pts, nil
}

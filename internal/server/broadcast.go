package server

// The broadcast layer: per-series subscriber registries fed by the
// hub's OnFrame/OnDrop hooks, fanning every refresh out to the SSE
// subscribers of GET /stream (see sse.go for the wire side).
//
// Delivery discipline:
//
//   - One encode per delivered refresh. A published frame is wrapped in
//     a reference-counted event shared by every subscriber; the first
//     subscriber to write it renders the SSE bytes once (sync.Once) and
//     the rest reuse them. The frame itself rides the pooled refcount
//     from PR 5 — the event holds the hub's emission reference and
//     Releases it when the last subscriber lets go, so fan-out adds no
//     per-subscriber copies of the values buffer.
//
//   - Latest-frame-wins coalescing. Each subscriber holds one pending
//     slot per subscribed series. A burst of refreshes overwrites the
//     slot (releasing the superseded event) so a slow reader drains
//     only the newest frame; sequence numbers guard the slot against
//     out-of-order publishes racing past the shard unlock.
//
//   - Slow-consumer eviction. Publishing never blocks: a subscriber
//     whose pending slots have sat undrained past the stall deadline is
//     closed and unregistered instead of delaying the other N-1. The
//     SSE handler additionally arms a write deadline so a stalled TCP
//     peer cannot wedge the writing goroutine.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-go/asap"
)

// Defaults for broadcastConfig fields left zero.
const (
	DefaultMaxSubscribers  = 1024
	DefaultHeartbeatEvery  = 15 * time.Second
	DefaultStallTimeout    = 5 * time.Second
	maxSeriesPerSubscriber = 64
)

// ErrSubscriberLimit reports a Subscribe beyond the configured cap.
var ErrSubscriberLimit = errors.New("server: subscriber limit reached")

// eventKind distinguishes the two things a slot can carry.
type eventKind uint8

const (
	eventFrame eventKind = iota
	eventDropped
)

// event is one broadcastable occurrence, shared by every subscriber of
// its series. It owns one reference to the frame (the hub's emission
// reference, or a Retain made at catch-up) and releases it when the
// last holder — publisher or subscriber slot — releases the event.
// The SSE rendering is computed once, by whichever subscriber writes
// first, and reused by the rest.
type event struct {
	kind   eventKind
	series string
	seq    int
	frame  *asap.Frame
	at     time.Time // publish (or catch-up) time, for delivery latency
	refs   atomic.Int32
	once   sync.Once
	data   []byte
}

func newFrameEvent(series string, f *asap.Frame) *event {
	e := &event{kind: eventFrame, series: series, seq: f.Sequence, frame: f}
	e.refs.Store(1)
	return e
}

func newDroppedEvent(series string) *event {
	e := &event{kind: eventDropped, series: series}
	e.refs.Store(1)
	return e
}

func (e *event) retain() { e.refs.Add(1) }

func (e *event) release() {
	switch n := e.refs.Add(-1); {
	case n == 0:
		if e.frame != nil {
			e.frame.Release()
		}
	case n < 0:
		panic("server: broadcast event over-released")
	}
}

// sse renders the event's wire bytes, once. Frame events carry
// id "<series>@<sequence>" (the Last-Event-ID resume token) and the
// same JSON body as GET /frame; dropped events announce the end of a
// series' stream.
func (e *event) sse() []byte {
	e.once.Do(func() {
		switch e.kind {
		case eventDropped:
			body, _ := json.Marshal(struct {
				Series string `json:"series"`
			}{e.series})
			e.data = []byte("event: dropped\ndata: " + string(body) + "\n\n")
		default:
			f := e.frame
			body, err := json.Marshal(frameJSON{
				Series: e.series, Values: f.Values, Window: f.Window, Roughness: f.Roughness,
				Kurtosis: f.Kurtosis, SeedReused: f.SeedReused, Sequence: f.Sequence,
			})
			if err != nil {
				// Unreachable (finite floats only survive ingest), but never
				// emit a half-framed event.
				body = []byte("null")
			}
			e.data = []byte("event: frame\nid: " + e.series + "@" + strconv.Itoa(e.seq) +
				"\ndata: " + string(body) + "\n\n")
		}
	})
	return e.data
}

// subSlot is one subscriber's pending state for one series: the newest
// undelivered event plus the highest sequence ever accepted (delivered
// or pending), which both dedupes the connect-time catch-up against
// racing publishes and rejects out-of-order publishes.
type subSlot struct {
	pending *event
	seq     int
}

// subscriber is one /stream connection's registry entry. The serving
// goroutine owns the read side (take, the notify/done channels);
// publishers touch only offer. All slot state is guarded by mu.
type subscriber struct {
	b      *Broadcast
	series []string // drain order, fixed at Subscribe
	slots  map[string]*subSlot

	notify chan struct{} // cap 1: "something is pending"
	done   chan struct{} // closed on eviction or registry shutdown

	mu           sync.Mutex
	closed       bool
	npending     int
	pendingSince time.Time // when npending went 0 -> 1; zero when drained
}

// offer places e in the subscriber's slot for e.series, coalescing any
// undelivered predecessor, and reports whether the subscriber must be
// evicted (its pending frames have sat past the stall deadline). The
// event is retained only if accepted; the caller keeps its own
// reference either way.
func (s *subscriber) offer(e *event, now time.Time) (evict bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	sl := s.slots[e.series]
	if sl == nil {
		s.mu.Unlock()
		return false
	}
	if e.kind == eventFrame && e.seq <= sl.seq {
		// Out-of-order publish (or catch-up already covered by
		// Last-Event-ID): the subscriber has seen this or newer.
		s.mu.Unlock()
		return false
	}
	if s.npending > 0 && s.b.stall > 0 && now.Sub(s.pendingSince) > s.b.stall {
		// Slow consumer: it has had a frame waiting for longer than the
		// stall deadline and still hasn't drained. Cut it loose rather
		// than hold frame buffers (and registry slots) for a dead peer.
		s.dropAllLocked()
		s.mu.Unlock()
		close(s.done)
		return true
	}
	if sl.pending != nil {
		sl.pending.release()
		s.b.coalesced.Add(1)
	} else {
		if s.npending == 0 {
			s.pendingSince = now
		}
		s.npending++
	}
	e.retain()
	sl.pending = e
	if e.kind == eventDropped {
		// A recreated series restarts its sequence at 1; reset the guard
		// so its frames are accepted again.
		sl.seq = 0
	} else {
		sl.seq = e.seq
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return false
}

// dropAllLocked releases every pending event and marks the subscriber
// closed. Caller holds s.mu.
func (s *subscriber) dropAllLocked() {
	for _, sl := range s.slots {
		if sl.pending != nil {
			sl.pending.release()
			sl.pending = nil
		}
	}
	s.npending = 0
	s.pendingSince = time.Time{}
	s.closed = true
}

// take moves every pending event into buf (in the fixed series order)
// and clears the stall clock. The caller owns the returned events'
// references and must release each after writing.
func (s *subscriber) take(buf []*event) []*event {
	s.mu.Lock()
	for _, name := range s.series {
		if sl := s.slots[name]; sl.pending != nil {
			buf = append(buf, sl.pending)
			sl.pending = nil
		}
	}
	s.npending = 0
	s.pendingSince = time.Time{}
	s.mu.Unlock()
	return buf
}

// Done is closed when the registry evicts or shuts down the
// subscriber; the serving goroutine selects on it.
func (s *subscriber) Done() <-chan struct{} { return s.done }

// Close unregisters the subscriber and releases anything pending.
// Idempotent; the serving goroutine defers it.
func (s *subscriber) Close() { s.b.remove(s, false) }

// BroadcastStats is a point-in-time snapshot of the broadcast layer's
// counters, surfaced in /stats.
type BroadcastStats struct {
	Subscribers int   // currently connected
	Subscribed  int64 // accepted Subscribe calls, lifetime
	Rejected    int64 // Subscribes refused by the cap
	Published   int64 // events offered to the registry (frames + drops)
	Delivered   int64 // events written to subscribers
	Coalesced   int64 // pending events superseded before delivery
	Evicted     int64 // subscribers cut for stalling past the deadline
}

// Broadcast is the per-series subscriber registry. The hub publishes
// into it on every refresh (OnFrame) and series removal (OnDrop); SSE
// handlers Subscribe and drain. All methods are safe for concurrent
// use.
type Broadcast struct {
	maxSubs int
	stall   time.Duration

	mu       sync.RWMutex
	bySeries map[string]map[*subscriber]struct{}
	count    int
	shutdown bool

	subscribed atomic.Int64
	rejected   atomic.Int64
	published  atomic.Int64
	delivered  atomic.Int64
	coalesced  atomic.Int64
	evicted    atomic.Int64
}

type broadcastConfig struct {
	maxSubscribers int
	stallTimeout   time.Duration
}

func newBroadcast(cfg broadcastConfig) *Broadcast {
	if cfg.maxSubscribers <= 0 {
		cfg.maxSubscribers = DefaultMaxSubscribers
	}
	if cfg.stallTimeout == 0 {
		cfg.stallTimeout = DefaultStallTimeout
	}
	return &Broadcast{
		maxSubs:  cfg.maxSubscribers,
		stall:    cfg.stallTimeout,
		bySeries: make(map[string]map[*subscriber]struct{}),
	}
}

// Subscribe registers a new subscriber for the given series (order is
// the delivery drain order). lastSeq seeds per-series sequence guards
// from the client's Last-Event-ID so a resumed connection is not
// re-sent the frame it already has; nil means no resume state.
func (b *Broadcast) Subscribe(series []string, lastSeq map[string]int) (*subscriber, error) {
	if len(series) == 0 {
		return nil, errors.New("server: subscribe to at least one series")
	}
	if len(series) > maxSeriesPerSubscriber {
		return nil, fmt.Errorf("server: at most %d series per subscriber", maxSeriesPerSubscriber)
	}
	sub := &subscriber{
		b:      b,
		series: series,
		slots:  make(map[string]*subSlot, len(series)),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	for _, name := range series {
		if _, dup := sub.slots[name]; dup {
			return nil, fmt.Errorf("server: duplicate series %q in subscription", name)
		}
		sub.slots[name] = &subSlot{seq: lastSeq[name]}
	}
	b.mu.Lock()
	if b.shutdown {
		b.mu.Unlock()
		return nil, errors.New("server: shutting down")
	}
	if b.count >= b.maxSubs {
		b.mu.Unlock()
		b.rejected.Add(1)
		return nil, ErrSubscriberLimit
	}
	b.count++
	for _, name := range series {
		set := b.bySeries[name]
		if set == nil {
			set = make(map[*subscriber]struct{})
			b.bySeries[name] = set
		}
		set[sub] = struct{}{}
	}
	b.mu.Unlock()
	b.subscribed.Add(1)
	return sub, nil
}

// remove unregisters sub and releases its pending events. evicted
// distinguishes a stall eviction (counted, done already closed) from a
// normal Close.
func (b *Broadcast) remove(sub *subscriber, evicted bool) {
	b.mu.Lock()
	removed := false
	for _, name := range sub.series {
		if set := b.bySeries[name]; set != nil {
			if _, ok := set[sub]; ok {
				delete(set, sub)
				removed = true
				if len(set) == 0 {
					delete(b.bySeries, name)
				}
			}
		}
	}
	if removed {
		b.count--
	}
	b.mu.Unlock()
	if !removed {
		return
	}
	if evicted {
		b.evicted.Add(1)
	}
	sub.mu.Lock()
	alreadyClosed := sub.closed
	sub.dropAllLocked()
	sub.mu.Unlock()
	if !alreadyClosed {
		close(sub.done)
	}
}

// Publish fans one emitted frame out to every subscriber of series,
// taking ownership of the frame (the hub's emission reference). The
// warm path is allocation-free per subscriber: one event wrapper is
// shared by all of them, each offer is a slot swap plus a non-blocking
// channel send, and the frame values are never copied.
func (b *Broadcast) Publish(series string, f *asap.Frame) {
	if f == nil {
		return
	}
	e := newFrameEvent(series, f)
	b.publish(e)
}

// PublishDrop tells series' subscribers the stream ended (LRU eviction
// or a replicated tombstone). The slot's sequence guard resets so a
// recreated series' frames flow again.
func (b *Broadcast) PublishDrop(series string) {
	b.publish(newDroppedEvent(series))
}

func (b *Broadcast) publish(e *event) {
	b.published.Add(1)
	now := time.Now()
	e.at = now
	var evicted []*subscriber
	b.mu.RLock()
	for sub := range b.bySeries[e.series] {
		if sub.offer(e, now) {
			evicted = append(evicted, sub)
		}
	}
	b.mu.RUnlock()
	e.release() // the publisher's reference; slots hold their own
	for _, sub := range evicted {
		b.remove(sub, true)
	}
}

// CatchUp offers the series' current retained frame (a reference the
// caller hands over) to one subscriber through the same slot path as a
// live publish, so the sequence guard dedupes it against both the
// client's Last-Event-ID and any racing refresh.
func (b *Broadcast) CatchUp(sub *subscriber, series string, f *asap.Frame) {
	if f == nil {
		return
	}
	e := newFrameEvent(series, f)
	e.at = time.Now()
	if sub.offer(e, e.at) {
		b.remove(sub, true)
	}
	e.release()
}

// Subscribers returns the number of currently connected subscribers.
func (b *Broadcast) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.count
}

// Stats snapshots the broadcast counters.
func (b *Broadcast) Stats() BroadcastStats {
	return BroadcastStats{
		Subscribers: b.Subscribers(),
		Subscribed:  b.subscribed.Load(),
		Rejected:    b.rejected.Load(),
		Published:   b.published.Load(),
		Delivered:   b.delivered.Load(),
		Coalesced:   b.coalesced.Load(),
		Evicted:     b.evicted.Load(),
	}
}

// Shutdown closes every subscriber (their serving goroutines see Done)
// and refuses new ones — the first step of the server's drain, so
// long-lived streams never hold Shutdown to its deadline.
func (b *Broadcast) Shutdown() {
	b.mu.Lock()
	b.shutdown = true
	subs := make(map[*subscriber]struct{})
	for _, set := range b.bySeries {
		for sub := range set {
			subs[sub] = struct{}{}
		}
	}
	b.mu.Unlock()
	for sub := range subs {
		b.remove(sub, false)
	}
}

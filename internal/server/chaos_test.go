package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/asap-go/asap/internal/faultfs"
	"github.com/asap-go/asap/internal/replica"
)

// chaosServerConfig is a strict-durability server (every acknowledged
// append fsynced) whose WAL runs on a fault injector, with the reopen
// schedule compressed so recovery is test-speed.
func chaosServerConfig(dir string, ffs *faultfs.FS) Config {
	cfg := durableConfig(dir) // FsyncEvery: 0 — deterministic 503s
	cfg.walFS = ffs
	cfg.walReopenBackoff = time.Millisecond
	cfg.walReopenMaxBackoff = 20 * time.Millisecond
	return cfg
}

// lineBody renders vals in the ingest line protocol for series name.
func lineBody(name string, vals []float64) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestChaosDegradedShardServesReadsAndRecovers is the server-level
// acceptance scenario for graceful WAL degradation: an fsync failure
// degrades the shard — reads, /plot.svg, and an already-open SSE
// stream keep serving from memory while ingest answers 503 with
// Retry-After, /readyz goes 503 while /healthz stays 200 — then the
// fault clears, the background reopen restores durability, the client
// retries the rejected batch, and every frame (live, streamed, and
// after a restart) is bit-identical to an uninterrupted control.
func TestChaosDegradedShardServesReadsAndRecovers(t *testing.T) {
	control, err := New(testConfig()) // never-faulted twin
	if err != nil {
		t.Fatal(err)
	}
	ffs := faultfs.New(nil)
	dir := t.TempDir()
	s, err := New(chaosServerConfig(dir, ffs))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// pushBoth lands one batch over HTTP on the chaos server and
	// directly on the control, keeping the twins in lockstep.
	pushBoth := func(n, off int) {
		t.Helper()
		vals := sineValues(n, off)
		if code, body := post(t, ts.URL+"/ingest", lineBody("cpu", vals)); code != 200 {
			t.Fatalf("ingest = %d %s", code, body)
		}
		if err := control.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
	}
	pushBoth(600, 0)

	// A subscriber connects before the fault and must survive it.
	stream, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()
	nextFrame(t, stream, 2*time.Second) // connect-time catch-up frame

	// The disk starts failing every fsync.
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, Err: syscall.EIO})

	// Strict mode: the append cannot be made durable, so ingest is
	// refused with 503 + Retry-After and the batch leaves no trace.
	lost := sineValues(120, 600)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(lineBody("cpu", lost)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded ingest 503 without Retry-After")
	}

	// Reads keep serving from memory.
	for _, path := range []string{"/frame?series=cpu", "/plot.svg?series=cpu", "/series", "/stats"} {
		if code, body := get(t, ts.URL+path); code != 200 {
			t.Errorf("degraded %s = %d %s", path, code, body)
		}
	}

	// Liveness vs readiness: the process is healthy (restarting it
	// would destroy the state it is gracefully serving), but it should
	// not take traffic.
	if code, body := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("degraded /healthz = %d %s, want 200", code, body)
	}
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded /readyz = %d %s, want 503 naming the degraded shard", code, body)
	}
	if st, ok := s.WALStats(); !ok || st.DegradedShards != 1 {
		t.Fatalf("WALStats degraded = %+v, %v", st, ok)
	}
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(body, "asap_wal_degraded_shards 1") {
		t.Error("/metrics does not report the degraded shard")
	}

	// The operator fixes the disk; the background reopen restores
	// durability without a restart.
	ffs.Clear()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.WALStats()
		if ok && st.DegradedShards == 0 && st.WedgedShards == 0 && st.ReopenRecoveries > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never recovered: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("post-recovery /readyz = %d %s", code, body)
	}

	// The client retries the rejected batch — exactly the Retry-After
	// contract — and the twins converge bit-identically.
	pushBoth(120, 600)
	want, _ := control.Hub().Frame("cpu")
	got, ok := s.Hub().Frame("cpu")
	if !ok {
		t.Fatal("cpu missing after recovery")
	}
	requireFramesEqual(t, "post-recovery", want, got)

	// The pre-fault SSE subscriber receives the post-recovery frame on
	// the same connection.
	f, _ := nextFrame(t, stream, 2*time.Second)
	if f.Sequence != want.Sequence || len(f.Values) != len(want.Values) {
		t.Fatalf("streamed frame seq %d/%d values, want %d/%d",
			f.Sequence, len(f.Values), want.Sequence, len(want.Values))
	}
	for i := range want.Values {
		if f.Values[i] != want.Values[i] {
			t.Fatalf("streamed value %d: %v != %v", i, f.Values[i], want.Values[i])
		}
	}

	// And the durable log is intact: a restarted server replays the
	// chaos-era history and its post-restart frames stay bit-identical
	// to the control's (Frame is nil until the first post-restart
	// refresh, by contract — keep feeding until one lands).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer s2.Close()
	restarted := false
	for c := 0; c < 10; c++ {
		vals := sineValues(30, 720+c*30)
		if err := control.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
		if err := s2.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
		want, _ := control.Hub().Frame("cpu")
		got2, ok := s2.Hub().Frame("cpu")
		if !ok {
			t.Fatal("cpu missing after restart")
		}
		if got2 != nil {
			restarted = true
			requireFramesEqual(t, fmt.Sprintf("post-restart chunk %d", c), want, got2)
		}
	}
	if !restarted {
		t.Fatal("restarted server never produced a frame")
	}
}

// TestChaosPrimaryFlappingFollowerNoResync: a tailing follower rides
// out repeated primary restarts — polls fail transiently while the
// primary is down, resume from the durable cursor when it returns, and
// never fall back to a mirror resync.
func TestChaosPrimaryFlappingFollowerNoResync(t *testing.T) {
	control, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dirP := t.TempDir()
	primary, err := New(durableConfig(dirP))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: primary.Handler()}
	go hs.Serve(ln)

	pushBoth := func(n, off int) {
		t.Helper()
		vals := sineValues(n, off)
		if err := control.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
		if err := primary.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
	}
	pushBoth(700, 0)

	fol, err := New(followerConfig(t.TempDir(), "http://"+addr))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	pollOnce(t, fol) // bootstrap

	off := 700
	saw := false
	for flap := 0; flap < 3; flap++ {
		// Restart the primary: listener gone, process down.
		hs.Close()
		if err := primary.Close(); err != nil {
			t.Fatal(err)
		}

		// While it is down, polls fail with a transient error — the
		// retry policy's signal to back off and try again, not resync.
		err := fol.Follower().PollOnce(context.Background())
		if err == nil {
			t.Fatalf("flap %d: poll succeeded against a dead primary", flap)
		}
		if !replica.Transient(err) {
			t.Fatalf("flap %d: primary-down error classified fatal: %v", flap, err)
		}

		// The primary comes back on the same address with the same WAL.
		primary, err = New(durableConfig(dirP))
		if err != nil {
			t.Fatalf("flap %d: primary restart: %v", flap, err)
		}
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("flap %d: relisten: %v", flap, err)
		}
		hs = &http.Server{Handler: primary.Handler()}
		go hs.Serve(ln)

		pushBoth(120, off)
		off += 120
		pollOnce(t, fol)

		st := fol.Follower().Status()
		if st.Resyncs != 0 {
			t.Fatalf("flap %d: follower resynced %d times riding out a restart", flap, st.Resyncs)
		}
		if !st.Synced || st.RecordsBehind != 0 {
			t.Fatalf("flap %d: follower not caught up: %+v", flap, st)
		}
		want, _ := control.Hub().Frame("cpu")
		got, ok := fol.Hub().Frame("cpu")
		if !ok {
			t.Fatalf("flap %d: follower lost cpu", flap)
		}
		if got != nil {
			saw = true
			requireFramesEqual(t, fmt.Sprintf("flap %d", flap), want, got)
		}
	}
	if !saw {
		t.Fatal("follower never produced a frame across the flaps")
	}
	hs.Close()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosFollowerRunRidesOutRestart runs the same story through the
// follower's real retry loop under -race: the loop accumulates Retries
// (capped-backoff polls against the dead primary) but zero Resyncs,
// and converges bit-identically once the primary returns.
func TestChaosFollowerRunRidesOutRestart(t *testing.T) {
	control, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dirP := t.TempDir()
	primary, err := New(durableConfig(dirP))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: primary.Handler()}
	go hs.Serve(ln)

	pushBoth := func(s *Server, n, off int) {
		t.Helper()
		vals := sineValues(n, off)
		if err := control.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
		if err := s.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
	}
	pushBoth(primary, 700, 0)

	fcfg := followerConfig(t.TempDir(), "http://"+addr)
	fcfg.FollowPoll = 20 * time.Millisecond
	fol, err := New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	lnF, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	fdone := make(chan error, 1)
	go func() { fdone <- fol.Serve(fctx, lnF) }()
	baseF := "http://" + lnF.Addr().String()

	waitRaw := func(label string, n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for fol.Hub().Stats()["cpu"].RawPoints != n {
			if time.Now().After(deadline) {
				t.Fatalf("%s: follower stuck at %d raw points, want %d (%+v)",
					label, fol.Hub().Stats()["cpu"].RawPoints, n, fol.Follower().Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitRaw("bootstrap", 700)

	// Primary goes down; the loop keeps retrying with backoff.
	hs.Close()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for fol.Follower().Status().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry loop never registered a failed poll")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Reads still serve from the mirror throughout the outage.
	if code, _ := get(t, baseF+"/frame?series=cpu"); code != 200 {
		t.Fatalf("follower reads down during primary outage")
	}

	// The primary restarts; the loop converges without resync.
	primary, err = New(durableConfig(dirP))
	if err != nil {
		t.Fatal(err)
	}
	ln, err = net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs = &http.Server{Handler: primary.Handler()}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		primary.Close()
	}()
	pushBoth(primary, 300, 700)
	waitRaw("reconverge", 1000)

	st := fol.Follower().Status()
	if st.Resyncs != 0 {
		t.Fatalf("follower resynced %d times riding out the restart (retries=%d)", st.Resyncs, st.Retries)
	}
	if st.Retries == 0 {
		t.Fatal("follower reports zero retries after a primary outage")
	}
	want, _ := control.Hub().Frame("cpu")
	got, _ := fol.Hub().Frame("cpu")
	if want == nil || got == nil {
		t.Fatalf("missing frames: control=%v follower=%v", want != nil, got != nil)
	}
	requireFramesEqual(t, "run-loop reconverge", want, got)

	fcancel()
	if err := <-fdone; err != nil {
		t.Fatal(err)
	}
}

package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// point is one parsed ingest line: a value destined for a series.
type point struct {
	series string
	value  float64
}

// maxLineBytes bounds a single ingest line; longer lines fail the whole
// batch with bufio.ErrTooLong rather than being truncated.
const maxLineBytes = 1 << 20

// maxSeriesNameBytes matches the WAL record format's name limit; the
// parser enforces it so a durable and a memory-only server reject the
// same inputs, with 400 before anything is applied.
const maxSeriesNameBytes = 65535

// parseIngest reads the asap-server line protocol: one point per line,
// either a bare float (routed to defaultSeries) or series=value. Blank
// lines and lines starting with '#' are skipped. Whitespace around the
// series name and value is trimmed; the first '=' splits, so values
// like "cpu=1e3" work but series names cannot contain '='.
//
// The whole body is parsed before anything is applied: any bad line
// makes the entire batch fail, so callers can guarantee all-or-nothing
// ingest.
func parseIngest(r io.Reader, defaultSeries string) ([]point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var pts []point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, valueStr := defaultSeries, line
		if i := strings.IndexByte(line, '='); i >= 0 {
			series = strings.TrimSpace(line[:i])
			valueStr = strings.TrimSpace(line[i+1:])
			if series == "" {
				return nil, fmt.Errorf("line %d: empty series name", lineNo)
			}
			if len(series) > maxSeriesNameBytes {
				return nil, fmt.Errorf("line %d: series name longer than %d bytes", lineNo, maxSeriesNameBytes)
			}
			if strings.ContainsFunc(series, isSeriesControlByte) {
				return nil, fmt.Errorf("line %d: invalid series name %q", lineNo, series)
			}
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", lineNo, valueStr)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("line %d: non-finite value %q", lineNo, valueStr)
		}
		pts = append(pts, point{series: series, value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// isSeriesControlByte rejects control characters inside series names.
// TrimSpace only strips the ends, so an interior \r, \x00, or ESC would
// otherwise become part of the name and leak into JSON listings and
// dashboard links.
func isSeriesControlByte(r rune) bool { return r < 0x20 || r == 0x7f }

// Package server implements the multi-series streaming hub behind
// cmd/asap-server: a sharded map of series name → *asap.Streamer plus
// the HTTP handlers that expose ingest, frames, plots, and stats.
//
// The hub hashes series names (FNV-1a) onto a fixed array of shards,
// each guarded by its own mutex, so concurrent ingest into distinct
// series rarely contends. A max-series cap with approximate LRU
// eviction bounds memory when clients create series faster than they
// revisit them.
//
// With a write-ahead log configured (HubConfig.WAL), every batch is
// appended to the log before it is applied, and NewHub replays the
// log's recovered tails into warm Streamers so a restarted server picks
// up every series' frames exactly where the crashed one left off.
package server

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/fnv"
	"github.com/asap-go/asap/internal/obs/trace"
	"github.com/asap-go/asap/internal/wal"
)

// Defaults for HubConfig fields left zero.
const (
	DefaultMaxSeries  = 1024
	DefaultSeriesName = "default"
)

// HubConfig configures a Hub.
type HubConfig struct {
	// Stream configures the per-series Streamer created on first ingest
	// of each series name.
	Stream asap.StreamConfig
	// Shards is the number of lock shards. Zero means GOMAXPROCS.
	Shards int
	// MaxSeries caps live series across the hub; creating one beyond the
	// cap evicts the least-recently-used series. Zero means
	// DefaultMaxSeries.
	MaxSeries int
	// DefaultSeries is the series fed by bare-value ingest lines and read
	// by endpoints with no ?series= parameter. Empty means
	// DefaultSeriesName.
	DefaultSeries string
	// WAL, when non-nil, makes ingest durable: PushBatch appends to the
	// log before applying (so an acknowledged batch survives kill -9)
	// and NewHub warm-restores every series the log recovers.
	WAL *wal.Log
	// OnFrame, when set, receives every frame a push emits, after the
	// shard lock is released. Ownership of the frame transfers to the
	// callback, which must Release it (directly or via downstream
	// holders) — the broadcast layer's feed. Frames for one series
	// arrive in order of emission from the pushing goroutine, but two
	// pushes racing past the unlock may invoke the callback out of
	// sequence order; consumers that care key on Frame.Sequence.
	OnFrame func(series string, f *asap.Frame)
	// OnDrop fires after a series is removed — LRU eviction on a
	// primary, or a replicated tombstone on a follower — so push
	// subscribers can be told the stream ended.
	OnDrop func(series string)
	// metrics, when non-nil, receives refresh-duration observations.
	// Unexported by design: the owning Server wires it (same package);
	// external HubConfig literals leave the hub uninstrumented.
	metrics *hubMetrics
}

// Hub routes per-series traffic to independent Streamers behind
// per-shard locks. All methods are safe for concurrent use.
//
// The write-ahead log is held behind an atomic pointer because a
// follower hub starts without one and gains it at promotion (SetWAL)
// while reads and replicated applies are still in flight.
type Hub struct {
	cfg       HubConfig
	shards    []shard
	wal       atomic.Pointer[wal.Log]
	clock     atomic.Uint64 // LRU clock, ticks on every series touch
	count     atomic.Int64  // live series across all shards
	evictions atomic.Int64
	recovered int64 // series warm-restored from the WAL at construction
}

type shard struct {
	mu     sync.Mutex
	series map[string]*entry
}

type entry struct {
	st       *asap.Streamer
	lastUsed uint64 // guarded by the owning shard's mutex
}

// NewHub validates cfg (by constructing a throwaway Streamer) and
// returns a ready Hub. With cfg.WAL set it starts warm: every series
// the log recovered is replayed into a restored Streamer whose next
// frames continue the pre-crash Values/Window/Sequence exactly.
func NewHub(cfg HubConfig) (*Hub, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = DefaultMaxSeries
	}
	if cfg.DefaultSeries == "" {
		cfg.DefaultSeries = DefaultSeriesName
	}
	if _, err := asap.NewStreamer(cfg.Stream); err != nil {
		return nil, err
	}
	h := &Hub{cfg: cfg, shards: make([]shard, cfg.Shards)}
	h.wal.Store(cfg.WAL)
	for i := range h.shards {
		h.shards[i].series = make(map[string]*entry)
	}
	if cfg.WAL != nil {
		rec := cfg.WAL.Recover()
		for name, st := range rec.Series {
			if err := h.Restore(name, st.Tail, st.Total); err != nil {
				return nil, err
			}
		}
		h.recovered = int64(len(rec.Series))
		// A shrunken cap still applies: evict down before serving (the
		// guard breaks out if no evictable victim remains).
		for int(h.count.Load()) > cfg.MaxSeries {
			before := h.count.Load()
			h.evictLRU("")
			if h.count.Load() == before {
				break
			}
		}
	}
	return h, nil
}

// Recovered returns how many series the hub warm-restored from the WAL
// at construction.
func (h *Hub) Recovered() int64 { return h.recovered }

// DefaultSeries returns the resolved default series name.
func (h *Hub) DefaultSeries() string { return h.cfg.DefaultSeries }

// Len returns the number of live series.
func (h *Hub) Len() int { return int(h.count.Load()) }

// Evictions returns how many series the LRU cap has removed.
func (h *Hub) Evictions() int64 { return h.evictions.Load() }

func (h *Hub) shardFor(name string) *shard {
	return &h.shards[fnv.Hash32a(name)%uint32(len(h.shards))]
}

// PushBatch appends values to the named series in order, creating the
// series on first use. Only the series' own shard is locked while
// pushing, so batches for different series proceed in parallel. With a
// WAL configured the batch is logged before it is applied — an error
// means nothing from this call reached the in-memory series.
func (h *Hub) PushBatch(name string, values []float64) error {
	return h.push(context.Background(), name, values, true)
}

// PushBatchContext is PushBatch carrying a request context: when the
// context holds a recorded trace, the push runs under a per-shard
// "hub.push" child span with WAL-append, refresh, and broadcast child
// spans beneath it. With no recorded trace it is exactly PushBatch.
func (h *Hub) PushBatchContext(ctx context.Context, name string, values []float64) error {
	return h.push(ctx, name, values, true)
}

// Replicate applies a batch that is already durable on a primary — the
// follower side of WAL shipping. It skips the local WAL (the mirror IS
// the log) and never runs local LRU eviction: the primary's eviction
// choices arrive as tombstones (Drop), and an independent local choice
// would diverge from the primary's bit-identical frame stream.
func (h *Hub) Replicate(name string, values []float64) error {
	return h.push(context.Background(), name, values, false)
}

func (h *Hub) push(ctx context.Context, name string, values []float64, primary bool) error {
	ctx, sp := trace.StartSpan(ctx, "hub.push")
	sh := h.shardFor(name)
	if sp != nil {
		sp.SetStr("series", name)
		sp.SetInt("shard", int64(fnv.Hash32a(name)%uint32(len(h.shards))))
		sp.SetInt("points", int64(len(values)))
	}
	sh.mu.Lock()
	if w := h.wal.Load(); primary && w != nil {
		// Append before apply, under the shard lock, so the log's
		// per-series record order always matches the apply order and an
		// acknowledged batch survives kill -9.
		if err := w.AppendContext(ctx, name, values); err != nil {
			sh.mu.Unlock()
			sp.SetError(err.Error())
			sp.End()
			return fmt.Errorf("wal append %q: %w", name, err)
		}
	}
	e := sh.series[name]
	created := false
	if e == nil {
		st, err := asap.NewStreamer(h.cfg.Stream)
		if err != nil {
			sh.mu.Unlock()
			sp.SetError(err.Error())
			sp.End()
			return err
		}
		e = &entry{st: st}
		sh.series[name] = e
		created = true
	}
	e.lastUsed = h.clock.Add(1)
	// Refresh timing brackets the streamer push alone and is recorded
	// only when it emitted a frame — the refresh path, not the cheap
	// buffer-append pushes between refreshes. Two clock reads, no
	// allocation, so the PR 3/5 zero-alloc refresh discipline holds
	// with instrumentation on. A recorded trace additionally gets a
	// "refresh" child span annotated with the searches the refresh ran,
	// served memoized (skipped), or coalesced into the batch tail.
	var pushStart time.Time
	var statsBefore asap.StreamStats
	if h.cfg.metrics != nil || sp != nil {
		pushStart = time.Now()
	}
	if sp != nil {
		statsBefore = e.st.Stats()
	}
	f := e.st.PushBatch(values)
	if f != nil {
		if sp != nil {
			rsp := sp.ChildAt("refresh", pushStart)
			rsp.End()
			after := e.st.Stats()
			rsp.SetInt("searches", int64(after.Searches-statsBefore.Searches))
			rsp.SetInt("skipped", int64(after.SearchesSkipped-statsBefore.SearchesSkipped))
			rsp.SetInt("coalesced", int64(after.SearchesCoalesced-statsBefore.SearchesCoalesced))
		}
		if h.cfg.metrics != nil {
			if tid := sp.TraceID(); tid != "" {
				h.cfg.metrics.refreshSeconds.ObserveExemplar(time.Since(pushStart).Seconds(), tid)
			} else {
				h.cfg.metrics.refreshSeconds.ObserveDuration(time.Since(pushStart))
			}
		}
	}
	sh.mu.Unlock()
	if f != nil {
		if h.cfg.OnFrame != nil {
			// The broadcast layer takes ownership: it retains per holder
			// and releases the emission when fan-out is done.
			bsp := sp.Child("broadcast.publish")
			h.cfg.OnFrame(name, f)
			bsp.End()
		} else {
			// No subscribers possible: release immediately so the refresh
			// path recycles its values buffer through the frame pool and
			// steady-state ingest stops allocating.
			f.Release()
		}
	}
	sp.End()
	if created && int(h.count.Add(1)) > h.cfg.MaxSeries && primary {
		h.evictLRU(name)
	}
	return nil
}

// Restore creates (or wholesale replaces) the named series as if total
// points had been pushed, of which tail holds the most recent — the
// warm-start path for WAL recovery and replica bootstrap. No WAL write,
// no eviction.
func (h *Hub) Restore(name string, tail []float64, total int64) error {
	st, err := asap.NewStreamer(h.cfg.Stream)
	if err != nil {
		return err
	}
	st.Restore(tail, int(total))
	sh := h.shardFor(name)
	sh.mu.Lock()
	_, existed := sh.series[name]
	sh.series[name] = &entry{st: st, lastUsed: h.clock.Add(1)}
	sh.mu.Unlock()
	if !existed {
		h.count.Add(1)
	}
	return nil
}

// Drop removes the named series without logging a tombstone — the
// follower applying a primary's tombstone record (the primary already
// logged it). Reports whether the series existed.
func (h *Hub) Drop(name string) bool {
	sh := h.shardFor(name)
	sh.mu.Lock()
	_, existed := sh.series[name]
	if existed {
		delete(sh.series, name)
	}
	sh.mu.Unlock()
	if existed {
		h.count.Add(-1)
		if h.cfg.OnDrop != nil {
			h.cfg.OnDrop(name)
		}
	}
	return existed
}

// SetWAL attaches a write-ahead log to a hub that started without one —
// promotion: the follower's mirror directory reopened for writes. From
// the next PushBatch on, ingest is logged before it is applied.
func (h *Hub) SetWAL(l *wal.Log) { h.wal.Store(l) }

// Apply pushes an already-parsed ingest batch, grouping consecutive
// points per series so each series takes its shard lock once. Call
// only with a fully parsed batch: parse errors must be surfaced before
// any point is applied so a bad line never leaves a partial batch.
//
// A non-nil error is a durability failure (stream-config errors were
// ruled out by NewHub): series pushed before the failing one stay
// applied — their WAL records landed — and the counts report what was
// applied so the caller can say so.
func (h *Hub) Apply(ctx context.Context, pts []point) (npoints, nseries int, err error) {
	order := make([]string, 0, 4)
	groups := make(map[string][]float64, 4)
	for _, p := range pts {
		if _, ok := groups[p.series]; !ok {
			order = append(order, p.series)
		}
		groups[p.series] = append(groups[p.series], p.value)
	}
	for _, name := range order {
		if err := h.push(ctx, name, groups[name], true); err != nil {
			return npoints, nseries, err
		}
		npoints += len(groups[name])
		nseries++
	}
	return npoints, nseries, nil
}

// evictLRU removes the least-recently-used series other than keep. The
// scan locks one shard at a time, so under concurrent churn the choice
// is approximate and a touched victim is skipped rather than evicted —
// the cap is a memory bound, not an exact invariant.
func (h *Hub) evictLRU(keep string) {
	var victimShard *shard
	victimName := ""
	victimUsed := uint64(math.MaxUint64)
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for name, e := range sh.series {
			if name != keep && e.lastUsed < victimUsed {
				victimShard, victimName, victimUsed = sh, name, e.lastUsed
			}
		}
		sh.mu.Unlock()
	}
	if victimShard == nil {
		return
	}
	evicted := false
	victimShard.mu.Lock()
	if e, ok := victimShard.series[victimName]; ok && e.lastUsed == victimUsed {
		delete(victimShard.series, victimName)
		h.count.Add(-1)
		h.evictions.Add(1)
		evicted = true
		if w := h.wal.Load(); w != nil {
			// Best-effort tombstone: without it a restart would resurrect
			// the evicted series with its stale cumulative total, and a
			// recreation would diverge from a never-restarted hub. A
			// failed tombstone only costs a resurrection on recovery.
			_ = w.Tombstone(victimName)
		}
	}
	victimShard.mu.Unlock()
	if evicted && h.cfg.OnDrop != nil {
		h.cfg.OnDrop(victimName)
	}
}

// Frame returns the latest frame for the named series. The second
// result reports whether the series exists; the frame is nil until the
// series' first refresh. Reading a frame counts as a use for LRU. The
// returned frame carries its own reference to the pooled values buffer:
// callers should Release it when done (the HTTP handlers do, after
// encoding), which is what lets concurrent refreshes recycle buffers
// without ever mutating a frame a reader still holds.
func (h *Hub) Frame(name string) (*asap.Frame, bool) {
	sh := h.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.series[name]
	if e == nil {
		return nil, false
	}
	e.lastUsed = h.clock.Add(1)
	return e.st.Frame(), true
}

// SeriesStats is one series' cumulative operator counters.
type SeriesStats struct {
	RawPoints  int
	Panes      int
	Searches   int
	Candidates int
	// Skipped counts refreshes the operator served from its cached
	// search result (no new pane since the previous search).
	Skipped int
	// Coalesced counts refresh deadlines folded into a single
	// batch-tail search by batched ingest.
	Coalesced int
	Ratio     int
}

// statsOf snapshots one entry's counters; the caller holds the owning
// shard's lock.
func statsOf(e *entry) SeriesStats {
	st := e.st.Stats()
	return SeriesStats{
		RawPoints:  st.RawPoints,
		Panes:      st.Panes,
		Searches:   st.Searches,
		Candidates: st.Candidates,
		Skipped:    st.SearchesSkipped,
		Coalesced:  st.SearchesCoalesced,
		Ratio:      e.st.Ratio(),
	}
}

// StatsFor snapshots one series' counters, locking only that series'
// shard — the /stats?series= fast path (Stats would lock every shard
// and snapshot all series to answer for one). Like Stats it does not
// count as an LRU touch.
func (h *Hub) StatsFor(name string) (SeriesStats, bool) {
	sh := h.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.series[name]
	if e == nil {
		return SeriesStats{}, false
	}
	return statsOf(e), true
}

// SeriesInfo is one line of the cheap series listing.
type SeriesInfo struct {
	Name      string
	RawPoints int
}

// SeriesList returns every live series' name and raw-point count,
// sorted by name — everything /series needs, without snapshotting the
// full per-series counter set the way Stats does. Shards are locked
// one at a time.
func (h *Hub) SeriesList() []SeriesInfo {
	list := make([]SeriesInfo, 0, h.Len())
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for name, e := range sh.series {
			list = append(list, SeriesInfo{Name: name, RawPoints: e.st.Stats().RawPoints})
		}
		sh.mu.Unlock()
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// Stats snapshots every live series' counters. Shards are locked one
// at a time, so the snapshot is per-series consistent but not a global
// point-in-time cut.
func (h *Hub) Stats() map[string]SeriesStats {
	out := make(map[string]SeriesStats, h.Len())
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for name, e := range sh.series {
			out[name] = statsOf(e)
		}
		sh.mu.Unlock()
	}
	return out
}

// SeriesNames returns the live series names, sorted.
func (h *Hub) SeriesNames() []string {
	names := make([]string, 0, h.Len())
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for name := range sh.series {
			names = append(names, name)
		}
		sh.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

// Package server implements the multi-series streaming hub behind
// cmd/asap-server: a sharded map of series name → *asap.Streamer plus
// the HTTP handlers that expose ingest, frames, plots, and stats.
//
// The hub hashes series names (FNV-1a) onto a fixed array of shards,
// each guarded by its own mutex, so concurrent ingest into distinct
// series rarely contends. A max-series cap with approximate LRU
// eviction bounds memory when clients create series faster than they
// revisit them.
package server

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/asap-go/asap"
)

// Defaults for HubConfig fields left zero.
const (
	DefaultMaxSeries  = 1024
	DefaultSeriesName = "default"
)

// HubConfig configures a Hub.
type HubConfig struct {
	// Stream configures the per-series Streamer created on first ingest
	// of each series name.
	Stream asap.StreamConfig
	// Shards is the number of lock shards. Zero means GOMAXPROCS.
	Shards int
	// MaxSeries caps live series across the hub; creating one beyond the
	// cap evicts the least-recently-used series. Zero means
	// DefaultMaxSeries.
	MaxSeries int
	// DefaultSeries is the series fed by bare-value ingest lines and read
	// by endpoints with no ?series= parameter. Empty means
	// DefaultSeriesName.
	DefaultSeries string
}

// Hub routes per-series traffic to independent Streamers behind
// per-shard locks. All methods are safe for concurrent use.
type Hub struct {
	cfg       HubConfig
	shards    []shard
	clock     atomic.Uint64 // LRU clock, ticks on every series touch
	count     atomic.Int64  // live series across all shards
	evictions atomic.Int64
}

type shard struct {
	mu     sync.Mutex
	series map[string]*entry
}

type entry struct {
	st       *asap.Streamer
	lastUsed uint64 // guarded by the owning shard's mutex
}

// NewHub validates cfg (by constructing a throwaway Streamer) and
// returns a ready Hub with no series.
func NewHub(cfg HubConfig) (*Hub, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = DefaultMaxSeries
	}
	if cfg.DefaultSeries == "" {
		cfg.DefaultSeries = DefaultSeriesName
	}
	if _, err := asap.NewStreamer(cfg.Stream); err != nil {
		return nil, err
	}
	h := &Hub{cfg: cfg, shards: make([]shard, cfg.Shards)}
	for i := range h.shards {
		h.shards[i].series = make(map[string]*entry)
	}
	return h, nil
}

// DefaultSeries returns the resolved default series name.
func (h *Hub) DefaultSeries() string { return h.cfg.DefaultSeries }

// Len returns the number of live series.
func (h *Hub) Len() int { return int(h.count.Load()) }

// Evictions returns how many series the LRU cap has removed.
func (h *Hub) Evictions() int64 { return h.evictions.Load() }

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnv32a is FNV-1a over the name without the []byte conversion a
// hash.Hash32 would force on the ingest hot path.
func fnv32a(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return h
}

func (h *Hub) shardFor(name string) *shard {
	return &h.shards[fnv32a(name)%uint32(len(h.shards))]
}

// PushBatch appends values to the named series in order, creating the
// series on first use. Only the series' own shard is locked while
// pushing, so batches for different series proceed in parallel.
func (h *Hub) PushBatch(name string, values []float64) error {
	sh := h.shardFor(name)
	sh.mu.Lock()
	e := sh.series[name]
	created := false
	if e == nil {
		st, err := asap.NewStreamer(h.cfg.Stream)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		e = &entry{st: st}
		sh.series[name] = e
		created = true
	}
	e.lastUsed = h.clock.Add(1)
	e.st.PushBatch(values)
	sh.mu.Unlock()
	if created && int(h.count.Add(1)) > h.cfg.MaxSeries {
		h.evictLRU(name)
	}
	return nil
}

// Apply pushes an already-parsed ingest batch, grouping consecutive
// points per series so each series takes its shard lock once. Call
// only with a fully parsed batch: parse errors must be surfaced before
// any point is applied so a bad line never leaves a partial batch.
func (h *Hub) Apply(pts []point) (npoints, nseries int) {
	order := make([]string, 0, 4)
	groups := make(map[string][]float64, 4)
	for _, p := range pts {
		if _, ok := groups[p.series]; !ok {
			order = append(order, p.series)
		}
		groups[p.series] = append(groups[p.series], p.value)
	}
	for _, name := range order {
		// The error path is config validation, which NewHub already ran.
		_ = h.PushBatch(name, groups[name])
	}
	return len(pts), len(order)
}

// evictLRU removes the least-recently-used series other than keep. The
// scan locks one shard at a time, so under concurrent churn the choice
// is approximate and a touched victim is skipped rather than evicted —
// the cap is a memory bound, not an exact invariant.
func (h *Hub) evictLRU(keep string) {
	var victimShard *shard
	victimName := ""
	victimUsed := uint64(math.MaxUint64)
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for name, e := range sh.series {
			if name != keep && e.lastUsed < victimUsed {
				victimShard, victimName, victimUsed = sh, name, e.lastUsed
			}
		}
		sh.mu.Unlock()
	}
	if victimShard == nil {
		return
	}
	victimShard.mu.Lock()
	if e, ok := victimShard.series[victimName]; ok && e.lastUsed == victimUsed {
		delete(victimShard.series, victimName)
		h.count.Add(-1)
		h.evictions.Add(1)
	}
	victimShard.mu.Unlock()
}

// Frame returns the latest frame for the named series. The second
// result reports whether the series exists; the frame is nil until the
// series' first refresh. Reading a frame counts as a use for LRU.
func (h *Hub) Frame(name string) (*asap.Frame, bool) {
	sh := h.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.series[name]
	if e == nil {
		return nil, false
	}
	e.lastUsed = h.clock.Add(1)
	return e.st.Frame(), true
}

// SeriesStats is one series' cumulative operator counters.
type SeriesStats struct {
	RawPoints  int
	Panes      int
	Searches   int
	Candidates int
	Ratio      int
}

// Stats snapshots every live series' counters. Shards are locked one
// at a time, so the snapshot is per-series consistent but not a global
// point-in-time cut.
func (h *Hub) Stats() map[string]SeriesStats {
	out := make(map[string]SeriesStats, h.Len())
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for name, e := range sh.series {
			st := e.st.Stats()
			out[name] = SeriesStats{
				RawPoints:  st.RawPoints,
				Panes:      st.Panes,
				Searches:   st.Searches,
				Candidates: st.Candidates,
				Ratio:      e.st.Ratio(),
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// SeriesNames returns the live series names, sorted.
func (h *Hub) SeriesNames() []string {
	names := make([]string, 0, h.Len())
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for name := range sh.series {
			names = append(names, name)
		}
		sh.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

package server

// GET /stream — live frame delivery over Server-Sent Events. The wire
// contract (see docs/STREAMING.md):
//
//	event: frame        one smoothed frame, data = the /frame JSON,
//	                    id = "<series>@<sequence>"
//	event: dropped      the series was removed (LRU eviction or a
//	                    replicated tombstone); data = {"series": ...}
//	: hb                heartbeat comment on the configured interval
//
// ?series=a,b subscribes one connection to several series with
// server-side fan-out. On connect each subscribed series' current
// retained frame is sent unless the client's Last-Event-ID (or the
// ?last_event_id= fallback for plain HTTP clients) shows it already
// has it — the resume contract is "you always converge on the newest
// frame", not "you replay the frames you missed": intermediate frames
// a disconnected client skipped are gone by design (latest-wins
// coalescing applies the same rule to connected-but-slow clients).

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/asap-go/asap/internal/obs/trace"
)

// streamQueryLimit bounds the ?series= parameter.
const streamQueryLimit = 16 << 10

// parseStreamSeries resolves the ?series=a,b,c parameter into a
// deduplicated subscription list, defaulting to the hub default.
func (s *Server) parseStreamSeries(r *http.Request) ([]string, error) {
	raw := r.URL.Query().Get("series")
	if raw == "" {
		return []string{s.hub.DefaultSeries()}, nil
	}
	if len(raw) > streamQueryLimit {
		return nil, fmt.Errorf("series list longer than %d bytes", streamQueryLimit)
	}
	var names []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(raw, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if len(name) > maxSeriesNameBytes {
			return nil, fmt.Errorf("series name longer than %d bytes", maxSeriesNameBytes)
		}
		if strings.ContainsFunc(name, isSeriesControlByte) {
			return nil, fmt.Errorf("invalid series name %q", name)
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty series list")
	}
	if len(names) > maxSeriesPerSubscriber {
		return nil, fmt.Errorf("at most %d series per stream", maxSeriesPerSubscriber)
	}
	return names, nil
}

// parseLastEventID extracts per-series resume state from the SSE
// Last-Event-ID header (or the ?last_event_id= fallback). The id
// format is "<series>@<sequence>"; the sequence is everything after
// the LAST '@' so series names containing '@' still round-trip.
// Unparseable ids are ignored — the client just gets the current frame
// again and dedupes by id.
func parseLastEventID(r *http.Request) map[string]int {
	id := r.Header.Get("Last-Event-ID")
	if id == "" {
		id = r.URL.Query().Get("last_event_id")
	}
	if id == "" {
		return nil
	}
	i := strings.LastIndexByte(id, '@')
	if i <= 0 {
		return nil
	}
	seq, err := strconv.Atoi(id[i+1:])
	if err != nil || seq < 0 {
		return nil
	}
	return map[string]int{id[:i]: seq}
}

// handleStream (GET) is the push counterpart of GET /frame: an SSE
// stream of every subscribed series' frames, coalesced to the newest
// under load, with heartbeats and Last-Event-ID resume.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if _, ok := w.(http.Flusher); !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	names, err := s.parseStreamSeries(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sub, err := s.broadcast.Subscribe(names, parseLastEventID(r))
	if err != nil {
		if err == ErrSubscriberLimit {
			s.logUnavailable(r, "subscriber limit reached", err)
			w.Header().Set("Retry-After", "5")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // intermediary proxies must not buffer
	rc := http.NewResponseController(w)

	// A stalled peer must fail its writes within the stall window so
	// this goroutine can exit; registry-side eviction only unhooks the
	// subscriber, it cannot unblock a Write. The failure is only
	// observable through rc.Flush(): Write lands in the server's
	// response buffer without touching the socket, and the legacy
	// http.Flusher.Flush discards the deadline error.
	writeTimeout := s.broadcast.stall
	if writeTimeout <= 0 {
		writeTimeout = DefaultStallTimeout
	}
	armWrite := func() { _ = rc.SetWriteDeadline(time.Now().Add(writeTimeout)) }

	// Tell EventSource clients how fast to reconnect, then flush the
	// headers so the client sees the stream is live before any frame.
	armWrite()
	if _, err := fmt.Fprint(w, "retry: 1000\n\n"); err != nil {
		return
	}
	if rc.Flush() != nil {
		return
	}

	// Connect-time catch-up: the current retained frame of every
	// subscribed series, routed through the same slots as live
	// publishes so Last-Event-ID and racing refreshes dedupe cleanly.
	for _, name := range names {
		if f, ok := s.hub.Frame(name); ok && f != nil {
			s.broadcast.CatchUp(sub, name, f) // hands over the frame reference
		}
	}

	heartbeat := s.cfg.HeartbeatEvery
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeatEvery
	}
	tick := time.NewTicker(heartbeat)
	defer tick.Stop()

	ctx := r.Context()
	var buf []*event
	for {
		select {
		case <-ctx.Done():
			return
		case <-sub.Done():
			// Evicted as a slow consumer, or the server is draining.
			armWrite()
			fmt.Fprint(w, "event: bye\ndata: {}\n\n")
			_ = rc.Flush()
			return
		case <-tick.C:
			armWrite()
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		case <-sub.notify:
			buf = sub.take(buf[:0])
			failed := false
			var oldest time.Time // oldest publish time in this drain
			for i, e := range buf {
				if !failed {
					armWrite()
					if _, err := w.Write(e.sse()); err != nil {
						failed = true
					} else {
						s.broadcast.delivered.Add(1)
						if oldest.IsZero() || e.at.Before(oldest) {
							oldest = e.at
						}
					}
				}
				e.release()
				buf[i] = nil
			}
			if failed {
				return
			}
			if rc.Flush() != nil {
				return
			}
			// Delivery latency = publish → flushed to the socket, one
			// observation per drain, pinned to its oldest frame. The flush
			// closes the delivery span: it starts at the oldest queued
			// event's publish time, so its duration is the full
			// publish-to-socket interval this drain covered.
			if !oldest.IsZero() {
				dsp := trace.StartSpanAt(ctx, "sse.flush", oldest)
				dsp.SetInt("events", int64(len(buf)))
				dsp.End()
				s.metrics.delivery.ObserveExemplar(time.Since(oldest).Seconds(), dsp.TraceID())
			}
		}
	}
}

package server

// The server's observability surface: one obs.Registry holding every
// layer's metrics, exposed at GET /metrics in Prometheus text format
// (see docs/OBSERVABILITY.md for the catalog).
//
// Instrument discipline mirrors the refresh engine's: hot paths (wal
// append/fsync, hub refresh, broadcast delivery) observe into
// preallocated atomic histograms — no labels looked up, no allocation.
// Everything that is already counted elsewhere (hub stats, broadcast
// counters, WAL stats, replica lag gauges) is exported through
// CounterFunc/GaugeFunc over a snapshot the collector refreshes once
// per scrape, so a scrape costs one sweep per layer instead of one per
// metric.
//
// All five layers' families are always registered — a memory-only
// primary still exposes asap_wal_* and asap_replica_* at zero — so
// dashboards and the acceptance checks see a stable catalog regardless
// of the server's mode.

import (
	"log/slog"
	"net/http"
	"time"

	"github.com/asap-go/asap/internal/obs"
	"github.com/asap-go/asap/internal/obs/trace"
	"github.com/asap-go/asap/internal/replica"
	"github.com/asap-go/asap/internal/wal"
)

// routePatterns is the full route table; Handler() builds the mux from
// it and newServerMetrics pre-registers every route's instruments, so
// the hot path never creates a label set.
var routePatterns = []string{
	"/", "/ingest", "/frame", "/stream", "/series", "/stats", "/plot.svg",
	"/healthz", "/readyz", "/snapshot", "/metrics",
	"/replica/segments", "/replica/segment", "/promote",
	"/traces", "/traces/",
}

// streamingRoutes hold the connection open by design (SSE fan-out, the
// replication long-poll), so their durations are connection lifetimes,
// not request latencies. They get their own histogram family — mixing
// them into asap_http_request_duration_seconds skewed every aggregate
// p99 toward the poll timeout.
var streamingRoutes = map[string]bool{
	"/stream":           true,
	"/replica/segments": true,
}

// statusClasses are the exported status-class label values, indexed by
// status/100.
var statusClasses = [6]string{"unknown", "1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics is one route's pre-registered instruments.
type routeMetrics struct {
	byClass  [6]*obs.Counter
	duration *obs.Histogram
}

// hubMetrics is the hub-level stream instrumentation, wired through the
// unexported HubConfig.metrics field.
type hubMetrics struct {
	// refreshSeconds observes the PushBatch call time of every push
	// that emitted a frame — the refresh path, including the batch
	// append that triggered it.
	refreshSeconds *obs.Histogram
}

// serverMetrics owns the registry plus the collector-refreshed
// snapshots the Func metrics read. Snapshot fields are written by the
// collector and read by value funcs, both under the registry lock.
type serverMetrics struct {
	reg *obs.Registry

	inFlight *obs.Gauge
	routes   map[string]*routeMetrics
	// requests counts every HTTP request regardless of route — the
	// self-monitor's rate source. Unregistered: /metrics already
	// exposes the per-route split.
	requests *obs.Counter

	hub      *hubMetrics
	wal      *wal.Metrics
	delivery *obs.Histogram

	// Collector-refreshed snapshots (valid only during a scrape).
	agg      SeriesStats
	seriesN  int
	fill     float64
	bstats   BroadcastStats
	walStats wal.Stats
	walOn    bool
	fstatus  replica.Status
	fOn      bool
	tc       trace.Counters
}

// newServerMetrics registers every instrument-backed family. The
// Func-backed families need a constructed Server and are registered by
// bind.
func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:      reg,
		routes:   make(map[string]*routeMetrics, len(routePatterns)),
		requests: &obs.Counter{},
	}

	m.inFlight = reg.Gauge(obs.Opts{
		Name: "asap_http_in_flight_requests",
		Help: "HTTP requests currently being served.",
	})
	durBuckets := obs.ExpBuckets(0.0005, 2.5, 12) // 0.5ms .. ~12s
	lifeBuckets := obs.ExpBuckets(0.05, 4, 10)    // 50ms .. ~3.6h
	for _, route := range routePatterns {
		durOpts := obs.Opts{
			Name:   "asap_http_request_duration_seconds",
			Help:   "HTTP request latency by route.",
			Labels: []obs.Label{{Key: "route", Value: route}},
		}
		buckets := durBuckets
		if streamingRoutes[route] {
			durOpts.Name = "asap_http_streaming_duration_seconds"
			durOpts.Help = "Connection lifetime of streaming routes (SSE, replication long-poll)."
			buckets = lifeBuckets
		}
		rm := &routeMetrics{
			duration: reg.Histogram(durOpts, buckets),
		}
		for class := 1; class < len(statusClasses); class++ {
			rm.byClass[class] = reg.Counter(obs.Opts{
				Name: "asap_http_requests_total",
				Help: "HTTP requests served by route and status class.",
				Labels: []obs.Label{
					{Key: "route", Value: route},
					{Key: "code", Value: statusClasses[class]},
				},
			})
		}
		m.routes[route] = rm
	}

	m.hub = &hubMetrics{
		refreshSeconds: reg.Histogram(obs.Opts{
			Name: "asap_stream_refresh_duration_seconds",
			Help: "Hub push time for pushes that emitted a smoothed frame (the refresh path).",
		}, obs.ExpBuckets(1e-6, 4, 12)),
	}
	m.wal = &wal.Metrics{
		AppendSeconds: reg.Histogram(obs.Opts{
			Name: "asap_wal_append_duration_seconds",
			Help: "WAL append latency, including the group-commit fsync wait in strict mode.",
		}, obs.ExpBuckets(1e-6, 4, 12)),
		FsyncSeconds: reg.Histogram(obs.Opts{
			Name: "asap_wal_fsync_duration_seconds",
			Help: "WAL fsync latency.",
		}, obs.ExpBuckets(1e-5, 4, 12)),
		FsyncBatchRecords: reg.Histogram(obs.Opts{
			Name: "asap_wal_fsync_batch_records",
			Help: "Records made durable per fsync (the group-commit coalescing factor).",
		}, []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
	}
	m.delivery = reg.Histogram(obs.Opts{
		Name: "asap_broadcast_delivery_duration_seconds",
		Help: "Publish-to-flush latency of frames delivered over GET /stream.",
	}, obs.ExpBuckets(1e-5, 4, 12))
	return m
}

// bind registers the Func-backed families over s and the collector
// that snapshots each layer once per scrape.
func (m *serverMetrics) bind(s *Server) {
	reg := m.reg
	windowPoints := s.cfg.Hub.Stream.WindowPoints
	reg.AddCollector(func() {
		per := s.hub.Stats()
		var agg SeriesStats
		fill := 0.0
		for _, st := range per {
			agg.RawPoints += st.RawPoints
			agg.Panes += st.Panes
			agg.Searches += st.Searches
			agg.Candidates += st.Candidates
			agg.Skipped += st.Skipped
			agg.Coalesced += st.Coalesced
			if windowPoints > 0 {
				f := float64(st.RawPoints) / float64(windowPoints)
				if f > 1 {
					f = 1
				}
				fill += f
			}
		}
		m.agg, m.seriesN = agg, len(per)
		m.fill = 0
		if len(per) > 0 {
			m.fill = fill / float64(len(per))
		}
		m.bstats = s.broadcast.Stats()
		if wl := s.curWAL(); wl != nil {
			m.walStats, m.walOn = wl.Stats(), true
		} else {
			m.walStats, m.walOn = wal.Stats{}, false
		}
		// After promotion the follower gauges freeze at their pre-promote
		// values; report zeros rather than misread the new primary as a
		// lagging replica (same rule as /stats).
		if s.follower != nil && s.role.Load() != rolePrimary {
			m.fstatus, m.fOn = s.follower.Status(), true
		} else {
			m.fstatus, m.fOn = replica.Status{}, false
		}
		m.tc = s.tracer.Counters()
	})

	// --- stream layer (hub aggregates over live series; evicting a
	// series drops its share, which scrapes see as a counter reset) ---
	reg.GaugeFunc(obs.Opts{Name: "asap_stream_series",
		Help: "Live series in the hub."},
		func() float64 { return float64(m.seriesN) })
	reg.GaugeFunc(obs.Opts{Name: "asap_stream_window_fill_ratio",
		Help: "Mean fraction of the visualization window filled across live series."},
		func() float64 { return m.fill })
	reg.CounterFunc(obs.Opts{Name: "asap_stream_raw_points_total",
		Help: "Raw points ingested across live series."},
		func() float64 { return float64(m.agg.RawPoints) })
	reg.CounterFunc(obs.Opts{Name: "asap_stream_panes_total",
		Help: "Preaggregation panes completed across live series."},
		func() float64 { return float64(m.agg.Panes) })
	reg.CounterFunc(obs.Opts{Name: "asap_stream_searches_total",
		Help: "Smoothing-parameter searches run across live series."},
		func() float64 { return float64(m.agg.Searches) })
	reg.CounterFunc(obs.Opts{Name: "asap_stream_searches_skipped_total",
		Help: "Refreshes served from the cached search result (no new pane)."},
		func() float64 { return float64(m.agg.Skipped) })
	reg.CounterFunc(obs.Opts{Name: "asap_stream_searches_coalesced_total",
		Help: "Refresh deadlines folded into a single batch-tail search."},
		func() float64 { return float64(m.agg.Coalesced) })
	reg.CounterFunc(obs.Opts{Name: "asap_stream_candidates_total",
		Help: "Candidate windows evaluated across live series."},
		func() float64 { return float64(m.agg.Candidates) })

	// --- server role / eviction ---
	reg.CounterFunc(obs.Opts{Name: "asap_server_evictions_total",
		Help: "Series removed by the LRU cap."},
		func() float64 { return float64(s.hub.Evictions()) })
	for _, rl := range []struct {
		name string
		val  int32
	}{{"primary", rolePrimary}, {"follower", roleFollower}, {"promoting", rolePromoting}} {
		reg.GaugeFunc(obs.Opts{Name: "asap_server_role",
			Help:   "Server role; 1 on the active role's series.",
			Labels: []obs.Label{{Key: "role", Value: rl.name}}},
			func() float64 {
				if s.role.Load() == rl.val {
					return 1
				}
				return 0
			})
	}

	// --- wal layer ---
	reg.GaugeFunc(obs.Opts{Name: "asap_wal_enabled",
		Help: "1 when a write-ahead log is attached (durability on)."},
		func() float64 {
			if m.walOn {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(obs.Opts{Name: "asap_wal_durable_lag_seconds",
		Help: "Age of the oldest acknowledged append not yet fsynced."},
		func() float64 { return m.walStats.FlushLag.Seconds() })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_appended_records_total",
		Help: "Records appended to the WAL."},
		func() float64 { return float64(m.walStats.AppendedRecords) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_appended_points_total",
		Help: "Points appended to the WAL."},
		func() float64 { return float64(m.walStats.AppendedPoints) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_syncs_total",
		Help: "Successful WAL fsyncs."},
		func() float64 { return float64(m.walStats.Syncs) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_sync_errors_total",
		Help: "Failed WAL flushes or fsyncs."},
		func() float64 { return float64(m.walStats.SyncErrors) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_rotations_total",
		Help: "WAL segment rotations."},
		func() float64 { return float64(m.walStats.Rotations) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_segments_dropped_total",
		Help: "Sealed segments reclaimed by retention."},
		func() float64 { return float64(m.walStats.SegmentsDropped) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_snapshots_total",
		Help: "WAL compaction snapshots taken."},
		func() float64 { return float64(m.walStats.Snapshots) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_auto_snapshots_total",
		Help: "Background snapshots taken by the scheduler."},
		func() float64 { return float64(s.autoSnapshots.Load()) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_auto_snapshot_errors_total",
		Help: "Background snapshots that failed."},
		func() float64 { return float64(s.autoSnapshotErrs.Load()) })
	reg.GaugeFunc(obs.Opts{Name: "asap_wal_last_snapshot_age_seconds",
		Help: "Time since the last WAL snapshot (or server start)."},
		func() float64 {
			return time.Since(time.Unix(0, s.lastSnapshotNano.Load())).Seconds()
		})
	reg.GaugeFunc(obs.Opts{Name: "asap_wal_degraded_shards",
		Help: "WAL shards currently degraded (durability broken, background reopen retrying)."},
		func() float64 { return float64(m.walStats.DegradedShards) })
	reg.GaugeFunc(obs.Opts{Name: "asap_wal_wedged_shards",
		Help: "WAL shards wedged permanently (reopen retries exhausted or disabled)."},
		func() float64 { return float64(m.walStats.WedgedShards) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_reopen_attempts_total",
		Help: "Reopen attempts made for degraded WAL shards."},
		func() float64 { return float64(m.walStats.ReopenAttempts) })
	reg.CounterFunc(obs.Opts{Name: "asap_wal_reopen_recoveries_total",
		Help: "Degraded WAL shards successfully reopened (durability restored)."},
		func() float64 { return float64(m.walStats.ReopenRecoveries) })

	// --- broadcast layer ---
	reg.GaugeFunc(obs.Opts{Name: "asap_broadcast_subscribers",
		Help: "Currently connected GET /stream subscribers."},
		func() float64 { return float64(m.bstats.Subscribers) })
	reg.CounterFunc(obs.Opts{Name: "asap_broadcast_subscribed_total",
		Help: "Accepted stream subscriptions."},
		func() float64 { return float64(m.bstats.Subscribed) })
	reg.CounterFunc(obs.Opts{Name: "asap_broadcast_rejected_total",
		Help: "Subscriptions refused by the subscriber cap."},
		func() float64 { return float64(m.bstats.Rejected) })
	reg.CounterFunc(obs.Opts{Name: "asap_broadcast_published_total",
		Help: "Events (frames and drops) offered to the subscriber registry."},
		func() float64 { return float64(m.bstats.Published) })
	reg.CounterFunc(obs.Opts{Name: "asap_broadcast_delivered_total",
		Help: "Events written to stream subscribers."},
		func() float64 { return float64(m.bstats.Delivered) })
	reg.CounterFunc(obs.Opts{Name: "asap_broadcast_coalesced_total",
		Help: "Pending events superseded by a newer frame before delivery."},
		func() float64 { return float64(m.bstats.Coalesced) })
	reg.CounterFunc(obs.Opts{Name: "asap_broadcast_evicted_total",
		Help: "Subscribers cut for stalling past the deadline."},
		func() float64 { return float64(m.bstats.Evicted) })

	// --- replica layer ---
	reg.GaugeFunc(obs.Opts{Name: "asap_replica_active",
		Help: "1 while this server replicates a primary (follower role)."},
		func() float64 {
			if m.fOn {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(obs.Opts{Name: "asap_replica_bootstrapped",
		Help: "1 once every shard finished bootstrap."},
		func() float64 {
			if m.fstatus.Bootstrapped {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(obs.Opts{Name: "asap_replica_synced",
		Help: "1 when the last poll succeeded with zero lag."},
		func() float64 {
			if m.fstatus.Synced {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(obs.Opts{Name: "asap_replica_segments_behind",
		Help: "Segments the follower still has to apply."},
		func() float64 { return float64(m.fstatus.SegmentsBehind) })
	reg.GaugeFunc(obs.Opts{Name: "asap_replica_records_behind",
		Help: "Records the follower still has to apply."},
		func() float64 { return float64(m.fstatus.RecordsBehind) })
	reg.GaugeFunc(obs.Opts{Name: "asap_replica_bytes_behind",
		Help: "Durable bytes the follower still has to fetch."},
		func() float64 { return float64(m.fstatus.BytesBehind) })
	reg.GaugeFunc(obs.Opts{Name: "asap_replica_last_poll_age_seconds",
		Help: "Time since the last successful manifest poll (0 before the first)."},
		func() float64 {
			if m.fstatus.LastPoll.IsZero() {
				return 0
			}
			return time.Since(m.fstatus.LastPoll).Seconds()
		})
	reg.CounterFunc(obs.Opts{Name: "asap_replica_polls_total",
		Help: "Manifest polls attempted."},
		func() float64 { return float64(m.fstatus.Polls) })
	reg.CounterFunc(obs.Opts{Name: "asap_replica_poll_errors_total",
		Help: "Manifest polls that failed."},
		func() float64 { return float64(m.fstatus.PollErrors) })
	reg.CounterFunc(obs.Opts{Name: "asap_replica_resyncs_total",
		Help: "Shards re-bootstrapped from a primary snapshot after a chain gap."},
		func() float64 { return float64(m.fstatus.Resyncs) })
	reg.CounterFunc(obs.Opts{Name: "asap_replica_retries_total",
		Help: "Backed-off retry pauses after failed polls (riding out a primary outage)."},
		func() float64 { return float64(m.fstatus.Retries) })
	reg.CounterFunc(obs.Opts{Name: "asap_replica_records_applied_total",
		Help: "Replicated records applied through the hub."},
		func() float64 { return float64(m.fstatus.RecordsApplied) })
	reg.CounterFunc(obs.Opts{Name: "asap_replica_points_applied_total",
		Help: "Replicated points applied through the hub."},
		func() float64 { return float64(m.fstatus.PointsApplied) })
	reg.CounterFunc(obs.Opts{Name: "asap_replica_bytes_fetched_total",
		Help: "Segment bytes fetched from the primary."},
		func() float64 { return float64(m.fstatus.BytesFetched) })

	// --- trace layer ---
	reg.CounterFunc(obs.Opts{Name: "asap_trace_spans_started_total",
		Help: "Spans opened across all recorded traces."},
		func() float64 { return float64(m.tc.SpansStarted) })
	reg.CounterFunc(obs.Opts{Name: "asap_trace_traces_sampled_total",
		Help: "Traces recorded by the head sampler (or joined via traceparent)."},
		func() float64 { return float64(m.tc.TracesSampled) })
	for _, k := range []struct {
		reason string
		val    func() int64
	}{
		{"slow", func() int64 { return m.tc.KeptSlow }},
		{"error", func() int64 { return m.tc.KeptError }},
		{"reservoir", func() int64 { return m.tc.KeptReservoir }},
	} {
		val := k.val
		reg.CounterFunc(obs.Opts{Name: "asap_trace_traces_kept_total",
			Help:   "Completed traces retained by the tail sampler, by reason.",
			Labels: []obs.Label{{Key: "reason", Value: k.reason}}},
			func() float64 { return float64(val()) })
	}
	reg.CounterFunc(obs.Opts{Name: "asap_trace_traces_dropped_total",
		Help: "Completed traces discarded by the tail sampler (unremarkable latency, no error)."},
		func() float64 { return float64(m.tc.Dropped) })
	reg.GaugeFunc(obs.Opts{Name: "asap_trace_store_traces",
		Help: "Traces currently retained in the ring store (GET /traces)."},
		func() float64 { return float64(m.tc.StoreLen) })
}

// statusRecorder captures the response status for the request metrics
// while staying transparent to the streaming machinery: FlushError
// (which http.ResponseController prefers over the legacy Flusher, and
// which must surface write-deadline errors for SSE stall detection)
// delegates through a controller on the wrapped writer, and Unwrap
// lets SetWriteDeadline resolve down the chain.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) FlushError() error {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return http.NewResponseController(r.ResponseWriter).Flush()
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// cleanRequestID reports whether an incoming X-Request-ID is safe to
// echo into logs and headers.
func cleanRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// instrument wraps one route's handler with the HTTP layer: request-ID
// assignment (honoring a clean incoming X-Request-ID), trace rooting
// (honoring an inbound W3C traceparent and echoing ours on the
// response), the in-flight gauge, the per-route latency histogram
// (with a trace-id exemplar when the request was recorded), the
// status-class counters, a slow-request warning carrying the span
// breakdown inline, and a debug-level access log line carrying both
// correlation ids.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.metrics.routes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if !cleanRequestID(rid) {
			rid = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		ctx := obs.WithRequestID(r.Context(), rid)
		ctx, tr := s.tracer.StartRequest(ctx, route, r.Header.Get("traceparent"))
		if tr != nil {
			// Echo so clients (and the follower joining over the replication
			// hop) can correlate their side with GET /traces/{id}.
			w.Header().Set("traceparent", tr.Traceparent())
		}
		r = r.WithContext(ctx)

		rec := &statusRecorder{ResponseWriter: w}
		s.metrics.requests.Inc()
		s.metrics.inFlight.Add(1)
		start := time.Now()
		h(rec, r)
		dur := time.Since(start)
		s.metrics.inFlight.Add(-1)

		status := rec.status
		if status == 0 {
			// The handler wrote nothing; net/http will answer 200.
			status = http.StatusOK
		}
		class := status / 100
		if class < 1 || class > 5 {
			class = 0
		}
		if c := rm.byClass[class]; c != nil {
			c.Inc()
		}
		traceID := ""
		if tr != nil {
			root := tr.Root()
			root.SetInt("status", int64(status))
			if class == 5 {
				root.SetError(http.StatusText(status))
			}
			s.tracer.Finish(tr)
			traceID = tr.ID()
		}
		if traceID != "" {
			rm.duration.ObserveExemplar(dur.Seconds(), traceID)
		} else {
			rm.duration.ObserveDuration(dur)
		}
		if tr != nil && dur >= s.tracer.SlowThreshold(route) {
			s.log().LogAttrs(ctx, slog.LevelWarn, "slow request",
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("status", status),
				slog.Int64("duration_us", dur.Microseconds()),
				slog.String("request_id", rid),
				slog.String("trace_id", traceID),
				slog.String("spans", tr.Breakdown()),
			)
		}
		s.log().LogAttrs(ctx, slog.LevelDebug, "http",
			slog.String("route", route),
			slog.String("method", r.Method),
			slog.Int("status", status),
			slog.Int64("duration_us", dur.Microseconds()),
			slog.String("request_id", rid),
			slog.String("trace_id", traceID),
		)
	}
}

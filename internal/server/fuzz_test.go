package server

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzIngestParse checks that arbitrary ingest bodies never panic the
// line-protocol parser, that every accepted point is well-formed, and
// that accepted batches round-trip through their canonical
// "series=value" serialization to the same points.
func FuzzIngestParse(f *testing.F) {
	seeds := []string{
		"1\n2\n3\n",
		"1.5\n-2e3\n+0.25\n",
		"cpu.load=0.93\ndisk.io=1200\ncpu.load=0.94\n",
		"mixed=1\n42\nmixed=2\n",
		"\n\n\n",
		"# comment\n1\n  # indented comment\n",
		"  spaced = 3.5 \n",
		"not-a-number\n",
		"=5\n",
		"a=\n",
		"a==5\n",
		"NaN\nInf\n-Inf\n",
		"x=NaN\n",
		"1e309\n",
		"0x1p10\n",
		"\x00\xff\n",
		"s\r\n1\r\n",
		"a\rb=1\n",
		"a\x00b=2\n",
		strings.Repeat("9", 400) + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := parseIngest(bytes.NewReader(data), "default")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var canon strings.Builder
		for i, p := range pts {
			if p.series == "" {
				t.Fatalf("point %d has empty series", i)
			}
			if strings.HasPrefix(p.series, "#") {
				t.Fatalf("point %d series %q begins a comment", i, p.series)
			}
			if strings.ContainsAny(p.series, "=\n\r") {
				t.Fatalf("point %d series %q contains protocol bytes", i, p.series)
			}
			if math.IsNaN(p.value) || math.IsInf(p.value, 0) {
				t.Fatalf("point %d accepted non-finite value %v", i, p.value)
			}
			canon.WriteString(p.series)
			canon.WriteByte('=')
			canon.WriteString(strconv.FormatFloat(p.value, 'g', -1, 64))
			canon.WriteByte('\n')
		}
		back, err := parseIngest(strings.NewReader(canon.String()), "default")
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\ncanonical: %q", err, canon.String())
		}
		if len(back) != len(pts) {
			t.Fatalf("round-trip length %d != %d", len(back), len(pts))
		}
		for i := range pts {
			if back[i] != pts[i] {
				t.Fatalf("round-trip point %d: %+v != %+v", i, back[i], pts[i])
			}
		}
	})
}

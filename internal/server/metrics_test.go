package server

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// scrape fetches GET /metrics and returns the parsed exposition, which
// ParseExposition has already validated (HELP/TYPE discipline, label
// syntax, monotone histogram buckets).
func scrape(t *testing.T, url string) map[string]*obs.ExpoFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q, want 0.0.4 exposition", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	return fams
}

// sampleValue finds one sample by name and exact label subset match.
func sampleValue(fams map[string]*obs.ExpoFamily, family, sample string, labels map[string]string) (float64, bool) {
	fam := fams[family]
	if fam == nil {
		return 0, false
	}
next:
	for _, s := range fam.Samples {
		if s.Name != sample {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

func TestMetricsCoverAllLayers(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	cfg.FsyncEvery = 0 // strict: every ingest fsyncs, so WAL histograms fill
	_, ts := newTestServer(t, cfg)

	post(t, ts.URL+"/ingest", sineBody("cpu", 500))
	get(t, ts.URL+"/frame?series=cpu")
	fams := scrape(t, ts.URL)

	// One representative family per instrumented layer, plus shape checks.
	for _, name := range []string{
		"asap_http_requests_total",
		"asap_http_request_duration_seconds",
		"asap_http_in_flight_requests",
		"asap_stream_refresh_duration_seconds",
		"asap_stream_raw_points_total",
		"asap_wal_append_duration_seconds",
		"asap_wal_fsync_duration_seconds",
		"asap_wal_fsync_batch_records",
		"asap_wal_appended_points_total",
		"asap_broadcast_delivery_duration_seconds",
		"asap_broadcast_subscribers",
		"asap_replica_active",
		"asap_replica_records_behind",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from scrape", name)
		}
	}

	if v, ok := sampleValue(fams, "asap_stream_raw_points_total", "asap_stream_raw_points_total", nil); !ok || v != 500 {
		t.Errorf("asap_stream_raw_points_total = %v, %v; want 500", v, ok)
	}
	if v, ok := sampleValue(fams, "asap_wal_enabled", "asap_wal_enabled", nil); !ok || v != 1 {
		t.Errorf("asap_wal_enabled = %v, %v; want 1", v, ok)
	}
	if v, ok := sampleValue(fams, "asap_http_requests_total", "asap_http_requests_total",
		map[string]string{"route": "/ingest", "code": "2xx"}); !ok || v < 1 {
		t.Errorf(`asap_http_requests_total{route="/ingest",code="2xx"} = %v, %v; want >= 1`, v, ok)
	}
	// The ingest fsynced in strict mode, so the WAL histograms observed.
	if v, ok := sampleValue(fams, "asap_wal_fsync_duration_seconds", "asap_wal_fsync_duration_seconds_count", nil); !ok || v < 1 {
		t.Errorf("fsync histogram count = %v, %v; want >= 1", v, ok)
	}
	// The frame-emitting ingest exercised the refresh histogram.
	if v, ok := sampleValue(fams, "asap_stream_refresh_duration_seconds", "asap_stream_refresh_duration_seconds_count", nil); !ok || v < 1 {
		t.Errorf("refresh histogram count = %v, %v; want >= 1", v, ok)
	}
	// A memory-only follower-less primary still reports the replica
	// layer, at zero.
	if v, ok := sampleValue(fams, "asap_replica_active", "asap_replica_active", nil); !ok || v != 0 {
		t.Errorf("asap_replica_active = %v, %v; want 0", v, ok)
	}
	if v, ok := sampleValue(fams, "asap_server_role", "asap_server_role",
		map[string]string{"role": "primary"}); !ok || v != 1 {
		t.Errorf(`asap_server_role{role="primary"} = %v, %v; want 1`, v, ok)
	}
}

func TestMetricsDeliveryHistogramOnStream(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", sineBody("cpu", 600))

	ch, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()
	nextFrame(t, ch, 2*time.Second) // catch-up frame
	post(t, ts.URL+"/ingest", sineBody("cpu", 100))
	nextFrame(t, ch, 2*time.Second) // live frame: publish→flush observed

	fams := scrape(t, ts.URL)
	if v, ok := sampleValue(fams, "asap_broadcast_delivery_duration_seconds",
		"asap_broadcast_delivery_duration_seconds_count", nil); !ok || v < 1 {
		t.Errorf("delivery histogram count = %v, %v; want >= 1", v, ok)
	}
	if v, ok := sampleValue(fams, "asap_broadcast_subscribers", "asap_broadcast_subscribers", nil); !ok || v != 1 {
		t.Errorf("asap_broadcast_subscribers = %v, %v; want 1", v, ok)
	}
}

// TestMetricsGoldenCatalog pins the full family catalog (name + type)
// so a PR that drops or retypes a metric fails visibly. Regenerate with
// go test ./internal/server -run Golden -update.
func TestMetricsGoldenCatalog(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	fams := scrape(t, ts.URL)

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %s\n", name, fams[name].Type)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics_families.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric catalog drifted from %s (regenerate with -update):\ngot:\n%swant:\n%s", golden, got, want)
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	code, _ := post(t, ts.URL+"/metrics", "")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", code)
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	// No incoming ID: one is generated.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-ID")
	if gen == "" || !cleanRequestID(gen) {
		t.Errorf("generated X-Request-ID = %q", gen)
	}

	do := func(id string) string {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}
	// A clean incoming ID is honored end to end.
	if got := do("trace-abc-123"); got != "trace-abc-123" {
		t.Errorf("clean incoming ID echoed as %q", got)
	}
	// A hostile one (header injection, over-long) is replaced.
	if got := do(strings.Repeat("x", 65)); got == strings.Repeat("x", 65) || !cleanRequestID(got) {
		t.Errorf("over-long incoming ID echoed as %q", got)
	}
}

// TestStatsAggregateNoSeries pins the /stats aggregate (no ?series=)
// document shape: top-level counters, the aggregate block, per-series
// breakdown, and the stream (broadcast) section that is always present.
func TestStatsAggregateNoSeries(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	_, ts := newTestServer(t, cfg)
	post(t, ts.URL+"/ingest", sineBody("cpu", 300)+sineBody("disk", 200))

	code, body := get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("stats status %d", code)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	for _, key := range []string{"series_count", "evictions", "role", "aggregate", "series", "stream", "wal"} {
		if _, ok := st[key]; !ok {
			t.Errorf("stats aggregate missing %q", key)
		}
	}
	var agg map[string]int
	if err := json.Unmarshal(st["aggregate"], &agg); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"raw_points", "panes", "searches", "candidates", "searches_skipped", "searches_coalesced"} {
		if _, ok := agg[key]; !ok {
			t.Errorf("aggregate missing %q", key)
		}
	}
	if agg["raw_points"] != 500 {
		t.Errorf("aggregate raw_points = %d, want 500", agg["raw_points"])
	}
	var wals map[string]json.RawMessage
	if err := json.Unmarshal(st["wal"], &wals); err != nil {
		t.Fatal(err)
	}
	if _, ok := wals["appended_points"]; !ok {
		t.Error("wal section missing appended_points")
	}
}

// TestSelfMonitorStreamsOwnSeries runs the self-monitor loop against a
// small window and watches its __asap.* series come out the other end
// of the full pipeline: hub, frame, and live SSE delivery.
func TestSelfMonitorStreamsOwnSeries(t *testing.T) {
	cfg := Config{
		Hub: HubConfig{
			Stream: asap.StreamConfig{
				WindowPoints: 16,
				Resolution:   8,
				RefreshEvery: 1,
			},
		},
		SelfMonitor:      true,
		SelfMonitorEvery: 10 * time.Millisecond,
	}
	s, ts := newTestServer(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.selfMonitorLoop(ctx) // Serve() starts this under -self-monitor

	// Each poll is itself a request, so the request-rate series keeps
	// moving; wait for a smoothed frame to materialize.
	deadline := time.After(10 * time.Second)
	for {
		code, _ := get(t, ts.URL+"/frame?series="+selfSeriesRequests)
		if code == 200 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no %s frame after 10s", selfSeriesRequests)
		case <-time.After(20 * time.Millisecond):
		}
	}

	// The series is ordinary: it lists, and it streams live.
	if _, body := get(t, ts.URL+"/series"); !strings.Contains(body, selfSeriesRequests) {
		t.Errorf("/series does not list %s: %s", selfSeriesRequests, body)
	}
	ch, cancelStream := openStream(t, ts.URL+"/stream?series="+selfSeriesRequests, nil)
	defer cancelStream()
	f, _ := nextFrame(t, ch, 5*time.Second)
	if f.Series != selfSeriesRequests || len(f.Values) == 0 {
		t.Errorf("streamed self-monitor frame = %+v", f)
	}
}

// TestSelfMonitorIdleOnFollower: a follower must not push local series
// (its hub state must stay bit-identical to the replicated stream).
func TestSelfMonitorIdleOnFollower(t *testing.T) {
	cfg := Config{
		Hub: HubConfig{
			Stream: asap.StreamConfig{WindowPoints: 16, Resolution: 8, RefreshEvery: 1},
		},
		SelfMonitorEvery: 5 * time.Millisecond,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.role.Store(roleFollower)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.selfMonitorLoop(ctx)
	time.Sleep(100 * time.Millisecond)
	if names := s.Hub().SeriesNames(); len(names) != 0 {
		t.Errorf("follower self-monitor created series %v", names)
	}
}

func TestPprofSeparateListener(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop, err := s.servePprof(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	addr := s.PprofAddr()
	if addr == "" {
		t.Fatal("PprofAddr empty after servePprof")
	}
	code, body := get(t, "http://"+addr+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("pprof index = %d %.60q", code, body)
	}
	// The main mux must never grow profiling routes.
	if code, _ := get(t, ts.URL+"/debug/pprof/"); code != 404 {
		t.Errorf("main mux /debug/pprof/ status %d, want 404", code)
	}
}

// TestMetricsInstrumentationAllocs proves the instrumentation adds no
// allocations to the hot paths (picked up by make alloc-check).
func TestMetricsInstrumentationAllocs(t *testing.T) {
	m := newServerMetrics()
	if n := testing.AllocsPerRun(1000, func() {
		m.requests.Inc()
		m.inFlight.Add(1)
		m.hub.refreshSeconds.ObserveDuration(time.Microsecond)
		m.wal.AppendSeconds.Observe(1e-6)
		m.wal.FsyncBatchRecords.Observe(8)
		m.delivery.ObserveDuration(time.Millisecond)
		m.inFlight.Add(-1)
	}); n != 0 {
		t.Errorf("instrument hot path allocates %v/op, want 0", n)
	}

	// The instrumented hub refresh allocates no more than the bare one.
	push := func(h *Hub) float64 {
		batch := make([]float64, 100) // one refresh per batch under testConfig
		// Warm up pools and the window ring before measuring.
		for i := 0; i < 5; i++ {
			h.PushBatch("cpu", batch)
		}
		return testing.AllocsPerRun(50, func() { h.PushBatch("cpu", batch) })
	}
	bareCfg := testConfig().Hub
	bare, err := NewHub(bareCfg)
	if err != nil {
		t.Fatal(err)
	}
	instCfg := testConfig().Hub
	instCfg.metrics = m.hub
	inst, err := NewHub(instCfg)
	if err != nil {
		t.Fatal(err)
	}
	if db, di := push(bare), push(inst); di > db {
		t.Errorf("instrumented refresh allocates %v/op vs %v/op bare", di, db)
	}
}

// BenchmarkMetricsHotPath is the bench-gate entry
// (BENCH_refresh.json): the instrument primitives and the instrumented
// hub refresh path, which must stay allocation-free.
func BenchmarkMetricsHotPath(bm *testing.B) {
	bm.Run("observe", func(b *testing.B) {
		m := newServerMetrics()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.hub.refreshSeconds.ObserveDuration(time.Microsecond)
		}
	})
	bm.Run("http-count", func(b *testing.B) {
		m := newServerMetrics()
		rm := m.routes["/ingest"]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.requests.Inc()
			m.inFlight.Add(1)
			rm.byClass[2].Inc()
			rm.duration.Observe(0.001)
			m.inFlight.Add(-1)
		}
	})
	bm.Run("refresh-instrumented", func(b *testing.B) {
		m := newServerMetrics()
		cfg := testConfig().Hub
		cfg.metrics = m.hub
		h, err := NewHub(cfg)
		if err != nil {
			b.Fatal(err)
		}
		batch := make([]float64, 100) // one refresh per batch
		for i := 0; i < 5; i++ {
			h.PushBatch("cpu", batch)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.PushBatch("cpu", batch)
		}
	})
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// manifestVersion fetches /replica/segments with the given query and
// returns the manifest's append version.
func manifestVersion(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("manifest = %d %s", resp.StatusCode, body)
	}
	var man struct {
		Version int64 `json:"version"`
	}
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatalf("manifest decode: %v (%s)", err, body)
	}
	return man.Version
}

// TestReplicaManifestLongPoll: GET /replica/segments?wait_ms=&version=
// parks while the follower's version is current, wakes on the next
// append, and answers immediately for a stale version.
func TestReplicaManifestLongPoll(t *testing.T) {
	s, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Hub().PushBatch("cpu", sineValues(400, 0)); err != nil {
		t.Fatal(err)
	}

	version := manifestVersion(t, ts.URL+"/replica/segments")
	if version == 0 {
		t.Fatal("append version still zero after an ingest")
	}

	// A stale version answers immediately even with a long wait.
	start := time.Now()
	if got := manifestVersion(t, fmt.Sprintf("%s/replica/segments?wait_ms=10000&version=%d", ts.URL, version-1)); got != version {
		t.Fatalf("stale poll version = %d, want %d", got, version)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stale poll parked %s", elapsed)
	}

	// A current version parks until the next append bumps it.
	type reply struct {
		version int64
		waited  time.Duration
	}
	got := make(chan reply, 1)
	start = time.Now()
	go func() {
		v := manifestVersion(t, fmt.Sprintf("%s/replica/segments?wait_ms=20000&version=%d", ts.URL, version))
		got <- reply{v, time.Since(start)}
	}()
	select {
	case r := <-got:
		t.Fatalf("current-version poll returned in %s with version %d", r.waited, r.version)
	case <-time.After(200 * time.Millisecond):
	}
	if err := s.Hub().PushBatch("cpu", sineValues(10, 400)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.version <= version {
			t.Fatalf("post-append version = %d, want > %d", r.version, version)
		}
		if r.waited > 5*time.Second {
			t.Fatalf("woken poll took %s", r.waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke on the append")
	}
}

// TestFollowerLongPollCutsLag: a follower whose poll interval is an
// hour still applies a primary append within seconds, because its held
// manifest request is woken when the append becomes durable instead of
// waiting for the ticker — the long-poll replication-lag contract.
// Runs in both fsync modes: under batched fsync the wake must track
// the durable watermark, not the append — an append-time bump would
// wake the follower to a manifest that does not yet expose the new
// bytes and strand it until the hour elapsed.
func TestFollowerLongPollCutsLag(t *testing.T) {
	t.Run("strict-fsync", func(t *testing.T) { testFollowerLongPoll(t, 0) })
	t.Run("batched-fsync", func(t *testing.T) { testFollowerLongPoll(t, 25*time.Millisecond) })
}

func testFollowerLongPoll(t *testing.T, fsyncEvery time.Duration) {
	pcfg := durableConfig(t.TempDir())
	pcfg.FsyncEvery = fsyncEvery
	primary, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	tsP := httptest.NewServer(primary.Handler())
	defer tsP.Close()
	if err := primary.Hub().PushBatch("cpu", sineValues(400, 0)); err != nil {
		t.Fatal(err)
	}

	// FollowPoll an hour: if the ticker were the only trigger the
	// follower could not catch up inside this test's lifetime.
	fol, err := New(followerConfig(t.TempDir(), tsP.URL))
	if err != nil {
		t.Fatal(err)
	}
	lnF, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	fdone := make(chan error, 1)
	go func() { fdone <- fol.Serve(fctx, lnF) }()

	waitRaw := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for fol.Hub().Stats()["cpu"].RawPoints != want {
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at %d raw points, want %d (status %+v)",
					fol.Hub().Stats()["cpu"].RawPoints, want, fol.Follower().Status())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitRaw(400)

	// New appends land while the follower's manifest request is parked;
	// the bump must push them through far faster than the poll interval.
	var b strings.Builder
	for _, v := range sineValues(50, 400) {
		fmt.Fprintf(&b, "cpu=%s\n", strconv.FormatFloat(v, 'g', -1, 64))
	}
	if code, reply := post(t, tsP.URL+"/ingest", b.String()); code != 200 {
		t.Fatalf("ingest = %d %s", code, reply)
	}
	waitRaw(450)

	fcancel()
	if err := <-fdone; err != nil {
		t.Fatal(err)
	}
}

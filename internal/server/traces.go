package server

// The slow-trace explorer: GET /traces lists the traces the tail
// sampler retained (slow, errored, or reservoir-sampled), filterable
// by route, minimum duration, and errors-only; GET /traces/{id}
// serves one trace as a JSON span tree — including a preformatted
// text waterfall — or, with ?format=text (or an Accept header
// preferring text/plain), the waterfall alone for terminal use:
//
//	curl -s localhost:8347/traces?min_ms=100
//	curl -s localhost:8347/traces/4bf92f3577b34da6a3ce929d0e0e4736?format=text

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/asap-go/asap/internal/obs/trace"
)

// traceFilterFromQuery builds the store filter from /traces query
// parameters; malformed numbers fall back to the unfiltered default.
func traceFilterFromQuery(route, minMS, errs, limit string) trace.Filter {
	f := trace.Filter{Route: route, Limit: 100}
	if ms, err := strconv.ParseFloat(minMS, 64); err == nil && ms > 0 {
		f.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	f.ErrorsOnly = errs == "1" || errs == "true"
	if n, err := strconv.Atoi(limit); err == nil && n > 0 {
		f.Limit = n
	}
	return f
}

// handleTraces (GET) lists retained traces, newest first. Query
// parameters: route (exact match), min_ms (root duration at or
// above), errors=1 (only errored traces), limit (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	f := traceFilterFromQuery(q.Get("route"), q.Get("min_ms"), q.Get("errors"), q.Get("limit"))
	list := s.tracer.Store().List(f)
	if list == nil {
		list = []trace.Summary{}
	}
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, map[string]interface{}{
		"count":  len(list),
		"traces": list,
	})
}

// handleTraceByID (GET) serves one retained trace's full span tree.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	if id == "" || strings.ContainsRune(id, '/') {
		http.Error(w, "trace id required: /traces/{trace_id}", http.StatusBadRequest)
		return
	}
	tr := s.tracer.Store().Get(id)
	if tr == nil {
		http.Error(w, "trace "+id+" not retained (dropped by the tail sampler, evicted, or never recorded)",
			http.StatusNotFound)
		return
	}
	ex := tr.Export()
	if r.URL.Query().Get("format") == "text" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(ex.Waterfall))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, ex)
}

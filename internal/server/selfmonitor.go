package server

// Self-monitoring: the server ingests its own health gauges as
// ordinary series and smooths them with ASAP — the paper's opening
// use case (operators watching server load over time, Rong & Bailis
// VLDB'17 §1) applied to the server itself. Each tick samples the obs
// instruments, converts them to per-interval rates, and pushes one
// point per series through Hub.PushBatch, so the __asap.* series get
// the full pipeline: WAL durability, smoothing, /stream fan-out, and
// the dashboard.

import (
	"context"
	"time"
)

// Self-monitor series names. The "__asap." prefix keeps them visually
// distinct from user series; they are otherwise ordinary (durable,
// replicated, streamable).
const (
	selfSeriesRequests = "__asap.requests_per_sec"
	selfSeriesIngest   = "__asap.ingest_points_per_sec"
	selfSeriesFsync    = "__asap.wal_fsync_ms"
)

// selfMonitorLoop samples the server's own instruments every
// SelfMonitorEvery (default 1s) and feeds them back through the hub.
// It only pushes while this server is the primary: a follower's hub
// must stay bit-identical to the replicated stream, and after
// promotion the loop picks up on the next tick.
func (s *Server) selfMonitorLoop(ctx context.Context) {
	every := s.cfg.SelfMonitorEvery
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()

	type sample struct {
		at       time.Time
		requests int64
		points   int64
		fsyncSum float64
		fsyncN   int64
	}
	take := func() sample {
		sm := sample{at: time.Now(), requests: s.metrics.requests.Value()}
		sm.points = int64(s.ingestedPoints())
		sm.fsyncSum = s.metrics.wal.FsyncSeconds.Sum()
		sm.fsyncN = s.metrics.wal.FsyncSeconds.Count()
		return sm
	}
	prev := take()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if s.role.Load() != rolePrimary {
			prev = take() // keep the baseline fresh for promotion
			continue
		}
		cur := take()
		dt := cur.at.Sub(prev.at).Seconds()
		if dt <= 0 {
			continue
		}
		_ = s.hub.PushBatch(selfSeriesRequests,
			[]float64{float64(cur.requests-prev.requests) / dt})
		_ = s.hub.PushBatch(selfSeriesIngest,
			[]float64{float64(cur.points-prev.points) / dt})
		if n := cur.fsyncN - prev.fsyncN; n > 0 {
			// Mean fsync latency over the interval, in milliseconds.
			_ = s.hub.PushBatch(selfSeriesFsync,
				[]float64{(cur.fsyncSum - prev.fsyncSum) / float64(n) * 1e3})
		}
		prev = cur
	}
}

// ingestedPoints sums raw points across live series — the ingest-rate
// numerator. A full stats sweep per tick is fine at 1 Hz; the rate is
// a delta, so series eviction at worst dents one interval.
func (s *Server) ingestedPoints() int {
	total := 0
	for _, st := range s.hub.Stats() {
		total += st.RawPoints
	}
	return total
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/obs"
	"github.com/asap-go/asap/internal/obs/trace"
	"github.com/asap-go/asap/internal/plot"
	"github.com/asap-go/asap/internal/replica"
	"github.com/asap-go/asap/internal/stats"
	"github.com/asap-go/asap/internal/wal"
)

// DefaultMaxIngestBytes bounds one POST /ingest body when
// Config.MaxIngestBytes is zero.
const DefaultMaxIngestBytes = 32 << 20

// DefaultDrainTimeout bounds the graceful drain once Run's context
// ends, when Config.DrainTimeout is zero. Connections still open when
// it expires (a stuck client that never reads) are force-closed: one
// dead peer must never block shutdown forever.
const DefaultDrainTimeout = 5 * time.Second

// healthLagFloor: /readyz reports unready once the WAL has unsynced
// appends older than max(this floor, 10× the flush interval).
const healthLagFloor = 5 * time.Second

// readyRetryAfter is the Retry-After hint (seconds) sent with 503s
// that a client should ride out in place: a degraded WAL shard being
// reopened, an unready follower, a fenced write endpoint.
const readyRetryAfter = "1"

// Config configures a Server: the hub it fronts plus the optional
// built-in simulator.
type Config struct {
	Hub HubConfig
	// Simulate names a built-in dataset (e.g. "Taxi") to feed into
	// SimulateSeries at Rate points/sec while the server runs. Empty
	// disables the simulator.
	Simulate string
	// SimulateSeries is the series the simulator feeds. Empty means the
	// hub's default series.
	SimulateSeries string
	// Rate is the simulation rate in points per second (default 200).
	Rate int
	// DataDir enables the write-ahead log: every acknowledged ingest
	// batch is appended there before it is applied, and startup recovers
	// all series from it into warm Streamers. Empty runs memory-only.
	DataDir string
	// SegmentBytes rotates WAL segments at this size (default 8 MiB).
	SegmentBytes int64
	// FsyncEvery batches WAL fsyncs on this interval; 0 fsyncs on every
	// append (strict durability, slower ingest).
	FsyncEvery time.Duration
	// WALReopenRetries bounds the reopen attempts a degraded WAL shard
	// gets before it wedges permanently: 0 retries forever, negative
	// disables degraded mode entirely (the first durability failure
	// wedges the shard). See wal.Config.ReopenRetries.
	WALReopenRetries int
	// walFS and the reopen backoff overrides are test hooks: they let
	// the chaos suite inject scripted filesystem faults and compress the
	// reopen schedule without exporting knobs operators should not touch.
	walFS               wal.FS
	walReopenBackoff    time.Duration
	walReopenMaxBackoff time.Duration
	// MaxIngestBytes caps one POST /ingest body; larger bodies get 413.
	// Zero means DefaultMaxIngestBytes.
	MaxIngestBytes int64
	// Follow makes this server a read-only follower replicating the
	// given primary base URL's write-ahead log into DataDir (which is
	// then required). Reads serve locally with replication lag; writes
	// answer 503 pointing at the primary until POST /promote.
	Follow string
	// FollowPoll is the follower's manifest poll interval (default
	// 500ms).
	FollowPoll time.Duration
	// SnapshotInterval, when positive, compacts the WAL into a fresh
	// checkpoint on this interval — background snapshot scheduling
	// instead of operator-driven POST /snapshot only.
	SnapshotInterval time.Duration
	// SnapshotSegments, when positive, triggers a compaction as soon as
	// any shard holds at least this many sealed segments.
	SnapshotSegments int
	// MaxSubscribers caps concurrent GET /stream subscribers; beyond it
	// new streams get 503 + Retry-After. Zero means
	// DefaultMaxSubscribers.
	MaxSubscribers int
	// HeartbeatEvery is the SSE heartbeat-comment interval keeping
	// idle streams (and the proxies between them) alive. Zero means
	// DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
	// StallTimeout evicts a /stream subscriber whose pending frames
	// have waited this long undrained (a peer that stopped reading),
	// and bounds each SSE write. Zero means DefaultStallTimeout.
	StallTimeout time.Duration
	// DrainTimeout bounds the graceful connection drain at shutdown.
	// Zero means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Logger receives structured operational logs. Nil means
	// slog.Default().
	Logger *slog.Logger
	// PprofAddr, when non-empty, serves net/http/pprof on its own
	// listener at this address — never on the main mux, so profiling
	// stays off any port exposed to clients. Use a loopback address
	// (e.g. "127.0.0.1:6060").
	PprofAddr string
	// SelfMonitor feeds the server's own health gauges back through the
	// hub as __asap.* series (requests/sec, ingest points/sec, fsync
	// latency), so the dashboard streams an ASAP-smoothed view of the
	// server itself. Active only while this server is the primary.
	SelfMonitor bool
	// SelfMonitorEvery is the self-monitor sampling interval. Zero
	// means 1s.
	SelfMonitorEvery time.Duration
	// TraceSlow is the slow-request threshold: a completed trace whose
	// root latency reaches it is always retained by the tail sampler and
	// emits a structured slow-request log line with the span breakdown
	// inline. Zero means trace.DefaultSlow (250ms). Streaming routes
	// (/stream, /replica/segments) are exempt — their connection
	// lifetime is long by design.
	TraceSlow time.Duration
	// TraceSample records 1 in N requests that arrive without an
	// inbound sampled traceparent. Zero means 1 (record all — retention
	// is tail-based, so this only bounds span bookkeeping, not storage);
	// negative disables head sampling (only joined traces record).
	TraceSample int
}

// Server roles. A memory-only server still counts as primary: it
// accepts writes, it just has no log to ship.
const (
	rolePrimary int32 = iota
	roleFollower
	rolePromoting
)

// Server owns a Hub (and optionally its write-ahead log or a
// replication follower) and serves the asap-server HTTP API.
type Server struct {
	cfg       Config
	hub       *Hub
	sim       datasets.Spec
	lock      *wal.DirLock
	follower  *replica.Follower
	broadcast *Broadcast
	metrics   *serverMetrics
	tracer    *trace.Tracer
	logger    *slog.Logger

	// pprofAddr holds the profiling listener's resolved address (":0"
	// in tests) once Serve has it listening; empty otherwise.
	pprofAddr atomic.Value // string

	// wal is atomic because promotion attaches a log to a running
	// follower while readers (stats, healthz) are in flight.
	wal  atomic.Pointer[wal.Log]
	role atomic.Int32

	// appendVersion counts acknowledged WAL-visible appends; walChanged
	// wakes /replica/segments long-polls parked on an older version.
	appendVersion atomic.Int64
	walChanged    *notifier

	lastSnapshotNano atomic.Int64
	autoSnapshots    atomic.Int64
	autoSnapshotErrs atomic.Int64
}

// walOpenConfig assembles the wal.Config shared by both WAL attach
// points — New and promotion — so the durability, fault-injection, and
// reopen knobs cannot drift between them.
func walOpenConfig(cfg Config, shards, horizon int, onDurable func(), logf func(string, ...interface{}), m *wal.Metrics) wal.Config {
	return wal.Config{
		Dir:              cfg.DataDir,
		Shards:           shards,
		SegmentBytes:     cfg.SegmentBytes,
		FsyncEvery:       cfg.FsyncEvery,
		HorizonPoints:    horizon,
		OnDurable:        onDurable,
		Logf:             logf,
		Metrics:          m,
		FS:               cfg.walFS,
		ReopenRetries:    cfg.WALReopenRetries,
		ReopenBackoff:    cfg.walReopenBackoff,
		ReopenMaxBackoff: cfg.walReopenMaxBackoff,
	}
}

// walHorizon sizes WAL retention for a stream config: enough raw tail
// to rebuild a Streamer's aggregated ring (capacity panes of ratio
// points; stream.New clamps capacity to >= 4) plus the partial pane and
// the pane-alignment skip — capacity+2 panes covers all three.
func walHorizon(stream asap.StreamConfig) (int, error) {
	st, err := asap.NewStreamer(stream)
	if err != nil {
		return 0, err
	}
	ratio := st.Ratio()
	capacity := stream.WindowPoints / ratio
	if capacity < 4 {
		capacity = 4
	}
	return (capacity + 2) * ratio, nil
}

// New validates cfg and returns a Server ready to Run. With DataDir
// set it locks the directory and opens the WAL, warm-restoring every
// recovered series before returning, so the first request already sees
// pre-crash state. With Follow set it instead becomes a read-only
// follower of that primary (see newFollower).
func New(cfg Config) (*Server, error) {
	if cfg.MaxIngestBytes <= 0 {
		cfg.MaxIngestBytes = DefaultMaxIngestBytes
	}
	if cfg.Follow != "" {
		return newFollower(cfg)
	}
	s := &Server{logger: cfg.Logger, metrics: newServerMetrics(), tracer: newTracer(cfg)}
	s.attachBroadcast(&cfg)
	cfg.Hub.metrics = s.metrics.hub
	var wlog *wal.Log
	var lock *wal.DirLock
	if cfg.DataDir != "" {
		horizon, err := walHorizon(cfg.Hub.Stream)
		if err != nil {
			return nil, err
		}
		shards := cfg.Hub.Shards
		if shards <= 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		if lock, err = wal.LockDir(cfg.DataDir); err != nil {
			return nil, err
		}
		wlog, err = wal.Open(walOpenConfig(cfg, shards, horizon,
			s.noteDurable, obs.Printf(s.log(), slog.LevelInfo, "wal"), s.metrics.wal))
		if err != nil {
			lock.Release()
			return nil, err
		}
		cfg.Hub.WAL = wlog
	}
	hub, err := NewHub(cfg.Hub)
	if err != nil {
		if wlog != nil {
			wlog.Close()
		}
		lock.Release()
		return nil, err
	}
	s.cfg, s.hub, s.lock = cfg, hub, lock
	s.wal.Store(wlog)
	s.role.Store(rolePrimary)
	s.lastSnapshotNano.Store(time.Now().UnixNano())
	s.metrics.bind(s)
	if cfg.Simulate != "" {
		spec, ok := datasets.ByName(cfg.Simulate)
		if !ok {
			s.Close() // release the WAL's flusher and segment files
			return nil, fmt.Errorf("unknown dataset %q", cfg.Simulate)
		}
		s.sim = spec
		if s.cfg.SimulateSeries == "" {
			s.cfg.SimulateSeries = hub.DefaultSeries()
		}
		if s.cfg.Rate <= 0 {
			s.cfg.Rate = 200
		}
		// time.Second / Rate must stay a positive ticker interval.
		if s.cfg.Rate > int(time.Second) {
			s.Close()
			return nil, fmt.Errorf("rate %d exceeds %d points/sec", s.cfg.Rate, int(time.Second))
		}
	}
	return s, nil
}

// attachBroadcast builds the broadcast registry and the replication
// change signal, then wires the frame hooks into the hub. It must run
// before NewHub(cfg.Hub) so the hub's first refresh already fans out.
func (s *Server) attachBroadcast(cfg *Config) {
	s.walChanged = newNotifier()
	s.broadcast = newBroadcast(broadcastConfig{
		maxSubscribers: cfg.MaxSubscribers,
		stallTimeout:   cfg.StallTimeout,
	})
	cfg.Hub.OnFrame = s.broadcast.Publish
	cfg.Hub.OnDrop = s.broadcast.PublishDrop
}

// noteDurable bumps the manifest version and wakes parked long-polls;
// the WAL calls it when its durable watermark advances (wal.Config.
// OnDurable). Keying on durability, not on appends, matters under
// batched fsync: the manifest only exposes fsynced bytes, so an
// append-time bump would wake a follower to an unchanged manifest and
// park it again with no later signal — stuck a flush behind until its
// fallback poll interval elapsed.
func (s *Server) noteDurable() {
	s.appendVersion.Add(1)
	s.walChanged.bump()
}

// log returns the configured structured logger, or slog's default.
func (s *Server) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// neverSlow is the SlowRoute threshold for connection-lifetime routes:
// an SSE stream or replication long-poll staying open for hours is
// healthy, not slow, so it must never trip tail retention.
const neverSlow = 100 * 365 * 24 * time.Hour

// newTracer builds the pipeline tracer from Config's trace knobs.
func newTracer(cfg Config) *trace.Tracer {
	return trace.New(trace.Config{
		Slow:      cfg.TraceSlow,
		HeadEvery: int64(cfg.TraceSample),
		SlowRoute: map[string]time.Duration{
			"/stream":           neverSlow,
			"/replica/segments": neverSlow,
			// The follower's poll parks inside the primary's long-poll hold;
			// its duration is the hold, not work.
			"replica.poll": neverSlow,
		},
	})
}

// logUnavailable is the one structured log line every 503 path emits,
// so a client retrying off Retry-After can be correlated server-side:
// route, request id, trace id, the refusal reason, and — when the
// cause is a degraded WAL shard — which shard and operation failed.
func (s *Server) logUnavailable(r *http.Request, reason string, err error) {
	attrs := make([]slog.Attr, 0, 8)
	attrs = append(attrs,
		slog.String("route", r.URL.Path),
		slog.Int("status", http.StatusServiceUnavailable),
		slog.String("reason", reason),
		slog.String("request_id", obs.RequestIDFrom(r.Context())),
	)
	if tid := trace.IDFromContext(r.Context()); tid != "" {
		attrs = append(attrs, slog.String("trace_id", tid))
	}
	var de *wal.DegradedError
	if errors.As(err, &de) {
		attrs = append(attrs, slog.Int("shard", de.Shard), slog.String("op", de.Op))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	s.log().LogAttrs(r.Context(), slog.LevelWarn, "service unavailable", attrs...)
}

// Metrics exposes the server's observability registry — the /metrics
// source, also usable for embedding-side instruments.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// PprofAddr returns the profiling listener's resolved address once
// Serve has it listening ("" when disabled or not yet up).
func (s *Server) PprofAddr() string {
	addr, _ := s.pprofAddr.Load().(string)
	return addr
}

// Hub exposes the underlying hub, mainly for tests and embedding.
func (s *Server) Hub() *Hub { return s.hub }

// Broadcast exposes the stream subscriber registry, mainly for tests.
func (s *Server) Broadcast() *Broadcast { return s.broadcast }

// curWAL returns the write-ahead log, nil when none is attached (a
// memory-only server, or a follower before promotion).
func (s *Server) curWAL() *wal.Log { return s.wal.Load() }

// Follower exposes the replication follower (nil unless Follow mode),
// mainly for tests.
func (s *Server) Follower() *replica.Follower { return s.follower }

// Role returns "primary", "follower", or "promoting".
func (s *Server) Role() string {
	switch s.role.Load() {
	case roleFollower:
		return "follower"
	case rolePromoting:
		return "promoting"
	default:
		return "primary"
	}
}

// WALStats reports the write-ahead log's counters; ok is false when
// the server runs memory-only (or as an unpromoted follower).
func (s *Server) WALStats() (st wal.Stats, ok bool) {
	w := s.curWAL()
	if w == nil {
		return wal.Stats{}, false
	}
	return w.Stats(), true
}

// Close disconnects every /stream subscriber, stops the replication
// follower (fsyncing its mirror), flushes and closes the write-ahead
// log, and releases the data-dir lock. Serve calls it on the way out;
// call it directly when driving the Handler without Serve. Idempotent.
func (s *Server) Close() error {
	if s.broadcast != nil {
		s.broadcast.Shutdown()
	}
	if s.follower != nil {
		s.follower.Stop()
	}
	var err error
	if w := s.curWAL(); w != nil {
		err = w.Close()
	}
	if rerr := s.lock.Release(); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// Handler returns the full asap-server route table, every route
// wrapped in the HTTP instrumentation middleware (request IDs, the
// in-flight gauge, per-route latency and status-class metrics). The
// patterns must stay in sync with routePatterns (metrics.go), which
// pre-registers each route's instruments.
func (s *Server) Handler() http.Handler {
	metricsHandler := s.metrics.reg.Handler()
	handlers := map[string]http.HandlerFunc{
		"/":                 s.handleIndex,
		"/ingest":           s.handleIngest,
		"/frame":            s.handleFrame,
		"/stream":           s.handleStream,
		"/series":           s.handleSeries,
		"/stats":            s.handleStats,
		"/plot.svg":         s.handlePlot,
		"/healthz":          s.handleHealthz,
		"/readyz":           s.handleReadyz,
		"/snapshot":         s.handleSnapshot,
		"/metrics":          metricsHandler.ServeHTTP,
		"/replica/segments": s.handleReplicaSegments,
		"/replica/segment":  s.handleReplicaSegment,
		"/promote":          s.handlePromote,
		"/traces":           s.handleTraces,
		"/traces/":          s.handleTraceByID,
	}
	mux := http.NewServeMux()
	for _, route := range routePatterns {
		mux.HandleFunc(route, s.instrument(route, handlers[route]))
	}
	return mux
}

// Run listens on addr and serves until ctx is cancelled, then drains
// in-flight requests (bounded by Config.DrainTimeout) and stops the
// simulator goroutine before returning.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run for a caller-provided listener (tests use :0). On
// return the write-ahead log has been flushed, fsynced, and closed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	defer s.Close()

	var wg sync.WaitGroup
	if s.cfg.Simulate != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runSimulator(ctx)
		}()
	}
	if s.follower != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.follower.Run(ctx)
		}()
	}
	if s.cfg.SnapshotInterval > 0 || s.cfg.SnapshotSegments > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.snapshotLoop(ctx)
		}()
	}
	if s.cfg.SelfMonitor {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.selfMonitorLoop(ctx)
		}()
	}
	if s.cfg.PprofAddr != "" {
		stopPprof, err := s.servePprof(ctx, s.cfg.PprofAddr)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	srv := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Disconnect the long-lived SSE streams first (their handlers see
		// Done and return), so Shutdown only has to drain short requests.
		s.broadcast.Shutdown()
		drain := s.cfg.DrainTimeout
		if drain <= 0 {
			drain = DefaultDrainTimeout
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), drain)
		defer shutCancel()
		err := srv.Shutdown(shutCtx)
		if err != nil {
			// Drain deadline hit: force-close whatever is still open.
			srv.Close()
		}
		<-errc // Serve has returned http.ErrServerClosed
		wg.Wait()
		return err
	case err := <-errc:
		cancel()
		wg.Wait()
		return err
	}
}

// runSimulator replays the configured dataset into the simulate series
// at the configured rate until ctx ends.
func (s *Server) runSimulator(ctx context.Context) {
	values := s.sim.Generate(1).Values
	tick := time.NewTicker(time.Second / time.Duration(s.cfg.Rate))
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			_ = s.hub.PushBatch(s.cfg.SimulateSeries, []float64{values[i%len(values)]})
		}
	}
}

// seriesParam resolves the ?series= query parameter, falling back to
// the hub default.
func (s *Server) seriesParam(r *http.Request) string {
	if name := r.URL.Query().Get("series"); name != "" {
		return name
	}
	return s.hub.DefaultSeries()
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		// RFC 9110 §15.5.6: a 405 MUST carry the set of allowed methods.
		w.Header().Set("Allow", method)
		http.Error(w, method+" required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if s.rejectWriteOnFollower(w, r) {
		return
	}
	defer r.Body.Close()
	_, psp := trace.StartSpan(r.Context(), "parse")
	pts, err := parseIngest(http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes), s.hub.DefaultSeries())
	if psp != nil {
		psp.SetInt("points", int64(len(pts)))
		if err != nil {
			psp.SetError(err.Error())
		}
		psp.End()
	}
	if err != nil {
		// Nothing was applied: parse covers the whole body before Apply,
		// so a bad line cannot leave a half-pushed batch. Oversized bodies
		// get 413 so clients know splitting the batch (not fixing a line)
		// is the remedy.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	npts, nseries, err := s.hub.Apply(r.Context(), pts)
	if err != nil {
		// Everything before the failing series was logged and applied;
		// the remainder was dropped. A degraded shard is a retryable
		// condition — the WAL is already reopening it in the background —
		// so answer 503 + Retry-After; anything else is a 500.
		if errors.Is(err, wal.ErrDegraded) {
			s.logUnavailable(r, "WAL shard degraded", err)
			w.Header().Set("Retry-After", readyRetryAfter)
			http.Error(w, fmt.Sprintf("ingest unavailable after %d points (WAL shard degraded, retry): %v", npts, err),
				http.StatusServiceUnavailable)
			return
		}
		http.Error(w, fmt.Sprintf("ingest failed after %d points: %v", npts, err), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "ingested %d points across %d series\n", npts, nseries)
}

// handleHealthz (GET) is pure liveness: the process is up and serving
// HTTP, so it always answers 200. Degraded durability or lagging
// replication deliberately do NOT flip it — reads (/frame, /plot.svg,
// /stream) keep working from memory through those conditions, and a
// liveness-driven restart would destroy the very state that makes
// degraded mode graceful. Traffic gating belongs to /readyz. The body
// still carries the full diagnostic detail (WAL counters, recovery
// stats, replication lag) for humans and dashboards.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	body := s.healthBody()
	body["status"] = "ok"
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, body)
}

// handleReadyz (GET) is readiness: should a load balancer send traffic
// here right now? 503 + Retry-After when the WAL has degraded or
// wedged shards, when acknowledged appends have waited too long for
// their fsync (a stalled disk), or — on a follower — when replication
// has not completed a successful poll recently. The body lists the
// specific reasons so an operator can tell a reopening shard from a
// dead primary at a glance.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	var reasons []string
	if wl := s.curWAL(); wl != nil {
		st := wl.Stats()
		if st.DegradedShards > 0 {
			reasons = append(reasons, fmt.Sprintf("%d WAL shard(s) degraded, reopen in progress", st.DegradedShards))
		}
		if st.WedgedShards > 0 {
			reasons = append(reasons, fmt.Sprintf("%d WAL shard(s) wedged", st.WedgedShards))
		}
		threshold := healthLagFloor
		if t := 10 * s.cfg.FsyncEvery; t > threshold {
			threshold = t
		}
		if st.FlushLag > threshold {
			reasons = append(reasons, fmt.Sprintf("WAL flush lag %s exceeds %s", st.FlushLag, threshold))
		}
	}
	if s.follower != nil && s.role.Load() != rolePrimary {
		fst := s.follower.Status()
		stale := healthLagFloor
		if t := 10 * s.cfg.FollowPoll; t > stale {
			stale = t
		}
		if !fst.Bootstrapped {
			reasons = append(reasons, "replication bootstrap incomplete")
		} else if fst.LastPoll.IsZero() || time.Since(fst.LastPoll) > stale {
			reasons = append(reasons, fmt.Sprintf("no successful replication poll within %s", stale))
		}
	}
	body := s.healthBody()
	if len(reasons) == 0 {
		body["status"] = "ready"
		w.Header().Set("Content-Type", "application/json")
		s.writeJSON(w, r, body)
		return
	}
	s.logUnavailable(r, "not ready: "+strings.Join(reasons, "; "), nil)
	body["status"] = "unready"
	body["reasons"] = reasons
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", readyRetryAfter)
	w.WriteHeader(http.StatusServiceUnavailable)
	s.writeJSON(w, r, body)
}

// healthBody is the diagnostic payload /healthz and /readyz share.
func (s *Server) healthBody() map[string]interface{} {
	body := map[string]interface{}{
		"series":    s.hub.Len(),
		"evictions": s.hub.Evictions(),
		"role":      s.Role(),
	}
	if s.follower != nil && s.role.Load() != rolePrimary {
		fst := s.follower.Status()
		body["replication"] = map[string]interface{}{
			"primary":         fst.Primary,
			"synced":          fst.Synced,
			"records_behind":  fst.RecordsBehind,
			"segments_behind": fst.SegmentsBehind,
			"retries":         fst.Retries,
			"last_error":      fst.LastError,
		}
	}
	if wl := s.curWAL(); wl == nil {
		body["wal"] = map[string]interface{}{"enabled": false}
	} else {
		st := wl.Stats()
		body["wal"] = map[string]interface{}{
			"enabled":           true,
			"flush_lag_ms":      st.FlushLag.Milliseconds(),
			"appended_points":   st.AppendedPoints,
			"syncs":             st.Syncs,
			"sync_errors":       st.SyncErrors,
			"degraded_shards":   st.DegradedShards,
			"wedged_shards":     st.WedgedShards,
			"reopen_attempts":   st.ReopenAttempts,
			"reopen_recoveries": st.ReopenRecoveries,
			"last_recovery": map[string]interface{}{
				"series":                  st.Recovery.SeriesRecovered,
				"snapshots_loaded":        st.Recovery.SnapshotsLoaded,
				"segments_replayed":       st.Recovery.SegmentsReplayed,
				"records_replayed":        st.Recovery.RecordsReplayed,
				"points_replayed":         st.Recovery.PointsReplayed,
				"corrupt_records_skipped": st.Recovery.CorruptRecordsSkipped,
				"duration_ms":             st.Recovery.Duration.Milliseconds(),
			},
		}
	}
	return body
}

// handleSnapshot (POST) compacts the WAL into a fresh checkpoint so
// the next restart replays a minimal tail instead of every segment.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if s.rejectWriteOnFollower(w, r) {
		return
	}
	wl := s.curWAL()
	if wl == nil {
		http.Error(w, "durability disabled (no data dir configured)", http.StatusConflict)
		return
	}
	res, err := wl.Snapshot()
	if err != nil {
		if errors.Is(err, wal.ErrDegraded) {
			s.logUnavailable(r, "WAL shard degraded", err)
			w.Header().Set("Retry-After", readyRetryAfter)
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.lastSnapshotNano.Store(time.Now().UnixNano())
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, map[string]interface{}{
		"series":           res.Series,
		"points":           res.Points,
		"segments_removed": res.SegmentsRemoved,
	})
}

// frameJSON mirrors asap.Frame for the wire.
type frameJSON struct {
	Series     string    `json:"series"`
	Values     []float64 `json:"values"`
	Window     int       `json:"window"`
	Roughness  float64   `json:"roughness"`
	Kurtosis   float64   `json:"kurtosis"`
	SeedReused bool      `json:"seed_reused"`
	Sequence   int       `json:"sequence"`
}

func (s *Server) handleFrame(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	name := s.seriesParam(r)
	f, ok := s.hub.Frame(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown series %q", name), http.StatusNotFound)
		return
	}
	if f != nil {
		defer f.Release() // hand the values buffer back to the frame pool
	}
	w.Header().Set("Content-Type", "application/json")
	if f == nil {
		// The series exists but has not produced a frame yet; "null" keeps
		// the original single-series wire contract.
		fmt.Fprintln(w, "null")
		return
	}
	s.writeJSON(w, r, frameJSON{
		Series: name, Values: f.Values, Window: f.Window, Roughness: f.Roughness,
		Kurtosis: f.Kurtosis, SeedReused: f.SeedReused, Sequence: f.Sequence,
	})
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	type seriesJSON struct {
		Name      string `json:"name"`
		RawPoints int    `json:"raw_points"`
	}
	// SeriesList reads only the name and raw-point count per shard —
	// much cheaper than a full Stats sweep on a busy hub.
	infos := s.hub.SeriesList()
	list := make([]seriesJSON, 0, len(infos))
	for _, info := range infos {
		list = append(list, seriesJSON{Name: info.Name, RawPoints: info.RawPoints})
	}
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, map[string]interface{}{"count": len(list), "series": list})
}

type seriesStatsJSON struct {
	RawPoints  int `json:"raw_points"`
	Panes      int `json:"panes"`
	Searches   int `json:"searches"`
	Candidates int `json:"candidates"`
	Skipped    int `json:"searches_skipped"`
	Coalesced  int `json:"searches_coalesced"`
	Ratio      int `json:"ratio"`
}

func statsJSON(st SeriesStats) seriesStatsJSON {
	return seriesStatsJSON{
		RawPoints:  st.RawPoints,
		Panes:      st.Panes,
		Searches:   st.Searches,
		Candidates: st.Candidates,
		Skipped:    st.Skipped,
		Coalesced:  st.Coalesced,
		Ratio:      st.Ratio,
	}
}

// handleStats serves aggregate counters plus a per-series breakdown;
// with ?series= it narrows to that one series (404 if unknown).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if name := r.URL.Query().Get("series"); name != "" {
		// Single-shard fast path: don't sweep (and lock) every shard to
		// answer a question about one series.
		st, ok := s.hub.StatsFor(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown series %q", name), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		s.writeJSON(w, r, statsJSON(st))
		return
	}
	per := s.hub.Stats()
	var agg SeriesStats
	perOut := make(map[string]seriesStatsJSON, len(per))
	for name, st := range per {
		agg.RawPoints += st.RawPoints
		agg.Panes += st.Panes
		agg.Searches += st.Searches
		agg.Candidates += st.Candidates
		agg.Skipped += st.Skipped
		agg.Coalesced += st.Coalesced
		perOut[name] = statsJSON(st)
	}
	out := map[string]interface{}{
		"series_count": len(per),
		"evictions":    s.hub.Evictions(),
		"role":         s.Role(),
		"aggregate": map[string]int{
			"raw_points":         agg.RawPoints,
			"panes":              agg.Panes,
			"searches":           agg.Searches,
			"candidates":         agg.Candidates,
			"searches_skipped":   agg.Skipped,
			"searches_coalesced": agg.Coalesced,
		},
		"series": perOut,
	}
	bst := s.broadcast.Stats()
	out["stream"] = map[string]interface{}{
		"subscribers": bst.Subscribers,
		"subscribed":  bst.Subscribed,
		"rejected":    bst.Rejected,
		"published":   bst.Published,
		"delivered":   bst.Delivered,
		"coalesced":   bst.Coalesced,
		"evicted":     bst.Evicted,
	}
	if wl := s.curWAL(); wl != nil {
		wst := wl.Stats()
		out["wal"] = map[string]interface{}{
			"appended_records":        wst.AppendedRecords,
			"appended_points":         wst.AppendedPoints,
			"syncs":                   wst.Syncs,
			"sync_errors":             wst.SyncErrors,
			"rotations":               wst.Rotations,
			"segments_dropped":        wst.SegmentsDropped,
			"snapshots":               wst.Snapshots,
			"flush_lag_ms":            wst.FlushLag.Milliseconds(),
			"recovered_series":        wst.Recovery.SeriesRecovered,
			"replayed_points":         wst.Recovery.PointsReplayed,
			"corrupt_records_skipped": wst.Recovery.CorruptRecordsSkipped,
			"last_snapshot_age_ms":    time.Since(time.Unix(0, s.lastSnapshotNano.Load())).Milliseconds(),
			"auto_snapshots":          s.autoSnapshots.Load(),
			"auto_snapshot_errors":    s.autoSnapshotErrs.Load(),
		}
	}
	// After promotion the gauges freeze at their pre-promote values;
	// emitting them would misread the new primary as a healthy replica.
	if s.follower != nil && s.role.Load() != rolePrimary {
		fst := s.follower.Status()
		repl := map[string]interface{}{
			"primary":         fst.Primary,
			"bootstrapped":    fst.Bootstrapped,
			"synced":          fst.Synced,
			"segments_behind": fst.SegmentsBehind,
			"records_behind":  fst.RecordsBehind,
			"bytes_behind":    fst.BytesBehind,
			"records_applied": fst.RecordsApplied,
			"points_applied":  fst.PointsApplied,
			"bytes_fetched":   fst.BytesFetched,
			"polls":           fst.Polls,
			"poll_errors":     fst.PollErrors,
			"retries":         fst.Retries,
			"resyncs":         fst.Resyncs,
			"last_error":      fst.LastError,
		}
		if !fst.LastPoll.IsZero() {
			repl["last_poll_age_ms"] = time.Since(fst.LastPoll).Milliseconds()
		}
		out["replication"] = repl
	}
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, out)
}

func (s *Server) handlePlot(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	name := s.seriesParam(r)
	f, ok := s.hub.Frame(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown series %q", name), http.StatusNotFound)
		return
	}
	if f == nil {
		s.logUnavailable(r, "no frame yet", nil)
		http.Error(w, "no frame yet", http.StatusServiceUnavailable)
		return
	}
	defer f.Release() // hand the values buffer back to the frame pool
	doc, err := plot.SVGSeries(
		fmt.Sprintf("%s — frame #%d (window %d)", name, f.Sequence, f.Window),
		880, 320,
		map[string][]float64{"smoothed": stats.ZScores(f.Values)},
		[]string{"smoothed"},
	)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, doc)
}

var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html><head><title>ASAP dashboard</title>
<style>body{font-family:sans-serif;margin:2em}</style></head>
<body>
<h2>ASAP streaming dashboard</h2>
<p>Auto-smoothed view of series <b>{{.Selected}}</b>; frames pushed live
over <a href="/stream?series={{.Selected}}">/stream</a>
(<span id="st">connecting&hellip;</span>).</p>
<img id="plot" src="/plot.svg?series={{.Selected}}" alt="waiting for data..."/>
<p>Series:{{range .Names}} <a href="/?series={{.}}">{{.}}</a>{{else}} (none yet){{end}}</p>
<p><a href="/frame?series={{.Selected}}">frame JSON</a> | <a href="/stats">stats JSON</a> | <a href="/series">series JSON</a></p>
<script>
(function () {
	var series = {{.Selected}};
	var img = document.getElementById("plot");
	var st = document.getElementById("st");
	var es = new EventSource("/stream?series=" + encodeURIComponent(series));
	es.addEventListener("frame", function (ev) {
		var f = JSON.parse(ev.data);
		st.textContent = "live: frame #" + f.sequence + ", window " + f.window;
		// seq busts the image cache; the plot endpoint ignores it.
		img.src = "/plot.svg?series=" + encodeURIComponent(series) + "&seq=" + f.sequence;
	});
	es.addEventListener("dropped", function () {
		st.textContent = "series dropped";
		es.close();
	});
	es.onerror = function () { st.textContent = "reconnecting…"; };
})();
</script>
</body></html>
`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/html")
	err := dashboardTmpl.Execute(w, struct {
		Selected string
		Names    []string
	}{Selected: s.seriesParam(r), Names: s.hub.SeriesNames()})
	if err != nil {
		s.log().Warn("dashboard render failed",
			"route", "/", "request_id", obs.RequestIDFrom(r.Context()), "error", err)
	}
}

// writeJSON encodes v onto the response. Encode failures (almost
// always a peer that hung up mid-body) are logged with the route and
// request ID rather than silently dropped, so a client seeing a
// truncated body can be correlated server-side.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v interface{}) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log().Warn("encode response failed",
			"route", r.URL.Path, "request_id", obs.RequestIDFrom(r.Context()), "error", err)
	}
}

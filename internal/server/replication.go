package server

// WAL-shipping replication, server side. A primary exposes its
// write-ahead log over two endpoints — GET /replica/segments (the
// manifest: every shard's snapshot and segments with durable sizes,
// plus the stream configuration a follower must mirror) and a ranged
// GET /replica/segment (raw file bytes, capped at the durable
// watermark). A server started with Config.Follow runs the
// internal/replica follower against those endpoints: it mirrors the
// log into its own data dir, applies records through the hub so every
// read endpoint serves live frames, fences writes with 503 + the
// primary's URL, and promotes on POST /promote by sealing the tail and
// reopening the mirror as a writable WAL.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/obs"
	"github.com/asap-go/asap/internal/replica"
	"github.com/asap-go/asap/internal/wal"
)

// newFollower builds a Server in follower mode: learn the primary's
// shape (or reuse the persisted local copy when the primary is dead),
// build a hub with the primary's exact stream configuration, restore
// everything the local mirror holds, and hand the poll loop to Serve.
func newFollower(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("follower mode (-follow) requires a data dir")
	}
	if cfg.Simulate != "" {
		return nil, errors.New("the simulator cannot run on a read-only follower")
	}
	if cfg.FollowPoll <= 0 {
		cfg.FollowPoll = replica.DefaultPoll
	}
	lock, err := wal.LockDir(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s := &Server{logger: cfg.Logger, metrics: newServerMetrics(), tracer: newTracer(cfg)}
	s.attachBroadcast(&cfg) // followers stream replicated frames too
	f, err := replica.New(replica.Config{
		Dir:     cfg.DataDir,
		Primary: cfg.Follow,
		Poll:    cfg.FollowPoll,
		Logf:    obs.Printf(s.log(), slog.LevelInfo, "replica"),
		Tracer:  s.tracer,
	})
	if err != nil {
		lock.Release()
		return nil, err
	}
	spec := f.Spec()
	// The manifest's stream configuration is authoritative: frames are
	// only bit-identical to the primary's if the operators match, so the
	// follower's own -window/-resolution/-refresh flags are overridden.
	cfg.Hub.Stream = asap.StreamConfig{
		WindowPoints:          spec.Stream.WindowPoints,
		Resolution:            spec.Stream.Resolution,
		RefreshEvery:          spec.Stream.RefreshEvery,
		MaxWindow:             spec.Stream.MaxWindow,
		DisablePreaggregation: spec.Stream.DisablePreaggregation,
		IncrementalACF:        spec.Stream.IncrementalACF,
	}
	cfg.Hub.DefaultSeries = spec.DefaultSeries
	cfg.Hub.WAL = nil
	cfg.Hub.metrics = s.metrics.hub
	hub, err := NewHub(cfg.Hub)
	if err != nil {
		lock.Release()
		return nil, err
	}
	horizon, err := walHorizon(cfg.Hub.Stream)
	if err != nil {
		lock.Release()
		return nil, err
	}
	restored, err := f.WarmUp(hub, horizon)
	if err != nil {
		lock.Release()
		return nil, err
	}
	if restored > 0 {
		s.log().Info("replica warm-restored from local mirror",
			"subsystem", "replica", "series", restored, "dir", cfg.DataDir)
	}
	s.cfg, s.hub, s.lock, s.follower = cfg, hub, lock, f
	s.role.Store(roleFollower)
	s.lastSnapshotNano.Store(time.Now().UnixNano())
	s.metrics.bind(s)
	return s, nil
}

// rejectWriteOnFollower fences write endpoints while this server is
// not the primary: 503 with the primary's URL in both the Location
// header and the body, so clients and proxies can fail over, plus a
// Retry-After hint — a client that stays put (e.g. mid-promotion) can
// retry here shortly instead of treating the fence as terminal.
func (s *Server) rejectWriteOnFollower(w http.ResponseWriter, r *http.Request) bool {
	if s.role.Load() == rolePrimary {
		return false
	}
	primary := s.cfg.Follow
	if s.follower != nil {
		primary = s.follower.Status().Primary
	}
	s.logUnavailable(r, "read-only follower (primary at "+primary+")", nil)
	w.Header().Set("Location", primary)
	w.Header().Set("X-ASAP-Primary", primary)
	w.Header().Set("Retry-After", readyRetryAfter)
	http.Error(w, fmt.Sprintf("read-only follower; write to the primary at %s (or POST /promote here)", primary),
		http.StatusServiceUnavailable)
	return true
}

// notifier is a broadcast-once change signal: wait returns a channel
// that bump closes (swapping in a fresh one), so any number of waiters
// wake on the next change without polling. The channel carries no
// payload — waiters re-check the versioned state they care about.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func newNotifier() *notifier { return &notifier{ch: make(chan struct{})} }

func (n *notifier) wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ch
}

func (n *notifier) bump() {
	n.mu.Lock()
	close(n.ch)
	n.ch = make(chan struct{})
	n.mu.Unlock()
}

// maxReplicaWait caps how long a manifest long-poll may be held open,
// keeping it safely under typical client/proxy timeouts.
const maxReplicaWait = 25 * time.Second

// handleReplicaSegments (GET) serves the replication manifest. 409
// when this server has no write-ahead log to ship (memory-only, or a
// follower that has not been promoted — chained followers are not
// supported).
//
// With ?wait_ms= and ?version= it long-polls: when the primary's
// manifest version still equals the follower's, the request parks
// until new appends become durable (or the wait elapses), cutting
// idle replication lag from the poll interval to roughly one
// round-trip while idle followers cost one parked request instead of
// a poll storm. The version moves on the WAL's durable watermark, not
// on appends — the manifest only exposes fsynced bytes.
func (s *Server) handleReplicaSegments(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	wl := s.curWAL()
	if wl == nil {
		http.Error(w, "no write-ahead log to replicate (memory-only server or unpromoted follower)", http.StatusConflict)
		return
	}
	q := r.URL.Query()
	if waitMS, _ := strconv.Atoi(q.Get("wait_ms")); waitMS > 0 {
		if have, err := strconv.ParseInt(q.Get("version"), 10, 64); err == nil {
			wait := time.Duration(waitMS) * time.Millisecond
			if wait > maxReplicaWait {
				wait = maxReplicaWait
			}
			if !s.waitForAppend(r.Context(), have, wait) {
				return // client went away; nobody is reading the response
			}
		}
	}
	// Load the version before listing: if an append slips between the
	// two, the follower sees new data under an old version and simply
	// re-polls — never the reverse (new version hiding unseen data).
	version := s.appendVersion.Load()
	man := buildPrimaryManifest(wl.Manifest(), s.hub.DefaultSeries(), s.cfg.Hub.Stream)
	man.Version = version
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, man)
}

// waitForAppend parks until the append version moves past have, the
// wait elapses (returns true — respond with the unchanged manifest so
// the client refreshes its lag gauges), or ctx ends (returns false).
func (s *Server) waitForAppend(ctx context.Context, have int64, wait time.Duration) bool {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for s.appendVersion.Load() == have {
		// Grab the signal channel before re-checking so a bump between
		// the check and the select is never missed.
		changed := s.walChanged.wait()
		if s.appendVersion.Load() != have {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-deadline.C:
			return true
		case <-changed:
		}
	}
	return true
}

// buildPrimaryManifest assembles the wire manifest a follower consumes
// from the WAL's durable listing plus the facts a follower must agree
// on to produce bit-identical frames. Pure — unit-tested directly for
// the manifest-diff edge cases (empty manifest, snapshot-only shards).
func buildPrimaryManifest(m wal.Manifest, defaultSeries string, st asap.StreamConfig) replica.PrimaryManifest {
	return replica.PrimaryManifest{
		Shards:        m.Shards,
		DefaultSeries: defaultSeries,
		Stream: replica.StreamSpec{
			WindowPoints:          st.WindowPoints,
			Resolution:            st.Resolution,
			RefreshEvery:          st.RefreshEvery,
			MaxWindow:             st.MaxWindow,
			DisablePreaggregation: st.DisablePreaggregation,
			IncrementalACF:        st.IncrementalACF,
		},
		ShardManifests: m.ShardManifests,
	}
}

// handleReplicaSegment (GET) serves one shard file's bytes, honoring
// Range requests and never exposing bytes past the durable watermark.
func (s *Server) handleReplicaSegment(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	wl := s.curWAL()
	if wl == nil {
		http.Error(w, "no write-ahead log to replicate", http.StatusConflict)
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		http.Error(w, "shard parameter required", http.StatusBadRequest)
		return
	}
	name := r.URL.Query().Get("name")
	f, limit, err := wl.OpenReplicaFile(shard, name)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		http.Error(w, fmt.Sprintf("%s not present on shard %d (re-list)", name, shard), http.StatusNotFound)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	// ServeContent handles Range headers against the durable prefix; a
	// zero modtime disables time-based conditional requests.
	http.ServeContent(w, r, "", time.Time{}, io.NewSectionReader(f, 0, limit))
}

// handlePromote (POST) turns a follower into a primary: stop the
// tailer (fsyncing the mirror and writing the final cursor), reopen
// the mirrored directory as a writable WAL, attach it to the hub, and
// start accepting ingest. The promoted log continues the primary's
// segment sequence, so a future follower can replicate from this node
// in turn. 409 unless this server is currently a follower.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.role.CompareAndSwap(roleFollower, rolePromoting) {
		switch s.role.Load() {
		case rolePromoting:
			http.Error(w, "promotion already in progress", http.StatusConflict)
		default:
			http.Error(w, "already a primary", http.StatusConflict)
		}
		return
	}
	s.follower.Stop()
	horizon, err := walHorizon(s.cfg.Hub.Stream)
	if err != nil {
		// Cannot happen for a config that built the hub; stay fenced.
		s.role.Store(roleFollower)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	wlog, err := wal.Open(walOpenConfig(s.cfg, s.follower.Spec().Shards, horizon,
		s.noteDurable, obs.Printf(s.log(), slog.LevelInfo, "wal"), s.metrics.wal))
	if err != nil {
		// The mirror is intact and the tailer is stopped: stay a fenced,
		// stale read replica and let the operator retry the promotion.
		s.role.Store(roleFollower)
		http.Error(w, fmt.Sprintf("promote: reopen WAL: %v", err), http.StatusInternalServerError)
		return
	}
	rec := wlog.Recover() // the hub already holds this state, applied live
	if got, have := len(rec.Series), s.hub.Len(); got != have {
		s.log().Warn("promote: WAL recovery and hub disagree (tombstone/torn-tail drift)",
			"request_id", obs.RequestIDFrom(r.Context()), "wal_series", got, "hub_series", have)
	}
	s.wal.Store(wlog)
	s.hub.SetWAL(wlog)
	s.role.Store(rolePrimary)
	s.lastSnapshotNano.Store(time.Now().UnixNano())
	s.log().Info("promoted to primary",
		"request_id", obs.RequestIDFrom(r.Context()), "dir", s.cfg.DataDir,
		"series", s.hub.Len(), "records_replayed", rec.Stats.RecordsReplayed,
		"replay_duration", rec.Stats.Duration)
	w.Header().Set("Content-Type", "application/json")
	s.writeJSON(w, r, map[string]interface{}{
		"promoted":         true,
		"series":           s.hub.Len(),
		"records_replayed": rec.Stats.RecordsReplayed,
		"former_primary":   s.cfg.Follow,
	})
}

// snapshotLoop is background snapshot scheduling: compact the WAL when
// the configured interval elapses or any shard accumulates enough
// sealed segments. It watches curWAL each tick, so it starts working
// on a follower the moment promotion attaches a log.
func (s *Server) snapshotLoop(ctx context.Context) {
	check := time.Second
	if s.cfg.SnapshotInterval > 0 && s.cfg.SnapshotInterval < check {
		check = s.cfg.SnapshotInterval
	}
	t := time.NewTicker(check)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		wl := s.curWAL()
		if wl == nil {
			continue
		}
		trigger := false
		if iv := s.cfg.SnapshotInterval; iv > 0 {
			if time.Since(time.Unix(0, s.lastSnapshotNano.Load())) >= iv {
				trigger = true
			}
		}
		if n := s.cfg.SnapshotSegments; n > 0 && !trigger {
			for _, sm := range wl.Manifest().ShardManifests {
				if sealed := len(sm.Segments) - 1; sealed >= n {
					trigger = true
					break
				}
			}
		}
		if !trigger {
			continue
		}
		if _, err := wl.Snapshot(); err != nil {
			s.autoSnapshotErrs.Add(1)
			s.log().Warn("background snapshot failed", "error", err)
			continue
		}
		s.autoSnapshots.Add(1)
		s.lastSnapshotNano.Store(time.Now().UnixNano())
	}
}

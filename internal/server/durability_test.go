package server

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/asap-go/asap"
)

func durableConfig(dir string) Config {
	cfg := testConfig()
	cfg.DataDir = dir
	cfg.FsyncEvery = 0 // strict: every acknowledged append is on disk
	return cfg
}

// kill9 simulates losing the process without a clean shutdown: the WAL
// is dropped on the floor (no Close, no flush beyond what Append
// acknowledged), but the data-dir lock is released the way the kernel
// releases a dead process's flock.
func kill9(t *testing.T, s *Server) {
	t.Helper()
	if err := s.lock.Release(); err != nil {
		t.Fatal(err)
	}
}

func sineValues(n, offset int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(offset+i) / 40)
	}
	return xs
}

// TestRestartEquivalenceAfterCrash is the acceptance test for the WAL:
// a hub killed without warning (no Close, no flush beyond what Append
// acknowledged) and recovered from disk must serve exactly the frames
// of a hub that never restarted — Values, Window, and Sequence — for
// every series, including ones cut mid-pane and mid-refresh-interval.
// Run under -race via `make check`.
func TestRestartEquivalenceAfterCrash(t *testing.T) {
	dir := t.TempDir()

	control, err := New(testConfig()) // memory-only twin
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Uneven pre-crash lengths: cpu cuts cleanly, disk cuts mid-pane and
	// mid-interval, net has too little for even one frame.
	pre := map[string]int{"cpu": 900, "disk": 523, "net": 17}
	for name, n := range pre {
		vals := sineValues(n, 0)
		if err := control.Hub().PushBatch(name, vals); err != nil {
			t.Fatal(err)
		}
		if err := crashed.Hub().PushBatch(name, vals); err != nil {
			t.Fatal(err)
		}
	}

	// kill -9: drop the server on the floor. FsyncEvery 0 means every
	// acknowledged batch is already fsynced; nothing else may be needed.
	// The kernel releases a dead process's flock; simulate that part.
	kill9(t, crashed)
	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer recovered.Close()
	if got := recovered.Hub().Len(); got != len(pre) {
		t.Fatalf("recovered %d series, want %d", got, len(pre))
	}
	if got := recovered.Hub().Recovered(); got != int64(len(pre)) {
		t.Errorf("Recovered() = %d, want %d", got, len(pre))
	}

	// Post-restart traffic in small chunks; once the recovered hub has
	// produced its first post-restart frame for a series, every frame
	// must match the control's exactly.
	const chunks, chunkSize = 20, 30
	for name, n := range pre {
		sawFrame := false
		for c := 0; c < chunks; c++ {
			vals := sineValues(chunkSize, n+c*chunkSize)
			if err := control.Hub().PushBatch(name, vals); err != nil {
				t.Fatal(err)
			}
			if err := recovered.Hub().PushBatch(name, vals); err != nil {
				t.Fatal(err)
			}
			want, ok := control.Hub().Frame(name)
			if !ok {
				t.Fatalf("control lost series %s", name)
			}
			got, ok := recovered.Hub().Frame(name)
			if !ok {
				t.Fatalf("recovered hub lost series %s", name)
			}
			if got == nil {
				continue // no post-restart refresh yet; Frame is nil by contract
			}
			sawFrame = true
			if want == nil {
				t.Fatalf("%s chunk %d: recovered frame #%d but control has none", name, c, got.Sequence)
			}
			if got.Sequence != want.Sequence || got.Window != want.Window {
				t.Fatalf("%s chunk %d: seq/window %d/%d, want %d/%d",
					name, c, got.Sequence, got.Window, want.Sequence, want.Window)
			}
			if len(got.Values) != len(want.Values) {
				t.Fatalf("%s chunk %d: %d values, want %d", name, c, len(got.Values), len(want.Values))
			}
			for i := range want.Values {
				if got.Values[i] != want.Values[i] {
					t.Fatalf("%s chunk %d value %d: %v != %v", name, c, i, got.Values[i], want.Values[i])
				}
			}
		}
		if !sawFrame {
			t.Fatalf("%s never produced a frame after recovery", name)
		}
	}

	// Raw-point accounting must line up too.
	wantStats, gotStats := control.Hub().Stats(), recovered.Hub().Stats()
	for name := range pre {
		if wantStats[name].RawPoints != gotStats[name].RawPoints {
			t.Errorf("%s raw points %d, want %d", name, gotStats[name].RawPoints, wantStats[name].RawPoints)
		}
	}
}

// TestRecoveryAfterSnapshotEquivalence runs the same equivalence check
// through the snapshot path: compact, crash, recover from snapshot +
// tail segments.
func TestRecoveryAfterSnapshotEquivalence(t *testing.T) {
	dir := t.TempDir()
	control, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	push := func(s *Server, name string, n, off int) {
		t.Helper()
		if err := s.Hub().PushBatch(name, sineValues(n, off)); err != nil {
			t.Fatal(err)
		}
	}
	push(control, "cpu", 700, 0)
	push(crashed, "cpu", 700, 0)
	if st, ok := crashed.WALStats(); !ok || st.AppendedPoints != 700 {
		t.Fatalf("wal stats = %+v ok=%v", st, ok)
	}
	if _, err := crashed.curWAL().Snapshot(); err != nil {
		t.Fatal(err)
	}
	push(control, "cpu", 241, 700) // post-snapshot tail, cut mid-everything
	push(crashed, "cpu", 241, 700)

	kill9(t, crashed)
	recovered, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if st, ok := recovered.WALStats(); !ok || st.Recovery.SnapshotsLoaded == 0 {
		t.Fatalf("recovery did not load the snapshot: %+v", st.Recovery)
	}

	for c := 0; c < 10; c++ {
		push(control, "cpu", 50, 941+c*50)
		push(recovered, "cpu", 50, 941+c*50)
	}
	want, _ := control.Hub().Frame("cpu")
	got, _ := recovered.Hub().Frame("cpu")
	if want == nil || got == nil {
		t.Fatalf("missing frames: control=%v recovered=%v", want != nil, got != nil)
	}
	if got.Sequence != want.Sequence || got.Window != want.Window {
		t.Fatalf("seq/window %d/%d, want %d/%d", got.Sequence, got.Window, want.Sequence, want.Window)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], want.Values[i])
		}
	}
}

// TestRestartEquivalenceAfterEviction: a series that is LRU-evicted
// and later recreated gets a fresh Streamer (sequence restarts, panes
// realign); the WAL tombstones the eviction so recovery reproduces the
// fresh life instead of resurrecting the stale cumulative total.
func TestRestartEquivalenceAfterEviction(t *testing.T) {
	dir := t.TempDir()
	mkCfg := func(durable bool) Config {
		var cfg Config
		if durable {
			cfg = durableConfig(dir)
		} else {
			cfg = testConfig()
		}
		cfg.Hub.MaxSeries = 2
		cfg.Hub.Shards = 4
		return cfg
	}
	control, err := New(mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := New(mkCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	// Identical op sequence on both hubs (the LRU clock is
	// deterministic): fill the cap, touch a, create c -> b evicted;
	// recreate b with a full fresh life.
	ops := func(s *Server) {
		t.Helper()
		for _, op := range []struct {
			name string
			n    int
		}{{"a", 50}, {"b", 60}, {"a", 0}, {"c", 50}, {"b", 700}} {
			if op.n == 0 {
				s.Hub().Frame(op.name)
				continue
			}
			if err := s.Hub().PushBatch(op.name, sineValues(op.n, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ops(control)
	ops(crashed)
	if control.Hub().Evictions() != crashed.Hub().Evictions() {
		t.Fatalf("hubs diverged before the crash: %d vs %d evictions",
			control.Hub().Evictions(), crashed.Hub().Evictions())
	}

	// kill -9, recover.
	kill9(t, crashed)
	recovered, err := New(mkCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got, want := recovered.Hub().Len(), control.Hub().Len(); got != want {
		t.Fatalf("recovered %d series, control has %d", got, want)
	}

	// b's recreated life must continue identically on both.
	for c := 0; c < 10; c++ {
		vals := sineValues(40, 700+c*40)
		if err := control.Hub().PushBatch("b", vals); err != nil {
			t.Fatal(err)
		}
		if err := recovered.Hub().PushBatch("b", vals); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := control.Hub().Frame("b")
	got, _ := recovered.Hub().Frame("b")
	if want == nil || got == nil {
		t.Fatalf("missing frames: control=%v recovered=%v", want != nil, got != nil)
	}
	if got.Sequence != want.Sequence || got.Window != want.Window {
		t.Fatalf("recreated series seq/window %d/%d, want %d/%d (stale totals resurrected?)",
			got.Sequence, got.Window, want.Sequence, want.Window)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("recreated series value %d: %v != %v", i, got.Values[i], want.Values[i])
		}
	}
}

// TestIngestRejectsOverlongSeriesName: the parser enforces the WAL's
// name limit so durable and memory-only servers reject identically,
// with 400 and nothing applied.
func TestIngestRejectsOverlongSeriesName(t *testing.T) {
	long := strings.Repeat("n", 70000)
	for _, durable := range []bool{false, true} {
		cfg := testConfig()
		if durable {
			cfg = durableConfig(t.TempDir())
		}
		s, ts := newTestServer(t, cfg)
		code, _ := post(t, ts.URL+"/ingest", "ok=1\n"+long+"=2\n")
		if code != 400 {
			t.Errorf("durable=%v: overlong name status %d, want 400", durable, code)
		}
		if s.Hub().Len() != 0 {
			t.Errorf("durable=%v: rejected batch applied %d series", durable, s.Hub().Len())
		}
		s.Close()
	}
}

// TestNewClosesWALOnConfigError: a bad simulator config after the WAL
// opened must release it so a corrected retry starts clean.
func TestNewClosesWALOnConfigError(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.FsyncEvery = time.Millisecond // exercises the flusher goroutine path
	cfg.Simulate = "NoSuchDataset"
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an unknown dataset")
	}
	cfg.Simulate = ""
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("retry after failed New: %v", err)
	}
	if err := s.Hub().PushBatch("x", sineValues(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthzMemoryOnly(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	var h struct {
		Status string `json:"status"`
		Series int    `json:"series"`
		WAL    struct {
			Enabled bool `json:"enabled"`
		} `json:"wal"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if h.Status != "ok" || h.WAL.Enabled {
		t.Errorf("healthz = %+v", h)
	}
	if code, _ := post(t, ts.URL+"/healthz", ""); code != 405 {
		t.Errorf("POST /healthz status %d, want 405", code)
	}
}

func TestHealthzAndStatsWithWAL(t *testing.T) {
	s, ts := newTestServer(t, durableConfig(t.TempDir()))
	defer s.Close()
	post(t, ts.URL+"/ingest", sineBody("cpu", 200))

	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz status %d: %s", code, body)
	}
	var h struct {
		Status string `json:"status"`
		WAL    struct {
			Enabled        bool  `json:"enabled"`
			FlushLagMS     int64 `json:"flush_lag_ms"`
			AppendedPoints int64 `json:"appended_points"`
			LastRecovery   struct {
				Series int `json:"series"`
			} `json:"last_recovery"`
		} `json:"wal"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if h.Status != "ok" || !h.WAL.Enabled || h.WAL.AppendedPoints != 200 {
		t.Errorf("healthz = %+v", h)
	}

	code, body = get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("stats status %d", code)
	}
	var st struct {
		WAL map[string]interface{} `json:"wal"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if st.WAL == nil || st.WAL["appended_points"].(float64) != 200 {
		t.Errorf("stats wal section = %+v", st.WAL)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, durableConfig(dir))
	defer s.Close()
	post(t, ts.URL+"/ingest", sineBody("cpu", 300))

	code, body := post(t, ts.URL+"/snapshot", "")
	if code != 200 {
		t.Fatalf("snapshot status %d: %s", code, body)
	}
	var res struct {
		Series          int `json:"series"`
		Points          int `json:"points"`
		SegmentsRemoved int `json:"segments_removed"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if res.Series != 1 || res.SegmentsRemoved == 0 {
		t.Errorf("snapshot result = %+v", res)
	}
	if code, _ := get(t, ts.URL+"/snapshot"); code != 405 {
		t.Errorf("GET /snapshot status %d, want 405", code)
	}

	// Memory-only servers refuse with 409 so callers can tell "disabled"
	// from "failed".
	_, tsMem := newTestServer(t, testConfig())
	if code, _ := post(t, tsMem.URL+"/snapshot", ""); code != 409 {
		t.Errorf("snapshot without WAL status %d, want 409", code)
	}
}

// TestIngestBodyCapConfigurable: the MaxBytesReader cap follows config
// and still answers 413.
func TestIngestBodyCapConfigurable(t *testing.T) {
	cfg := testConfig()
	cfg.MaxIngestBytes = 64
	_, ts := newTestServer(t, cfg)
	code, _ := post(t, ts.URL+"/ingest", sineBody("cpu", 50))
	if code != 413 {
		t.Fatalf("oversized body status %d, want 413", code)
	}
	if code, _ := post(t, ts.URL+"/ingest", "cpu=1\n"); code != 200 {
		t.Errorf("small body status %d, want 200", code)
	}
}

// TestRecoveryOverHTTP exercises the full loop through the API: ingest,
// clean close, reopen, and check /frame, /healthz, and /series agree
// with what was ingested.
func TestRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, durableConfig(dir))
	post(t, ts1.URL+"/ingest", sineBody("cpu", 600)+sineBody("disk", 450))
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, durableConfig(dir))
	defer s2.Close()
	code, body := get(t, ts2.URL+"/series")
	if code != 200 {
		t.Fatalf("series status %d", code)
	}
	var listing struct {
		Count  int `json:"count"`
		Series []struct {
			Name      string `json:"name"`
			RawPoints int    `json:"raw_points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Count != 2 || listing.Series[0].RawPoints != 600 || listing.Series[1].RawPoints != 450 {
		t.Fatalf("recovered listing = %+v", listing)
	}

	// Frames resume after fresh traffic.
	post(t, ts2.URL+"/ingest", sineBody("cpu", 150))
	code, body = get(t, ts2.URL+"/frame?series=cpu")
	if code != 200 || strings.TrimSpace(body) == "null" {
		t.Fatalf("frame after recovery = %d %.40q", code, body)
	}
	var f frameJSON
	if err := json.Unmarshal([]byte(body), &f); err != nil {
		t.Fatal(err)
	}
	// 750 total points at RefreshEvery 100 → sequence continues at 7.
	if f.Sequence != 7 {
		t.Errorf("sequence after recovery = %d, want 7", f.Sequence)
	}

	code, body = get(t, ts2.URL+"/healthz")
	if code != 200 || !strings.Contains(body, `"series":2`) {
		t.Errorf("healthz after recovery = %d %s", code, body)
	}
}

// TestRecoveredSeriesRespectMaxSeries: recovery of more series than the
// cap evicts down instead of growing without bound.
func TestRecoveredSeriesRespectMaxSeries(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s1.Hub().PushBatch(fmt.Sprintf("s%d", i), sineValues(10, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Hub.MaxSeries = 3
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Hub().Len(); got > 3 {
		t.Errorf("recovered hub holds %d series, cap is 3", got)
	}
	if s2.Hub().Evictions() == 0 {
		t.Error("no evictions recorded while shedding recovered series")
	}
}

// TestStreamerPrefillStillWorks guards the public Prefill path the WAL
// docs point away from: it must keep loading history without frames.
func TestStreamerPrefillStillWorks(t *testing.T) {
	st, err := asap.NewStreamer(asap.StreamConfig{WindowPoints: 400, Resolution: 100, RefreshEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	st.Prefill(sineValues(500, 0))
	if st.Frame() != nil {
		t.Fatal("Prefill emitted a frame")
	}
	if st.Stats().RawPoints != 500 {
		t.Errorf("prefill raw points = %d", st.Stats().RawPoints)
	}
}

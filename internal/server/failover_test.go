package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asap-go/asap"
)

// followerConfig builds a follower of primaryURL mirroring into dir.
// FollowPoll is huge: tests drive PollOnce deterministically.
func followerConfig(dir, primaryURL string) Config {
	return Config{
		DataDir:    dir,
		Follow:     primaryURL,
		FollowPoll: time.Hour,
	}
}

func pollOnce(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Follower().PollOnce(context.Background()); err != nil {
		t.Fatalf("poll: %v", err)
	}
}

// requireFramesEqual asserts got is bit-identical to want (Values,
// Window, Sequence — the restart/replication equivalence contract).
func requireFramesEqual(t *testing.T, label string, want, got *asap.Frame) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: frame presence differs: want %v, got %v", label, want != nil, got != nil)
	}
	if want == nil {
		return
	}
	if got.Sequence != want.Sequence || got.Window != want.Window {
		t.Fatalf("%s: seq/window %d/%d, want %d/%d", label, got.Sequence, got.Window, want.Sequence, want.Window)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: %d values, want %d", label, len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("%s: value %d: %v != %v", label, i, got.Values[i], want.Values[i])
		}
	}
}

// TestFailoverBitIdentical is the acceptance test for WAL-shipping
// replication: ingest to a primary, let a follower tail it, kill the
// primary without warning, promote the follower, keep ingesting — and
// every frame the follower serves, before and after promotion, must be
// bit-identical (Values, Window, Sequence) to a server that was never
// interrupted. Run under -race via make failover-check.
func TestFailoverBitIdentical(t *testing.T) {
	control, err := New(testConfig()) // the uninterrupted twin
	if err != nil {
		t.Fatal(err)
	}
	primary, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	tsP := httptest.NewServer(primary.Handler())

	pushBoth := func(name string, n, off int) {
		t.Helper()
		vals := sineValues(n, off)
		if err := control.Hub().PushBatch(name, vals); err != nil {
			t.Fatal(err)
		}
		if err := primary.Hub().PushBatch(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	// Uneven pre-replication history: cpu cuts cleanly, disk mid-pane
	// and mid-refresh-interval.
	pre := map[string]int{"cpu": 900, "disk": 523}
	for name, n := range pre {
		pushBoth(name, n, 0)
	}

	fol, err := New(followerConfig(t.TempDir(), tsP.URL))
	if err != nil {
		t.Fatal(err)
	}
	tsF := httptest.NewServer(fol.Handler())
	defer tsF.Close()
	if fol.Role() != "follower" {
		t.Fatalf("role = %q, want follower", fol.Role())
	}
	pollOnce(t, fol) // bootstrap from the primary's WAL

	// Writes are fenced with 503 + the primary's address.
	resp, err := http.Post(tsF.URL+"/ingest", "text/plain", strings.NewReader("cpu=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower ingest status %d, want 503", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != tsP.URL {
		t.Errorf("fencing Location = %q, want %q", loc, tsP.URL)
	}
	if code, _ := post(t, tsF.URL+"/snapshot", ""); code != http.StatusServiceUnavailable {
		t.Errorf("follower snapshot not fenced")
	}

	// Live tailing: every post-bootstrap frame must match the control's
	// exactly once the follower's operators refresh.
	sawFrame := map[string]bool{}
	off := map[string]int{"cpu": 900, "disk": 523}
	for c := 0; c < 20; c++ {
		for name := range pre {
			pushBoth(name, 30, off[name])
			off[name] += 30
		}
		pollOnce(t, fol)
		for name := range pre {
			want, _ := control.Hub().Frame(name)
			got, ok := fol.Hub().Frame(name)
			if !ok {
				t.Fatalf("follower lost series %s", name)
			}
			if got == nil {
				continue // no post-bootstrap refresh yet
			}
			sawFrame[name] = true
			requireFramesEqual(t, fmt.Sprintf("tailing %s chunk %d", name, c), want, got)
		}
	}
	for name := range pre {
		if !sawFrame[name] {
			t.Fatalf("%s never produced a frame while tailing", name)
		}
	}

	// Replication status: caught up, zero lag.
	var st struct {
		Role        string `json:"role"`
		Replication struct {
			Synced         bool  `json:"synced"`
			RecordsBehind  int64 `json:"records_behind"`
			SegmentsBehind int64 `json:"segments_behind"`
		} `json:"replication"`
	}
	_, body := get(t, tsF.URL+"/stats")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" || !st.Replication.Synced || st.Replication.RecordsBehind != 0 {
		t.Fatalf("follower stats = %+v", st)
	}

	// Kill the primary without warning: listener gone, WAL abandoned,
	// flock released the way a dead process releases it.
	tsP.Close()
	kill9(t, primary)

	// Reads still serve from the mirror while the primary is dead.
	if code, _ := get(t, tsF.URL+"/frame?series=cpu"); code != 200 {
		t.Fatalf("follower frame unavailable with primary dead: %d", code)
	}

	// Promote. The follower seals its tail and reopens the mirror as a
	// writable WAL.
	code, body := post(t, tsF.URL+"/promote", "")
	if code != 200 || !strings.Contains(body, `"promoted":true`) {
		t.Fatalf("promote = %d %s", code, body)
	}
	if fol.Role() != "primary" {
		t.Fatalf("post-promote role = %q", fol.Role())
	}
	if code, _ := post(t, tsF.URL+"/promote", ""); code != http.StatusConflict {
		t.Errorf("second promote status %d, want 409", code)
	}

	// Continued ingest on the promoted node, over HTTP, stays
	// bit-identical to the uninterrupted control.
	promoted := false
	for c := 0; c < 20; c++ {
		vals := sineValues(30, off["cpu"])
		off["cpu"] += 30
		if err := control.Hub().PushBatch("cpu", vals); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, v := range vals {
			b.WriteString("cpu=")
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte('\n')
		}
		if code, body := post(t, tsF.URL+"/ingest", b.String()); code != 200 {
			t.Fatalf("promoted ingest = %d %s", code, body)
		}
		want, _ := control.Hub().Frame("cpu")
		got, _ := fol.Hub().Frame("cpu")
		if got != nil {
			promoted = true
			requireFramesEqual(t, fmt.Sprintf("promoted chunk %d", c), want, got)
		}
	}
	if !promoted {
		t.Fatal("promoted node never produced a frame")
	}

	// The promoted node is durable again: its WAL ships to the next
	// follower generation — and its stats no longer claim to be a
	// replica (the frozen gauges would misread as a healthy follower).
	if _, ok := fol.WALStats(); !ok {
		t.Error("promoted node has no WAL")
	}
	_, body = get(t, tsF.URL+"/stats")
	if strings.Contains(body, `"replication"`) {
		t.Error("promoted node still emits the replication gauges")
	}
	if !strings.Contains(body, `"role":"primary"`) {
		t.Errorf("promoted node stats role: %.120s", body)
	}
	if code, _ := get(t, tsF.URL+"/replica/segments"); code != 200 {
		t.Error("promoted node does not serve the replication manifest")
	}
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerMirrorsTombstones: an LRU eviction on the primary
// arrives at the follower as a tombstone during tailing — the evicted
// series disappears there too, and its recreated fresh life replays
// bit-identically.
func TestFollowerMirrorsTombstones(t *testing.T) {
	mkCfg := func(dir string) Config {
		cfg := testConfig()
		if dir != "" {
			cfg.DataDir = dir
			cfg.FsyncEvery = 0
		}
		cfg.Hub.MaxSeries = 2
		cfg.Hub.Shards = 4
		return cfg
	}
	control, err := New(mkCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	primary, err := New(mkCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	tsP := httptest.NewServer(primary.Handler())
	defer tsP.Close()

	fol, err := New(followerConfig(t.TempDir(), tsP.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	both := func(f func(s *Server)) { f(control); f(primary) }
	// Fill the cap and sync the follower while b is alive.
	both(func(s *Server) {
		s.Hub().PushBatch("a", sineValues(50, 0))
		s.Hub().PushBatch("b", sineValues(60, 0))
	})
	pollOnce(t, fol)
	if _, ok := fol.Hub().Frame("b"); !ok {
		t.Fatal("follower missing b before eviction")
	}

	// Touch a, create c -> b is evicted (tombstoned) mid-tail.
	both(func(s *Server) {
		s.Hub().Frame("a")
		s.Hub().PushBatch("c", sineValues(50, 0))
	})
	pollOnce(t, fol)
	if _, ok := fol.Hub().Frame("b"); ok {
		t.Fatal("follower still serves evicted series b")
	}
	if fol.Hub().Len() != control.Hub().Len() {
		t.Fatalf("series count %d, control %d", fol.Hub().Len(), control.Hub().Len())
	}

	// Recreate b: the fresh life must replicate bit-identically.
	for c := 0; c < 12; c++ {
		both(func(s *Server) { s.Hub().PushBatch("b", sineValues(40, c*40)) })
		pollOnce(t, fol)
		want, _ := control.Hub().Frame("b")
		got, ok := fol.Hub().Frame("b")
		if !ok {
			t.Fatal("follower missing recreated b")
		}
		if got != nil {
			requireFramesEqual(t, fmt.Sprintf("recreated b chunk %d", c), want, got)
		}
	}
}

// TestFollowerRestartResumesMidSegment: a follower killed mid-tail
// restarts from its durable cursor — restoring the hub from the local
// mirror, truncating any torn tail, resuming the fetch mid-segment —
// and continues serving bit-identical frames.
func TestFollowerRestartResumesMidSegment(t *testing.T) {
	control, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	primary, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	tsP := httptest.NewServer(primary.Handler())
	defer tsP.Close()

	pushBoth := func(n, off int) {
		t.Helper()
		vals := sineValues(n, off)
		control.Hub().PushBatch("cpu", vals)
		primary.Hub().PushBatch("cpu", vals)
	}
	pushBoth(317, 0) // mid-pane, mid-interval, mid-segment

	dirF := t.TempDir()
	fol1, err := New(followerConfig(dirF, tsP.URL))
	if err != nil {
		t.Fatal(err)
	}
	pollOnce(t, fol1)
	if err := fol1.Close(); err != nil { // clean stop: fsync + final cursor
		t.Fatal(err)
	}

	// More primary traffic lands while the follower is down, extending
	// the same active segment.
	pushBoth(240, 317)

	fol2, err := New(followerConfig(dirF, tsP.URL))
	if err != nil {
		t.Fatalf("follower restart: %v", err)
	}
	defer fol2.Close()
	if fol2.Hub().Len() != 1 {
		t.Fatalf("restarted follower restored %d series, want 1", fol2.Hub().Len())
	}
	pollOnce(t, fol2)

	saw := false
	for c := 0; c < 10; c++ {
		pushBoth(40, 557+c*40)
		pollOnce(t, fol2)
		want, _ := control.Hub().Frame("cpu")
		got, ok := fol2.Hub().Frame("cpu")
		if !ok {
			t.Fatal("restarted follower lost cpu")
		}
		if got != nil {
			saw = true
			requireFramesEqual(t, fmt.Sprintf("restart chunk %d", c), want, got)
		}
	}
	if !saw {
		t.Fatal("restarted follower never produced a frame")
	}
}

// TestFollowerReportsLag: when segment fetches fail the lag gauges
// report what the primary holds that the follower has not applied, and
// recovery clears them.
func TestFollowerReportsLag(t *testing.T) {
	primary, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	var blocked atomic.Bool
	inner := primary.Handler()
	tsP := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if blocked.Load() && r.URL.Path == "/replica/segment" {
			http.Error(w, "injected outage", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer tsP.Close()
	if err := primary.Hub().PushBatch("cpu", sineValues(400, 0)); err != nil {
		t.Fatal(err)
	}

	fol, err := New(followerConfig(t.TempDir(), tsP.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	tsF := httptest.NewServer(fol.Handler())
	defer tsF.Close()

	blocked.Store(true)
	if err := fol.Follower().PollOnce(context.Background()); err == nil {
		t.Fatal("poll succeeded with segment fetches blocked")
	}
	st := fol.Follower().Status()
	if st.Synced || st.RecordsBehind == 0 || st.SegmentsBehind == 0 {
		t.Fatalf("blocked status = %+v, want nonzero lag", st)
	}
	_, body := get(t, tsF.URL+"/stats")
	if !strings.Contains(body, `"records_behind"`) || !strings.Contains(body, `"segments_behind"`) {
		t.Fatalf("stats missing lag fields: %s", body)
	}

	blocked.Store(false)
	pollOnce(t, fol)
	st = fol.Follower().Status()
	if !st.Synced || st.RecordsBehind != 0 {
		t.Fatalf("post-recovery status = %+v", st)
	}
	if _, ok := fol.Hub().Frame("cpu"); !ok {
		t.Fatal("follower missing cpu after recovery")
	}
}

// TestDataDirLocking: two servers must never share one WAL directory —
// the second open fails naming the holder, in both primary and
// follower modes.
func TestDataDirLocking(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(durableConfig(dir)); err == nil || !strings.Contains(err.Error(), "locked by pid") {
		t.Fatalf("second server on one data dir: err = %v", err)
	}
	tsP := httptest.NewServer(s1.Handler())
	defer tsP.Close()
	if _, err := New(followerConfig(dir, tsP.URL)); err == nil || !strings.Contains(err.Error(), "locked by pid") {
		t.Fatalf("follower sharing the primary's data dir: err = %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}

// TestBackgroundSnapshotScheduling: -snapshot-interval compacts the
// WAL without an operator POST, and /stats surfaces the last-snapshot
// age and auto-snapshot count.
func TestBackgroundSnapshotScheduling(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.SnapshotInterval = 30 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Hub().PushBatch("cpu", sineValues(500, 0)); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := s.WALStats(); ok && st.Snapshots > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background snapshot never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, body := get(t, base+"/stats")
	var st struct {
		WAL struct {
			AutoSnapshots     int64 `json:"auto_snapshots"`
			LastSnapshotAgeMS int64 `json:"last_snapshot_age_ms"`
			Snapshots         int64 `json:"snapshots"`
		} `json:"wal"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.WAL.AutoSnapshots < 1 || st.WAL.Snapshots < 1 {
		t.Fatalf("stats wal = %+v", st.WAL)
	}
	if st.WAL.LastSnapshotAgeMS < 0 || st.WAL.LastSnapshotAgeMS > 10_000 {
		t.Fatalf("last_snapshot_age_ms = %d", st.WAL.LastSnapshotAgeMS)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestFailoverEndToEndServe runs the whole story through Serve with
// the follower's real poll loop under -race: concurrent ingest, live
// tailing, kill, promote over HTTP, continued ingest.
func TestFailoverEndToEndServe(t *testing.T) {
	control, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	primary, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	tsP := httptest.NewServer(primary.Handler())

	vals := sineValues(700, 0)
	control.Hub().PushBatch("cpu", vals)
	primary.Hub().PushBatch("cpu", vals)

	fcfg := followerConfig(t.TempDir(), tsP.URL)
	fcfg.FollowPoll = 20 * time.Millisecond
	fol, err := New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	lnF, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	fdone := make(chan error, 1)
	go func() { fdone <- fol.Serve(fctx, lnF) }()
	baseF := "http://" + lnF.Addr().String()

	// Concurrent ingest while the loop tails.
	for c := 0; c < 10; c++ {
		vals := sineValues(30, 700+c*30)
		control.Hub().PushBatch("cpu", vals)
		primary.Hub().PushBatch("cpu", vals)
	}
	// Wait on the applied points themselves (the Synced gauge could be a
	// stale pre-ingest poll's view).
	deadline := time.Now().Add(5 * time.Second)
	for fol.Hub().Stats()["cpu"].RawPoints != 1000 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v (raw=%d)",
				fol.Follower().Status(), fol.Hub().Stats()["cpu"].RawPoints)
		}
		time.Sleep(10 * time.Millisecond)
	}

	tsP.Close()
	kill9(t, primary)

	code, body := post(t, baseF+"/promote", "")
	if code != 200 {
		t.Fatalf("promote = %d %s", code, body)
	}
	for c := 0; c < 10; c++ {
		vals := sineValues(30, 1000+c*30)
		control.Hub().PushBatch("cpu", vals)
		var b strings.Builder
		for _, v := range vals {
			fmt.Fprintf(&b, "cpu=%s\n", strconv.FormatFloat(v, 'g', -1, 64))
		}
		if code, reply := post(t, baseF+"/ingest", b.String()); code != 200 {
			t.Fatalf("promoted ingest = %d %s", code, reply)
		}
	}
	want, _ := control.Hub().Frame("cpu")
	got, _ := fol.Hub().Frame("cpu")
	if want == nil || got == nil {
		t.Fatalf("missing frames: control=%v follower=%v", want != nil, got != nil)
	}
	requireFramesEqual(t, "end-to-end", want, got)

	fcancel()
	if err := <-fdone; err != nil {
		t.Fatal(err)
	}
}

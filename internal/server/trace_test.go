package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asap-go/asap/internal/obs/trace"
)

// syncBuffer is a mutex-guarded bytes.Buffer: handler goroutines log
// into it while the test reads it back.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelWarn}))
}

// doReq issues req and returns the response (headers intact) plus the
// drained body.
func doReq(t *testing.T, req *http.Request) (*http.Response, string) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// flattenSpans walks an exported span tree depth-first into a
// name -> node map (last span of a repeated name wins; the pipeline
// assertions only need presence and a nonzero duration).
func flattenSpans(nodes []*trace.SpanNode, into map[string]*trace.SpanNode) {
	for _, n := range nodes {
		into[n.Name] = n
		flattenSpans(n.Children, into)
	}
}

// TestTracePipelineSpans is the tentpole acceptance test: one durable
// ingest request yields one retained trace whose span tree covers the
// whole pipeline — parse, hub push, WAL append + fsync, refresh, and
// broadcast publish — every span with a nonzero duration, explorable
// via /traces and /traces/{id}.
func TestTracePipelineSpans(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.TraceSlow = time.Nanosecond // retain every completed request
	_, ts := newTestServer(t, cfg)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest",
		strings.NewReader(sineBody("cpu", 2000)))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := doReq(t, req)
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	tp := resp.Header.Get("traceparent")
	if tp == "" {
		t.Fatal("no traceparent echoed on the ingest response")
	}
	parsed, err := trace.Parse(tp)
	if err != nil {
		t.Fatalf("echoed traceparent %q: %v", tp, err)
	}
	if !parsed.Sampled {
		t.Fatalf("echoed traceparent %q not sampled", tp)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID on the ingest response")
	}
	id := parsed.TraceID.String()

	// The explorer list knows the trace.
	code, body := get(t, ts.URL+"/traces?route=/ingest")
	if code != 200 {
		t.Fatalf("/traces status %d: %s", code, body)
	}
	var list struct {
		Count  int             `json:"count"`
		Traces []trace.Summary `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("decode /traces: %v\n%s", err, body)
	}
	found := false
	for _, s := range list.Traces {
		if s.TraceID == id {
			found = true
			if s.Kept != "slow" {
				t.Errorf("ingest trace kept=%q, want slow under a 1ns threshold", s.Kept)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in /traces?route=/ingest (%d listed)", id, list.Count)
	}

	// The full span tree covers every pipeline stage.
	code, body = get(t, ts.URL+"/traces/"+id)
	if code != 200 {
		t.Fatalf("/traces/%s status %d: %s", id, code, body)
	}
	var ex trace.Export
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatalf("decode /traces/{id}: %v\n%s", err, body)
	}
	if ex.TraceID != id || ex.Route != "/ingest" {
		t.Fatalf("export is for %s route=%s, want %s /ingest", ex.TraceID, ex.Route, id)
	}
	spans := map[string]*trace.SpanNode{}
	flattenSpans(ex.Spans, spans)
	for _, name := range []string{"/ingest", "parse", "hub.push", "wal.append", "wal.fsync", "refresh", "broadcast.publish"} {
		sp, ok := spans[name]
		if !ok {
			t.Errorf("span %q missing from the ingest trace (got %v)", name, spanNames(spans))
			continue
		}
		if sp.DurationNS <= 0 {
			t.Errorf("span %q has duration %dns, want > 0", name, sp.DurationNS)
		}
	}
	if !strings.Contains(ex.Waterfall, "wal.fsync") {
		t.Errorf("waterfall missing wal.fsync:\n%s", ex.Waterfall)
	}

	// The text rendering serves the waterfall alone.
	treq, err := http.NewRequest(http.MethodGet, ts.URL+"/traces/"+id+"?format=text", nil)
	if err != nil {
		t.Fatal(err)
	}
	tresp, tbody := doReq(t, treq)
	if ct := tresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("?format=text Content-Type = %q", ct)
	}
	if !strings.Contains(tbody, "broadcast.publish") {
		t.Errorf("text waterfall missing spans:\n%s", tbody)
	}

	// Unknown ids 404 with a reason, not an empty 200.
	if code, body := get(t, ts.URL+"/traces/ffffffffffffffffffffffffffffffff"); code != 404 {
		t.Errorf("unknown trace id: status %d body %q", code, body)
	}
}

func spanNames(m map[string]*trace.SpanNode) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceJoinsInboundTraceparent pins the cross-process contract on
// the HTTP edge: a sampled inbound traceparent joins its trace id (and
// the response echoes it), an unsampled one suppresses recording.
func TestTraceJoinsInboundTraceparent(t *testing.T) {
	cfg := testConfig()
	cfg.TraceSlow = time.Nanosecond
	s, ts := newTestServer(t, cfg)

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/series", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", inbound)
	resp, _ := doReq(t, req)
	echo := resp.Header.Get("traceparent")
	if !strings.Contains(echo, "4bf92f3577b34da6a3ce929d0e0e4736") {
		t.Fatalf("echoed traceparent %q did not join inbound trace id", echo)
	}
	tr := s.tracer.Store().Get("4bf92f3577b34da6a3ce929d0e0e4736")
	if tr == nil {
		t.Fatal("joined trace not retained")
	}
	ex := tr.Export()
	if ex.RemoteParent != "00f067aa0ba902b7" {
		t.Fatalf("remote parent = %q, want the inbound span id", ex.RemoteParent)
	}

	// Unsampled inbound: no recording, no echo, no retention.
	req2, err := http.NewRequest(http.MethodGet, ts.URL+"/series", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("traceparent", "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-00f067aa0ba902b7-00")
	resp2, _ := doReq(t, req2)
	if got := resp2.Header.Get("traceparent"); got != "" {
		t.Fatalf("unsampled request echoed traceparent %q", got)
	}
	if got := s.tracer.Store().Get("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"); got != nil {
		t.Fatal("unsampled inbound traceparent was recorded")
	}
}

// TestTraceReplicationJoin proves one trace spans the replication hop:
// the follower's poll roots a "replica.poll" trace, sends traceparent
// on its segment fetches, and the primary's /replica/segment trace
// joins it — same trace id on both sides, remote-flagged on the
// primary.
func TestTraceReplicationJoin(t *testing.T) {
	pcfg := durableConfig(t.TempDir())
	pcfg.TraceSlow = time.Nanosecond
	ps, pts := newTestServer(t, pcfg)

	if code, body := post(t, pts.URL+"/ingest", sineBody("cpu", 500)); code != 200 {
		t.Fatalf("primary ingest: %d %s", code, body)
	}

	fcfg := followerConfig(t.TempDir(), pts.URL)
	fcfg.TraceSlow = time.Nanosecond
	fs, _ := newTestServer(t, fcfg)

	// New tail after the follower attached, so the traced poll has
	// segment bytes to fetch.
	if code, body := post(t, pts.URL+"/ingest", sineBody("cpu", 500)); code != 200 {
		t.Fatalf("primary ingest: %d %s", code, body)
	}
	pollOnce(t, fs)

	polls := fs.tracer.Store().List(trace.Filter{Route: "replica.poll"})
	if len(polls) == 0 {
		t.Fatal("follower retained no replica.poll trace")
	}
	pollID := polls[0].TraceID

	fetches := ps.tracer.Store().List(trace.Filter{Route: "/replica/segment"})
	joined := false
	for _, f := range fetches {
		if f.TraceID == pollID {
			joined = true
			if !f.Remote {
				t.Error("primary-side segment fetch not flagged remote")
			}
		}
	}
	if !joined {
		t.Fatalf("no primary /replica/segment trace joined follower poll %s (primary has %d fetch traces)",
			pollID, len(fetches))
	}
	if tr := ps.tracer.Store().Get(pollID); tr == nil || tr.Export().RemoteParent == "" {
		t.Fatal("primary-side joined trace missing its remote parent span id")
	}
}

// TestMetricsExemplars pins the exposition contract: OpenMetrics
// negotiation attaches trace-id exemplars to the route histograms, the
// default Prometheus 0.0.4 form stays exemplar-free, and streaming
// routes live in their own duration family.
func TestMetricsExemplars(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	if code, body := post(t, ts.URL+"/ingest", sineBody("cpu", 200)); code != 200 {
		t.Fatalf("ingest: %d %s", code, body)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, body := doReq(t, req)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics Content-Type = %q", ct)
	}
	if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}
	sawExemplar := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "asap_http_request_duration_seconds_bucket") &&
			strings.Contains(line, `route="/ingest"`) &&
			strings.Contains(line, `# {trace_id="`) {
			sawExemplar = true
			break
		}
	}
	if !sawExemplar {
		t.Error("no trace_id exemplar on the /ingest duration histogram in OpenMetrics exposition")
	}
	for _, fam := range []string{"asap_trace_spans_started_total", "asap_trace_traces_sampled_total", "asap_http_streaming_duration_seconds"} {
		if !strings.Contains(body, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}

	// Default negotiation: Prometheus 0.0.4, no exemplars.
	code, plain := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if strings.Contains(plain, `# {trace_id="`) {
		t.Error("text/plain 0.0.4 exposition leaked exemplar syntax")
	}
	if strings.Contains(plain, "# EOF") {
		t.Error("text/plain 0.0.4 exposition carries an OpenMetrics terminator")
	}
}

// TestSlowRequestLogsBreakdown asserts the -trace-slow contract: a
// request at or over the threshold emits one structured warn line with
// the span breakdown inline.
func TestSlowRequestLogsBreakdown(t *testing.T) {
	var buf syncBuffer
	cfg := testConfig()
	cfg.TraceSlow = time.Nanosecond
	cfg.Logger = newTestLogger(&buf)
	_, ts := newTestServer(t, cfg)

	if code, body := post(t, ts.URL+"/ingest", sineBody("cpu", 200)); code != 200 {
		t.Fatalf("ingest: %d %s", code, body)
	}
	out := buf.String()
	if !strings.Contains(out, "slow request") {
		t.Fatalf("no slow-request line in logs:\n%s", out)
	}
	if !strings.Contains(out, "spans=") || !strings.Contains(out, "parse=") {
		t.Errorf("slow-request line missing span breakdown:\n%s", out)
	}
	if !strings.Contains(out, "trace_id=") {
		t.Errorf("slow-request line missing trace_id:\n%s", out)
	}
}

package server

import (
	"reflect"
	"testing"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/wal"
)

// TestBuildPrimaryManifestStreamSpec pins the stream-config mapping a
// follower depends on for bit-identical frames: every field must cross
// the wire, including the ones added after the protocol first shipped.
func TestBuildPrimaryManifestStreamSpec(t *testing.T) {
	st := asap.StreamConfig{
		WindowPoints:          14400,
		Resolution:            800,
		RefreshEvery:          120,
		MaxWindow:             64,
		DisablePreaggregation: true,
		IncrementalACF:        true,
	}
	pm := buildPrimaryManifest(wal.Manifest{Shards: 8}, "cpu", st)
	if pm.Shards != 8 || pm.DefaultSeries != "cpu" {
		t.Errorf("manifest header = %d/%q", pm.Shards, pm.DefaultSeries)
	}
	sp := pm.Stream
	if sp.WindowPoints != 14400 || sp.Resolution != 800 || sp.RefreshEvery != 120 ||
		sp.MaxWindow != 64 || !sp.DisablePreaggregation || !sp.IncrementalACF {
		t.Errorf("stream spec dropped fields: %+v", sp)
	}
}

// TestBuildPrimaryManifestEmpty: a fresh primary with no durable data
// produces a manifest a follower can consume without special cases —
// shard count present, no shard listings, empty (not nil-surprising)
// semantics downstream.
func TestBuildPrimaryManifestEmpty(t *testing.T) {
	pm := buildPrimaryManifest(wal.Manifest{Shards: 4}, "default", asap.StreamConfig{
		WindowPoints: 100, Resolution: 10,
	})
	if pm.Shards != 4 {
		t.Errorf("shards = %d, want 4", pm.Shards)
	}
	if len(pm.ShardManifests) != 0 {
		t.Errorf("empty manifest listed %d shards", len(pm.ShardManifests))
	}
}

// TestBuildPrimaryManifestPassesShardListingsVerbatim: the WAL's
// durable listing — snapshot-only shards included — must reach the
// follower untouched; the diff on the other side is tested in
// internal/replica against these same shapes.
func TestBuildPrimaryManifestPassesShardListingsVerbatim(t *testing.T) {
	in := []wal.ShardManifest{
		{Shard: 0}, // empty shard
		{Shard: 1, Snapshot: &wal.FileMeta{Name: wal.SnapshotFileName(3), Seq: 3, Size: 512, Records: 5}},
		{Shard: 2, Segments: []wal.FileMeta{
			{Name: wal.SegmentFileName(1), Seq: 1, Size: 64, Records: 2},
			{Name: wal.SegmentFileName(2), Seq: 2, Size: 32, Records: 1, Active: true},
		}},
	}
	pm := buildPrimaryManifest(wal.Manifest{Shards: 3, ShardManifests: in}, "d", asap.StreamConfig{
		WindowPoints: 100, Resolution: 10,
	})
	if !reflect.DeepEqual(pm.ShardManifests, in) {
		t.Errorf("shard manifests mutated:\n got %+v\nwant %+v", pm.ShardManifests, in)
	}
}

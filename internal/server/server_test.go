package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asap-go/asap"
)

func testConfig() Config {
	return Config{
		Hub: HubConfig{
			Stream: asap.StreamConfig{
				WindowPoints: 400,
				Resolution:   100,
				RefreshEvery: 100,
			},
		},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// sineBody builds an ingest body of n sine samples, each line prefixed
// with "series=" when series is non-empty.
func sineBody(series string, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if series != "" {
			b.WriteString(series)
			b.WriteByte('=')
		}
		b.WriteString(strconv.FormatFloat(math.Sin(2*math.Pi*float64(i)/40), 'g', -1, 64))
		b.WriteByte('\n')
	}
	return b.String()
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestIngestAndFrameDefaultSeries(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	code, body := post(t, ts.URL+"/ingest", sineBody("", 2000))
	if code != 200 {
		t.Fatalf("ingest status %d: %s", code, body)
	}
	if !strings.Contains(body, "2000 points across 1 series") {
		t.Errorf("ingest reply = %q", body)
	}

	code, body = get(t, ts.URL+"/frame")
	if code != 200 {
		t.Fatalf("frame status %d", code)
	}
	var f frameJSON
	if err := json.Unmarshal([]byte(body), &f); err != nil {
		t.Fatalf("frame not JSON: %v", err)
	}
	if f.Window < 1 || len(f.Values) == 0 || f.Series != DefaultSeriesName {
		t.Errorf("frame = %+v", f)
	}
}

func TestIngestMultiSeries(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	body := sineBody("cpu.load", 600) + sineBody("disk.io", 700)
	code, reply := post(t, ts.URL+"/ingest", body)
	if code != 200 {
		t.Fatalf("ingest status %d: %s", code, reply)
	}
	if !strings.Contains(reply, "1300 points across 2 series") {
		t.Errorf("ingest reply = %q", reply)
	}

	for _, name := range []string{"cpu.load", "disk.io"} {
		code, body := get(t, ts.URL+"/frame?series="+name)
		if code != 200 {
			t.Fatalf("frame %s status %d", name, code)
		}
		var f frameJSON
		if err := json.Unmarshal([]byte(body), &f); err != nil {
			t.Fatalf("frame %s not JSON: %v", name, err)
		}
		if f.Series != name || len(f.Values) == 0 {
			t.Errorf("frame %s = %+v", name, f)
		}
	}

	code, body = get(t, ts.URL+"/series")
	if code != 200 {
		t.Fatalf("series status %d", code)
	}
	var listing struct {
		Count  int `json:"count"`
		Series []struct {
			Name      string `json:"name"`
			RawPoints int    `json:"raw_points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("series not JSON: %v", err)
	}
	if listing.Count != 2 || len(listing.Series) != 2 {
		t.Fatalf("series listing = %+v", listing)
	}
	// Sorted by name: cpu.load before disk.io.
	if listing.Series[0].Name != "cpu.load" || listing.Series[0].RawPoints != 600 {
		t.Errorf("series[0] = %+v", listing.Series[0])
	}
	if listing.Series[1].Name != "disk.io" || listing.Series[1].RawPoints != 700 {
		t.Errorf("series[1] = %+v", listing.Series[1])
	}
}

// TestIngestBadValueNoPartialApplication is the regression test for the
// old single-series server, which 400'd on a bad line after silently
// pushing every line before it. The hub parses the whole body first, so
// nothing may be applied.
func TestIngestBadValueNoPartialApplication(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	code, body := post(t, ts.URL+"/ingest", "1.5\n2.5\nnot-a-number\n3.5\n")
	if code != 400 {
		t.Fatalf("bad ingest status %d: %s", code, body)
	}
	if got := s.Hub().Len(); got != 0 {
		t.Errorf("series created by rejected batch: %d", got)
	}

	// Same all-or-nothing contract when the bad line targets a second
	// series mid-batch: the healthy first series must see nothing.
	code, _ = post(t, ts.URL+"/ingest", "cpu=1\ncpu=2\ndisk=junk\n")
	if code != 400 {
		t.Fatalf("bad multi-series ingest status %d", code)
	}
	if _, ok := s.Hub().Frame("cpu"); ok {
		t.Error("series cpu exists after rejected batch")
	}
	code, body = get(t, ts.URL+"/stats")
	var st struct {
		Aggregate map[string]int `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats not JSON: %v (status %d)", err, code)
	}
	if st.Aggregate["raw_points"] != 0 {
		t.Errorf("raw_points = %d after two rejected batches, want 0", st.Aggregate["raw_points"])
	}
}

func TestIngestSkipsBlankAndCommentLines(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	code, reply := post(t, ts.URL+"/ingest", "\n# header comment\n1\n\n  \ncpu=2\n# done\n")
	if code != 200 {
		t.Fatalf("ingest status %d: %s", code, reply)
	}
	if !strings.Contains(reply, "2 points across 2 series") {
		t.Errorf("ingest reply = %q", reply)
	}
}

func TestIngestRejectsNonFinite(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for _, body := range []string{"NaN\n", "cpu=+Inf\n", "cpu=-inf\n"} {
		if code, _ := post(t, ts.URL+"/ingest", body); code != 400 {
			t.Errorf("ingest %q status %d, want 400", body, code)
		}
	}
}

func TestIngestRejectsControlBytesInSeriesName(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for _, body := range []string{"a\rb=1\n", "a\x00b=1\n", "a\tb=1\n"} {
		if code, _ := post(t, ts.URL+"/ingest", body); code != 400 {
			t.Errorf("ingest %q status %d, want 400", body, code)
		}
	}
}

func TestNewRejectsExcessiveSimulationRate(t *testing.T) {
	cfg := testConfig()
	cfg.Simulate = "Taxi"
	cfg.Rate = int(2 * time.Second) // interval would truncate to 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a rate whose ticker interval truncates to zero")
	}
}

func TestMethodErrors(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	// GET on the write endpoint. RFC 9110 requires 405 responses to name
	// the allowed methods.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /ingest status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("GET /ingest Allow = %q, want %q", allow, http.MethodPost)
	}
	// POST on every read endpoint.
	for _, path := range []string{"/frame", "/series", "/stats", "/plot.svg", "/stream", "/"} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 405 {
			t.Errorf("POST %s status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s Allow = %q, want %q", path, allow, http.MethodGet)
		}
	}
}

func TestUnknownSeries(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", "cpu=1\n")
	for _, path := range []string{"/frame?series=nope", "/plot.svg?series=nope", "/stats?series=nope"} {
		if code, _ := get(t, ts.URL+path); code != 404 {
			t.Errorf("GET %s status %d, want 404", path, code)
		}
	}
}

func TestFrameBeforeData(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	// Unknown default series (nothing ingested at all) is a 404 …
	if code, _ := get(t, ts.URL+"/frame"); code != 404 {
		t.Errorf("frame with no series status %d, want 404", code)
	}
	// … but a live series that has not refreshed yet answers null.
	post(t, ts.URL+"/ingest", "1\n2\n3\n")
	code, body := get(t, ts.URL+"/frame")
	if code != 200 || strings.TrimSpace(body) != "null" {
		t.Errorf("pre-frame = %d %q, want 200 null", code, body)
	}
}

func TestPlotSVG(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	// Series exists but no frame yet: 503.
	post(t, ts.URL+"/ingest", "cpu=1\n")
	if code, _ := get(t, ts.URL+"/plot.svg?series=cpu"); code != 503 {
		t.Errorf("plot before frame status %d, want 503", code)
	}
	post(t, ts.URL+"/ingest", sineBody("cpu", 2000))
	code, body := get(t, ts.URL+"/plot.svg?series=cpu")
	if code != 200 || !strings.Contains(body, "<svg") {
		t.Errorf("plot status %d, body %.40q", code, body)
	}
}

func TestStatsAggregateAndPerSeries(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", sineBody("cpu", 500))
	post(t, ts.URL+"/ingest", sineBody("disk", 300))

	code, body := get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("stats status %d", code)
	}
	var st struct {
		SeriesCount int                        `json:"series_count"`
		Evictions   int                        `json:"evictions"`
		Aggregate   map[string]int             `json:"aggregate"`
		Series      map[string]seriesStatsJSON `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if st.SeriesCount != 2 || st.Aggregate["raw_points"] != 800 {
		t.Errorf("stats = %+v", st)
	}
	if st.Series["cpu"].RawPoints != 500 || st.Series["disk"].RawPoints != 300 {
		t.Errorf("per-series stats = %+v", st.Series)
	}
	if st.Series["cpu"].Ratio != 4 {
		t.Errorf("ratio = %d, want 4", st.Series["cpu"].Ratio)
	}

	// Narrowed form.
	code, body = get(t, ts.URL+"/stats?series=cpu")
	if code != 200 {
		t.Fatalf("stats?series status %d", code)
	}
	var one seriesStatsJSON
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("narrowed stats not JSON: %v", err)
	}
	if one.RawPoints != 500 {
		t.Errorf("narrowed raw_points = %d, want 500", one.RawPoints)
	}
}

func TestDashboard(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", "cpu=1\ndisk=2\n")
	code, body := get(t, ts.URL+"/")
	if code != 200 || !strings.Contains(body, "ASAP streaming dashboard") {
		t.Errorf("dashboard = %d %.60q", code, body)
	}
	if !strings.Contains(body, "cpu") || !strings.Contains(body, "disk") {
		t.Error("dashboard does not list live series")
	}
	// The catch-all must not swallow unknown paths.
	if code, _ := get(t, ts.URL+"/no-such-page"); code != 404 {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := testConfig()
	cfg.Hub.MaxSeries = 2
	cfg.Hub.Shards = 4
	s, ts := newTestServer(t, cfg)

	post(t, ts.URL+"/ingest", "a=1\n")
	post(t, ts.URL+"/ingest", "b=1\n")
	// Touch a so b becomes the LRU victim.
	get(t, ts.URL+"/frame?series=a")
	post(t, ts.URL+"/ingest", "c=1\n")

	names := s.Hub().SeriesNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Errorf("series after eviction = %v, want [a c]", names)
	}
	if got := s.Hub().Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if code, _ := get(t, ts.URL+"/frame?series=b"); code != 404 {
		t.Errorf("evicted series status %d, want 404", code)
	}
}

// TestConcurrentStress hammers the hub through real HTTP: writers
// ingest into several series while readers poll frames and stats. Run
// with -race; the per-shard locking must keep every Streamer single-
// threaded underneath.
func TestConcurrentStress(t *testing.T) {
	cfg := testConfig()
	cfg.Hub.Shards = 8
	s, ts := newTestServer(t, cfg)

	const (
		writers   = 8
		series    = 4
		batches   = 25
		batchSize = 40
	)
	client := ts.Client()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", w%series)
			for b := 0; b < batches; b++ {
				var sb strings.Builder
				for i := 0; i < batchSize; i++ {
					fmt.Fprintf(&sb, "%s=%g\n", name, math.Sin(float64(b*batchSize+i)/17))
				}
				resp, err := client.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(sb.String()))
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("writer %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{
				fmt.Sprintf("/frame?series=s%d", r%series),
				"/stats",
				"/series",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + paths[i%len(paths)])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 && resp.StatusCode != 404 {
					t.Errorf("reader %d: status %d", r, resp.StatusCode)
					return
				}
			}
		}(r)
	}

	done := make(chan struct{})
	go func() {
		// Writers finish first; then release the readers.
		defer close(done)
		wgWriters := writers * batches * batchSize
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			total := 0
			for _, st := range s.Hub().Stats() {
				total += st.RawPoints
			}
			if total == wgWriters {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	<-done
	close(stop)
	wg.Wait()

	total := 0
	for name, st := range s.Hub().Stats() {
		if st.RawPoints == 0 {
			t.Errorf("series %s has no points", name)
		}
		total += st.RawPoints
	}
	if want := writers * batches * batchSize; total != want {
		t.Errorf("total raw points = %d, want %d", total, want)
	}
	if got := s.Hub().Len(); got != series {
		t.Errorf("series count = %d, want %d", got, series)
	}
}

// TestGracefulShutdown runs the real Serve loop (with the simulator
// goroutine) and checks that cancelling the context drains cleanly.
func TestGracefulShutdown(t *testing.T) {
	cfg := testConfig()
	cfg.Simulate = "Taxi"
	cfg.Rate = 1000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/stats")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Let the simulator land at least one point before shutting down.
	for s.Hub().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("simulator never pushed a point")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after cancel, want nil", err)
		}
	case <-time.After(DefaultDrainTimeout + 2*time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
	// The simulator fed the default series while running.
	if _, ok := s.Hub().Frame(s.Hub().DefaultSeries()); !ok {
		t.Error("simulator never created the default series")
	}
}

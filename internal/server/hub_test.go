package server

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/asap-go/asap"
)

func testHub(t *testing.T, cfg HubConfig) *Hub {
	t.Helper()
	if cfg.Stream.WindowPoints == 0 {
		cfg.Stream = asap.StreamConfig{WindowPoints: 400, Resolution: 100, RefreshEvery: 100}
	}
	h, err := NewHub(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHubDefaults(t *testing.T) {
	h := testHub(t, HubConfig{})
	if got := len(h.shards); got != runtime.GOMAXPROCS(0) {
		t.Errorf("shards = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if h.cfg.MaxSeries != DefaultMaxSeries {
		t.Errorf("MaxSeries = %d, want %d", h.cfg.MaxSeries, DefaultMaxSeries)
	}
	if h.DefaultSeries() != DefaultSeriesName {
		t.Errorf("DefaultSeries = %q", h.DefaultSeries())
	}
}

func TestNewHubRejectsBadStreamConfig(t *testing.T) {
	_, err := NewHub(HubConfig{Stream: asap.StreamConfig{WindowPoints: 1, Resolution: 100}})
	if err == nil {
		t.Fatal("NewHub accepted an invalid stream config")
	}
}

func TestHubFrameUnknownSeries(t *testing.T) {
	h := testHub(t, HubConfig{})
	if _, ok := h.Frame("nope"); ok {
		t.Error("Frame reported an unknown series as existing")
	}
}

func TestHubShardSpread(t *testing.T) {
	h := testHub(t, HubConfig{Shards: 8})
	for i := 0; i < 64; i++ {
		if err := h.PushBatch(fmt.Sprintf("series-%d", i), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for i := range h.shards {
		if len(h.shards[i].series) > 0 {
			occupied++
		}
	}
	// FNV-1a should not pile 64 distinct names onto one or two shards.
	if occupied < 4 {
		t.Errorf("only %d of 8 shards occupied by 64 series", occupied)
	}
	if h.Len() != 64 {
		t.Errorf("Len = %d, want 64", h.Len())
	}
}

func TestHubEvictionPrefersLRU(t *testing.T) {
	h := testHub(t, HubConfig{Shards: 4, MaxSeries: 3})
	for _, name := range []string{"a", "b", "c"} {
		h.PushBatch(name, []float64{1})
	}
	// Refresh a and b; c is now least recently used.
	h.Frame("a")
	h.Frame("b")
	h.PushBatch("d", []float64{1})

	names := h.SeriesNames()
	if len(names) != 3 {
		t.Fatalf("series after eviction = %v", names)
	}
	for _, name := range names {
		if name == "c" {
			t.Errorf("LRU series c survived eviction: %v", names)
		}
	}
	if h.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", h.Evictions())
	}
}

// TestHubConcurrentPushDistinctSeries drives every shard from its own
// goroutine; under -race this verifies the per-shard locking isolates
// each Streamer.
func TestHubConcurrentPushDistinctSeries(t *testing.T) {
	h := testHub(t, HubConfig{Shards: 8})
	const (
		goroutines = 16
		perG       = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("g%d", g)
			for i := 0; i < perG; i++ {
				if err := h.PushBatch(name, []float64{float64(i)}); err != nil {
					t.Errorf("push %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	per := h.Stats()
	if len(per) != goroutines {
		t.Fatalf("series = %d, want %d", len(per), goroutines)
	}
	for name, st := range per {
		if st.RawPoints != perG {
			t.Errorf("%s raw points = %d, want %d", name, st.RawPoints, perG)
		}
	}
}

// TestHubConcurrentSharedSeries has many goroutines hammering the SAME
// series names plus concurrent readers and evictions — the worst case
// for the shard locks. Point totals cannot be asserted exactly because
// eviction may discard counts; the -race detector is the assertion.
func TestHubConcurrentSharedSeries(t *testing.T) {
	h := testHub(t, HubConfig{Shards: 4, MaxSeries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("s%d", (g+i)%10) // 10 names > MaxSeries 8
				h.PushBatch(name, []float64{float64(i)})
				if i%7 == 0 {
					h.Frame(name)
				}
				if i%31 == 0 {
					h.Stats()
					h.SeriesNames()
				}
			}
		}(g)
	}
	wg.Wait()
	// The cap is approximate under churn (a concurrently touched victim
	// is skipped), but Len can never exceed the distinct-name universe,
	// and with thousands of over-cap creates some evictions must land.
	if got := h.Len(); got > 10 {
		t.Errorf("Len = %d, above the 10 distinct names", got)
	}
	if h.Evictions() == 0 {
		t.Error("no evictions despite 10 names over a cap of 8")
	}
}

package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/wal"
)

// bframe builds a frame with the given sequence. The zero inner state
// means Release/Retain are pool no-ops, which is exactly what these
// registry-focused tests want.
func bframe(seq int) *asap.Frame {
	return &asap.Frame{Values: []float64{1, 2, 3}, Window: 2, Sequence: seq}
}

// drain empties the subscriber's pending slots, returning the drained
// events' (series, seq) pairs in drain order and releasing each event.
func drain(sub *subscriber) [][2]interface{} {
	var got [][2]interface{}
	for _, e := range sub.take(nil) {
		got = append(got, [2]interface{}{e.series, e.seq})
		e.release()
	}
	return got
}

func TestBroadcastFanoutExactlyOnce(t *testing.T) {
	b := newBroadcast(broadcastConfig{})
	const nsubs = 8
	subs := make([]*subscriber, nsubs)
	for i := range subs {
		sub, err := b.Subscribe([]string{"s"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs[i] = sub
	}
	for seq := 1; seq <= 5; seq++ {
		b.Publish("s", bframe(seq))
		for i, sub := range subs {
			got := drain(sub)
			if len(got) != 1 || got[0][1].(int) != seq {
				t.Fatalf("sub %d after publish %d: drained %v", i, seq, got)
			}
			// Drained means drained: nothing left until the next publish.
			if extra := drain(sub); len(extra) != 0 {
				t.Fatalf("sub %d re-drained %v", i, extra)
			}
		}
	}
	if st := b.Stats(); st.Published != 5 || st.Coalesced != 0 {
		t.Errorf("stats = %+v, want 5 published, 0 coalesced", st)
	}
}

func TestBroadcastCoalescesBurstToNewest(t *testing.T) {
	b := newBroadcast(broadcastConfig{})
	sub, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// A 64-frame burst with no reader draining in between: only the
	// newest survives in the slot, the rest are coalesced away.
	for seq := 1; seq <= 64; seq++ {
		b.Publish("s", bframe(seq))
	}
	got := drain(sub)
	if len(got) != 1 || got[0][1].(int) != 64 {
		t.Fatalf("drained %v, want just seq 64", got)
	}
	if st := b.Stats(); st.Coalesced != 63 {
		t.Errorf("coalesced = %d, want 63", st.Coalesced)
	}
}

func TestBroadcastRejectsStaleSequences(t *testing.T) {
	b := newBroadcast(broadcastConfig{})
	sub, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	b.Publish("s", bframe(5))
	// Out-of-order publish racing past the shard unlock: older or equal
	// sequences must not clobber (or re-deliver after) the newer frame.
	b.Publish("s", bframe(3))
	b.Publish("s", bframe(5))
	got := drain(sub)
	if len(got) != 1 || got[0][1].(int) != 5 {
		t.Fatalf("drained %v, want just seq 5", got)
	}
	if extra := drain(sub); len(extra) != 0 {
		t.Fatalf("stale publish re-delivered: %v", extra)
	}
}

func TestBroadcastLastEventIDSuppressesCatchUp(t *testing.T) {
	b := newBroadcast(broadcastConfig{})
	sub, err := b.Subscribe([]string{"s"}, map[string]int{"s": 7})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// The client said it already has seq 7: catch-up with the same (or
	// an older) frame is a no-op, a newer one flows.
	b.CatchUp(sub, "s", bframe(7))
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("catch-up re-sent %v despite Last-Event-ID", got)
	}
	b.CatchUp(sub, "s", bframe(8))
	got := drain(sub)
	if len(got) != 1 || got[0][1].(int) != 8 {
		t.Fatalf("drained %v, want seq 8", got)
	}
}

func TestBroadcastDropResetsSequenceGuard(t *testing.T) {
	b := newBroadcast(broadcastConfig{})
	sub, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	b.Publish("s", bframe(9))
	drain(sub)
	b.PublishDrop("s")
	got := drain(sub)
	if len(got) != 1 || got[0][1].(int) != 0 {
		t.Fatalf("drained %v, want the dropped event", got)
	}
	// The recreated series numbers frames from 1 again; the dropped
	// event must have reset the guard so they are accepted.
	b.Publish("s", bframe(1))
	got = drain(sub)
	if len(got) != 1 || got[0][1].(int) != 1 {
		t.Fatalf("drained %v, want frame seq 1", got)
	}

	// Undrained drop + recreate collapses to just the new frame —
	// latest-wins applies to drops like anything else.
	b.PublishDrop("s")
	b.Publish("s", bframe(1))
	got = drain(sub)
	if len(got) != 1 || got[0][1].(int) != 1 {
		t.Fatalf("drained %v, want the recreated series' frame only", got)
	}
}

func TestBroadcastSlowConsumerEvicted(t *testing.T) {
	b := newBroadcast(broadcastConfig{stallTimeout: 30 * time.Millisecond})
	slow, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	b.Publish("s", bframe(1))
	drain(fast) // fast keeps up; slow lets seq 1 sit
	time.Sleep(60 * time.Millisecond)
	b.Publish("s", bframe(2)) // past the stall deadline: slow is cut

	select {
	case <-slow.Done():
	default:
		t.Fatal("stalled subscriber not evicted")
	}
	if n := b.Subscribers(); n != 1 {
		t.Errorf("subscribers = %d after eviction, want 1", n)
	}
	if st := b.Stats(); st.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", st.Evicted)
	}
	// The fast subscriber was not delayed or disturbed.
	got := drain(fast)
	if len(got) != 1 || got[0][1].(int) != 2 {
		t.Fatalf("fast drained %v, want seq 2", got)
	}
	slow.Close() // idempotent after eviction
}

func TestBroadcastSubscriberLimit(t *testing.T) {
	b := newBroadcast(broadcastConfig{maxSubscribers: 1})
	first, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe([]string{"s"}, nil); err != ErrSubscriberLimit {
		t.Fatalf("second Subscribe err = %v, want ErrSubscriberLimit", err)
	}
	if st := b.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	first.Close()
	// Closing frees the slot.
	again, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	again.Close()
}

func TestBroadcastShutdown(t *testing.T) {
	b := newBroadcast(broadcastConfig{})
	sub, err := b.Subscribe([]string{"s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Shutdown()
	select {
	case <-sub.Done():
	default:
		t.Fatal("Shutdown did not close the subscriber")
	}
	if _, err := b.Subscribe([]string{"s"}, nil); err == nil {
		t.Fatal("Subscribe accepted after Shutdown")
	}
	sub.Close()
	b.Shutdown() // idempotent
}

// TestBroadcastConcurrentChurn interleaves everything that can run at
// once — pushes fanning out through the hub hooks, subscribe/close
// churn, explicit Drops, LRU evictions past the series cap, and a
// mid-run SetWAL (the hub-level half of promotion) — and relies on the
// race detector for the verdict.
func TestBroadcastConcurrentChurn(t *testing.T) {
	var b *Broadcast
	cfg := HubConfig{
		Stream:    asap.StreamConfig{WindowPoints: 400, Resolution: 100, RefreshEvery: 100},
		MaxSeries: 4, // force LRU evictions (and their OnDrop fan-out)
		Shards:    2,
	}
	b = newBroadcast(broadcastConfig{stallTimeout: 10 * time.Millisecond})
	cfg.OnFrame = b.Publish
	cfg.OnDrop = b.PublishDrop
	hub, err := NewHub(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	batch := make([]float64, 100)
	for i := range batch {
		batch[i] = float64(i % 17)
	}
	// Pushers across more series than the cap allows.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("s%d", (g+i)%6)
				if err := hub.PushBatch(name, batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Subscriber churn: subscribe, drain a little (slowly enough that
	// some get stall-evicted), close.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := b.Subscribe([]string{fmt.Sprintf("s%d", i%6), "other"}, nil)
				if err != nil {
					continue // shutdown or cap; both fine under churn
				}
				select {
				case <-sub.notify:
					for _, e := range sub.take(nil) {
						_ = e.sse()
						e.release()
					}
				case <-sub.Done():
				case <-time.After(time.Millisecond):
				}
				sub.Close()
			}
		}(g)
	}
	// Explicit tombstone-style drops.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			hub.Drop(fmt.Sprintf("s%d", i%6))
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Mid-churn promotion: attach a real WAL to the running hub.
	time.Sleep(20 * time.Millisecond)
	wlog, err := wal.Open(wal.Config{Dir: t.TempDir(), Shards: 2, HorizonPoints: 500})
	if err != nil {
		t.Fatal(err)
	}
	hub.SetWAL(wlog)

	time.Sleep(80 * time.Millisecond)
	close(stop)
	wg.Wait()
	b.Shutdown()
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
	if n := b.Subscribers(); n != 0 {
		t.Errorf("subscribers = %d after shutdown, want 0", n)
	}
}

// TestBroadcastPublishAllocsFlat checks the fan-out warm path is
// allocation-free per subscriber: publishing to 64 subscribers costs
// the same small constant number of allocations as publishing to 1
// (the frame + its shared event wrapper), because each offer is a slot
// swap and a non-blocking channel send.
func TestBroadcastPublishAllocsFlat(t *testing.T) {
	measure := func(nsubs int) float64 {
		b := newBroadcast(broadcastConfig{})
		subs := make([]*subscriber, nsubs)
		bufs := make([][]*event, nsubs)
		for i := range subs {
			sub, err := b.Subscribe([]string{"s"}, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			subs[i] = sub
			bufs[i] = make([]*event, 0, 4)
		}
		seq := 0
		return testing.AllocsPerRun(200, func() {
			seq++
			b.Publish("s", &asap.Frame{Values: nil, Sequence: seq})
			for i, sub := range subs {
				for _, e := range sub.take(bufs[i][:0]) {
					e.release()
				}
			}
		})
	}
	one, many := measure(1), measure(64)
	if one != many {
		t.Errorf("publish allocs: 1 sub = %.1f, 64 subs = %.1f — fan-out must not allocate per subscriber", one, many)
	}
	if one > 4 {
		t.Errorf("publish allocs = %.1f, want <= 4 (frame + event wrapper)", one)
	}
}

// BenchmarkBroadcastFanout measures one publish fanned out to N
// draining subscribers, including the SSE rendering done once by the
// first writer.
func BenchmarkBroadcastFanout(bm *testing.B) {
	for _, nsubs := range []int{1, 8, 64} {
		bm.Run(fmt.Sprintf("subs=%d", nsubs), func(bm *testing.B) {
			b := newBroadcast(broadcastConfig{})
			var wg sync.WaitGroup
			for i := 0; i < nsubs; i++ {
				sub, err := b.Subscribe([]string{"s"}, nil)
				if err != nil {
					bm.Fatal(err)
				}
				wg.Add(1)
				go func(sub *subscriber) {
					defer wg.Done()
					buf := make([]*event, 0, 4)
					for {
						select {
						case <-sub.Done():
							return
						case <-sub.notify:
							buf = sub.take(buf[:0])
							for i, e := range buf {
								_ = e.sse() // render (first drainer) or reuse
								e.release()
								buf[i] = nil
							}
						}
					}
				}(sub)
			}
			values := make([]float64, 800)
			bm.ReportAllocs()
			bm.ResetTimer()
			for i := 0; i < bm.N; i++ {
				b.Publish("s", &asap.Frame{Values: values, Window: 10, Sequence: i + 1})
			}
			bm.StopTimer()
			b.Shutdown()
			wg.Wait()
		})
	}
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed wire event; heartbeat comments surface as
// name "comment".
type sseEvent struct {
	name string
	id   string
	data string
}

// openStream connects to an SSE URL and parses events into a channel
// (closed when the stream ends). The cancel function tears the
// connection down.
func openStream(t *testing.T, url string, hdr map[string]string) (<-chan sseEvent, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		cancel()
		t.Fatalf("stream Content-Type = %q", ct)
	}
	ch := make(chan sseEvent, 256)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev != (sseEvent{}) {
					ch <- ev
					ev = sseEvent{}
				}
			case strings.HasPrefix(line, ":"):
				ch <- sseEvent{name: "comment", data: strings.TrimSpace(line[1:])}
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "id: "):
				ev.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	return ch, cancel
}

// nextFrame waits for the next "frame" event (skipping comments) and
// decodes it.
func nextFrame(t *testing.T, ch <-chan sseEvent, timeout time.Duration) (frameJSON, string) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("stream closed while waiting for a frame")
			}
			if ev.name != "frame" {
				continue
			}
			var f frameJSON
			if err := json.Unmarshal([]byte(ev.data), &f); err != nil {
				t.Fatalf("frame event not JSON: %v (%q)", err, ev.data)
			}
			return f, ev.id
		case <-deadline:
			t.Fatal("no frame event within the deadline")
		}
	}
}

func TestStreamDeliversFramesExactlyOnce(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", sineBody("cpu", 600))

	ch, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()

	// Connect-time catch-up: the current retained frame arrives first.
	f, id := nextFrame(t, ch, 2*time.Second)
	cur, _ := s.Hub().Frame("cpu")
	wantSeq := cur.Sequence
	cur.Release()
	if f.Sequence != wantSeq || f.Series != "cpu" || len(f.Values) == 0 {
		t.Fatalf("catch-up frame = %+v, want sequence %d", f, wantSeq)
	}
	if id != fmt.Sprintf("cpu@%d", f.Sequence) {
		t.Errorf("event id = %q, want cpu@%d", id, f.Sequence)
	}

	// Each further refresh arrives exactly once, in order.
	seen := map[int]bool{f.Sequence: true}
	last := f.Sequence
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/ingest", sineBody("cpu", 100)) // one refresh per batch
		f, _ := nextFrame(t, ch, 2*time.Second)
		if seen[f.Sequence] {
			t.Fatalf("sequence %d delivered twice", f.Sequence)
		}
		if f.Sequence <= last {
			t.Fatalf("sequence went backwards: %d after %d", f.Sequence, last)
		}
		seen[f.Sequence] = true
		last = f.Sequence
	}
}

func TestStreamBurstConvergesOnNewest(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", sineBody("cpu", 600))
	ch, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()
	nextFrame(t, ch, 2*time.Second) // catch-up out of the way

	// A 64-refresh burst. Coalescing may skip intermediates (that is the
	// point); what the client must observe is a strictly increasing
	// sequence that ends on the newest frame.
	for i := 0; i < 64; i++ {
		if err := s.Hub().PushBatch("cpu", sineValues(100, 0)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _ := s.Hub().Frame("cpu")
	newest := cur.Sequence
	cur.Release()

	last := 0
	for last != newest {
		f, _ := nextFrame(t, ch, 2*time.Second)
		if f.Sequence <= last {
			t.Fatalf("sequence not strictly increasing: %d after %d", f.Sequence, last)
		}
		if f.Sequence > newest {
			t.Fatalf("sequence %d past the newest %d", f.Sequence, newest)
		}
		last = f.Sequence
	}
}

func TestStreamLastEventIDResume(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", sineBody("cpu", 600))
	cur, _ := s.Hub().Frame("cpu")
	have := cur.Sequence
	cur.Release()

	// Header form: the client already holds the current frame, so no
	// catch-up re-send — the next event is the next refresh.
	ch, cancel := openStream(t, ts.URL+"/stream?series=cpu",
		map[string]string{"Last-Event-ID": fmt.Sprintf("cpu@%d", have)})
	defer cancel()
	post(t, ts.URL+"/ingest", sineBody("cpu", 100))
	f, _ := nextFrame(t, ch, 2*time.Second)
	if f.Sequence <= have {
		t.Fatalf("resumed stream re-sent sequence %d (client had %d)", f.Sequence, have)
	}

	// Query-parameter fallback behaves identically; a stale token gets
	// the current frame as catch-up.
	ch2, cancel2 := openStream(t, ts.URL+fmt.Sprintf("/stream?series=cpu&last_event_id=cpu@%d", have-1), nil)
	defer cancel2()
	f2, _ := nextFrame(t, ch2, 2*time.Second)
	if f2.Sequence < f.Sequence {
		t.Fatalf("stale-token catch-up sequence %d, want >= %d", f2.Sequence, f.Sequence)
	}
}

func TestStreamHeartbeat(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatEvery = 30 * time.Millisecond
	_, ts := newTestServer(t, cfg)
	post(t, ts.URL+"/ingest", sineBody("cpu", 600))
	ch, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("stream closed before a heartbeat")
			}
			if ev.name == "comment" {
				return // heartbeat observed
			}
		case <-deadline:
			t.Fatal("no heartbeat within 2s at a 30ms interval")
		}
	}
}

func TestStreamMultiSeriesFanIn(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", sineBody("a", 600)+sineBody("b", 600))
	ch, cancel := openStream(t, ts.URL+"/stream?series=a,b", nil)
	defer cancel()
	got := map[string]bool{}
	for len(got) < 2 {
		f, id := nextFrame(t, ch, 2*time.Second)
		got[f.Series] = true
		if !strings.HasPrefix(id, f.Series+"@") {
			t.Fatalf("event id %q does not match series %q", id, f.Series)
		}
	}
}

func TestStreamDroppedEvent(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/ingest", sineBody("cpu", 600))
	ch, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()
	nextFrame(t, ch, 2*time.Second)
	s.Hub().Drop("cpu")
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("stream closed before the dropped event")
			}
			if ev.name == "dropped" {
				if !strings.Contains(ev.data, `"cpu"`) {
					t.Fatalf("dropped data = %q", ev.data)
				}
				return
			}
		case <-deadline:
			t.Fatal("no dropped event after Hub.Drop")
		}
	}
}

func TestStreamSubscriberCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSubscribers = 1
	_, ts := newTestServer(t, cfg)
	post(t, ts.URL+"/ingest", sineBody("cpu", 600))
	_, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()

	resp, err := http.Get(ts.URL + "/stream?series=cpu")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap stream status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

func TestStreamRejectsBadSeries(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for _, q := range []string{
		"?series=a%00b", // control byte
		"?series=,,,",   // empty list
	} {
		if code, _ := get(t, ts.URL+"/stream"+q); code != 400 {
			t.Errorf("GET /stream%s status %d, want 400", q, code)
		}
	}
}

// TestStreamSlowConsumerDoesNotDelayOthers wedges one subscriber (it
// never reads) while another keeps draining, and checks the slow one
// is cut loose without the fast one missing the newest frames.
func TestStreamSlowConsumerDoesNotDelayOthers(t *testing.T) {
	cfg := testConfig()
	cfg.StallTimeout = 100 * time.Millisecond
	// Big frames (full-resolution window) so the wedged peer's kernel
	// buffers fill within a few frames rather than absorbing the whole
	// test's worth of output.
	cfg.Hub.Stream.WindowPoints = 2000
	cfg.Hub.Stream.Resolution = 2000
	s, ts := newTestServer(t, cfg)
	post(t, ts.URL+"/ingest", sineBody("cpu", 2000))

	// The slow subscriber: a raw connection that sends the request and
	// then never reads, so the handler's writes back up.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A tiny receive window makes the kernel stop absorbing the
	// handler's writes after a few frames instead of trickling them
	// into multi-megabyte buffers for the whole test.
	if err := conn.(*net.TCPConn).SetReadBuffer(4096); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /stream?series=cpu HTTP/1.1\r\nHost: x\r\n\r\n")

	fast, cancel := openStream(t, ts.URL+"/stream?series=cpu", nil)
	defer cancel()
	nextFrame(t, fast, 2*time.Second)

	waitSubs := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for s.Broadcast().Subscribers() != want {
			if time.Now().After(deadline) {
				t.Fatalf("subscribers = %d, want %d", s.Broadcast().Subscribers(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitSubs(2)

	// Push frames until the wedged connection's buffers fill and the
	// stall machinery (slot deadline or write deadline) cuts it.
	deadline := time.Now().Add(10 * time.Second)
	for s.Broadcast().Subscribers() == 2 {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never evicted")
		}
		if err := s.Hub().PushBatch("cpu", sineValues(100, 0)); err != nil {
			t.Fatal(err)
		}
	}
	waitSubs(1)

	// The fast subscriber still converges on the newest frame.
	cur, _ := s.Hub().Frame("cpu")
	newest := cur.Sequence
	cur.Release()
	for f, _ := nextFrame(t, fast, 2*time.Second); f.Sequence < newest; f, _ = nextFrame(t, fast, 2*time.Second) {
	}
}

// TestStreamShutdownDrain checks a live SSE connection does not hold
// graceful shutdown to its drain deadline: Serve's drain disconnects
// streams first and returns promptly.
func TestStreamShutdownDrain(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	post(t, url+"/ingest", sineBody("cpu", 600))
	ch, streamCancel := openStream(t, url+"/stream?series=cpu", nil)
	defer streamCancel()
	nextFrame(t, ch, 2*time.Second)

	start := time.Now()
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after cancel, want nil", err)
		}
	case <-time.After(DefaultDrainTimeout + 2*time.Second):
		t.Fatal("Serve did not return after context cancel with a live stream")
	}
	if took := time.Since(start); took > DefaultDrainTimeout {
		t.Errorf("drain took %s with only an SSE stream open — streams must not hold the drain deadline", took)
	}
	// The client side sees the stream end.
	for range ch {
	}
}

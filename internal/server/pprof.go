package server

// Profiling endpoint, deliberately off the main mux: net/http/pprof
// exposes heap contents and CPU profiles, so it only ever binds its
// own listener (Config.PprofAddr, expected to be loopback) and its
// own explicit mux — importing net/http/pprof for its handlers
// without touching http.DefaultServeMux.

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
)

// servePprof starts the profiling listener and returns a stop func
// that Serve defers; the listener also dies with ctx.
func (s *Server) servePprof(ctx context.Context, addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	s.pprofAddr.Store(ln.Addr().String())
	s.log().Info("pprof listening", "addr", ln.Addr().String())
	go func() { _ = srv.Serve(ln) }()
	return func() {
		_ = srv.Close()
		s.pprofAddr.Store("")
	}, nil
}

// Package fnv provides the allocation-free FNV-1a string hash shared
// by the hub's series sharding and the WAL's shard routing. hash/fnv
// would force a []byte conversion on the ingest hot path; this version
// walks the string directly.
package fnv

const (
	offset32 = 2166136261
	prime32  = 16777619
)

// Hash32a returns the 32-bit FNV-1a hash of s.
func Hash32a(s string) uint32 {
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

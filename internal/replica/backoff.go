package replica

import (
	"math/rand"
	"time"
)

// retryBackoff returns the pause before retry number `failures` (1 is
// the first retry): capped exponential growth from base to max with
// the upper half jittered, so a fleet of followers cut off by the same
// primary restart does not reconnect in lockstep.
func retryBackoff(base, max time.Duration, failures int) time.Duration {
	if base <= 0 {
		base = DefaultPoll
	}
	if max < base {
		max = base
	}
	if failures < 1 {
		failures = 1
	}
	if failures > 30 {
		failures = 30
	}
	d := base << uint(failures-1)
	if d <= 0 || d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

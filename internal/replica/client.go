// Package replica implements the follower side of WAL-shipping
// replication: an HTTP client for a primary asap-server's replication
// endpoints and a Follower that mirrors the primary's write-ahead log
// into a local data directory, applies the records to a local hub so
// every read endpoint serves live (slightly lagged) frames, and leaves
// the mirror ready to be promoted into a writable WAL.
//
// Because the primary's segments carry CRC-framed records with
// cumulative per-series totals, and Streamer.Restore reconstructs pane
// phase and frame sequence in closed form, a follower's frames are
// bit-identical — Values, Window, Sequence — to the primary's for
// every fully replicated point.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/asap-go/asap/internal/obs/trace"
	"github.com/asap-go/asap/internal/wal"
)

// ErrGone reports a file the manifest listed but the primary no longer
// has — compaction or retention reclaimed it. The follower re-lists
// and, if it lost records, resyncs from the newest snapshot.
var ErrGone = errors.New("replica: file gone on primary")

// Per-request deadlines. The client deliberately has no flat
// http.Client.Timeout: a long-poll manifest request legitimately idles
// for its full server-side hold, while a segment chunk should never
// take anywhere near that. Each request instead gets its own context
// deadline sized to what it is doing.
const (
	// manifestGrace bounds a manifest round-trip beyond any server-side
	// long-poll hold the client asked for.
	manifestGrace = 10 * time.Second
	// maxManifestWait caps the server-side hold requested per long-poll.
	maxManifestWait = 25 * time.Second
	// fetchTimeout bounds one ranged chunk fetch.
	fetchTimeout = 30 * time.Second
)

// HTTPError is a non-2xx replication response. It keeps the status
// code for transient-vs-fatal classification and the server's
// Retry-After hint (zero when absent) so retry loops can pace
// themselves to the primary's own estimate — e.g. a restarting primary
// answering 503 while its WAL replays.
type HTTPError struct {
	Op         string
	StatusCode int
	Status     string
	RetryAfter time.Duration
	Body       string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("replica: %s: %s: %.200s", e.Op, e.Status, e.Body)
}

// Transient reports whether err is worth retrying in place: the
// primary may be restarting, overloaded, or briefly unreachable, and a
// follower that backs off and retries rides it out without abandoning
// its incremental position. Fatal errors — protocol or configuration
// mismatches the primary will keep returning — are not.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false // the caller gave up, not the primary
	}
	if errors.Is(err, ErrGone) || errors.Is(err, errDesync) {
		return false // handled structurally (resync), not by retrying
	}
	var he *HTTPError
	if errors.As(err, &he) {
		switch {
		case he.StatusCode >= 500:
			return true // includes 503 from a degraded/restarting primary
		case he.StatusCode == http.StatusTooManyRequests,
			he.StatusCode == http.StatusRequestTimeout:
			return true
		default:
			return false
		}
	}
	// Everything else — connection refused/reset, DNS hiccups, our own
	// per-request deadline expiring — is network weather.
	return true
}

// RetryAfterHint extracts the server's Retry-After from err, or zero.
func RetryAfterHint(err error) time.Duration {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// parseRetryAfter reads a delay-seconds Retry-After header (the only
// form our servers emit; HTTP-date forms are ignored).
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// httpError builds the HTTPError for a non-2xx response, consuming a
// bounded prefix of the body for the message.
func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &HTTPError{
		Op:         op,
		StatusCode: resp.StatusCode,
		Status:     resp.Status,
		RetryAfter: parseRetryAfter(resp),
		Body:       string(body),
	}
}

// StreamSpec is the primary's streaming configuration, carried in the
// manifest so a follower builds byte-identical operators without
// trusting its own flags to match.
type StreamSpec struct {
	WindowPoints          int  `json:"window_points"`
	Resolution            int  `json:"resolution"`
	RefreshEvery          int  `json:"refresh_every"`
	MaxWindow             int  `json:"max_window,omitempty"`
	DisablePreaggregation bool `json:"disable_preaggregation,omitempty"`
	IncrementalACF        bool `json:"incremental_acf,omitempty"`
}

// PrimaryManifest is the primary's replication listing: the WAL
// manifest plus the stream configuration a follower must mirror.
type PrimaryManifest struct {
	Shards         int                 `json:"shards"`
	DefaultSeries  string              `json:"default_series"`
	Stream         StreamSpec          `json:"stream"`
	ShardManifests []wal.ShardManifest `json:"shard_manifests"`
	// Version is the primary's append version at listing time; echo it
	// into ManifestWait to long-poll for the next change. Zero on
	// primaries predating long-poll support (they answer immediately).
	Version int64 `json:"version,omitempty"`
}

// Client speaks the primary's replication protocol.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient validates the primary base URL (e.g. "http://host:8347")
// and returns a ready client.
func NewClient(primary string) (*Client, error) {
	u, err := url.Parse(primary)
	if err != nil {
		return nil, fmt.Errorf("replica: bad primary URL %q: %w", primary, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replica: primary URL %q must be http(s)", primary)
	}
	base := u.String()
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	// No flat client timeout — see the per-request deadline constants.
	return &Client{base: base, hc: &http.Client{}}, nil
}

// Primary returns the base URL the client replicates from.
func (c *Client) Primary() string { return c.base }

// Manifest fetches the primary's replication listing immediately.
func (c *Client) Manifest(ctx context.Context) (*PrimaryManifest, error) {
	return c.ManifestWait(ctx, 0, 0)
}

// ManifestWait is Manifest with long-polling: with wait > 0 the
// primary holds the request open until its append version moves past
// version (or wait elapses), so an idle follower learns of new appends
// in one round-trip instead of a poll interval. The request carries
// its own deadline — the requested hold plus a round-trip grace — so a
// hung primary cannot park the follower forever; primaries that ignore
// the parameters just answer immediately.
func (c *Client) ManifestWait(ctx context.Context, version int64, wait time.Duration) (*PrimaryManifest, error) {
	u := c.base + "/replica/segments"
	if wait > maxManifestWait {
		wait = maxManifestWait
	}
	if wait > 0 {
		u += "?wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10) +
			"&version=" + strconv.FormatInt(version, 10)
	}
	ctx, cancel := context.WithTimeout(ctx, wait+manifestGrace)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	// Propagate the follower's trace across the hop so the primary's
	// request joins it (and its /traces shows both sides by one id).
	if tp := trace.Outbound(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("manifest", resp)
	}
	var m PrimaryManifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("replica: manifest decode: %w", err)
	}
	if m.Shards <= 0 || m.Shards > 4096 || len(m.ShardManifests) != m.Shards {
		return nil, fmt.Errorf("replica: manifest shape: shards=%d listed=%d", m.Shards, len(m.ShardManifests))
	}
	return &m, nil
}

// FetchRange fetches up to length bytes of shard's file starting at
// off. It returns fewer bytes than asked when the primary's durable
// size ends earlier (including zero bytes at or past the end), and
// ErrGone when the file no longer exists.
func (c *Client) FetchRange(ctx context.Context, shard int, name string, off, length int64) ([]byte, error) {
	if length <= 0 {
		return nil, nil
	}
	u := fmt.Sprintf("%s/replica/segment?shard=%d&name=%s", c.base, shard, url.QueryEscape(name))
	ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", "bytes="+strconv.FormatInt(off, 10)+"-"+strconv.FormatInt(off+length-1, 10))
	if tp := trace.Outbound(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: fetch %s: %w", name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		return io.ReadAll(io.LimitReader(resp.Body, length))
	case http.StatusOK:
		// The primary ignored the range (whole file); discard the prefix.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			if err == io.EOF {
				return nil, nil // file shorter than off: nothing in range
			}
			return nil, err
		}
		return io.ReadAll(io.LimitReader(resp.Body, length))
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, nil // nothing durable in the requested range yet
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s shard %d", ErrGone, name, shard)
	default:
		return nil, httpError("fetch "+name, resp)
	}
}

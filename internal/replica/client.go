// Package replica implements the follower side of WAL-shipping
// replication: an HTTP client for a primary asap-server's replication
// endpoints and a Follower that mirrors the primary's write-ahead log
// into a local data directory, applies the records to a local hub so
// every read endpoint serves live (slightly lagged) frames, and leaves
// the mirror ready to be promoted into a writable WAL.
//
// Because the primary's segments carry CRC-framed records with
// cumulative per-series totals, and Streamer.Restore reconstructs pane
// phase and frame sequence in closed form, a follower's frames are
// bit-identical — Values, Window, Sequence — to the primary's for
// every fully replicated point.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/asap-go/asap/internal/wal"
)

// ErrGone reports a file the manifest listed but the primary no longer
// has — compaction or retention reclaimed it. The follower re-lists
// and, if it lost records, resyncs from the newest snapshot.
var ErrGone = errors.New("replica: file gone on primary")

// StreamSpec is the primary's streaming configuration, carried in the
// manifest so a follower builds byte-identical operators without
// trusting its own flags to match.
type StreamSpec struct {
	WindowPoints          int  `json:"window_points"`
	Resolution            int  `json:"resolution"`
	RefreshEvery          int  `json:"refresh_every"`
	MaxWindow             int  `json:"max_window,omitempty"`
	DisablePreaggregation bool `json:"disable_preaggregation,omitempty"`
	IncrementalACF        bool `json:"incremental_acf,omitempty"`
}

// PrimaryManifest is the primary's replication listing: the WAL
// manifest plus the stream configuration a follower must mirror.
type PrimaryManifest struct {
	Shards         int                 `json:"shards"`
	DefaultSeries  string              `json:"default_series"`
	Stream         StreamSpec          `json:"stream"`
	ShardManifests []wal.ShardManifest `json:"shard_manifests"`
	// Version is the primary's append version at listing time; echo it
	// into ManifestWait to long-poll for the next change. Zero on
	// primaries predating long-poll support (they answer immediately).
	Version int64 `json:"version,omitempty"`
}

// Client speaks the primary's replication protocol.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient validates the primary base URL (e.g. "http://host:8347")
// and returns a ready client.
func NewClient(primary string) (*Client, error) {
	u, err := url.Parse(primary)
	if err != nil {
		return nil, fmt.Errorf("replica: bad primary URL %q: %w", primary, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replica: primary URL %q must be http(s)", primary)
	}
	base := u.String()
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: &http.Client{Timeout: 30 * time.Second}}, nil
}

// Primary returns the base URL the client replicates from.
func (c *Client) Primary() string { return c.base }

// Manifest fetches the primary's replication listing immediately.
func (c *Client) Manifest(ctx context.Context) (*PrimaryManifest, error) {
	return c.ManifestWait(ctx, 0, 0)
}

// ManifestWait is Manifest with long-polling: with wait > 0 the
// primary holds the request open until its append version moves past
// version (or wait elapses), so an idle follower learns of new appends
// in one round-trip instead of a poll interval. The wait is clamped
// under the client timeout; primaries that ignore the parameters just
// answer immediately.
func (c *Client) ManifestWait(ctx context.Context, version int64, wait time.Duration) (*PrimaryManifest, error) {
	u := c.base + "/replica/segments"
	if wait > 0 {
		if max := c.hc.Timeout - 5*time.Second; max > 0 && wait > max {
			wait = max
		}
		u += "?wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10) +
			"&version=" + strconv.FormatInt(version, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("replica: manifest: %s: %.200s", resp.Status, body)
	}
	var m PrimaryManifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("replica: manifest decode: %w", err)
	}
	if m.Shards <= 0 || m.Shards > 4096 || len(m.ShardManifests) != m.Shards {
		return nil, fmt.Errorf("replica: manifest shape: shards=%d listed=%d", m.Shards, len(m.ShardManifests))
	}
	return &m, nil
}

// FetchRange fetches up to length bytes of shard's file starting at
// off. It returns fewer bytes than asked when the primary's durable
// size ends earlier (including zero bytes at or past the end), and
// ErrGone when the file no longer exists.
func (c *Client) FetchRange(ctx context.Context, shard int, name string, off, length int64) ([]byte, error) {
	if length <= 0 {
		return nil, nil
	}
	u := fmt.Sprintf("%s/replica/segment?shard=%d&name=%s", c.base, shard, url.QueryEscape(name))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", "bytes="+strconv.FormatInt(off, 10)+"-"+strconv.FormatInt(off+length-1, 10))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: fetch %s: %w", name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		return io.ReadAll(io.LimitReader(resp.Body, length))
	case http.StatusOK:
		// The primary ignored the range (whole file); discard the prefix.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			if err == io.EOF {
				return nil, nil // file shorter than off: nothing in range
			}
			return nil, err
		}
		return io.ReadAll(io.LimitReader(resp.Body, length))
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, nil // nothing durable in the requested range yet
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s shard %d", ErrGone, name, shard)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("replica: fetch %s: %s: %.200s", name, resp.Status, body)
	}
}

package replica

import "github.com/asap-go/asap/internal/wal"

// shardProgress is the pure, value-comparable form of one shard's
// replication position — what the follower has durably applied. It
// exists so the manifest-diff arithmetic (how far a shard trails the
// primary) is a plain function of (manifest, progress), unit-testable
// without a follower, a primary, or a filesystem.
type shardProgress struct {
	// bootstrapped reports whether the shard has any local state; an
	// unbootstrapped shard trails by the primary's entire holdings.
	bootstrapped bool
	// doneSeq: segments with Seq <= doneSeq are fully applied (a
	// snapshot covering them counts).
	doneSeq uint64
	// curSeq is the in-flight segment being tailed (0 = none), with
	// curRecords records and curApplied bytes applied from it so far.
	curSeq     uint64
	curRecords int64
	curApplied int64
}

// manifestLag diffs one shard's manifest against the follower's
// progress: how many segments still hold unapplied records, and how
// many records and bytes remain to apply. The edge cases are exactly
// the ones the gauges historically mis-told operators about:
//
//   - empty manifest (fresh primary, nothing durable): zero lag even
//     for an unbootstrapped follower — there is nothing to fetch;
//   - snapshot-only shard (everything compacted): an unbootstrapped
//     follower trails by the whole snapshot, a bootstrapped one that
//     already applied past it trails by nothing;
//   - the in-flight segment counts only its unapplied suffix, and only
//     as a lagging segment when records (not merely bytes) remain;
//   - segments at or below doneSeq never count, whatever the manifest
//     says about their sizes.
func manifestLag(sm wal.ShardManifest, p shardProgress) (segs, recs, bytes int64) {
	if !p.bootstrapped {
		if sm.Snapshot != nil {
			segs++
			recs += sm.Snapshot.Records
			bytes += sm.Snapshot.Size
		}
		for _, m := range sm.Segments {
			segs++
			recs += m.Records
			bytes += m.Size
		}
		return segs, recs, bytes
	}
	for _, m := range sm.Segments {
		switch {
		case m.Seq <= p.doneSeq:
			// Fully applied; nothing outstanding.
		case p.curSeq != 0 && m.Seq == p.curSeq:
			if d := m.Records - p.curRecords; d > 0 {
				segs++
				recs += d
			}
			if d := m.Size - p.curApplied; d > 0 {
				bytes += d
			}
		default:
			if m.Records > 0 {
				segs++
			}
			recs += m.Records
			bytes += m.Size
		}
	}
	return segs, recs, bytes
}

// progress snapshots a shardState into its pure diff form.
func (st *shardState) progress() shardProgress {
	p := shardProgress{bootstrapped: st.bootstrapped, doneSeq: st.doneSeq}
	if st.cur != nil {
		p.curSeq = st.cur.seq
		p.curRecords = st.cur.records
		p.curApplied = st.cur.applied
	}
	return p
}

package replica

import (
	"testing"

	"github.com/asap-go/asap/internal/wal"
)

func meta(seq uint64, size, records int64, active bool) wal.FileMeta {
	return wal.FileMeta{Name: wal.SegmentFileName(seq), Seq: seq, Size: size, Records: records, Active: active}
}

func TestManifestLagEmptyManifest(t *testing.T) {
	empty := wal.ShardManifest{Shard: 0}
	cases := []struct {
		name string
		p    shardProgress
	}{
		{"unbootstrapped", shardProgress{}},
		{"bootstrapped", shardProgress{bootstrapped: true, doneSeq: 7}},
		{"bootstrapped-in-flight", shardProgress{bootstrapped: true, doneSeq: 3, curSeq: 4, curRecords: 9, curApplied: 512}},
	}
	for _, tc := range cases {
		segs, recs, bytes := manifestLag(empty, tc.p)
		if segs != 0 || recs != 0 || bytes != 0 {
			t.Errorf("%s: empty manifest reported lag %d/%d/%d, want zero", tc.name, segs, recs, bytes)
		}
	}
}

func TestManifestLagSnapshotOnlyShard(t *testing.T) {
	sm := wal.ShardManifest{
		Shard:    0,
		Snapshot: &wal.FileMeta{Name: wal.SnapshotFileName(5), Seq: 5, Size: 4096, Records: 17},
	}
	// An unbootstrapped follower trails by the whole snapshot.
	segs, recs, bytes := manifestLag(sm, shardProgress{})
	if segs != 1 || recs != 17 || bytes != 4096 {
		t.Errorf("unbootstrapped snapshot-only lag = %d/%d/%d, want 1/17/4096", segs, recs, bytes)
	}
	// A bootstrapped follower that applied through the covered range
	// trails by nothing — the snapshot summarizes data it already holds.
	segs, recs, bytes = manifestLag(sm, shardProgress{bootstrapped: true, doneSeq: 5})
	if segs != 0 || recs != 0 || bytes != 0 {
		t.Errorf("bootstrapped snapshot-only lag = %d/%d/%d, want zero", segs, recs, bytes)
	}
	// Even one that is behind the snapshot seq: the diff only counts
	// segments; the chain-gap resync (not the gauge) handles jumping to
	// a newer snapshot.
	segs, recs, bytes = manifestLag(sm, shardProgress{bootstrapped: true, doneSeq: 2})
	if segs != 0 || recs != 0 || bytes != 0 {
		t.Errorf("stale bootstrapped snapshot-only lag = %d/%d/%d, want zero", segs, recs, bytes)
	}
}

func TestManifestLagUnbootstrappedCountsEverything(t *testing.T) {
	sm := wal.ShardManifest{
		Shard:    1,
		Snapshot: &wal.FileMeta{Name: wal.SnapshotFileName(3), Seq: 3, Size: 1000, Records: 10},
		Segments: []wal.FileMeta{
			meta(4, 200, 2, false),
			meta(5, 300, 3, true),
		},
	}
	segs, recs, bytes := manifestLag(sm, shardProgress{})
	if segs != 3 || recs != 15 || bytes != 1500 {
		t.Errorf("lag = %d/%d/%d, want 3/15/1500", segs, recs, bytes)
	}
}

func TestManifestLagAppliedPrefixDoesNotCount(t *testing.T) {
	sm := wal.ShardManifest{
		Shard: 0,
		Segments: []wal.FileMeta{
			meta(1, 500, 5, false),
			meta(2, 600, 6, false),
			meta(3, 700, 7, true),
		},
	}
	segs, recs, bytes := manifestLag(sm, shardProgress{bootstrapped: true, doneSeq: 2})
	if segs != 1 || recs != 7 || bytes != 700 {
		t.Errorf("lag = %d/%d/%d, want 1/7/700 (only the unapplied tail)", segs, recs, bytes)
	}
	// Fully caught up.
	segs, recs, bytes = manifestLag(sm, shardProgress{bootstrapped: true, doneSeq: 3})
	if segs != 0 || recs != 0 || bytes != 0 {
		t.Errorf("caught-up lag = %d/%d/%d, want zero", segs, recs, bytes)
	}
}

func TestManifestLagInFlightSegmentCountsUnappliedSuffix(t *testing.T) {
	sm := wal.ShardManifest{
		Shard: 0,
		Segments: []wal.FileMeta{
			meta(4, 1000, 10, true),
		},
	}
	// Half applied: 4 records / 400 bytes remain.
	p := shardProgress{bootstrapped: true, doneSeq: 3, curSeq: 4, curRecords: 6, curApplied: 600}
	segs, recs, bytes := manifestLag(sm, p)
	if segs != 1 || recs != 4 || bytes != 400 {
		t.Errorf("lag = %d/%d/%d, want 1/4/400", segs, recs, bytes)
	}
	// Records applied but trailing bytes (a torn record's prefix) still
	// pending: byte lag without a record lag must not count the segment.
	p = shardProgress{bootstrapped: true, doneSeq: 3, curSeq: 4, curRecords: 10, curApplied: 900}
	segs, recs, bytes = manifestLag(sm, p)
	if segs != 0 || recs != 0 || bytes != 100 {
		t.Errorf("lag = %d/%d/%d, want 0/0/100", segs, recs, bytes)
	}
	// Fully applied in flight: zero.
	p = shardProgress{bootstrapped: true, doneSeq: 3, curSeq: 4, curRecords: 10, curApplied: 1000}
	segs, recs, bytes = manifestLag(sm, p)
	if segs != 0 || recs != 0 || bytes != 0 {
		t.Errorf("lag = %d/%d/%d, want zero", segs, recs, bytes)
	}
}

func TestManifestLagEmptySealedSegmentsDoNotCountAsSegments(t *testing.T) {
	// A rotated-but-empty segment (magic only, no records) contributes
	// bytes but must not show up as a "segment behind" — operators page
	// on that number.
	sm := wal.ShardManifest{
		Shard: 0,
		Segments: []wal.FileMeta{
			meta(5, 8, 0, false),
			meta(6, 8, 0, true),
		},
	}
	segs, recs, bytes := manifestLag(sm, shardProgress{bootstrapped: true, doneSeq: 4})
	if segs != 0 || recs != 0 || bytes != 16 {
		t.Errorf("lag = %d/%d/%d, want 0/0/16", segs, recs, bytes)
	}
}

func TestShardProgressSnapshot(t *testing.T) {
	st := &shardState{bootstrapped: true, doneSeq: 9, cur: &segCursor{seq: 10, records: 3, applied: 333}}
	p := st.progress()
	want := shardProgress{bootstrapped: true, doneSeq: 9, curSeq: 10, curRecords: 3, curApplied: 333}
	if p != want {
		t.Errorf("progress = %+v, want %+v", p, want)
	}
	st.cur = nil
	p = st.progress()
	if p.curSeq != 0 || p.curRecords != 0 || p.curApplied != 0 {
		t.Errorf("progress with no cursor = %+v, want zero cur fields", p)
	}
}

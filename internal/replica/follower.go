package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-go/asap/internal/obs/trace"
	"github.com/asap-go/asap/internal/wal"
)

// Defaults for Config fields left zero.
const (
	DefaultPoll            = 500 * time.Millisecond
	DefaultChunkBytes      = 4 << 20
	minChunkBytes          = 1 << 12
	DefaultRetryMaxBackoff = 15 * time.Second
)

// errDesync reports local replica state that can no longer be a prefix
// of the primary's log (corrupt fetched bytes, a sealed segment ending
// mid-record). The follower answers it by resyncing the shard from the
// primary's newest snapshot.
var errDesync = errors.New("replica: local state diverged from primary")

// Target is the read-side state the follower applies replicated records
// to — implemented by the server hub. Restore rebuilds a series as if
// total points were pushed with tail holding the most recent; Replicate
// continues an existing series (or starts a fresh one); Drop mirrors a
// primary-side eviction tombstone.
type Target interface {
	Restore(name string, tail []float64, total int64) error
	Replicate(name string, values []float64) error
	Drop(name string) bool
	SeriesNames() []string
}

// Config configures a Follower.
type Config struct {
	// Dir is the local data directory the primary's WAL is mirrored
	// into. Required. After promotion it opens as a normal WAL dir.
	Dir string
	// Primary is the primary server's base URL. Required.
	Primary string
	// Poll is the manifest poll interval (default 500ms).
	Poll time.Duration
	// LongPoll asks the primary to hold each manifest request open until
	// new appends land (bounded by this duration), cutting idle
	// replication lag from the poll interval to roughly one round-trip.
	// Zero defaults to the poll interval; negative disables long-polling
	// (plain ticker polls, e.g. against primaries that ignore the
	// parameters anyway).
	LongPoll time.Duration
	// ChunkBytes caps one ranged segment fetch (default 4 MiB).
	ChunkBytes int64
	// RetryMaxBackoff caps the exponential backoff between retries
	// after failed polls (default 15s). The backoff starts at Poll and
	// doubles per consecutive failure, jittered; a Retry-After from the
	// primary overrides it when longer.
	RetryMaxBackoff time.Duration
	// Logf receives operational messages. Nil means log.Printf.
	Logf func(format string, args ...interface{})
	// Tracer, when set, roots a "replica.poll" trace per poll and sends
	// its traceparent on every manifest and segment request, so the
	// primary's side of the hop joins the follower's trace. Nil records
	// nothing.
	Tracer *trace.Tracer
}

// Spec captures the primary facts a follower must agree on to produce
// bit-identical frames: shard routing and the stream configuration. It
// is learned from the primary's manifest and persisted locally so a
// follower can restart (and promote) while the primary is dead.
type Spec struct {
	Primary       string     `json:"primary"`
	Shards        int        `json:"shards"`
	DefaultSeries string     `json:"default_series"`
	Stream        StreamSpec `json:"stream"`
}

// specFile persists the Spec beside the mirrored shard directories.
const specFile = "replica.json"

// Status is a point-in-time view of replication progress, surfaced in
// /stats and /healthz on a follower.
type Status struct {
	Primary        string
	Bootstrapped   bool // every shard is past bootstrap
	Synced         bool // last poll succeeded with zero lag
	SegmentsBehind int64
	RecordsBehind  int64
	BytesBehind    int64
	RecordsApplied int64
	PointsApplied  int64
	BytesFetched   int64
	Polls          int64
	PollErrors     int64
	Resyncs        int64
	// Retries counts backed-off retry pauses Run has taken after
	// transient failures — a follower riding out a primary restart
	// accumulates retries but, crucially, no Resyncs.
	Retries   int64
	LastPoll  time.Time // last successful poll
	LastError string
}

// segCursor tracks the segment currently being fetched and applied:
// fetched is the local byte size of the mirror file, applied the
// record-aligned prefix decoded into the target, records the records
// applied from this file across the follower's lifetime (base* carry
// the pre-restart share so lag math stays exact after a resume).
type segCursor struct {
	seq         uint64
	fetched     int64
	applied     int64
	records     int64
	base        int64
	baseRecords int64
	scan        wal.RecordScanner
}

// shardState is one shard's replication position. Touched only by the
// follower's single poll goroutine (and WarmUp before it starts).
type shardState struct {
	id           int
	dir          string
	bootstrapped bool
	snapSeq      uint64 // local mirrored snapshot covers segments <= snapSeq
	doneSeq      uint64 // segments <= doneSeq are fully applied
	cur          *segCursor
}

// Follower mirrors a primary's WAL into Config.Dir and applies the
// records to a Target. Create with New, warm the target with WarmUp,
// then drive with Run (or PollOnce in tests). Stop halts the loop,
// fsyncs the mirror, and writes the final cursor; after Stop the
// directory is ready for wal.Open — promotion.
type Follower struct {
	cfg    Config
	logf   func(format string, args ...interface{})
	client *Client
	spec   Spec
	target Target
	hor    int
	shards []*shardState

	recordsApplied atomic.Int64
	pointsApplied  atomic.Int64
	bytesFetched   atomic.Int64
	polls          atomic.Int64
	pollErrors     atomic.Int64
	resyncs        atomic.Int64
	retries        atomic.Int64

	// lastCursor is the cursor as last persisted; manVersion the
	// primary's append version as of the last manifest (the long-poll
	// resume token). Touched only by the poll goroutine (and Stop's
	// finalize after the loop has exited).
	lastCursor wal.Cursor
	manVersion int64

	mu         sync.Mutex
	gauges     Status // lag gauges + last poll/error; counters live in atomics
	runStarted bool
	stopped    bool

	stopOnce  sync.Once
	stopc     chan struct{}
	runDone   chan struct{}
	finalOnce sync.Once
}

// New contacts the primary for its manifest (falling back to the
// locally persisted spec when the primary is unreachable — a follower
// must be able to restart, serve, and promote while the primary is
// dead) and returns a Follower ready to WarmUp. The learned spec is
// persisted; a primary whose stream configuration changed is refused.
func New(cfg Config) (*Follower, error) {
	if cfg.Dir == "" {
		return nil, errors.New("replica: Dir required")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.LongPoll == 0 {
		cfg.LongPoll = cfg.Poll
	}
	if cfg.LongPoll < 0 {
		cfg.LongPoll = 0
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	if cfg.ChunkBytes < minChunkBytes {
		cfg.ChunkBytes = minChunkBytes
	}
	if cfg.RetryMaxBackoff <= 0 {
		cfg.RetryMaxBackoff = DefaultRetryMaxBackoff
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	client, err := NewClient(cfg.Primary)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	persisted, havePersisted, err := loadSpec(cfg.Dir)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	man, merr := client.Manifest(ctx)
	cancel()
	var spec Spec
	switch {
	case merr == nil:
		spec = Spec{
			Primary:       client.Primary(),
			Shards:        man.Shards,
			DefaultSeries: man.DefaultSeries,
			Stream:        man.Stream,
		}
		if havePersisted && (persisted.Shards != spec.Shards || persisted.Stream != spec.Stream) {
			return nil, fmt.Errorf("replica: primary %s changed shape (shards %d->%d, stream %+v -> %+v); wipe %s to re-bootstrap",
				cfg.Primary, persisted.Shards, spec.Shards, persisted.Stream, spec.Stream, cfg.Dir)
		}
		if err := saveSpec(cfg.Dir, spec); err != nil {
			return nil, err
		}
	case havePersisted:
		logf("replica: primary %s unreachable (%v); serving the local mirror", cfg.Primary, merr)
		spec = persisted
	default:
		return nil, fmt.Errorf("replica: primary unreachable and no local mirror in %s: %w", cfg.Dir, merr)
	}

	f := &Follower{
		cfg:     cfg,
		logf:    logf,
		client:  client,
		spec:    spec,
		stopc:   make(chan struct{}),
		runDone: make(chan struct{}),
	}
	f.gauges.Primary = client.Primary()
	return f, nil
}

// Spec returns the primary facts the follower mirrors.
func (f *Follower) Spec() Spec { return f.spec }

// WarmUp restores every series recoverable from the local mirror into
// target and positions each shard to resume tailing exactly after the
// last intact applied record — including mid-segment. It returns how
// many series were restored. Call once, before Run.
func (f *Follower) WarmUp(target Target, horizonPoints int) (int, error) {
	f.target = target
	f.hor = horizonPoints
	if err := wal.InitMeta(f.cfg.Dir, f.spec.Shards); err != nil {
		return 0, err
	}
	rec, cur, err := wal.LoadState(f.cfg.Dir, horizonPoints)
	if err != nil {
		return 0, err
	}
	if pc, ok, err := wal.ReadCursor(f.cfg.Dir); err != nil {
		f.logf("replica: ignoring unreadable cursor: %v", err)
	} else if ok {
		// The persisted cursor is the durable applied watermark; local
		// files always hold at least that much (bytes land before the
		// cursor advances), so LoadState can only be equal or ahead —
		// anything else means the mirror was tampered with.
		for i := range pc.Shards {
			lp := cur.Pos(i)
			if p := pc.Shards[i]; p.SegSeq > lp.SegSeq || (p.SegSeq == lp.SegSeq && p.Offset > lp.Offset) {
				f.logf("replica: shard %d: cursor ahead of local files (cursor %+v, files %+v); refetching the difference", i, p, lp)
			}
		}
	}
	for name, st := range rec.Series {
		if err := target.Restore(name, st.Tail, st.Total); err != nil {
			return 0, err
		}
	}
	f.shards = make([]*shardState, f.spec.Shards)
	for i := range f.shards {
		st := &shardState{id: i, dir: filepath.Join(f.cfg.Dir, fmt.Sprintf("shard-%04d", i))}
		pos := cur.Pos(i)
		if pos.SegSeq > 0 || pos.SnapSeq > 0 {
			st.bootstrapped = true
			st.snapSeq = pos.SnapSeq
			if pos.SegSeq > 0 {
				st.doneSeq = pos.SegSeq - 1
				// Drop any torn local tail so appended fetches stay
				// contiguous with the applied prefix.
				path := filepath.Join(st.dir, wal.SegmentFileName(pos.SegSeq))
				if fi, err := os.Stat(path); err == nil && fi.Size() > pos.Offset {
					if err := os.Truncate(path, pos.Offset); err != nil {
						return 0, err
					}
				}
				st.cur = &segCursor{
					seq:         pos.SegSeq,
					fetched:     pos.Offset,
					applied:     pos.Offset,
					records:     pos.Records,
					base:        pos.Offset,
					baseRecords: pos.Records,
				}
			} else {
				st.doneSeq = pos.SnapSeq
			}
		}
		f.shards[i] = st
	}
	return len(rec.Series), nil
}

// Run polls the primary until ctx ends or Stop is called. With
// long-polling (the default) the primary itself paces the loop: each
// manifest request parks server-side until new appends land or the
// long-poll window elapses, so a successful poll is followed
// immediately by the next one.
//
// Failed polls retry with capped exponential backoff (Poll doubling up
// to RetryMaxBackoff, jittered), honoring any Retry-After the primary
// sent — so a follower rides out a primary restart holding its
// incremental position (Retries climbs, Resyncs does not) and the
// mirror freezes at its last replicated point, exactly what a
// promotion candidate should hold. Fatal errors (protocol or
// configuration mismatches the primary will keep returning) skip
// straight to the maximum backoff instead of hammering.
func (f *Follower) Run(ctx context.Context) {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		close(f.runDone)
		return
	}
	f.runStarted = true
	f.mu.Unlock()
	defer close(f.runDone)
	defer f.finalOnce.Do(f.finalize)
	failures := 0
	for {
		err := f.poll(ctx, f.cfg.LongPoll)
		if err != nil && ctx.Err() == nil {
			f.logf("replica: poll: %v", err)
		}
		var pause time.Duration
		if err == nil {
			failures = 0
			if f.cfg.LongPoll <= 0 {
				pause = f.cfg.Poll // plain polling: the interval paces us
			}
			// else: the long-poll already waited server-side; go again.
		} else {
			failures++
			f.retries.Add(1)
			if Transient(err) {
				pause = retryBackoff(f.cfg.Poll, f.cfg.RetryMaxBackoff, failures)
			} else {
				pause = f.cfg.RetryMaxBackoff
			}
			if ra := RetryAfterHint(err); ra > pause {
				pause = ra
			}
		}
		if pause <= 0 {
			select {
			case <-ctx.Done():
				return
			case <-f.stopc:
				return
			default:
				continue
			}
		}
		timer := time.NewTimer(pause)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-f.stopc:
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// Stop halts the poll loop (waiting for an in-flight poll to finish),
// fsyncs the mirrored files, and writes the final cursor. Idempotent;
// safe to call whether or not Run was started. After Stop the data
// directory is a consistent WAL ready for wal.Open.
func (f *Follower) Stop() {
	f.mu.Lock()
	f.stopped = true
	started := f.runStarted
	f.mu.Unlock()
	f.stopOnce.Do(func() { close(f.stopc) })
	if started {
		<-f.runDone
	}
	f.finalOnce.Do(f.finalize)
}

// finalize makes the mirror durable: fsync every shard's in-flight
// segment file and record the final cursor.
func (f *Follower) finalize() {
	for _, st := range f.shards {
		if st.cur == nil {
			continue
		}
		path := filepath.Join(st.dir, wal.SegmentFileName(st.cur.seq))
		if fd, err := os.OpenFile(path, os.O_RDWR, 0); err == nil {
			if err := fd.Sync(); err != nil {
				f.logf("replica: fsync %s: %v", path, err)
			}
			fd.Close()
		}
	}
	if err := wal.WriteCursor(f.cfg.Dir, f.cursor()); err != nil {
		f.logf("replica: final cursor: %v", err)
	}
}

// cursor snapshots the per-shard applied watermark.
func (f *Follower) cursor() wal.Cursor {
	c := wal.Cursor{Shards: make([]wal.CursorPos, len(f.shards))}
	for i, st := range f.shards {
		pos := wal.CursorPos{SnapSeq: st.snapSeq}
		if st.cur != nil {
			pos.SegSeq, pos.Offset, pos.Records = st.cur.seq, st.cur.applied, st.cur.records
		} else if st.doneSeq > st.snapSeq {
			pos.SegSeq = st.doneSeq
			if fi, err := os.Stat(filepath.Join(st.dir, wal.SegmentFileName(st.doneSeq))); err == nil {
				pos.Offset = fi.Size()
			}
		}
		c.Shards[i] = pos
	}
	return c
}

// Status returns the current replication status.
func (f *Follower) Status() Status {
	f.mu.Lock()
	st := f.gauges
	f.mu.Unlock()
	st.RecordsApplied = f.recordsApplied.Load()
	st.PointsApplied = f.pointsApplied.Load()
	st.BytesFetched = f.bytesFetched.Load()
	st.Polls = f.polls.Load()
	st.PollErrors = f.pollErrors.Load()
	st.Resyncs = f.resyncs.Load()
	st.Retries = f.retries.Load()
	return st
}

// PollOnce fetches the manifest immediately (no long-poll wait),
// catches every shard up to its durable watermark, persists the
// cursor, and refreshes the lag gauges. Run drives the same logic
// through the long-poll path; tests and one-shot callers use this.
func (f *Follower) PollOnce(ctx context.Context) error {
	return f.poll(ctx, 0)
}

// poll is PollOnce with an optional server-side long-poll wait, traced
// as one "replica.poll" operation (manifest fetch and per-shard sync as
// child spans, errors flagged for tail retention).
func (f *Follower) poll(ctx context.Context, wait time.Duration) error {
	ctx, tr := f.cfg.Tracer.StartTrace(ctx, "replica.poll")
	err := f.pollTrace(ctx, wait)
	if tr != nil {
		if err != nil {
			tr.Root().SetError(err.Error())
		}
		f.cfg.Tracer.Finish(tr)
	}
	return err
}

func (f *Follower) pollTrace(ctx context.Context, wait time.Duration) error {
	if f.target == nil {
		return errors.New("replica: WarmUp before PollOnce")
	}
	mctx, msp := trace.StartSpan(ctx, "replica.manifest")
	man, err := f.client.ManifestWait(mctx, f.manVersion, wait)
	if msp != nil {
		if err != nil {
			msp.SetError(err.Error())
		}
		msp.End()
	}
	if err != nil {
		f.noteError(err)
		return err
	}
	f.manVersion = man.Version
	if man.Shards != f.spec.Shards {
		err := fmt.Errorf("replica: primary shard count changed %d -> %d", f.spec.Shards, man.Shards)
		f.noteError(err)
		return err
	}
	if man.Stream != f.spec.Stream {
		err := fmt.Errorf("replica: primary stream config changed %+v -> %+v", f.spec.Stream, man.Stream)
		f.noteError(err)
		return err
	}
	var firstErr error
	for _, sm := range man.ShardManifests {
		if sm.Shard < 0 || sm.Shard >= len(f.shards) {
			continue
		}
		sctx, ssp := trace.StartSpan(ctx, "replica.sync_shard")
		ssp.SetInt("shard", int64(sm.Shard))
		err := f.syncShard(sctx, f.shards[sm.Shard], sm)
		if err != nil {
			ssp.SetError(err.Error())
		}
		ssp.End()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			f.logf("replica: shard %d: %v", sm.Shard, err)
		}
	}
	// Persist the applied watermark, but only when it moved: an idle
	// caught-up follower must not pay a write+fsync+rename per poll for
	// a byte-identical cursor.
	if cur := f.cursor(); !cursorEqual(cur, f.lastCursor) {
		if err := wal.WriteCursor(f.cfg.Dir, cur); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			f.lastCursor = cur
		}
	}
	f.updateGauges(man, firstErr)
	if firstErr != nil {
		f.pollErrors.Add(1)
	}
	f.polls.Add(1)
	return firstErr
}

func (f *Follower) noteError(err error) {
	f.pollErrors.Add(1)
	f.polls.Add(1)
	f.mu.Lock()
	f.gauges.LastError = err.Error()
	f.gauges.Synced = false
	f.mu.Unlock()
}

// updateGauges recomputes the lag gauges against the just-processed
// manifest: what the primary holds durably minus what this follower
// has applied.
func (f *Follower) updateGauges(man *PrimaryManifest, pollErr error) {
	var segB, recB, bytB int64
	booted := true
	for _, sm := range man.ShardManifests {
		if sm.Shard < 0 || sm.Shard >= len(f.shards) {
			continue
		}
		st := f.shards[sm.Shard]
		if !st.bootstrapped {
			booted = false
		}
		segs, recs, bytes := manifestLag(sm, st.progress())
		segB += segs
		recB += recs
		bytB += bytes
	}
	f.mu.Lock()
	f.gauges.Bootstrapped = booted
	f.gauges.SegmentsBehind = segB
	f.gauges.RecordsBehind = recB
	f.gauges.BytesBehind = bytB
	if pollErr == nil {
		f.gauges.LastPoll = time.Now()
		f.gauges.LastError = ""
		f.gauges.Synced = booted && recB == 0
	} else {
		f.gauges.LastError = pollErr.Error()
		f.gauges.Synced = false
	}
	f.mu.Unlock()
}

// syncShard catches one shard up to the manifest's durable watermark:
// bootstrap if the shard has no local state yet, then fetch-and-apply
// segments in sequence order, resyncing from the primary's snapshot
// whenever the contiguous chain is broken.
func (f *Follower) syncShard(ctx context.Context, st *shardState, sm wal.ShardManifest) error {
	if !st.bootstrapped {
		return f.bootstrapShard(ctx, st, sm)
	}
	for {
		var meta *wal.FileMeta
		if st.cur != nil {
			meta = findSeq(sm.Segments, st.cur.seq)
			if meta == nil {
				// Our in-flight segment vanished: its unfetched tail now
				// lives only in a newer snapshot.
				return f.resyncShard(ctx, st, sm, "in-flight segment reclaimed")
			}
		} else {
			meta = lowestAbove(sm.Segments, st.doneSeq)
			if meta == nil {
				break // fully caught up with this manifest
			}
			if meta.Seq != st.doneSeq+1 {
				// Segments between doneSeq and meta.Seq were reclaimed
				// before we applied them.
				return f.resyncShard(ctx, st, sm, "segment chain gap")
			}
			st.cur = &segCursor{seq: meta.Seq}
		}
		if err := f.fetchApply(ctx, st, meta); err != nil {
			if errors.Is(err, ErrGone) || errors.Is(err, errDesync) {
				return f.resyncShard(ctx, st, sm, err.Error())
			}
			return err
		}
		if meta.Active || st.cur.fetched < meta.Size {
			break // reached the durable watermark (or a short read); next poll continues
		}
		// Sealed and fully fetched: every byte must have decoded.
		if st.cur.scan.Pending() != 0 {
			return f.resyncShard(ctx, st, sm, "sealed segment ends mid-record")
		}
		st.doneSeq = st.cur.seq
		st.cur = nil
	}
	return f.mirrorSnapshot(ctx, st, sm)
}

// fetchApply pulls bytes of meta's file from the primary in chunks,
// appends them to the local mirror file, and applies every complete
// record to the target.
func (f *Follower) fetchApply(ctx context.Context, st *shardState, meta *wal.FileMeta) error {
	cur := st.cur
	if cur.fetched >= meta.Size {
		return nil
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return err
	}
	name := wal.SegmentFileName(cur.seq)
	lf, err := os.OpenFile(filepath.Join(st.dir, name), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer lf.Close()
	for cur.fetched < meta.Size {
		want := meta.Size - cur.fetched
		if want > f.cfg.ChunkBytes {
			want = f.cfg.ChunkBytes
		}
		data, err := f.client.FetchRange(ctx, st.id, name, cur.fetched, want)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			break // stale manifest; the next poll re-lists
		}
		if _, err := lf.WriteAt(data, cur.fetched); err != nil {
			return err
		}
		feed := data
		if cur.fetched == 0 {
			if len(data) < len(wal.SegmentMagic) || string(data[:len(wal.SegmentMagic)]) != wal.SegmentMagic {
				return fmt.Errorf("%w: segment %s has bad magic", errDesync, name)
			}
			feed = data[len(wal.SegmentMagic):]
			cur.base = int64(len(wal.SegmentMagic))
		}
		cur.scan.Feed(feed)
		if err := f.drain(&cur.scan); err != nil {
			return err
		}
		cur.fetched += int64(len(data))
		cur.applied = cur.base + cur.scan.Consumed()
		cur.records = cur.baseRecords + cur.scan.Records()
		f.bytesFetched.Add(int64(len(data)))
		if int64(len(data)) < want {
			break
		}
	}
	return nil
}

// drain applies every complete record buffered in sc to the target.
func (f *Follower) drain(sc *wal.RecordScanner) error {
	for {
		series, total, values, ok, err := sc.Next()
		if err != nil {
			return fmt.Errorf("%w: %v", errDesync, err)
		}
		if !ok {
			return nil
		}
		if total == 0 && len(values) == 0 {
			f.target.Drop(series)
		} else if err := f.target.Replicate(series, values); err != nil {
			return err
		}
		f.recordsApplied.Add(1)
		f.pointsApplied.Add(int64(len(values)))
	}
}

// bootstrapShard builds the shard from scratch at the manifest's
// durable point: mirror the snapshot and every listed segment, fold
// them into per-series state exactly the way recovery does, and
// Restore each series into the target. Series the target holds for
// this shard that the rebuilt state lacks were tombstoned while we
// were away — they are dropped, mirroring the primary's evictions.
// Afterwards the shard tails the active segment from the point it
// fetched to.
//
// Nothing local is deleted until the new chain is fully fetched and
// applied: every fetch lands via tmp+rename, the new snapshot's
// sequence exceeds every stale local segment's, and LoadState always
// starts from the newest snapshot — so a crash or dead primary at any
// point leaves the previous consistent (if stale) prefix restorable,
// never an emptied shard.
func (f *Follower) bootstrapShard(ctx context.Context, st *shardState, sm wal.ShardManifest) error {
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return err
	}
	st.snapSeq, st.doneSeq, st.cur = 0, 0, nil

	state := make(map[string]*wal.SeriesState)
	if sm.Snapshot != nil {
		name := wal.SnapshotFileName(sm.Snapshot.Seq)
		if err := f.fetchWholeFile(ctx, st, name, sm.Snapshot.Size); err != nil {
			return err
		}
		loaded, _, skipped, err := wal.ReadSnapshotFile(filepath.Join(st.dir, name))
		if err != nil {
			return err
		}
		if skipped > 0 {
			return fmt.Errorf("%w: fetched snapshot %s has a torn tail", errDesync, name)
		}
		state = loaded
		st.snapSeq = sm.Snapshot.Seq
		st.doneSeq = sm.Snapshot.Seq
	}
	for i := range sm.Segments {
		meta := &sm.Segments[i]
		if meta.Seq <= st.snapSeq {
			continue // covered by the snapshot we just mirrored
		}
		name := wal.SegmentFileName(meta.Seq)
		if meta.Size > 0 {
			if err := f.fetchWholeFile(ctx, st, name, meta.Size); err != nil {
				return err
			}
			if err := f.replayLocalSegment(filepath.Join(st.dir, name), state); err != nil {
				return err
			}
		}
		if meta.Active {
			st.cur = &segCursor{
				seq:         meta.Seq,
				fetched:     meta.Size,
				applied:     meta.Size,
				records:     meta.Records,
				base:        meta.Size,
				baseRecords: meta.Records,
			}
		} else {
			st.doneSeq = meta.Seq
		}
	}

	// Restore the rebuilt state; drop series this shard owned that no
	// longer exist (tombstoned on the primary while we were behind).
	rebuilt := make(map[string]bool, len(state))
	for name, sst := range state {
		if f.hor > 0 && len(sst.Tail) > f.hor {
			sst.Tail = sst.Tail[len(sst.Tail)-f.hor:]
		}
		if err := f.target.Restore(name, sst.Tail, sst.Total); err != nil {
			return err
		}
		rebuilt[name] = true
	}
	for _, name := range f.target.SeriesNames() {
		if wal.ShardOf(name, f.spec.Shards) == st.id && !rebuilt[name] {
			f.target.Drop(name)
		}
	}

	// The new chain is fully mirrored and applied; only now do stale
	// local files from the previous position go. Chain files: the
	// snapshot (if any) and every listed segment.
	chain := make(map[string]bool, len(sm.Segments)+1)
	if sm.Snapshot != nil {
		chain[wal.SnapshotFileName(sm.Snapshot.Seq)] = true
	}
	for _, meta := range sm.Segments {
		chain[wal.SegmentFileName(meta.Seq)] = true
	}
	if entries, err := os.ReadDir(st.dir); err == nil {
		for _, e := range entries {
			if _, _, ok := parseLocalName(e.Name()); ok && !chain[e.Name()] {
				os.Remove(filepath.Join(st.dir, e.Name()))
			}
		}
	}
	st.bootstrapped = true
	return nil
}

// resyncShard abandons the shard's incremental position and
// re-bootstraps it from the primary's current snapshot + segments.
func (f *Follower) resyncShard(ctx context.Context, st *shardState, sm wal.ShardManifest, why string) error {
	f.logf("replica: shard %d: resync (%s)", st.id, why)
	f.resyncs.Add(1)
	st.bootstrapped = false
	return f.bootstrapShard(ctx, st, sm)
}

// mirrorSnapshot keeps the local directory as compact as the primary's:
// once every segment a primary snapshot covers has been applied here,
// fetch the snapshot and delete the covered local files — by induction
// the mirrored snapshot equals one compacted from the local copies.
func (f *Follower) mirrorSnapshot(ctx context.Context, st *shardState, sm wal.ShardManifest) error {
	if sm.Snapshot == nil || sm.Snapshot.Seq <= st.snapSeq || sm.Snapshot.Seq > st.doneSeq {
		// Nothing new, or the snapshot covers records we have not applied
		// yet (then either the chain still feeds us, or a gap will force
		// a resync — never jump ahead here).
		return nil
	}
	name := wal.SnapshotFileName(sm.Snapshot.Seq)
	if err := f.fetchWholeFile(ctx, st, name, sm.Snapshot.Size); err != nil {
		if errors.Is(err, ErrGone) {
			return nil // compacted again already; next poll sees the newer one
		}
		return err
	}
	oldSnap := st.snapSeq
	st.snapSeq = sm.Snapshot.Seq
	if oldSnap > 0 {
		os.Remove(filepath.Join(st.dir, wal.SnapshotFileName(oldSnap)))
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if seq, snap, ok := parseLocalName(e.Name()); ok && !snap && seq <= st.snapSeq {
			os.Remove(filepath.Join(st.dir, e.Name()))
		}
	}
	return nil
}

// fetchWholeFile mirrors one complete file (to tmp, then rename, so a
// crash never leaves a half-written snapshot looking authoritative).
func (f *Follower) fetchWholeFile(ctx context.Context, st *shardState, name string, size int64) error {
	path := filepath.Join(st.dir, name)
	tmp := path + ".tmp"
	lf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var off int64
	for off < size {
		want := size - off
		if want > f.cfg.ChunkBytes {
			want = f.cfg.ChunkBytes
		}
		data, err := f.client.FetchRange(ctx, st.id, name, off, want)
		if err != nil {
			lf.Close()
			os.Remove(tmp)
			return err
		}
		if len(data) == 0 {
			lf.Close()
			os.Remove(tmp)
			return fmt.Errorf("%w: %s truncated on primary at %d/%d", ErrGone, name, off, size)
		}
		if _, err := lf.WriteAt(data, off); err != nil {
			lf.Close()
			os.Remove(tmp)
			return err
		}
		off += int64(len(data))
		f.bytesFetched.Add(int64(len(data)))
	}
	if err := lf.Sync(); err != nil {
		lf.Close()
		os.Remove(tmp)
		return err
	}
	if err := lf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// replayLocalSegment folds one fully mirrored segment into state with
// recovery's semantics: tails append (trimmed to the horizon),
// cumulative totals take the maximum, tombstones delete.
func (f *Follower) replayLocalSegment(path string, state map[string]*wal.SeriesState) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < len(wal.SegmentMagic) || string(data[:len(wal.SegmentMagic)]) != wal.SegmentMagic {
		return fmt.Errorf("%w: %s has bad magic", errDesync, path)
	}
	var sc wal.RecordScanner
	sc.Feed(data[len(wal.SegmentMagic):])
	for {
		series, total, values, ok, err := sc.Next()
		if err != nil {
			return fmt.Errorf("%w: %s: %v", errDesync, path, err)
		}
		if !ok {
			break
		}
		wal.FoldRecord(state, series, total, values, f.hor)
	}
	if sc.Pending() != 0 {
		return fmt.Errorf("%w: %s ends mid-record", errDesync, path)
	}
	return nil
}

func cursorEqual(a, b wal.Cursor) bool {
	if len(a.Shards) != len(b.Shards) {
		return false
	}
	for i := range a.Shards {
		if a.Shards[i] != b.Shards[i] {
			return false
		}
	}
	return true
}

func findSeq(segs []wal.FileMeta, seq uint64) *wal.FileMeta {
	for i := range segs {
		if segs[i].Seq == seq {
			return &segs[i]
		}
	}
	return nil
}

func lowestAbove(segs []wal.FileMeta, seq uint64) *wal.FileMeta {
	var best *wal.FileMeta
	for i := range segs {
		if segs[i].Seq > seq && (best == nil || segs[i].Seq < best.Seq) {
			best = &segs[i]
		}
	}
	return best
}

// parseLocalName classifies a local mirror file name.
func parseLocalName(name string) (seq uint64, snapshot, ok bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "seg-%d.wal", &n); err == nil && name == wal.SegmentFileName(n) {
		return n, false, true
	}
	if _, err := fmt.Sscanf(name, "snap-%d.snap", &n); err == nil && name == wal.SnapshotFileName(n) {
		return n, true, true
	}
	return 0, false, false
}

func loadSpec(dir string) (Spec, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, specFile))
	if os.IsNotExist(err) {
		return Spec{}, false, nil
	}
	if err != nil {
		return Spec{}, false, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, false, fmt.Errorf("replica: bad %s: %w", specFile, err)
	}
	if s.Shards <= 0 {
		return Spec{}, false, fmt.Errorf("replica: bad %s: shards %d", specFile, s.Shards)
	}
	return s, true, nil
}

// saveSpec persists the primary facts with the full write→fsync→
// rename→dirsync discipline: a power loss must never leave a follower
// that cannot restart (and promote) while the primary is dead because
// its spec evaporated from the page cache.
func saveSpec(dir string, s Spec) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, specFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package wal

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Segment files are named seg-<seq>.wal with a zero-padded decimal
// sequence number; snapshot files are snap-<seq>.snap where seq is the
// last segment sequence the snapshot covers. Both begin with an 8-byte
// magic so a mis-routed file is rejected whole instead of replayed.
const (
	segmentMagic   = "ASAPWAL1"
	snapshotMagic  = "ASAPSNP1"
	segmentPrefix  = "seg-"
	segmentSuffix  = ".wal"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".snap"
)

func segmentFile(seq uint64) string  { return fmt.Sprintf("seg-%016d.wal", seq) }
func snapshotFile(seq uint64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

// parseSeq extracts the sequence number from a segment or snapshot file
// name; ok is false for any other directory entry.
func parseSeq(name, prefix, suffix string) (seq uint64, ok bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return n, err == nil
}

// segmentInfo is the manager-side metadata for one segment: sequence,
// path, size, per-series point counts, and the series tombstoned in it
// — the inputs to point-count retention.
type segmentInfo struct {
	seq    uint64
	path   string
	size   int64
	counts map[string]int64
	tombs  map[string]bool
}

// replaySegment reads one segment file and feeds every intact record to
// fn in append order. It returns the intact-record count and how many
// torn or corrupt tails were skipped: 0 or 1, since replay of a file
// stops at the first bad frame (a bad magic rejects the whole file).
func replaySegment(path string, fn func(series string, total int64, values []float64)) (records, skipped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		return 0, 1, nil
	}
	intact, torn := scanFrames(data[len(segmentMagic):], func(p []byte) error {
		series, total, values, err := decodeRecordPayload(p)
		if err != nil {
			return err
		}
		fn(series, total, values)
		return nil
	})
	if torn {
		skipped = 1
	}
	return intact, skipped, nil
}

package wal

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/asap-go/asap/internal/vfs"
)

// Segment files are named seg-<seq>.wal with a zero-padded decimal
// sequence number; snapshot files are snap-<seq>.snap where seq is the
// last segment sequence the snapshot covers. Both begin with an 8-byte
// magic so a mis-routed file is rejected whole instead of replayed.
// The magics are exported for replication: a follower mirroring
// segment bytes verifies the magic before decoding records.
const (
	SegmentMagic   = "ASAPWAL1"
	SnapshotMagic  = "ASAPSNP1"
	segmentMagic   = SegmentMagic
	snapshotMagic  = SnapshotMagic
	segmentPrefix  = "seg-"
	segmentSuffix  = ".wal"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".snap"
)

// SnapshotHeaderLen is the byte length of a snapshot file's header
// (magic plus the covered-sequence uint64) preceding its records.
const SnapshotHeaderLen = len(SnapshotMagic) + 8

// SegmentFileName returns the canonical file name for segment seq;
// SnapshotFileName likewise for a snapshot covering through seq. A
// replica reconstructs local file names from manifest sequence numbers
// with these instead of trusting remote strings as paths.
func SegmentFileName(seq uint64) string  { return segmentFile(seq) }
func SnapshotFileName(seq uint64) string { return snapshotFile(seq) }

func segmentFile(seq uint64) string  { return fmt.Sprintf("seg-%016d.wal", seq) }
func snapshotFile(seq uint64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

// parseSeq extracts the sequence number from a segment or snapshot file
// name; ok is false for any other directory entry.
func parseSeq(name, prefix, suffix string) (seq uint64, ok bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return n, err == nil
}

// segmentInfo is the manager-side metadata for one segment: sequence,
// path, size, record count, per-series point counts, and the series
// tombstoned in it — the inputs to point-count retention and the
// replication manifest. For sealed segments size/records describe the
// valid record-aligned prefix; for the active segment they include
// bytes still buffered or unsynced (see shardLog.syncedSize for the
// durable watermark).
type segmentInfo struct {
	seq     uint64
	path    string
	size    int64
	records int64
	counts  map[string]int64
	tombs   map[string]bool
}

// replaySegment reads one segment file and feeds every intact record to
// fn in append order. It returns the intact-record count, how many
// torn or corrupt tails were skipped (0 or 1, since replay of a file
// stops at the first bad frame; a bad magic rejects the whole file),
// and the valid byte size — the record-aligned prefix ending after the
// last intact record, which is what replication may serve.
func replaySegment(fsys vfs.FS, path string, fn func(series string, total int64, values []float64)) (records, skipped int, validSize int64, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		return 0, 1, 0, nil
	}
	intact, consumed, torn := scanFrames(data[len(segmentMagic):], func(p []byte) error {
		series, total, values, err := decodeRecordPayload(p)
		if err != nil {
			return err
		}
		fn(series, total, values)
		return nil
	})
	if torn {
		skipped = 1
	}
	return intact, skipped, int64(len(segmentMagic)) + consumed, nil
}

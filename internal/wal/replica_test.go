package wal

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asap-go/asap/internal/vfs"
)

// TestGroupCommitCoalesces: with FsyncEvery 0, concurrent appenders
// into one shard must share fsyncs — strictly fewer syncs than records
// — while every acknowledged point still recovers.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 64 << 20, HorizonPoints: 1 << 20, Logf: quiet}
	l := openTest(t, cfg)

	const workers, appends = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < appends; i++ {
				if err := l.Append(name, seq(5, float64(i*5))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.AppendedRecords != workers*appends {
		t.Fatalf("appended %d records, want %d", st.AppendedRecords, workers*appends)
	}
	if st.Syncs >= st.AppendedRecords {
		t.Errorf("group commit never coalesced: %d syncs for %d records", st.Syncs, st.AppendedRecords)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// kill -9 equivalence: everything acknowledged must recover.
	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	if len(rec.Series) != workers {
		t.Fatalf("recovered %d series, want %d", len(rec.Series), workers)
	}
	for name, s := range rec.Series {
		if s.Total != appends*5 {
			t.Errorf("series %s total %d, want %d", name, s.Total, appends*5)
		}
	}
}

// TestManifestExcludesTornTail: a sealed segment with a torn tail
// (crash mid-record) must be listed with its valid record-aligned
// size, never the raw file size — a follower fetching manifest bytes
// must only ever see decodable records.
func TestManifestExcludesTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 64 << 20, Logf: quiet}
	l := openTest(t, cfg)
	if err := l.Append("cpu", seq(40, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a half-written record after the intact one.
	segPath := newestSegment(t, dir, 0)
	intact, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, intact...), 0x55, 0x00, 0x00, 0x00, 0xde, 0xad)
	if err := os.WriteFile(segPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, cfg)
	defer l2.Close()
	m := l2.Manifest()
	if m.Shards != 1 {
		t.Fatalf("manifest shards = %d", m.Shards)
	}
	var sealed *FileMeta
	for i, fm := range m.ShardManifests[0].Segments {
		if fm.Name == filepath.Base(segPath) {
			sealed = &m.ShardManifests[0].Segments[i]
		}
	}
	if sealed == nil {
		t.Fatalf("torn segment missing from manifest: %+v", m.ShardManifests[0])
	}
	if sealed.Size != int64(len(intact)) {
		t.Errorf("torn segment listed with size %d, want valid size %d (file is %d)",
			sealed.Size, len(intact), len(torn))
	}
	if sealed.Records != 1 {
		t.Errorf("torn segment records = %d, want 1", sealed.Records)
	}

	// The replica read must cap at the same limit.
	f, limit, err := l2.OpenReplicaFile(0, filepath.Base(segPath))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if limit != int64(len(intact)) {
		t.Errorf("OpenReplicaFile limit %d, want %d", limit, len(intact))
	}
	got, err := io.ReadAll(io.NewSectionReader(f, 0, limit))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, intact) {
		t.Error("replica read differs from the intact prefix")
	}
}

// TestOpenReplicaFileRejectsBadNames: only canonical listed file names
// resolve; anything path-like is an error, unknown sequences are
// os.ErrNotExist.
func TestOpenReplicaFileRejectsBadNames(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Config{Dir: dir, Shards: 1, Logf: quiet})
	defer l.Close()
	if err := l.Append("cpu", seq(5, 0)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../wal.meta", "LOCK", "seg-1.wal", "snap-0.snap.tmp", "seg-0000000000000001.wal/../x"} {
		if _, _, err := l.OpenReplicaFile(0, name); err == nil || os.IsNotExist(err) {
			t.Errorf("OpenReplicaFile(%q) err = %v, want invalid-name error", name, err)
		}
	}
	if _, _, err := l.OpenReplicaFile(0, SegmentFileName(999)); !os.IsNotExist(err) {
		t.Errorf("unknown seq err = %v, want not-exist", err)
	}
	if _, _, err := l.OpenReplicaFile(9, SegmentFileName(1)); err == nil {
		t.Error("shard out of range accepted")
	}
}

// TestManifestMidRotation hammers Manifest and OpenReplicaFile while
// appends rotate segments underneath — the listing a follower polls
// mid-rotation must always be internally consistent (ascending seqs,
// active last, durable sizes within the files). Run under -race.
func TestManifestMidRotation(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Config{Dir: dir, Shards: 1, SegmentBytes: 1 << 10, HorizonPoints: 1 << 20, Logf: quiet})
	defer l.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Append("cpu", seq(20, float64(i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		m := l.Manifest()
		sm := m.ShardManifests[0]
		var prev uint64
		for i, fm := range sm.Segments {
			if fm.Seq <= prev {
				t.Fatalf("manifest seqs not ascending: %+v", sm.Segments)
			}
			prev = fm.Seq
			if fm.Active != (i == len(sm.Segments)-1) {
				t.Fatalf("active flag not last: %+v", sm.Segments)
			}
			f, limit, err := l.OpenReplicaFile(0, fm.Name)
			if os.IsNotExist(err) {
				continue // rotated away between list and open; follower re-lists
			}
			if err != nil {
				t.Fatal(err)
			}
			if limit < fm.Size {
				t.Fatalf("durable size regressed: listed %d, open limit %d", fm.Size, limit)
			}
			buf := make([]byte, 8)
			if _, err := f.ReadAt(buf, 0); err == nil && string(buf) != SegmentMagic {
				t.Fatalf("segment %s serves bad magic %q", fm.Name, buf)
			}
			f.Close()
		}
	}
	close(stop)
	wg.Wait()
}

// TestLoadStateCursorAndReplayFrom: LoadState's cursor marks the exact
// record boundary reached; records appended afterwards — into the same
// still-open segment — replay via ReplayFrom from that mid-segment
// cursor, tombstones included, and nothing before it repeats.
func TestLoadStateCursorAndReplayFrom(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 64 << 20, Logf: quiet}
	l := openTest(t, cfg)
	defer l.Close()
	if err := l.Append("cpu", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("disk", seq(4, 100)); err != nil {
		t.Fatal(err)
	}

	rec, cur, err := LoadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Series) != 2 || rec.Series["cpu"].Total != 10 || rec.Series["disk"].Total != 4 {
		t.Fatalf("LoadState series = %+v", rec.Series)
	}
	pos := cur.Pos(0)
	if pos.SegSeq == 0 || pos.Offset <= int64(len(SegmentMagic)) || pos.Records != 2 {
		t.Fatalf("cursor = %+v", pos)
	}

	// More traffic into the same open segment: an append, a tombstone,
	// and a recreation.
	if err := l.Append("cpu", seq(5, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Tombstone("disk"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("disk", seq(2, 0)); err != nil {
		t.Fatal(err)
	}

	type ev struct {
		series string
		total  int64
		points int
	}
	var got []ev
	n, err := ReplayFrom(dir, cur, func(shard int, series string, total int64, values []float64) {
		if shard != 0 {
			t.Errorf("record from shard %d", shard)
		}
		got = append(got, ev{series, total, len(values)})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []ev{{"cpu", 15, 5}, {"disk", 0, 0}, {"disk", 2, 2}}
	if n != len(want) {
		t.Fatalf("ReplayFrom replayed %d records, want %d (%+v)", n, len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A full LoadState now reflects the tombstone-then-recreation.
	rec2, cur2, err := LoadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Series["disk"].Total != 2 || len(rec2.Series["disk"].Tail) != 2 {
		t.Fatalf("post-tombstone disk state = %+v", rec2.Series["disk"])
	}
	if p := cur2.Pos(0); p.Records != 5 || p.Offset <= pos.Offset {
		t.Fatalf("advanced cursor = %+v (was %+v)", p, pos)
	}
}

// TestCursorRoundTrip: the durable replication cursor survives its
// write→read cycle and absent files report ok == false.
func TestCursorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadCursor(dir); err != nil || ok {
		t.Fatalf("empty dir cursor ok=%v err=%v", ok, err)
	}
	c := Cursor{Shards: []CursorPos{{SnapSeq: 3, SegSeq: 7, Offset: 4242, Records: 17}, {SegSeq: 1}}}
	if err := WriteCursor(dir, c); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCursor(dir)
	if err != nil || !ok {
		t.Fatalf("read back ok=%v err=%v", ok, err)
	}
	if len(got.Shards) != 2 || got.Shards[0] != c.Shards[0] || got.Shards[1] != c.Shards[1] {
		t.Fatalf("cursor round trip = %+v", got)
	}
}

// TestRecordScannerChunked: records split at every possible boundary
// must decode identically, and a flipped payload bit must surface as
// corruption, not "need more bytes".
func TestRecordScannerChunked(t *testing.T) {
	var stream []byte
	stream = appendFrame(stream, appendRecordPayload(nil, "cpu", 3, []float64{1, 2, 3}))
	stream = appendFrame(stream, appendRecordPayload(nil, "d", 0, nil)) // tombstone
	stream = appendFrame(stream, appendRecordPayload(nil, "disk", 2, []float64{4, 5}))

	for split := 0; split <= len(stream); split++ {
		var sc RecordScanner
		var seen []string
		drain := func() {
			for {
				series, total, values, ok, err := sc.Next()
				if err != nil {
					t.Fatalf("split %d: %v", split, err)
				}
				if !ok {
					return
				}
				seen = append(seen, series)
				if series == "d" && (total != 0 || len(values) != 0) {
					t.Fatalf("tombstone decoded as %d/%d", total, len(values))
				}
			}
		}
		sc.Feed(stream[:split])
		drain()
		sc.Feed(stream[split:])
		drain()
		if len(seen) != 3 || seen[0] != "cpu" || seen[1] != "d" || seen[2] != "disk" {
			t.Fatalf("split %d: decoded %v", split, seen)
		}
		if sc.Pending() != 0 || sc.Consumed() != int64(len(stream)) || sc.Records() != 3 {
			t.Fatalf("split %d: pending=%d consumed=%d records=%d", split, sc.Pending(), sc.Consumed(), sc.Records())
		}
	}

	corrupt := append([]byte{}, stream...)
	corrupt[len(corrupt)-1] ^= 1
	var sc RecordScanner
	sc.Feed(corrupt)
	sawErr := false
	for {
		_, _, _, ok, err := sc.Next()
		if err != nil {
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Error("corrupt frame never surfaced an error")
	}
}

// TestLockDir: a second lock on the same directory is refused with the
// holder's pid; release makes it lockable again.
func TestLockDir(t *testing.T) {
	dir := t.TempDir()
	l1, err := LockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LockDir(dir); err == nil || !strings.Contains(err.Error(), "locked by pid") {
		t.Fatalf("second lock err = %v, want locked-by-pid", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := LockDir(dir)
	if err != nil {
		t.Fatalf("relock after release: %v", err)
	}
	l2.Release()
	l2.Release() // idempotent
}

// TestMetaShardsAndInitMeta: InitMeta pins a fresh dir, agrees with
// itself, and refuses a mismatch; MetaShards reads it back.
func TestMetaShardsAndInitMeta(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := MetaShards(dir); err != nil || ok {
		t.Fatalf("fresh dir meta ok=%v err=%v", ok, err)
	}
	if err := InitMeta(dir, 4); err != nil {
		t.Fatal(err)
	}
	if err := InitMeta(dir, 4); err != nil {
		t.Fatalf("idempotent InitMeta: %v", err)
	}
	if err := InitMeta(dir, 8); err == nil {
		t.Error("InitMeta accepted a mismatched shard count")
	}
	if n, ok, err := MetaShards(dir); err != nil || !ok || n != 4 {
		t.Fatalf("MetaShards = %d/%v/%v", n, ok, err)
	}
}

// TestChainGapStopsRecovery: a missing middle segment (the footprint
// of a replica resync that died between fetching newer files and
// landing the covering snapshot) must end replay at the contiguous
// prefix — both for read-only LoadState and for Open, which also
// reclaims the orphaned post-gap files.
func TestChainGapStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Shards: 1, SegmentBytes: 1 << 10, Logf: quiet}
	l := openTest(t, cfg)
	for i := 0; i < 40; i++ {
		if err := l.Append("cpu", seq(20, float64(i*20))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(dir, "shard-0000")
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for _, e := range entries {
		if s, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			seqs = append(seqs, s)
		}
	}
	if len(seqs) < 4 {
		t.Fatalf("need >=4 segments to punch a hole, got %d", len(seqs))
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	hole := seqs[len(seqs)/2]
	if err := os.Remove(filepath.Join(shardDir, segmentFile(hole))); err != nil {
		t.Fatal(err)
	}

	rec, cur, err := LoadState(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pos := cur.Pos(0); pos.SegSeq != hole-1 {
		t.Errorf("LoadState stopped at seg %d, want %d (before the hole)", pos.SegSeq, hole-1)
	}
	// The expected state is exactly the pre-gap segments' contents.
	wantTotal := int64(0)
	for _, s := range seqs {
		if s >= hole {
			break
		}
		_, _, _, err := replaySegment(vfs.OS, filepath.Join(shardDir, segmentFile(s)), func(_ string, _ int64, values []float64) {
			wantTotal += int64(len(values))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if wantTotal == 0 || wantTotal >= 40*20 {
		t.Fatalf("bad test setup: pre-gap points = %d", wantTotal)
	}
	if got := rec.Series["cpu"].Total; got != wantTotal {
		t.Errorf("LoadState total = %d, want pre-gap %d", got, wantTotal)
	}

	l2 := openTest(t, cfg)
	defer l2.Close()
	rec2 := l2.Recover()
	if got := rec2.Series["cpu"].Total; got != wantTotal {
		t.Errorf("Open total = %d, want pre-gap %d", got, wantTotal)
	}
	for _, s := range seqs {
		if s <= hole {
			continue
		}
		if _, err := os.Stat(filepath.Join(shardDir, segmentFile(s))); !os.IsNotExist(err) {
			t.Errorf("post-gap segment %d survived Open", s)
		}
	}
}

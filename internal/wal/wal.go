// Package wal implements durable ingest for the streaming hub: a
// per-shard, segmented, append-only write-ahead log with CRC-framed
// binary records, batched fsync, size-based segment rotation,
// point-count retention, and snapshot/replay crash recovery.
//
// Layout under the data directory:
//
//	wal.meta                 shard count, fixed at first open
//	shard-0000/seg-*.wal     append-only segments, rotated by size
//	shard-0000/snap-*.snap   newest checkpoint, covers older segments
//
// Series are hashed (FNV-1a) onto a fixed set of shard logs, each with
// its own mutex, active segment, and write buffer, so appends into
// distinct series rarely contend — mirroring the hub's sharding. The
// shard count is persisted in wal.meta at first open and reused on
// every later open, so a series' records never migrate between shard
// directories when the server's CPU count changes.
//
// Durability contract: with FsyncEvery == 0 every Append returns only
// after its records are flushed and fsynced (strict: an acknowledged
// batch survives kill -9); with FsyncEvery > 0 fsyncs are batched on
// that interval and a crash loses at most the last interval's appends.
// Recovery replays the newest snapshot plus all later segments in
// order; a torn or CRC-corrupt record ends replay of its file, so
// everything acknowledged before the corruption still recovers.
//
// Retention is point-count based: once every series stored in a sealed
// segment has at least HorizonPoints newer points in later segments,
// the segment is deleted whole. Snapshot() additionally compacts all
// sealed segments plus the previous checkpoint into a fresh one, so
// restart replay cost stays proportional to the horizon, not uptime.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-go/asap/internal/fnv"
)

// Defaults for Config fields left zero.
const (
	DefaultShards       = 8
	DefaultSegmentBytes = 8 << 20
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: closed")

// Config configures a Log.
type Config struct {
	// Dir is the data directory. Required; created if missing.
	Dir string
	// Shards is the number of shard logs. Zero means DefaultShards. The
	// value is persisted at first open; later opens reuse the stored
	// count and ignore this field (with a log notice on mismatch).
	Shards int
	// SegmentBytes rotates the active segment once it would exceed this
	// size. Zero means DefaultSegmentBytes. A segment always holds at
	// least one record, so values smaller than a record still work.
	SegmentBytes int64
	// FsyncEvery batches fsyncs on this interval; 0 fsyncs every append.
	FsyncEvery time.Duration
	// HorizonPoints is the per-series retention horizon in raw points:
	// a sealed segment is deleted once every series in it has at least
	// this many newer points. 0 disables retention (segments are only
	// reclaimed by Snapshot).
	HorizonPoints int
	// Logf receives operational messages (torn tails, dropped
	// segments). Nil means log.Printf.
	Logf func(format string, args ...interface{})
	// OnDurable fires after a successful fsync advances a shard's
	// durable watermark — the records it covered are now visible in
	// Manifest and readable by replicas. May run under a shard lock:
	// it must be fast and must not call back into the Log.
	OnDurable func()
	// Metrics, when non-nil, receives append/fsync latency and
	// group-commit batch-size observations. Nil keeps the append path
	// free of clock reads.
	Metrics *Metrics
}

// RecoveryStats describes what the last Open rebuilt.
type RecoveryStats struct {
	SeriesRecovered       int
	SnapshotsLoaded       int
	SegmentsReplayed      int
	RecordsReplayed       int
	PointsReplayed        int
	CorruptRecordsSkipped int
	Duration              time.Duration
}

// Recovery is the state rebuilt by Open, handed to the consumer once
// via Recover.
type Recovery struct {
	Series map[string]*SeriesState
	Stats  RecoveryStats
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	AppendedRecords int64
	AppendedPoints  int64
	Syncs           int64
	SyncErrors      int64
	Rotations       int64
	SegmentsDropped int64
	Snapshots       int64
	// FlushLag is the age of the oldest append not yet fsynced (zero
	// when everything acknowledged is on disk).
	FlushLag time.Duration
	Recovery RecoveryStats
}

// SnapshotResult summarizes one Snapshot call.
type SnapshotResult struct {
	Series          int
	Points          int64
	SegmentsRemoved int
}

// Log is a sharded write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	cfg    Config
	logf   func(format string, args ...interface{})
	shards []*shardLog

	mu        sync.Mutex // guards the one-shot recovery handoff
	recovered *Recovery
	recStats  RecoveryStats

	appendedRecords atomic.Int64
	appendedPoints  atomic.Int64
	syncs           atomic.Int64
	syncErrors      atomic.Int64
	rotations       atomic.Int64
	segmentsDropped atomic.Int64
	snapshots       atomic.Int64

	closed    atomic.Bool
	flushStop chan struct{}
	flushDone chan struct{}
}

// shardLog is one shard's append state. Its mutex covers everything
// below it; the embedded *Log is only touched through atomics and cfg.
type shardLog struct {
	id  int
	dir string
	lg  *Log

	mu          sync.Mutex
	failed      error // first unrecoverable write error; wedges the shard
	active      *os.File
	bw          *bufio.Writer
	info        segmentInfo
	sealed      []segmentInfo // oldest first, all newer than snapSeq
	snapSeq     uint64
	snapPath    string
	snapSize    int64           // valid bytes of the current snapshot file
	snapRecords int64           // intact records in the current snapshot
	snapSeries  map[string]bool // series present in the current snapshot
	nextSeq     uint64
	totals      map[string]int64 // cumulative per-series point totals
	needsSync   bool             // bytes were written since the last fsync
	dirtySince  time.Time        // zero when every append is fsynced
	payload     []byte           // encode scratch
	frame       []byte           // frame scratch

	// Group-commit state. writeSeq ticks on every record written;
	// syncSeq is the highest writeSeq known durable. While a leader
	// fsyncs with the mutex released, syncing is true and rotation,
	// Sync, and Close wait on syncCond rather than racing the fsync;
	// waiting appenders whose writes the fsync covered are released by
	// the leader's broadcast without paying an fsync of their own.
	writeSeq      int64
	syncSeq       int64
	syncing       bool
	syncCond      *sync.Cond // tied to mu
	syncedSize    int64      // durable byte size of the active segment
	syncedRecords int64      // durable record count of the active segment
}

// Open opens (creating if necessary) the log in cfg.Dir, replaying the
// newest snapshot and all later segments into a Recovery that the first
// Recover call hands over. The directory must not be open in another
// live Log.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, errors.New("wal: Dir required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.HorizonPoints < 0 {
		cfg.HorizonPoints = 0
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	shards, err := loadOrInitMeta(cfg.Dir, cfg.Shards, logf)
	if err != nil {
		return nil, err
	}
	cfg.Shards = shards

	l := &Log{cfg: cfg, logf: logf}
	rec := &Recovery{Series: make(map[string]*SeriesState)}
	start := time.Now()
	for i := 0; i < shards; i++ {
		sh, err := l.openShard(i, rec)
		if err != nil {
			l.closeShards()
			return nil, fmt.Errorf("wal: open shard %d: %w", i, err)
		}
		l.shards = append(l.shards, sh)
	}
	// Seed each shard's cumulative totals and trim tails to the horizon
	// (the horizon may have shrunk since the files were written).
	for name, st := range rec.Series {
		if h := cfg.HorizonPoints; h > 0 {
			st.Tail = trimTail(st.Tail, h)
		}
		l.shardFor(name).totals[name] = st.Total
	}
	rec.Stats.SeriesRecovered = len(rec.Series)
	rec.Stats.Duration = time.Since(start)
	l.recStats = rec.Stats
	l.recovered = rec

	if cfg.FsyncEvery > 0 {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// Recover hands over the state rebuilt when the log was opened and
// releases it; a second call returns an empty Recovery. Call it once,
// right after Open, before serving traffic.
func (l *Log) Recover() Recovery {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.recovered == nil {
		return Recovery{Series: map[string]*SeriesState{}, Stats: l.recStats}
	}
	r := *l.recovered
	l.recovered = nil
	return r
}

// Append durably logs one batch for series, chunking large batches
// into multiple records. With FsyncEvery == 0 the batch is on disk
// when Append returns; otherwise the background flusher fsyncs within
// the configured interval. Once a shard hits an unrecoverable write
// error it stays wedged (every Append fails) until the process
// restarts and recovery reseals its segments.
func (l *Log) Append(series string, values []float64) error {
	m := l.cfg.Metrics
	if m == nil {
		return l.append(series, values)
	}
	// No defer closure: keeping the timing wrapper flat is what keeps
	// the instrumented append allocation-free.
	start := time.Now()
	err := l.append(series, values)
	m.AppendSeconds.ObserveDuration(time.Since(start))
	return err
}

func (l *Log) append(series string, values []float64) error {
	if len(values) == 0 {
		return nil
	}
	if l.closed.Load() {
		return ErrClosed
	}
	if series == "" || len(series) > 65535 {
		return fmt.Errorf("wal: invalid series name length %d", len(series))
	}
	sh := l.shardFor(series)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	for off := 0; off < len(values); off += maxPointsPerRecord {
		end := off + maxPointsPerRecord
		if end > len(values) {
			end = len(values)
		}
		total := sh.totals[series] + int64(end-off)
		if err := sh.appendLocked(series, total, values[off:end]); err != nil {
			sh.failed = err
			return err
		}
		sh.totals[series] = total
	}
	if l.cfg.FsyncEvery == 0 {
		// Group commit: concurrent appenders into this shard coalesce
		// into one fsync per leader round instead of paying one each.
		return sh.groupCommitLocked()
	}
	if sh.dirtySince.IsZero() {
		sh.dirtySince = time.Now()
	}
	return nil
}

// Tombstone logs that the consumer dropped series (e.g. LRU eviction):
// recovery discards everything accumulated for it and its cumulative
// total restarts at zero, so a later recreation replays exactly like a
// brand-new series instead of resurrecting stale totals and sequence
// numbers. Durability follows the same FsyncEvery rules as Append.
func (l *Log) Tombstone(series string) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if series == "" || len(series) > 65535 {
		return fmt.Errorf("wal: invalid series name length %d", len(series))
	}
	sh := l.shardFor(series)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	if err := sh.appendLocked(series, 0, nil); err != nil {
		sh.failed = err
		return err
	}
	delete(sh.totals, series)
	if l.cfg.FsyncEvery == 0 {
		return sh.groupCommitLocked()
	}
	if sh.dirtySince.IsZero() {
		sh.dirtySince = time.Now()
	}
	return nil
}

// Sync forces every shard's buffered records to disk. A shard whose
// fsync fails is wedged (see Append) — its acknowledged-but-unsynced
// window can no longer be trusted.
func (l *Log) Sync() error {
	var first error
	for _, sh := range l.shards {
		sh.mu.Lock()
		err := sh.flushSyncLocked()
		if err != nil && sh.failed == nil {
			sh.failed = err
		}
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Snapshot compacts each shard: the active segment is sealed, all
// sealed segments plus the previous checkpoint fold into a new one
// (per-series tails capped at the horizon), and the covered files are
// deleted. Shards compact one at a time, so appends to the others
// proceed while each compacts.
func (l *Log) Snapshot() (SnapshotResult, error) {
	if l.closed.Load() {
		return SnapshotResult{}, ErrClosed
	}
	var res SnapshotResult
	for _, sh := range l.shards {
		r, err := sh.snapshot()
		if err != nil {
			return res, fmt.Errorf("wal: snapshot shard %d: %w", sh.id, err)
		}
		res.Series += r.Series
		res.Points += r.Points
		res.SegmentsRemoved += r.SegmentsRemoved
	}
	l.snapshots.Add(1)
	return res, nil
}

// Stats returns a point-in-time snapshot of the log's counters.
func (l *Log) Stats() Stats {
	st := Stats{
		AppendedRecords: l.appendedRecords.Load(),
		AppendedPoints:  l.appendedPoints.Load(),
		Syncs:           l.syncs.Load(),
		SyncErrors:      l.syncErrors.Load(),
		Rotations:       l.rotations.Load(),
		SegmentsDropped: l.segmentsDropped.Load(),
		Snapshots:       l.snapshots.Load(),
		Recovery:        l.recStats,
	}
	for _, sh := range l.shards {
		sh.mu.Lock()
		if !sh.dirtySince.IsZero() {
			if lag := time.Since(sh.dirtySince); lag > st.FlushLag {
				st.FlushLag = lag
			}
		}
		sh.mu.Unlock()
	}
	return st
}

// Close flushes, fsyncs, and closes every shard. Idempotent. Each
// shard is wedged with ErrClosed under its own lock, so an Append that
// raced past the closed flag still fails instead of buffering records
// nothing will ever flush — a false ack would be silent data loss.
func (l *Log) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	var first error
	for _, sh := range l.shards {
		sh.mu.Lock()
		if err := sh.flushSyncLocked(); err != nil && first == nil {
			first = err
		}
		if err := sh.active.Close(); err != nil && first == nil {
			first = err
		}
		if sh.failed == nil {
			sh.failed = ErrClosed
		}
		sh.mu.Unlock()
	}
	return first
}

// shardFor routes by the same FNV-1a the hub shards with, so spread
// stays uniform for the same workloads; the mapping itself is
// independent of the hub's (recovery merges every shard regardless).
func (l *Log) shardFor(series string) *shardLog {
	return l.shards[fnv.Hash32a(series)%uint32(len(l.shards))]
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			for _, sh := range l.shards {
				sh.mu.Lock()
				if !sh.dirtySince.IsZero() && sh.failed == nil {
					if err := sh.flushSyncLocked(); err != nil {
						// A failed fsync may have dropped the dirty pages
						// (Linux EIO semantics): the acknowledged-but-unsynced
						// window is already suspect, and a later "successful"
						// fsync would hide that. Wedge the shard so further
						// ingest fails loudly instead of acknowledging into
						// a log that silently lost data.
						sh.failed = err
						l.logf("wal: shard %d: flush failed, shard wedged: %v", sh.id, err)
					}
				}
				sh.mu.Unlock()
			}
		}
	}
}

func (l *Log) closeShards() {
	for _, sh := range l.shards {
		if sh.active != nil {
			sh.active.Close()
		}
	}
}

// metaFile pins the shard count so a series' records never move between
// shard directories across restarts (e.g. when GOMAXPROCS changes).
const metaFile = "wal.meta"

func loadOrInitMeta(dir string, shards int, logf func(string, ...interface{})) (int, error) {
	path := filepath.Join(dir, metaFile)
	data, err := os.ReadFile(path)
	if err == nil {
		var n int
		if _, serr := fmt.Sscanf(string(data), "asap-wal v1 shards %d", &n); serr != nil || n <= 0 || n > 4096 {
			return 0, fmt.Errorf("wal: bad meta file %s: %q", path, data)
		}
		if n != shards {
			logf("wal: using %d shards recorded in %s (config asked for %d)", n, path, shards)
		}
		return n, nil
	}
	if !os.IsNotExist(err) {
		return 0, err
	}
	// Same write→fsync→rename→dirsync dance as snapshots: the rename
	// must never become durable ahead of the contents, or a power loss
	// leaves a truncated meta file that blocks every later Open.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := fmt.Fprintf(f, "asap-wal v1 shards %d\n", shards); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return shards, nil
}

// openShard opens one shard directory: loads the newest snapshot and
// replays every later segment into rec, deletes files the snapshot
// covers (leftovers of a crash mid-compaction), and starts a fresh
// active segment after the highest sequence seen — recovery never
// appends to a possibly-torn file.
func (l *Log) openShard(id int, rec *Recovery) (*shardLog, error) {
	dir := filepath.Join(l.cfg.Dir, fmt.Sprintf("shard-%04d", id))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sh := &shardLog{id: id, dir: dir, lg: l, totals: make(map[string]int64)}
	sh.syncCond = sync.NewCond(&sh.mu)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segSeqs, snapSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseSeq(name, segmentPrefix, segmentSuffix); ok {
			segSeqs = append(segSeqs, seq)
		} else if seq, ok := parseSeq(name, snapshotPrefix, snapshotSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		} else if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // crashed atomic write
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	var maxSeq uint64
	if len(snapSeqs) > 0 {
		snapSeq := snapSeqs[len(snapSeqs)-1]
		for _, s := range snapSeqs[:len(snapSeqs)-1] {
			os.Remove(filepath.Join(dir, snapshotFile(s)))
		}
		path := filepath.Join(dir, snapshotFile(snapSeq))
		fromSnap := make(map[string]*SeriesState)
		records, skipped, validSize, err := readSnapshot(path, fromSnap)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			l.logf("wal: shard %d: snapshot %s: corrupt tail skipped after %d records", id, path, records)
		}
		// Remember which series the checkpoint holds: retention must not
		// drop a later tombstone while its series still sits in the
		// snapshot, or a restart would resurrect it.
		sh.snapSeries = make(map[string]bool, len(fromSnap))
		for name, st := range fromSnap {
			rec.Series[name] = st
			sh.snapSeries[name] = true
		}
		rec.Stats.RecordsReplayed += records
		rec.Stats.CorruptRecordsSkipped += skipped
		rec.Stats.SnapshotsLoaded++
		sh.snapSeq, sh.snapPath = snapSeq, path
		sh.snapSize, sh.snapRecords = validSize, int64(records)
		maxSeq = snapSeq
	}

	var lastSeq uint64
	for i, seq := range segSeqs {
		path := filepath.Join(dir, segmentFile(seq))
		if sh.snapPath != "" && seq <= sh.snapSeq {
			os.Remove(path) // covered by the snapshot
			continue
		}
		// A broken chain can only be a replica mirror whose resync died
		// between fetching newer files and landing the covering snapshot
		// (a primary's own segments are contiguous by construction). The
		// contiguous prefix is the last consistent state; everything past
		// the gap is an incomplete refetch and must not fold in.
		if lastSeq != 0 && seq != lastSeq+1 {
			l.logf("wal: shard %d: segment chain gap at %d (after %d): dropping %d later segments from an incomplete resync",
				id, seq, lastSeq, len(segSeqs)-i)
			for _, drop := range segSeqs[i:] {
				os.Remove(filepath.Join(dir, segmentFile(drop)))
			}
			break
		}
		lastSeq = seq
		info := segmentInfo{seq: seq, path: path, counts: make(map[string]int64)}
		records, skipped, validSize, err := replaySegment(path, func(series string, total int64, values []float64) {
			if total == 0 && len(values) == 0 { // tombstone: series was dropped
				if info.tombs == nil {
					info.tombs = make(map[string]bool)
				}
				info.tombs[series] = true
			} else {
				info.counts[series] += int64(len(values))
				delete(info.tombs, series) // same last-event invariant as appendLocked
				rec.Stats.PointsReplayed += len(values)
			}
			FoldRecord(rec.Series, series, total, values, l.cfg.HorizonPoints)
		})
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			l.logf("wal: shard %d: segment %s: torn or corrupt tail skipped after %d records", id, path, records)
		}
		// The valid (record-aligned) size, not the raw file size: a torn
		// tail must be invisible to the replication manifest, or a
		// follower would fetch bytes that can never decode.
		info.size = validSize
		info.records = int64(records)
		rec.Stats.SegmentsReplayed++
		rec.Stats.RecordsReplayed += records
		rec.Stats.CorruptRecordsSkipped += skipped
		sh.sealed = append(sh.sealed, info)
		if seq > maxSeq {
			maxSeq = seq
		}
	}

	sh.nextSeq = maxSeq + 1
	if err := sh.openActiveLocked(); err != nil {
		return nil, err
	}
	return sh, nil
}

func (sh *shardLog) openActiveLocked() error {
	seq := sh.nextSeq
	sh.nextSeq++
	path := filepath.Join(sh.dir, segmentFile(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	if _, err := bw.WriteString(segmentMagic); err != nil {
		f.Close()
		return err
	}
	sh.active, sh.bw = f, bw
	sh.needsSync = true // the magic header is buffered
	sh.info = segmentInfo{seq: seq, path: path, size: int64(len(segmentMagic)), counts: make(map[string]int64)}
	sh.syncedSize, sh.syncedRecords = 0, 0 // nothing of the new file is durable yet
	return nil
}

func (sh *shardLog) appendLocked(series string, total int64, values []float64) error {
	sh.payload = appendRecordPayload(sh.payload[:0], series, total, values)
	sh.frame = appendFrame(sh.frame[:0], sh.payload)
	rec := sh.frame
	if sh.info.size > int64(len(segmentMagic)) && sh.info.size+int64(len(rec)) > sh.lg.cfg.SegmentBytes {
		if err := sh.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := sh.bw.Write(rec); err != nil {
		return err
	}
	sh.needsSync = true
	sh.writeSeq++
	sh.info.size += int64(len(rec))
	sh.info.records++
	if len(values) > 0 {
		sh.info.counts[series] += int64(len(values))
		// A recreation after an in-segment tombstone: the tombstone no
		// longer ends the series' life in this segment.
		delete(sh.info.tombs, series)
	} else {
		// A tombstone: tracked so retention knows the series' life (in
		// this segment and every older one) is dead — it must neither
		// pin segments on a series that will never see newer points nor
		// count as points itself. The invariant, maintained with the
		// delete above, is "series ∈ tombs ⇔ its last event in this
		// segment is a tombstone".
		if sh.info.tombs == nil {
			sh.info.tombs = make(map[string]bool)
		}
		sh.info.tombs[series] = true
	}
	sh.lg.appendedRecords.Add(1)
	sh.lg.appendedPoints.Add(int64(len(values)))
	return nil
}

func (sh *shardLog) flushSyncLocked() error {
	// A group-commit leader may be fsyncing with the mutex released;
	// wait it out so the flush below never races the leader's Sync or
	// a rotation out from under it.
	for sh.syncing {
		sh.syncCond.Wait()
	}
	// needsSync, not bw.Buffered(), decides: bufio writes records larger
	// than its buffer straight through, so an empty buffer does not mean
	// the file is synced.
	if !sh.needsSync {
		return nil
	}
	if err := sh.bw.Flush(); err != nil {
		sh.lg.syncErrors.Add(1)
		return err
	}
	m := sh.lg.cfg.Metrics
	pending := sh.writeSeq - sh.syncSeq
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	if err := sh.active.Sync(); err != nil {
		sh.lg.syncErrors.Add(1)
		return err
	}
	if m != nil {
		m.FsyncSeconds.ObserveDuration(time.Since(start))
		m.FsyncBatchRecords.Observe(float64(pending))
	}
	sh.lg.syncs.Add(1)
	sh.needsSync = false
	sh.dirtySince = time.Time{}
	sh.syncSeq = sh.writeSeq
	sh.syncedSize, sh.syncedRecords = sh.info.size, sh.info.records
	sh.syncCond.Broadcast()
	if sh.lg.cfg.OnDurable != nil {
		sh.lg.cfg.OnDurable()
	}
	return nil
}

// groupCommitLocked makes every record written so far durable,
// coalescing concurrent strict-mode appenders into one fsync: the
// first appender to arrive flushes the shared buffer under the lock,
// then releases it for the fsync so the others keep buffering records
// behind it; when the leader returns, everyone whose writes the fsync
// covered is released together, and one straggler whose write landed
// during the fsync becomes the next leader. Called with sh.mu held;
// returns with it held. A failed flush or fsync wedges the shard, like
// every other durability failure.
func (sh *shardLog) groupCommitLocked() error {
	target := sh.writeSeq
	for {
		if sh.failed != nil {
			return sh.failed
		}
		if sh.syncSeq >= target {
			return nil
		}
		if sh.syncing {
			sh.syncCond.Wait()
			continue
		}
		// Become the leader: flush under the lock (cheap memcpy into the
		// kernel), fsync without it (the slow part).
		if err := sh.bw.Flush(); err != nil {
			sh.lg.syncErrors.Add(1)
			sh.failed = err
			sh.syncCond.Broadcast()
			return err
		}
		covered, size, records := sh.writeSeq, sh.info.size, sh.info.records
		batch := covered - sh.syncSeq // captured under the lock: syncSeq is stable while syncing
		f := sh.active
		sh.syncing = true
		sh.mu.Unlock()
		m := sh.lg.cfg.Metrics
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		err := f.Sync()
		if m != nil && err == nil {
			m.FsyncSeconds.ObserveDuration(time.Since(start))
			m.FsyncBatchRecords.Observe(float64(batch))
		}
		sh.mu.Lock()
		sh.syncing = false
		if err != nil {
			sh.lg.syncErrors.Add(1)
			sh.failed = err
			sh.syncCond.Broadcast()
			return err
		}
		sh.lg.syncs.Add(1)
		if covered > sh.syncSeq {
			sh.syncSeq = covered
			sh.syncedSize, sh.syncedRecords = size, records
			if sh.lg.cfg.OnDurable != nil {
				sh.lg.cfg.OnDurable()
			}
		}
		if sh.writeSeq == covered {
			sh.needsSync = false
			sh.dirtySince = time.Time{}
		}
		sh.syncCond.Broadcast()
	}
}

func (sh *shardLog) rotateLocked() error {
	if err := sh.flushSyncLocked(); err != nil {
		return err
	}
	if err := sh.active.Close(); err != nil {
		return err
	}
	sh.sealed = append(sh.sealed, sh.info)
	sh.lg.rotations.Add(1)
	// Open the fresh segment before running retention: retainLocked
	// seeds its "newer points" count from sh.info, which must be the
	// new empty active, not the segment just sealed — otherwise a
	// segment's own points would count as newer than themselves and a
	// big segment could drop while still inside the horizon.
	if err := sh.openActiveLocked(); err != nil {
		return err
	}
	sh.retainLocked()
	return nil
}

// retainLocked drops the longest prefix of sealed segments in which
// every series already has at least HorizonPoints newer points (in
// later sealed segments or the active one) or is tombstoned in a newer
// segment — an evicted series' old points are dead and must not pin
// segments forever. A segment holding any series still inside its
// horizon survives whole — retention is all-or-nothing per segment, so
// replay never loses mid-horizon points.
func (sh *shardLog) retainLocked() {
	h := int64(sh.lg.cfg.HorizonPoints)
	if h <= 0 || len(sh.sealed) == 0 {
		return
	}
	newer := make(map[string]int64, len(sh.info.counts))
	for s, c := range sh.info.counts {
		newer[s] = c
	}
	dead := make(map[string]bool, len(sh.info.tombs))
	for s := range sh.info.tombs {
		dead[s] = true
	}
	droppable := make([]bool, len(sh.sealed))
	for i := len(sh.sealed) - 1; i >= 0; i-- {
		ok := true
		for s := range sh.sealed[i].counts {
			// A segment's own tombstone entry means the series' last event
			// here is a tombstone, so its points in this segment (and all
			// older ones) are dead — safe to honor for the segment itself.
			if !dead[s] && !sh.sealed[i].tombs[s] && newer[s] < h {
				ok = false
				break
			}
		}
		// A tombstone masking a series still present in the snapshot is
		// load-bearing: dropping it would resurrect the series (with its
		// stale total) from the checkpoint on restart. Keep the segment
		// until a compaction folds the tombstone into a new snapshot.
		if ok {
			for s := range sh.sealed[i].tombs {
				if sh.snapSeries[s] {
					ok = false
					break
				}
			}
		}
		droppable[i] = ok
		for s, c := range sh.sealed[i].counts {
			newer[s] += c
		}
		for s := range sh.sealed[i].tombs {
			dead[s] = true
		}
	}
	drop := 0
	for drop < len(sh.sealed) && droppable[drop] {
		drop++
	}
	if drop == 0 {
		return
	}
	for i := 0; i < drop; i++ {
		if err := os.Remove(sh.sealed[i].path); err != nil {
			sh.lg.logf("wal: drop segment %s: %v", sh.sealed[i].path, err)
		}
	}
	sh.sealed = append(sh.sealed[:0:0], sh.sealed[drop:]...)
	sh.lg.segmentsDropped.Add(int64(drop))
}

func (sh *shardLog) snapshot() (SnapshotResult, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failed != nil {
		return SnapshotResult{}, sh.failed
	}
	if sh.info.size > int64(len(segmentMagic)) {
		if err := sh.rotateLocked(); err != nil {
			sh.failed = err
			return SnapshotResult{}, err
		}
	}
	if len(sh.sealed) == 0 {
		return SnapshotResult{}, nil // nothing new since the last checkpoint
	}

	state := make(map[string]*SeriesState)
	if sh.snapPath != "" {
		if _, skipped, _, err := readSnapshot(sh.snapPath, state); err != nil {
			return SnapshotResult{}, err
		} else if skipped > 0 {
			sh.lg.logf("wal: shard %d: snapshot %s: corrupt tail skipped during compaction", sh.id, sh.snapPath)
		}
	}
	h := sh.lg.cfg.HorizonPoints
	for _, seg := range sh.sealed {
		_, skipped, _, err := replaySegment(seg.path, func(series string, total int64, values []float64) {
			FoldRecord(state, series, total, values, h)
		})
		if err != nil {
			return SnapshotResult{}, err
		}
		if skipped > 0 {
			sh.lg.logf("wal: shard %d: segment %s: torn or corrupt tail skipped during compaction", sh.id, seg.path)
		}
	}

	covered := sh.sealed[len(sh.sealed)-1].seq
	path, snapRecords, snapSize, err := writeSnapshot(sh.dir, covered, state)
	if err != nil {
		return SnapshotResult{}, err
	}
	// The new checkpoint is durable; everything it covers goes.
	if sh.snapPath != "" && sh.snapPath != path {
		os.Remove(sh.snapPath)
	}
	removed := len(sh.sealed)
	for _, seg := range sh.sealed {
		os.Remove(seg.path)
	}
	sh.sealed = sh.sealed[:0]
	sh.snapSeq, sh.snapPath = covered, path
	sh.snapSize, sh.snapRecords = snapSize, snapRecords
	sh.snapSeries = make(map[string]bool, len(state))
	for name := range state {
		sh.snapSeries[name] = true
	}

	var pts int64
	for _, st := range state {
		pts += int64(len(st.Tail))
	}
	return SnapshotResult{Series: len(state), Points: pts, SegmentsRemoved: removed}, nil
}

// trimTail keeps the last h points of t in place.
func trimTail(t []float64, h int) []float64 {
	if len(t) <= h {
		return t
	}
	n := copy(t, t[len(t)-h:])
	return t[:n]
}

// Package wal implements durable ingest for the streaming hub: a
// per-shard, segmented, append-only write-ahead log with CRC-framed
// binary records, batched fsync, size-based segment rotation,
// point-count retention, and snapshot/replay crash recovery.
//
// Layout under the data directory:
//
//	wal.meta                 shard count, fixed at first open
//	shard-0000/seg-*.wal     append-only segments, rotated by size
//	shard-0000/snap-*.snap   newest checkpoint, covers older segments
//
// Series are hashed (FNV-1a) onto a fixed set of shard logs, each with
// its own mutex, active segment, and write buffer, so appends into
// distinct series rarely contend — mirroring the hub's sharding. The
// shard count is persisted in wal.meta at first open and reused on
// every later open, so a series' records never migrate between shard
// directories when the server's CPU count changes.
//
// Durability contract: with FsyncEvery == 0 every Append returns only
// after its records are flushed and fsynced (strict: an acknowledged
// batch survives kill -9); with FsyncEvery > 0 fsyncs are batched on
// that interval and a crash loses at most the last interval's appends.
// Recovery replays the newest snapshot plus all later segments in
// order; a torn or CRC-corrupt record ends replay of its file, so
// everything acknowledged before the corruption still recovers.
//
// Retention is point-count based: once every series stored in a sealed
// segment has at least HorizonPoints newer points in later segments,
// the segment is deleted whole. Snapshot() additionally compacts all
// sealed segments plus the previous checkpoint into a fresh one, so
// restart replay cost stays proportional to the horizon, not uptime.
//
// Failure handling: a write or fsync error puts the affected shard in
// a degraded state — appends fail fast with ErrDegraded while a
// background loop retries with capped exponential backoff, reopening a
// fresh segment and re-landing the acknowledged-but-not-yet-durable
// tail before clearing degradation. After Config.ReopenRetries failed
// attempts (when positive) the shard wedges permanently, the pre-
// degradation behavior. See docs/RESILIENCE.md for the full contract.
package wal

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-go/asap/internal/fnv"
	"github.com/asap-go/asap/internal/obs/trace"
	"github.com/asap-go/asap/internal/vfs"
)

// Defaults for Config fields left zero.
const (
	DefaultShards       = 8
	DefaultSegmentBytes = 8 << 20
	// DefaultReopenBackoff / DefaultReopenMaxBackoff bound the
	// degraded-shard reopen retry schedule when Config leaves them zero.
	DefaultReopenBackoff    = 50 * time.Millisecond
	DefaultReopenMaxBackoff = 5 * time.Second
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrDegraded reports an append to a shard whose durability is
// temporarily broken: a write or fsync failed, and a background loop
// is retrying the segment. The failure is retryable — callers should
// back off and try again (HTTP handlers translate it to 503 +
// Retry-After) — and reads are unaffected. Test with errors.Is.
var ErrDegraded = errors.New("wal: shard degraded, durability failure being retried")

// FS is the filesystem seam the log writes through (an alias of
// vfs.FS, which lives in its own package so fault injectors can
// implement it without an import cycle). Config.FS defaults to the
// real filesystem.
type FS = vfs.FS

// Config configures a Log.
type Config struct {
	// Dir is the data directory. Required; created if missing.
	Dir string
	// Shards is the number of shard logs. Zero means DefaultShards. The
	// value is persisted at first open; later opens reuse the stored
	// count and ignore this field (with a log notice on mismatch).
	Shards int
	// SegmentBytes rotates the active segment once it would exceed this
	// size. Zero means DefaultSegmentBytes. A segment always holds at
	// least one record, so values smaller than a record still work.
	SegmentBytes int64
	// FsyncEvery batches fsyncs on this interval; 0 fsyncs every append.
	FsyncEvery time.Duration
	// HorizonPoints is the per-series retention horizon in raw points:
	// a sealed segment is deleted once every series in it has at least
	// this many newer points. 0 disables retention (segments are only
	// reclaimed by Snapshot).
	HorizonPoints int
	// Logf receives operational messages (torn tails, dropped
	// segments). Nil means log.Printf.
	Logf func(format string, args ...interface{})
	// OnDurable fires after a successful fsync advances a shard's
	// durable watermark — the records it covered are now visible in
	// Manifest and readable by replicas. May run under a shard lock:
	// it must be fast and must not call back into the Log.
	OnDurable func()
	// Metrics, when non-nil, receives append/fsync latency and
	// group-commit batch-size observations. Nil keeps the append path
	// free of clock reads.
	Metrics *Metrics
	// FS is the filesystem the log's mutations go through. Nil means
	// the real filesystem; tests inject internal/faultfs here.
	FS FS
	// ReopenRetries bounds how many consecutive reopen attempts a
	// degraded shard gets before it wedges permanently. Zero retries
	// forever; negative disables degraded mode entirely (the first
	// durability failure wedges, the pre-degradation behavior).
	ReopenRetries int
	// ReopenBackoff and ReopenMaxBackoff shape the reopen retry
	// schedule: capped exponential backoff with jitter, starting at
	// ReopenBackoff and never exceeding ReopenMaxBackoff. Zeroes mean
	// DefaultReopenBackoff / DefaultReopenMaxBackoff.
	ReopenBackoff    time.Duration
	ReopenMaxBackoff time.Duration
}

// RecoveryStats describes what the last Open rebuilt.
type RecoveryStats struct {
	SeriesRecovered       int
	SnapshotsLoaded       int
	SegmentsReplayed      int
	RecordsReplayed       int
	PointsReplayed        int
	CorruptRecordsSkipped int
	Duration              time.Duration
}

// Recovery is the state rebuilt by Open, handed to the consumer once
// via Recover.
type Recovery struct {
	Series map[string]*SeriesState
	Stats  RecoveryStats
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	AppendedRecords int64
	AppendedPoints  int64
	Syncs           int64
	SyncErrors      int64
	Rotations       int64
	SegmentsDropped int64
	Snapshots       int64
	// FlushLag is the age of the oldest append not yet fsynced (zero
	// when everything acknowledged is on disk).
	FlushLag time.Duration
	// DegradedShards counts shards currently in the degraded state
	// (durability broken, reopen retries in flight); WedgedShards
	// counts shards that gave up permanently. ReopenAttempts and
	// ReopenRecoveries are lifetime totals across all shards.
	DegradedShards   int
	WedgedShards     int
	ReopenAttempts   int64
	ReopenRecoveries int64
	Recovery         RecoveryStats
}

// SnapshotResult summarizes one Snapshot call.
type SnapshotResult struct {
	Series          int
	Points          int64
	SegmentsRemoved int
}

// Log is a sharded write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	cfg    Config
	logf   func(format string, args ...interface{})
	fs     vfs.FS
	shards []*shardLog

	mu        sync.Mutex // guards the one-shot recovery handoff
	recovered *Recovery
	recStats  RecoveryStats

	appendedRecords  atomic.Int64
	appendedPoints   atomic.Int64
	syncs            atomic.Int64
	syncErrors       atomic.Int64
	rotations        atomic.Int64
	segmentsDropped  atomic.Int64
	snapshots        atomic.Int64
	reopenAttempts   atomic.Int64
	reopenRecoveries atomic.Int64

	closed    atomic.Bool
	flushStop chan struct{}
	flushDone chan struct{}

	// The degraded-shard reopen loop: kicked when a shard degrades,
	// re-armed on each retry schedule. Nil when ReopenRetries < 0.
	reopenStop chan struct{}
	reopenKick chan struct{}
	reopenDone chan struct{}
}

// shardLog is one shard's append state. Its mutex covers everything
// below it; the embedded *Log is only touched through atomics and cfg.
type shardLog struct {
	id  int
	dir string
	lg  *Log

	mu          sync.Mutex
	failed      error    // non-nil while degraded or wedged; cleared by a successful reopen
	degraded    bool     // durability broken, reopen retries scheduled
	terminal    bool     // gave up (or degraded mode disabled): wedged until restart
	active      vfs.File // nil only while degraded mid-reopen
	bw          *bufio.Writer
	info        segmentInfo
	sealed      []segmentInfo // oldest first, all newer than snapSeq
	snapSeq     uint64
	snapPath    string
	snapSize    int64           // valid bytes of the current snapshot file
	snapRecords int64           // intact records in the current snapshot
	snapSeries  map[string]bool // series present in the current snapshot
	nextSeq     uint64
	totals      map[string]int64 // cumulative per-series point totals
	needsSync   bool             // bytes were written since the last fsync
	dirtySince  time.Time        // zero when every append is fsynced
	payload     []byte           // encode scratch
	frame       []byte           // frame scratch

	// Group-commit state. writeSeq ticks on every record written;
	// syncSeq is the highest writeSeq known durable. While a leader
	// fsyncs with the mutex released, syncing is true and rotation,
	// Sync, and Close wait on syncCond rather than racing the fsync;
	// waiting appenders whose writes the fsync covered are released by
	// the leader's broadcast without paying an fsync of their own.
	writeSeq      int64
	syncSeq       int64
	syncing       bool
	syncCond      *sync.Cond // tied to mu
	syncedSize    int64      // durable byte size of the active segment
	syncedRecords int64      // durable record count of the active segment

	// The acknowledged-but-not-yet-durable tail: one entry per record
	// written since the last covering fsync, with the framed bytes in
	// pendingBuf. If durability breaks, a successful reopen re-lands
	// exactly these records in the fresh segment — nothing acknowledged
	// is lost, nothing unacknowledged is resurrected. Both slices are
	// reused across fsync cycles, so the steady-state append path stays
	// allocation-free.
	pending    []pendingRec
	pendingBuf []byte

	// Degraded-state bookkeeping, meaningful only while degraded.
	degradedSince  time.Time
	reopenAttempts int       // consecutive failures this episode
	nextReopen     time.Time // earliest next attempt
}

// pendingRec locates one not-yet-durable record in pendingBuf plus the
// metadata needed to rebuild segment retention counts on reopen and,
// via prevTotal/hadPrev, to undo the shard's cumulative-total update
// exactly (in reverse write order) when the record is rolled back
// instead of re-landed — an unacknowledged record must leave no trace,
// or later totals would count phantom points and misalign sequence
// numbers after a restart.
type pendingRec struct {
	name      string
	points    int
	tomb      bool
	off       int
	n         int
	prevTotal int64
	hadPrev   bool
}

// Open opens (creating if necessary) the log in cfg.Dir, replaying the
// newest snapshot and all later segments into a Recovery that the first
// Recover call hands over. The directory must not be open in another
// live Log.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, errors.New("wal: Dir required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.HorizonPoints < 0 {
		cfg.HorizonPoints = 0
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS
	}
	if cfg.ReopenBackoff <= 0 {
		cfg.ReopenBackoff = DefaultReopenBackoff
	}
	if cfg.ReopenMaxBackoff <= 0 {
		cfg.ReopenMaxBackoff = DefaultReopenMaxBackoff
	}
	if cfg.ReopenMaxBackoff < cfg.ReopenBackoff {
		cfg.ReopenMaxBackoff = cfg.ReopenBackoff
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	shards, err := loadOrInitMeta(cfg.Dir, cfg.Shards, logf)
	if err != nil {
		return nil, err
	}
	cfg.Shards = shards

	l := &Log{cfg: cfg, logf: logf, fs: cfg.FS}
	rec := &Recovery{Series: make(map[string]*SeriesState)}
	start := time.Now()
	for i := 0; i < shards; i++ {
		sh, err := l.openShard(i, rec)
		if err != nil {
			l.closeShards()
			return nil, fmt.Errorf("wal: open shard %d: %w", i, err)
		}
		l.shards = append(l.shards, sh)
	}
	// Seed each shard's cumulative totals and trim tails to the horizon
	// (the horizon may have shrunk since the files were written).
	for name, st := range rec.Series {
		if h := cfg.HorizonPoints; h > 0 {
			st.Tail = trimTail(st.Tail, h)
		}
		l.shardFor(name).totals[name] = st.Total
	}
	rec.Stats.SeriesRecovered = len(rec.Series)
	rec.Stats.Duration = time.Since(start)
	l.recStats = rec.Stats
	l.recovered = rec

	if cfg.FsyncEvery > 0 {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	if cfg.ReopenRetries >= 0 {
		l.reopenStop = make(chan struct{})
		l.reopenKick = make(chan struct{}, 1)
		l.reopenDone = make(chan struct{})
		go l.reopenLoop()
	}
	return l, nil
}

// Recover hands over the state rebuilt when the log was opened and
// releases it; a second call returns an empty Recovery. Call it once,
// right after Open, before serving traffic.
func (l *Log) Recover() Recovery {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.recovered == nil {
		return Recovery{Series: map[string]*SeriesState{}, Stats: l.recStats}
	}
	r := *l.recovered
	l.recovered = nil
	return r
}

// Append durably logs one batch for series, chunking large batches
// into multiple records. With FsyncEvery == 0 the batch is on disk
// when Append returns; otherwise the background flusher fsyncs within
// the configured interval. A write or fsync failure degrades the shard
// — appends fail fast with ErrDegraded while a background loop retries
// the segment — until either a reopen succeeds (appends resume, every
// previously acknowledged record intact) or Config.ReopenRetries runs
// out and the shard wedges until the process restarts.
func (l *Log) Append(series string, values []float64) error {
	m := l.cfg.Metrics
	if m == nil {
		return l.append(series, values, nil)
	}
	// No defer closure: keeping the timing wrapper flat is what keeps
	// the instrumented append allocation-free.
	start := time.Now()
	err := l.append(series, values, nil)
	m.AppendSeconds.ObserveDuration(time.Since(start))
	return err
}

// AppendContext is Append with tracing: when ctx carries a recorded
// trace, the call runs under a "wal.append" child span (strict mode
// adds a "wal.fsync" child attributing the group-commit leader wait
// vs. the sync itself) and the append-latency observation carries the
// trace id as an OpenMetrics exemplar. With no recorded trace it is
// exactly Append — the span probe costs zero allocations.
func (l *Log) AppendContext(ctx context.Context, series string, values []float64) error {
	_, sp := trace.StartSpan(ctx, "wal.append")
	if sp == nil {
		return l.Append(series, values)
	}
	sp.SetInt("points", int64(len(values)))
	m := l.cfg.Metrics
	start := time.Now()
	err := l.append(series, values, sp)
	if err != nil {
		sp.SetError(err.Error())
	}
	if m != nil {
		m.AppendSeconds.ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
	}
	sp.End()
	return err
}

func (l *Log) append(series string, values []float64, sp *trace.Span) error {
	if len(values) == 0 {
		return nil
	}
	if l.closed.Load() {
		return ErrClosed
	}
	if series == "" || len(series) > 65535 {
		return fmt.Errorf("wal: invalid series name length %d", len(series))
	}
	sh := l.shardFor(series)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	// Mark the pending tail so a failed call's own records can be
	// rolled back: they were never acknowledged, so a later reopen must
	// not resurrect them (the hub never applied them either).
	mark := len(sh.pending)
	for off := 0; off < len(values); off += maxPointsPerRecord {
		end := off + maxPointsPerRecord
		if end > len(values) {
			end = len(values)
		}
		total := sh.totals[series] + int64(end-off)
		if err := sh.appendLocked(series, total, values[off:end]); err != nil {
			sh.rollbackPendingLocked(mark)
			return sh.degradeLocked("append", err)
		}
		sh.totals[series] = total
	}
	if l.cfg.FsyncEvery == 0 {
		// Group commit: concurrent appenders into this shard coalesce
		// into one fsync per leader round instead of paying one each.
		fsp := sp.Child("wal.fsync")
		err := sh.groupCommitLocked(fsp)
		fsp.End()
		return err
	}
	sp.SetStr("fsync", "batched") // durability deferred to the flush loop
	if sh.dirtySince.IsZero() {
		sh.dirtySince = time.Now()
	}
	return nil
}

// Tombstone logs that the consumer dropped series (e.g. LRU eviction):
// recovery discards everything accumulated for it and its cumulative
// total restarts at zero, so a later recreation replays exactly like a
// brand-new series instead of resurrecting stale totals and sequence
// numbers. Durability follows the same FsyncEvery rules as Append.
func (l *Log) Tombstone(series string) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if series == "" || len(series) > 65535 {
		return fmt.Errorf("wal: invalid series name length %d", len(series))
	}
	sh := l.shardFor(series)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	mark := len(sh.pending)
	if err := sh.appendLocked(series, 0, nil); err != nil {
		sh.rollbackPendingLocked(mark)
		return sh.degradeLocked("append", err)
	}
	delete(sh.totals, series)
	if l.cfg.FsyncEvery == 0 {
		return sh.groupCommitLocked(nil)
	}
	if sh.dirtySince.IsZero() {
		sh.dirtySince = time.Now()
	}
	return nil
}

// Sync forces every shard's buffered records to disk. A shard whose
// fsync fails degrades (see Append) — its acknowledged-but-unsynced
// window is re-landed by the background reopen before appends resume.
func (l *Log) Sync() error {
	var first error
	for _, sh := range l.shards {
		sh.mu.Lock()
		err := sh.flushSyncLocked()
		if err != nil && sh.failed == nil {
			err = sh.degradeLocked("fsync", err)
		}
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Snapshot compacts each shard: the active segment is sealed, all
// sealed segments plus the previous checkpoint fold into a new one
// (per-series tails capped at the horizon), and the covered files are
// deleted. Shards compact one at a time, so appends to the others
// proceed while each compacts.
func (l *Log) Snapshot() (SnapshotResult, error) {
	if l.closed.Load() {
		return SnapshotResult{}, ErrClosed
	}
	var res SnapshotResult
	for _, sh := range l.shards {
		r, err := sh.snapshot()
		if err != nil {
			return res, fmt.Errorf("wal: snapshot shard %d: %w", sh.id, err)
		}
		res.Series += r.Series
		res.Points += r.Points
		res.SegmentsRemoved += r.SegmentsRemoved
	}
	l.snapshots.Add(1)
	return res, nil
}

// Stats returns a point-in-time snapshot of the log's counters.
func (l *Log) Stats() Stats {
	st := Stats{
		AppendedRecords:  l.appendedRecords.Load(),
		AppendedPoints:   l.appendedPoints.Load(),
		Syncs:            l.syncs.Load(),
		SyncErrors:       l.syncErrors.Load(),
		Rotations:        l.rotations.Load(),
		SegmentsDropped:  l.segmentsDropped.Load(),
		Snapshots:        l.snapshots.Load(),
		ReopenAttempts:   l.reopenAttempts.Load(),
		ReopenRecoveries: l.reopenRecoveries.Load(),
		Recovery:         l.recStats,
	}
	for _, sh := range l.shards {
		sh.mu.Lock()
		if !sh.dirtySince.IsZero() {
			if lag := time.Since(sh.dirtySince); lag > st.FlushLag {
				st.FlushLag = lag
			}
		}
		if sh.degraded {
			st.DegradedShards++
		}
		if sh.terminal {
			st.WedgedShards++
		}
		sh.mu.Unlock()
	}
	return st
}

// Close flushes, fsyncs, and closes every shard. Idempotent. Each
// shard is wedged with ErrClosed under its own lock, so an Append that
// raced past the closed flag still fails instead of buffering records
// nothing will ever flush — a false ack would be silent data loss.
func (l *Log) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	if l.reopenStop != nil {
		close(l.reopenStop)
		<-l.reopenDone
	}
	var first error
	for _, sh := range l.shards {
		sh.mu.Lock()
		if err := sh.flushSyncLocked(); err != nil && first == nil {
			first = err
		}
		if sh.degraded && len(sh.pending) > 0 {
			// Closing a degraded shard abandons its re-land buffer: these
			// records were acknowledged but never reached disk.
			l.logf("wal: shard %d: closed while degraded, %d acknowledged records lost", sh.id, len(sh.pending))
		}
		if sh.active != nil {
			if err := sh.active.Close(); err != nil && first == nil {
				first = err
			}
		}
		if sh.failed == nil {
			sh.failed = ErrClosed
		}
		sh.mu.Unlock()
	}
	return first
}

// shardFor routes by the same FNV-1a the hub shards with, so spread
// stays uniform for the same workloads; the mapping itself is
// independent of the hub's (recovery merges every shard regardless).
func (l *Log) shardFor(series string) *shardLog {
	return l.shards[fnv.Hash32a(series)%uint32(len(l.shards))]
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			for _, sh := range l.shards {
				sh.mu.Lock()
				if !sh.dirtySince.IsZero() && sh.failed == nil {
					if err := sh.flushSyncLocked(); err != nil {
						// A failed fsync may have dropped the dirty pages
						// (Linux EIO semantics): the acknowledged-but-unsynced
						// window can no longer be trusted to the current file
						// handle, and a later "successful" fsync would hide
						// that. Degrade the shard: ingest fails loudly while
						// the reopen loop rebuilds durability from the last
						// known-synced prefix plus the pending tail it holds
						// in memory.
						sh.degradeLocked("flush", err)
					}
				}
				sh.mu.Unlock()
			}
		}
	}
}

func (l *Log) closeShards() {
	for _, sh := range l.shards {
		if sh.active != nil {
			sh.active.Close()
		}
	}
}

// metaFile pins the shard count so a series' records never move between
// shard directories across restarts (e.g. when GOMAXPROCS changes).
const metaFile = "wal.meta"

func loadOrInitMeta(dir string, shards int, logf func(string, ...interface{})) (int, error) {
	path := filepath.Join(dir, metaFile)
	data, err := os.ReadFile(path)
	if err == nil {
		var n int
		if _, serr := fmt.Sscanf(string(data), "asap-wal v1 shards %d", &n); serr != nil || n <= 0 || n > 4096 {
			return 0, fmt.Errorf("wal: bad meta file %s: %q", path, data)
		}
		if n != shards {
			logf("wal: using %d shards recorded in %s (config asked for %d)", n, path, shards)
		}
		return n, nil
	}
	if !os.IsNotExist(err) {
		return 0, err
	}
	// Same write→fsync→rename→dirsync dance as snapshots: the rename
	// must never become durable ahead of the contents, or a power loss
	// leaves a truncated meta file that blocks every later Open.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := fmt.Fprintf(f, "asap-wal v1 shards %d\n", shards); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return shards, nil
}

// openShard opens one shard directory: loads the newest snapshot and
// replays every later segment into rec, deletes files the snapshot
// covers (leftovers of a crash mid-compaction), and starts a fresh
// active segment after the highest sequence seen — recovery never
// appends to a possibly-torn file.
func (l *Log) openShard(id int, rec *Recovery) (*shardLog, error) {
	dir := filepath.Join(l.cfg.Dir, fmt.Sprintf("shard-%04d", id))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sh := &shardLog{id: id, dir: dir, lg: l, totals: make(map[string]int64)}
	sh.syncCond = sync.NewCond(&sh.mu)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segSeqs, snapSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseSeq(name, segmentPrefix, segmentSuffix); ok {
			segSeqs = append(segSeqs, seq)
		} else if seq, ok := parseSeq(name, snapshotPrefix, snapshotSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		} else if strings.HasSuffix(name, ".tmp") {
			l.fs.Remove(filepath.Join(dir, name)) // crashed atomic write
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	var maxSeq uint64
	if len(snapSeqs) > 0 {
		snapSeq := snapSeqs[len(snapSeqs)-1]
		for _, s := range snapSeqs[:len(snapSeqs)-1] {
			l.fs.Remove(filepath.Join(dir, snapshotFile(s)))
		}
		path := filepath.Join(dir, snapshotFile(snapSeq))
		fromSnap := make(map[string]*SeriesState)
		records, skipped, validSize, err := readSnapshot(l.fs, path, fromSnap)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			l.logf("wal: shard %d: snapshot %s: corrupt tail skipped after %d records", id, path, records)
		}
		// Remember which series the checkpoint holds: retention must not
		// drop a later tombstone while its series still sits in the
		// snapshot, or a restart would resurrect it.
		sh.snapSeries = make(map[string]bool, len(fromSnap))
		for name, st := range fromSnap {
			rec.Series[name] = st
			sh.snapSeries[name] = true
		}
		rec.Stats.RecordsReplayed += records
		rec.Stats.CorruptRecordsSkipped += skipped
		rec.Stats.SnapshotsLoaded++
		sh.snapSeq, sh.snapPath = snapSeq, path
		sh.snapSize, sh.snapRecords = validSize, int64(records)
		maxSeq = snapSeq
	}

	var lastSeq uint64
	for i, seq := range segSeqs {
		path := filepath.Join(dir, segmentFile(seq))
		if sh.snapPath != "" && seq <= sh.snapSeq {
			l.fs.Remove(path) // covered by the snapshot
			continue
		}
		// A broken chain can only be a replica mirror whose resync died
		// between fetching newer files and landing the covering snapshot
		// (a primary's own segments are contiguous by construction). The
		// contiguous prefix is the last consistent state; everything past
		// the gap is an incomplete refetch and must not fold in.
		if lastSeq != 0 && seq != lastSeq+1 {
			l.logf("wal: shard %d: segment chain gap at %d (after %d): dropping %d later segments from an incomplete resync",
				id, seq, lastSeq, len(segSeqs)-i)
			for _, drop := range segSeqs[i:] {
				l.fs.Remove(filepath.Join(dir, segmentFile(drop)))
			}
			break
		}
		lastSeq = seq
		info := segmentInfo{seq: seq, path: path, counts: make(map[string]int64)}
		records, skipped, validSize, err := replaySegment(l.fs, path, func(series string, total int64, values []float64) {
			if total == 0 && len(values) == 0 { // tombstone: series was dropped
				if info.tombs == nil {
					info.tombs = make(map[string]bool)
				}
				info.tombs[series] = true
			} else {
				info.counts[series] += int64(len(values))
				delete(info.tombs, series) // same last-event invariant as appendLocked
				rec.Stats.PointsReplayed += len(values)
			}
			FoldRecord(rec.Series, series, total, values, l.cfg.HorizonPoints)
		})
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			l.logf("wal: shard %d: segment %s: torn or corrupt tail skipped after %d records", id, path, records)
		}
		// The valid (record-aligned) size, not the raw file size: a torn
		// tail must be invisible to the replication manifest, or a
		// follower would fetch bytes that can never decode.
		info.size = validSize
		info.records = int64(records)
		rec.Stats.SegmentsReplayed++
		rec.Stats.RecordsReplayed += records
		rec.Stats.CorruptRecordsSkipped += skipped
		sh.sealed = append(sh.sealed, info)
		if seq > maxSeq {
			maxSeq = seq
		}
	}

	sh.nextSeq = maxSeq + 1
	if err := sh.openActiveLocked(); err != nil {
		return nil, err
	}
	return sh, nil
}

func (sh *shardLog) openActiveLocked() error {
	seq := sh.nextSeq
	path := filepath.Join(sh.dir, segmentFile(seq))
	f, err := sh.lg.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		// nextSeq is untouched on failure so a reopen retry reuses this
		// sequence — a skipped number would read as a chain gap.
		return err
	}
	sh.nextSeq++
	bw := bufio.NewWriterSize(f, 64<<10)
	if _, err := bw.WriteString(segmentMagic); err != nil {
		f.Close()
		return err
	}
	sh.active, sh.bw = f, bw
	sh.needsSync = true // the magic header is buffered
	sh.info = segmentInfo{seq: seq, path: path, size: int64(len(segmentMagic)), counts: make(map[string]int64)}
	sh.syncedSize, sh.syncedRecords = 0, 0 // nothing of the new file is durable yet
	return nil
}

func (sh *shardLog) appendLocked(series string, total int64, values []float64) error {
	sh.payload = appendRecordPayload(sh.payload[:0], series, total, values)
	sh.frame = appendFrame(sh.frame[:0], sh.payload)
	rec := sh.frame
	if sh.info.size > int64(len(segmentMagic)) && sh.info.size+int64(len(rec)) > sh.lg.cfg.SegmentBytes {
		if err := sh.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := sh.bw.Write(rec); err != nil {
		return err
	}
	sh.needsSync = true
	sh.writeSeq++
	sh.info.size += int64(len(rec))
	sh.info.records++
	// Keep the framed bytes until an fsync covers them: if durability
	// breaks first, the reopen re-lands them in a fresh segment (or an
	// unacknowledged one is rolled back, totals included).
	off := len(sh.pendingBuf)
	prevTotal, hadPrev := sh.totals[series]
	sh.pendingBuf = append(sh.pendingBuf, rec...)
	sh.pending = append(sh.pending, pendingRec{
		name: series, points: len(values), tomb: len(values) == 0, off: off, n: len(rec),
		prevTotal: prevTotal, hadPrev: hadPrev,
	})
	if len(values) > 0 {
		sh.info.counts[series] += int64(len(values))
		// A recreation after an in-segment tombstone: the tombstone no
		// longer ends the series' life in this segment.
		delete(sh.info.tombs, series)
	} else {
		// A tombstone: tracked so retention knows the series' life (in
		// this segment and every older one) is dead — it must neither
		// pin segments on a series that will never see newer points nor
		// count as points itself. The invariant, maintained with the
		// delete above, is "series ∈ tombs ⇔ its last event in this
		// segment is a tombstone".
		if sh.info.tombs == nil {
			sh.info.tombs = make(map[string]bool)
		}
		sh.info.tombs[series] = true
	}
	sh.lg.appendedRecords.Add(1)
	sh.lg.appendedPoints.Add(int64(len(values)))
	return nil
}

func (sh *shardLog) flushSyncLocked() error {
	// A group-commit leader may be fsyncing with the mutex released;
	// wait it out so the flush below never races the leader's Sync or
	// a rotation out from under it.
	for sh.syncing {
		sh.syncCond.Wait()
	}
	// A degraded or wedged shard has no trustworthy handle (it may even
	// be nil mid-reopen); the reopen loop owns making it durable again.
	if sh.failed != nil {
		return sh.failed
	}
	// needsSync, not bw.Buffered(), decides: bufio writes records larger
	// than its buffer straight through, so an empty buffer does not mean
	// the file is synced.
	if !sh.needsSync {
		return nil
	}
	if err := sh.bw.Flush(); err != nil {
		sh.lg.syncErrors.Add(1)
		return err
	}
	m := sh.lg.cfg.Metrics
	pending := sh.writeSeq - sh.syncSeq
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	if err := sh.active.Sync(); err != nil {
		sh.lg.syncErrors.Add(1)
		return err
	}
	if m != nil {
		m.FsyncSeconds.ObserveDuration(time.Since(start))
		m.FsyncBatchRecords.Observe(float64(pending))
	}
	sh.lg.syncs.Add(1)
	sh.needsSync = false
	sh.dirtySince = time.Time{}
	sh.syncSeq = sh.writeSeq
	sh.syncedSize, sh.syncedRecords = sh.info.size, sh.info.records
	sh.dropPendingLocked(len(sh.pending)) // everything written is now durable
	sh.syncCond.Broadcast()
	if sh.lg.cfg.OnDurable != nil {
		sh.lg.cfg.OnDurable()
	}
	return nil
}

// groupCommitLocked makes every record written so far durable,
// coalescing concurrent strict-mode appenders into one fsync: the
// first appender to arrive flushes the shared buffer under the lock,
// then releases it for the fsync so the others keep buffering records
// behind it; when the leader returns, everyone whose writes the fsync
// covered is released together, and one straggler whose write landed
// during the fsync becomes the next leader. Called with sh.mu held;
// returns with it held. A failed flush or fsync degrades the shard,
// like every other durability failure; in strict mode nothing unsynced
// was ever acknowledged, so degradeLocked drops the pending tail and
// every parked appender reports the failure to its caller.
//
// The optional span receives the leader-vs-wait attribution: leader
// rounds record the sync itself as sync_ns (the span's remaining
// duration is queueing behind the lock or a previous leader), waiters
// record leader=false so their whole span reads as group-commit wait.
func (sh *shardLog) groupCommitLocked(sp *trace.Span) error {
	target := sh.writeSeq
	leader := false
	for {
		if sh.failed != nil {
			return sh.failed
		}
		if sh.syncSeq >= target {
			sp.SetBool("leader", leader)
			return nil
		}
		if sh.syncing {
			sh.syncCond.Wait()
			continue
		}
		// Become the leader: flush under the lock (cheap memcpy into the
		// kernel), fsync without it (the slow part).
		if err := sh.bw.Flush(); err != nil {
			sh.lg.syncErrors.Add(1)
			err = sh.degradeLocked("flush", err)
			sh.syncCond.Broadcast()
			return err
		}
		covered, size, records := sh.writeSeq, sh.info.size, sh.info.records
		batch := covered - sh.syncSeq // captured under the lock: syncSeq is stable while syncing
		f := sh.active
		sh.syncing = true
		leader = true
		sh.mu.Unlock()
		m := sh.lg.cfg.Metrics
		var start time.Time
		if m != nil || sp != nil {
			start = time.Now()
		}
		err := f.Sync()
		if err == nil {
			syncDur := time.Since(start)
			if m != nil {
				m.FsyncSeconds.ObserveDuration(syncDur)
				m.FsyncBatchRecords.Observe(float64(batch))
			}
			sp.SetInt("sync_ns", syncDur.Nanoseconds())
			sp.SetInt("batch_records", batch)
		}
		sh.mu.Lock()
		sh.syncing = false
		if err != nil {
			sh.lg.syncErrors.Add(1)
			err = sh.degradeLocked("fsync", err)
			sh.syncCond.Broadcast()
			return err
		}
		sh.lg.syncs.Add(1)
		if covered > sh.syncSeq {
			sh.dropPendingLocked(int(covered - sh.syncSeq))
			sh.syncSeq = covered
			sh.syncedSize, sh.syncedRecords = size, records
			if sh.lg.cfg.OnDurable != nil {
				sh.lg.cfg.OnDurable()
			}
		}
		if sh.writeSeq == covered {
			sh.needsSync = false
			sh.dirtySince = time.Time{}
		}
		sh.syncCond.Broadcast()
	}
}

func (sh *shardLog) rotateLocked() error {
	if err := sh.flushSyncLocked(); err != nil {
		return err
	}
	if err := sh.active.Close(); err != nil {
		return err
	}
	sh.sealed = append(sh.sealed, sh.info)
	// The old handle is sealed and gone; clear it before opening the
	// next file so a failure below (e.g. ENOSPC creating the segment)
	// leaves state the reopen loop recognizes: active == nil means
	// "durable prefix already sealed, just need a fresh segment".
	sh.active, sh.bw = nil, nil
	sh.lg.rotations.Add(1)
	// Open the fresh segment before running retention: retainLocked
	// seeds its "newer points" count from sh.info, which must be the
	// new empty active, not the segment just sealed — otherwise a
	// segment's own points would count as newer than themselves and a
	// big segment could drop while still inside the horizon.
	if err := sh.openActiveLocked(); err != nil {
		return err
	}
	sh.retainLocked()
	return nil
}

// retainLocked drops the longest prefix of sealed segments in which
// every series already has at least HorizonPoints newer points (in
// later sealed segments or the active one) or is tombstoned in a newer
// segment — an evicted series' old points are dead and must not pin
// segments forever. A segment holding any series still inside its
// horizon survives whole — retention is all-or-nothing per segment, so
// replay never loses mid-horizon points.
func (sh *shardLog) retainLocked() {
	h := int64(sh.lg.cfg.HorizonPoints)
	if h <= 0 || len(sh.sealed) == 0 {
		return
	}
	newer := make(map[string]int64, len(sh.info.counts))
	for s, c := range sh.info.counts {
		newer[s] = c
	}
	dead := make(map[string]bool, len(sh.info.tombs))
	for s := range sh.info.tombs {
		dead[s] = true
	}
	droppable := make([]bool, len(sh.sealed))
	for i := len(sh.sealed) - 1; i >= 0; i-- {
		ok := true
		for s := range sh.sealed[i].counts {
			// A segment's own tombstone entry means the series' last event
			// here is a tombstone, so its points in this segment (and all
			// older ones) are dead — safe to honor for the segment itself.
			if !dead[s] && !sh.sealed[i].tombs[s] && newer[s] < h {
				ok = false
				break
			}
		}
		// A tombstone masking a series still present in the snapshot is
		// load-bearing: dropping it would resurrect the series (with its
		// stale total) from the checkpoint on restart. Keep the segment
		// until a compaction folds the tombstone into a new snapshot.
		if ok {
			for s := range sh.sealed[i].tombs {
				if sh.snapSeries[s] {
					ok = false
					break
				}
			}
		}
		droppable[i] = ok
		for s, c := range sh.sealed[i].counts {
			newer[s] += c
		}
		for s := range sh.sealed[i].tombs {
			dead[s] = true
		}
	}
	drop := 0
	for drop < len(sh.sealed) && droppable[drop] {
		drop++
	}
	if drop == 0 {
		return
	}
	for i := 0; i < drop; i++ {
		if err := sh.lg.fs.Remove(sh.sealed[i].path); err != nil {
			sh.lg.logf("wal: drop segment %s: %v", sh.sealed[i].path, err)
		}
	}
	sh.sealed = append(sh.sealed[:0:0], sh.sealed[drop:]...)
	sh.lg.segmentsDropped.Add(int64(drop))
}

func (sh *shardLog) snapshot() (SnapshotResult, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failed != nil {
		return SnapshotResult{}, sh.failed
	}
	if sh.info.size > int64(len(segmentMagic)) {
		if err := sh.rotateLocked(); err != nil {
			return SnapshotResult{}, sh.degradeLocked("rotate", err)
		}
	}
	if len(sh.sealed) == 0 {
		return SnapshotResult{}, nil // nothing new since the last checkpoint
	}

	state := make(map[string]*SeriesState)
	if sh.snapPath != "" {
		if _, skipped, _, err := readSnapshot(sh.lg.fs, sh.snapPath, state); err != nil {
			return SnapshotResult{}, err
		} else if skipped > 0 {
			sh.lg.logf("wal: shard %d: snapshot %s: corrupt tail skipped during compaction", sh.id, sh.snapPath)
		}
	}
	h := sh.lg.cfg.HorizonPoints
	for _, seg := range sh.sealed {
		_, skipped, _, err := replaySegment(sh.lg.fs, seg.path, func(series string, total int64, values []float64) {
			FoldRecord(state, series, total, values, h)
		})
		if err != nil {
			return SnapshotResult{}, err
		}
		if skipped > 0 {
			sh.lg.logf("wal: shard %d: segment %s: torn or corrupt tail skipped during compaction", sh.id, seg.path)
		}
	}

	covered := sh.sealed[len(sh.sealed)-1].seq
	path, snapRecords, snapSize, err := writeSnapshot(sh.lg.fs, sh.dir, covered, state)
	if err != nil {
		return SnapshotResult{}, err
	}
	// The new checkpoint is durable; everything it covers goes.
	if sh.snapPath != "" && sh.snapPath != path {
		sh.lg.fs.Remove(sh.snapPath)
	}
	removed := len(sh.sealed)
	for _, seg := range sh.sealed {
		sh.lg.fs.Remove(seg.path)
	}
	sh.sealed = sh.sealed[:0]
	sh.snapSeq, sh.snapPath = covered, path
	sh.snapSize, sh.snapRecords = snapSize, snapRecords
	sh.snapSeries = make(map[string]bool, len(state))
	for name := range state {
		sh.snapSeries[name] = true
	}

	var pts int64
	for _, st := range state {
		pts += int64(len(st.Tail))
	}
	return SnapshotResult{Series: len(state), Points: pts, SegmentsRemoved: removed}, nil
}

// trimTail keeps the last h points of t in place.
func trimTail(t []float64, h int) []float64 {
	if len(t) <= h {
		return t
	}
	n := copy(t, t[len(t)-h:])
	return t[:n]
}

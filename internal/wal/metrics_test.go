package wal

import (
	"testing"

	"github.com/asap-go/asap/internal/obs"
)

// TestMetricsObserved wires a Metrics into a strict-mode log and checks
// that appends land in all three histograms: append latency, fsync
// latency, and the per-fsync batch size.
func TestMetricsObserved(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Metrics{
		AppendSeconds:     reg.Histogram(obs.Opts{Name: "t_append_seconds"}, obs.ExpBuckets(1e-6, 10, 8)),
		FsyncSeconds:      reg.Histogram(obs.Opts{Name: "t_fsync_seconds"}, obs.ExpBuckets(1e-6, 10, 8)),
		FsyncBatchRecords: reg.Histogram(obs.Opts{Name: "t_batch_records"}, []float64{1, 8, 64}),
	}
	l, err := Open(Config{Dir: t.TempDir(), Shards: 1, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Recover()

	for i := 0; i < 3; i++ {
		if err := l.Append("cpu", []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.AppendSeconds.Count(); got != 3 {
		t.Fatalf("append observations = %d, want 3", got)
	}
	if m.FsyncSeconds.Count() == 0 {
		t.Fatal("no fsync observations in strict mode")
	}
	if m.FsyncBatchRecords.Count() != m.FsyncSeconds.Count() {
		t.Fatalf("batch observations %d != fsync observations %d",
			m.FsyncBatchRecords.Count(), m.FsyncSeconds.Count())
	}
	// Sequential strict appends are one record per fsync.
	if sum := m.FsyncBatchRecords.Sum(); sum < 3 {
		t.Fatalf("batch record sum = %v, want >= 3", sum)
	}
}

package wal

// Torn-write recovery matrix: TestTornTailReplay checks one arbitrary
// truncation; this test checks every one. A crash can stop a write at
// any byte, so the segment is cut at every offset inside its last
// record and both recovery paths — Open (primary restart) and
// LoadState (follower restart) — must return exactly the two-record
// prefix at every cut. Run via make chaos-check.

import (
	"os"
	"path/filepath"
	"testing"
)

// copyDir clones the WAL directory (wal.meta plus shard dirs) so each
// truncation point gets a pristine copy to corrupt.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			copyDir(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTornWriteMatrix(t *testing.T) {
	base := t.TempDir()
	cfg := testConfig(base)
	cfg.Shards = 1
	l := openTest(t, cfg)
	if err := l.Append("s", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("s", seq(5, 50)); err != nil {
		t.Fatal(err)
	}
	// Strict mode (FsyncEvery 0) flushes every append, so on-disk sizes
	// are exact without closing.
	segPath := newestSegment(t, base, 0)
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	prefixSize := fi.Size() // boundary before the last record
	if err := l.Append("s", seq(4, 500)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	fullSize := fi.Size()
	if fullSize <= prefixSize {
		t.Fatalf("last record added no bytes: %d -> %d", prefixSize, fullSize)
	}
	segName := filepath.Base(segPath)

	wantTail := append(seq(10, 0), seq(5, 50)...)
	for cut := prefixSize; cut < fullSize; cut++ {
		dir := t.TempDir()
		copyDir(t, base, dir)
		torn := filepath.Join(dir, "shard-0000", segName)
		if err := os.Truncate(torn, cut); err != nil {
			t.Fatal(err)
		}
		wantSkipped := 1
		if cut == prefixSize {
			wantSkipped = 0 // clean cut at the record boundary: nothing torn
		}

		// Follower path: LoadState must stop at the record-aligned prefix
		// and report a cursor replication can resume from.
		rec, cur, err := LoadState(dir, cfg.HorizonPoints)
		if err != nil {
			t.Fatalf("cut %d: LoadState: %v", cut, err)
		}
		requireSeries(t, *rec, "s", wantTail, 15)
		if got := rec.Stats.CorruptRecordsSkipped; got != wantSkipped {
			t.Errorf("cut %d: LoadState skipped %d records, want %d", cut, got, wantSkipped)
		}
		if got := cur.Shards[0].Offset; got != prefixSize {
			t.Errorf("cut %d: cursor offset %d, want record-aligned prefix %d", cut, got, prefixSize)
		}

		// Primary path: Open must recover the same prefix and keep serving.
		cfg2 := testConfig(dir)
		cfg2.Shards = 1
		l2 := openTest(t, cfg2)
		rec2 := l2.Recover()
		requireSeries(t, rec2, "s", wantTail, 15)
		if got := rec2.Stats.CorruptRecordsSkipped; got != wantSkipped {
			t.Errorf("cut %d: Open skipped %d records, want %d", cut, got, wantSkipped)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

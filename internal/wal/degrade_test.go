package wal

// Fault-matrix tests for graceful degradation: every scenario injects
// a scripted I/O fault through internal/faultfs, asserts the shard
// degrades instead of wedging, heals the fault, and verifies the
// recovered log is bit-identical to what an unfaulted run would hold.
// Run via make chaos-check.

import (
	"errors"
	"math"
	"syscall"
	"testing"
	"time"

	"github.com/asap-go/asap/internal/faultfs"
)

// chaosConfig is testConfig plus an injector and a fast reopen
// schedule so recovery tests finish in milliseconds.
func chaosConfig(dir string, ffs *faultfs.FS) Config {
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.FS = ffs
	cfg.SegmentBytes = DefaultSegmentBytes // no incidental rotation
	cfg.ReopenBackoff = time.Millisecond
	cfg.ReopenMaxBackoff = 20 * time.Millisecond
	return cfg
}

func waitRecovered(t *testing.T, l *Log) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := l.Stats()
		if st.DegradedShards == 0 && st.WedgedShards == 0 && st.ReopenRecoveries > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("shard never recovered: %+v", l.Stats())
}

// requireSeries asserts the recovered series has exactly the given
// tail (bit-for-bit) and cumulative total.
func requireSeries(t *testing.T, rec Recovery, name string, wantTail []float64, wantTotal int64) {
	t.Helper()
	st := rec.Series[name]
	if st == nil {
		t.Fatalf("series %q lost", name)
	}
	if st.Total != wantTotal {
		t.Fatalf("%q total = %d, want %d", name, st.Total, wantTotal)
	}
	if len(st.Tail) != len(wantTail) {
		t.Fatalf("%q tail = %d points, want %d", name, len(st.Tail), len(wantTail))
	}
	for i := range wantTail {
		if math.Float64bits(st.Tail[i]) != math.Float64bits(wantTail[i]) {
			t.Fatalf("%q tail[%d] = %v, want %v", name, i, st.Tail[i], wantTail[i])
		}
	}
}

// TestChaosFsyncFailThenRecover: batched mode, every acknowledged
// record is still in the pending buffer when the fsync fails. The
// shard must degrade (ErrDegraded, not a wedge), refuse new appends,
// then — once the fault clears — reopen and re-land the acknowledged
// tail so a restart recovers exactly what an unfaulted run would.
func TestChaosFsyncFailThenRecover(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	cfg := chaosConfig(dir, ffs)
	cfg.FsyncEvery = time.Hour // Sync() drives fsync deterministically
	l := openTest(t, cfg)

	if err := l.Append("s", seq(20, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("s", seq(10, 100)); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, Err: syscall.EIO})
	if err := l.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync under fault = %v, want ErrDegraded", err)
	}
	if ffs.Fired(faultfs.OpSync) == 0 {
		t.Fatal("fsync fault never fired")
	}
	if err := l.Append("s", seq(1, 999)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Append while degraded = %v, want ErrDegraded", err)
	}
	if st := l.Stats(); st.DegradedShards != 1 || st.WedgedShards != 0 {
		t.Fatalf("Stats = %+v, want exactly one degraded shard", st)
	}

	ffs.Clear() // the disk comes back
	waitRecovered(t, l)
	if err := l.Append("s", seq(5, 200)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, testConfigShards1(dir))
	defer l2.Close()
	want := append(append(seq(20, 0), seq(10, 100)...), seq(5, 200)...)
	requireSeries(t, l2.Recover(), "s", want, 35)
}

// TestChaosEnospcMidRotation: the disk fills exactly when rotation
// creates the next segment. The failing append is unacknowledged and
// must leave no trace; after the fault clears the shard recovers with
// a contiguous segment chain.
func TestChaosEnospcMidRotation(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	cfg := chaosConfig(dir, ffs)
	cfg.FsyncEvery = time.Hour
	cfg.SegmentBytes = 1 << 10 // rotate quickly
	l := openTest(t, cfg)

	if err := l.Append("s", seq(100, 0)); err != nil { // ~850 bytes
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpOpen, Path: segmentPrefix, Err: syscall.ENOSPC})
	err := l.Append("s", seq(100, 1000)) // would rotate
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("rotating append under ENOSPC = %v, want ErrDegraded", err)
	}
	if ffs.Fired(faultfs.OpOpen) == 0 {
		t.Fatal("open fault never fired")
	}

	ffs.Clear()
	waitRecovered(t, l)
	if err := l.Append("s", seq(100, 1000)); err != nil { // client retry succeeds
		t.Fatalf("retried append after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, testConfigShards1(dir))
	defer l2.Close()
	rec := l2.Recover()
	want := append(seq(100, 0), seq(100, 1000)...)
	requireSeries(t, rec, "s", want, 200)
	if rec.Stats.CorruptRecordsSkipped != 0 {
		t.Errorf("recovery skipped %d records; the chain should be clean", rec.Stats.CorruptRecordsSkipped)
	}
}

// TestChaosTornFlushRecovers: the flush lands only a prefix of a
// record (a torn write) before failing. The reopen must truncate the
// damage back to the durable watermark and re-land the acknowledged
// tail from memory.
func TestChaosTornFlushRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	cfg := chaosConfig(dir, ffs)
	cfg.FsyncEvery = time.Hour
	l := openTest(t, cfg)

	if err := l.Append("s", seq(15, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // durable prefix on disk
		t.Fatal(err)
	}
	if err := l.Append("s", seq(15, 100)); err != nil { // acked, buffered
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: segmentPrefix, ShortWrite: 7, Err: syscall.EIO})
	if err := l.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync with torn write = %v, want ErrDegraded", err)
	}

	ffs.Clear()
	waitRecovered(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, testConfigShards1(dir))
	defer l2.Close()
	rec := l2.Recover()
	want := append(seq(15, 0), seq(15, 100)...)
	requireSeries(t, rec, "s", want, 30)
	if rec.Stats.CorruptRecordsSkipped != 0 {
		t.Errorf("recovery skipped %d records; reopen should have cut the torn bytes", rec.Stats.CorruptRecordsSkipped)
	}
}

// TestChaosReopenGiveUpWedges: with ReopenRetries bounded and the
// fault never clearing, the shard exhausts its retries and falls back
// to the terminal wedge — and the error callers see stops being
// retryable.
func TestChaosReopenGiveUpWedges(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	cfg := chaosConfig(dir, ffs)
	cfg.FsyncEvery = time.Hour
	cfg.ReopenRetries = 2
	l := openTest(t, cfg)
	defer l.Close()

	if err := l.Append("s", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, Err: syscall.EIO})
	if err := l.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync = %v, want ErrDegraded", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := l.Stats(); st.WedgedShards == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := l.Stats()
	if st.WedgedShards != 1 || st.DegradedShards != 0 {
		t.Fatalf("Stats = %+v, want one wedged shard", st)
	}
	if st.ReopenAttempts != 2 {
		t.Errorf("ReopenAttempts = %d, want exactly ReopenRetries=2", st.ReopenAttempts)
	}
	err := l.Append("s", seq(1, 0))
	if err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("Append on wedged shard = %v, want a terminal (non-retryable) error", err)
	}
}

// TestChaosStrictModeFailedAppendLeavesNoTrace: in strict mode a
// failed append was never acknowledged, so after recovery the log must
// hold no trace of it — not its points, and not a phantom bump of the
// cumulative total (which would misalign sequence numbers forever).
func TestChaosStrictModeFailedAppendLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	cfg := chaosConfig(dir, ffs)
	cfg.FsyncEvery = 0 // strict: ack == durable
	l := openTest(t, cfg)

	if err := l.Append("s", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, Nth: 1})
	if err := l.Append("s", seq(5, 500)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("strict append under fsync fault = %v, want ErrDegraded", err)
	}

	ffs.Clear()
	waitRecovered(t, l)
	if err := l.Append("s", seq(7, 100)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, testConfigShards1(dir))
	defer l2.Close()
	// The failed 5-point batch must be absent and the total must be
	// 17, not 22 — exactly as if the failed call never happened.
	want := append(seq(10, 0), seq(7, 100)...)
	requireSeries(t, l2.Recover(), "s", want, 17)
}

// TestChaosReopenDisabled: ReopenRetries < 0 restores the historical
// wedge-on-first-failure behavior.
func TestChaosReopenDisabled(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	cfg := chaosConfig(dir, ffs)
	cfg.FsyncEvery = time.Hour
	cfg.ReopenRetries = -1
	l := openTest(t, cfg)
	defer l.Close()

	if err := l.Append("s", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Fault{Op: faultfs.OpSync, Err: syscall.EIO})
	err := l.Sync()
	if err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync = %v, want the raw terminal error", err)
	}
	if st := l.Stats(); st.WedgedShards != 1 || st.DegradedShards != 0 {
		t.Fatalf("Stats = %+v, want an immediate wedge", st)
	}
}

// testConfigShards1 is testConfig pinned to one shard so reopened
// directories match the chaos configs above.
func testConfigShards1(dir string) Config {
	cfg := testConfig(dir)
	cfg.Shards = 1
	return cfg
}

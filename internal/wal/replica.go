package wal

// This file holds the follower-side helpers for WAL shipping: read-only
// state loading from a mirrored data directory, a durable replication
// cursor recording how far apply progressed, and record replay resuming
// from a cursor — the pieces internal/replica builds its tailer on.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/asap-go/asap/internal/fnv"
	"github.com/asap-go/asap/internal/vfs"
)

// ShardOf returns the shard a series hashes onto for the given shard
// count — the same FNV-1a routing Append uses, exported so a replica
// can reason about which shard's records own a series.
func ShardOf(series string, shards int) int {
	return int(fnv.Hash32a(series) % uint32(shards))
}

// CursorPos is one shard's replication position: the snapshot the local
// mirror bootstrapped from, the segment apply has reached, and the
// record-aligned byte offset (absolute within that segment file, magic
// included) plus record count applied from it.
type CursorPos struct {
	SnapSeq uint64 `json:"snap_seq"`
	SegSeq  uint64 `json:"seg_seq"`
	Offset  int64  `json:"offset"`
	Records int64  `json:"records"`
}

// Cursor is a follower's durable replication cursor across all shards.
type Cursor struct {
	Shards []CursorPos `json:"shards"`
}

// Pos returns shard's position (zero value beyond the recorded range).
func (c Cursor) Pos(shard int) CursorPos {
	if shard < 0 || shard >= len(c.Shards) {
		return CursorPos{}
	}
	return c.Shards[shard]
}

// cursorFile is the follower's durable apply watermark, stored beside
// the mirrored shard directories.
const cursorFile = "replica.cursor"

// ReadCursor loads the replication cursor stored in dir. ok is false
// when none has been written yet.
func ReadCursor(dir string) (c Cursor, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, cursorFile))
	if os.IsNotExist(err) {
		return Cursor{}, false, nil
	}
	if err != nil {
		return Cursor{}, false, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return Cursor{}, false, fmt.Errorf("wal: bad cursor file: %w", err)
	}
	return c, true, nil
}

// WriteCursor durably records the replication cursor in dir with the
// same write→fsync→rename discipline as every other control file.
func WriteCursor(dir string, c Cursor) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, cursorFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// InitMeta pins shards as dir's shard count, creating the meta file if
// missing; with one already present the stored count must match. A
// follower mirroring a primary calls this before writing shard files so
// its data directory opens exactly like the primary's.
func InitMeta(dir string, shards int) error {
	if shards <= 0 || shards > 4096 {
		return fmt.Errorf("wal: invalid shard count %d", shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	got, err := loadOrInitMeta(dir, shards, func(string, ...interface{}) {})
	if err != nil {
		return err
	}
	if got != shards {
		return fmt.Errorf("wal: %s already holds %d shards, want %d", dir, got, shards)
	}
	return nil
}

// MetaShards reports the shard count recorded in dir's meta file; ok is
// false when the directory holds no write-ahead log yet.
func MetaShards(dir string) (shards int, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	var n int
	if _, serr := fmt.Sscanf(string(data), "asap-wal v1 shards %d", &n); serr != nil || n <= 0 || n > 4096 {
		return 0, false, fmt.Errorf("wal: bad meta file in %s: %q", dir, data)
	}
	return n, true, nil
}

// LoadState is read-only recovery: it replays dir's newest snapshots
// plus all later segments into a Recovery exactly like Open, but
// creates nothing, deletes nothing, and leaves no active segment — the
// warm-restart path for a follower that keeps tailing a primary rather
// than opening the log for writes. The returned Cursor records, per
// shard, the position just past the last intact record (a torn local
// tail is excluded, so resuming a fetch at Cursor.Offset re-downloads
// it). Tails are trimmed to horizonPoints when positive.
//
// A directory with no write-ahead log yet yields an empty Recovery and
// a zero Cursor.
func LoadState(dir string, horizonPoints int) (*Recovery, Cursor, error) {
	rec := &Recovery{Series: make(map[string]*SeriesState)}
	shards, ok, err := MetaShards(dir)
	if err != nil || !ok {
		return rec, Cursor{}, err
	}
	start := time.Now()
	cur := Cursor{Shards: make([]CursorPos, shards)}
	for id := 0; id < shards; id++ {
		if err := loadShardState(dir, id, rec, &cur.Shards[id], horizonPoints); err != nil {
			return nil, Cursor{}, fmt.Errorf("wal: load shard %d: %w", id, err)
		}
	}
	for _, st := range rec.Series {
		if horizonPoints > 0 {
			st.Tail = trimTail(st.Tail, horizonPoints)
		}
	}
	rec.Stats.SeriesRecovered = len(rec.Series)
	rec.Stats.Duration = time.Since(start)
	return rec, cur, nil
}

func loadShardState(dir string, id int, rec *Recovery, pos *CursorPos, horizonPoints int) error {
	shardDir := filepath.Join(dir, fmt.Sprintf("shard-%04d", id))
	entries, err := os.ReadDir(shardDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var segSeqs, snapSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			segSeqs = append(segSeqs, seq)
		} else if seq, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	if len(snapSeqs) > 0 {
		pos.SnapSeq = snapSeqs[len(snapSeqs)-1]
		records, skipped, _, err := readSnapshot(vfs.OS, filepath.Join(shardDir, snapshotFile(pos.SnapSeq)), rec.Series)
		if err != nil {
			return err
		}
		rec.Stats.SnapshotsLoaded++
		rec.Stats.RecordsReplayed += records
		rec.Stats.CorruptRecordsSkipped += skipped
	}
	for _, seq := range segSeqs {
		if seq <= pos.SnapSeq {
			continue // covered by the snapshot; Open would delete it, we just skip
		}
		// A sequence gap means the chain is broken — on a replica mirror,
		// a resync that fetched newer files but died before its snapshot
		// (or pruning) landed. Everything past the gap is an incomplete
		// refetch; the contiguous prefix is the last consistent state, so
		// stop here exactly like a torn tail. (A primary's own directory
		// is contiguous by construction.)
		if pos.SegSeq != 0 && seq != pos.SegSeq+1 {
			break
		}
		// Trim per record, like openShard: replaying days of segments must
		// not materialize each series' full history before the final trim.
		records, skipped, validSize, err := replaySegment(vfs.OS, filepath.Join(shardDir, segmentFile(seq)), func(series string, total int64, values []float64) {
			FoldRecord(rec.Series, series, total, values, horizonPoints)
			if !(total == 0 && len(values) == 0) {
				rec.Stats.PointsReplayed += len(values)
			}
		})
		if err != nil {
			return err
		}
		rec.Stats.SegmentsReplayed++
		rec.Stats.RecordsReplayed += records
		rec.Stats.CorruptRecordsSkipped += skipped
		pos.SegSeq, pos.Offset, pos.Records = seq, validSize, int64(records)
	}
	return nil
}

// FoldRecord applies one WAL record to a recovered-state map with
// recovery's canonical semantics: a tombstone (total 0, no values)
// deletes the series; otherwise values append to the tail (trimmed to
// horizonPoints when positive) and the cumulative total takes the
// maximum seen. Every consumer that folds segment records into series
// state — recovery, compaction, replication bootstrap — shares this so
// the semantics cannot drift.
func FoldRecord(state map[string]*SeriesState, series string, total int64, values []float64, horizonPoints int) {
	if total == 0 && len(values) == 0 {
		delete(state, series)
		return
	}
	st := state[series]
	if st == nil {
		st = &SeriesState{}
		state[series] = st
	}
	st.Tail = append(st.Tail, values...)
	if total > st.Total {
		st.Total = total
	}
	if horizonPoints > 0 {
		st.Tail = trimTail(st.Tail, horizonPoints)
	}
}

// ReplayFrom replays, in order, every segment record in dir that lies
// after cur: for each shard, the tail of segment cur.SegSeq starting at
// the cursor's record-aligned offset, then every newer segment whole.
// Snapshots are not consulted — the caller already holds state as of
// the cursor and wants only what came later. The follower itself
// resumes through LoadState (which rebuilds full state and a fresh
// cursor in one pass); ReplayFrom is the manual counterpart for
// consumers that hold their own state at a persisted cursor — an
// offline mirror inspector, an exporter draining records to another
// system — and for pinning the cursor's mid-segment semantics in
// tests. A torn or corrupt tail ends its shard's replay, like
// recovery. Returns the number of records replayed.
func ReplayFrom(dir string, cur Cursor, fn func(shard int, series string, total int64, values []float64)) (int, error) {
	shards, ok, err := MetaShards(dir)
	if err != nil || !ok {
		return 0, err
	}
	replayed := 0
	for id := 0; id < shards; id++ {
		pos := cur.Pos(id)
		shardDir := filepath.Join(dir, fmt.Sprintf("shard-%04d", id))
		entries, err := os.ReadDir(shardDir)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return replayed, err
		}
		var segSeqs []uint64
		for _, e := range entries {
			if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok && seq >= pos.SegSeq {
				segSeqs = append(segSeqs, seq)
			}
		}
		sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
		for _, seq := range segSeqs {
			data, err := os.ReadFile(filepath.Join(shardDir, segmentFile(seq)))
			if err != nil {
				return replayed, err
			}
			if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
				break
			}
			from := int64(len(segmentMagic))
			if seq == pos.SegSeq && pos.Offset > from {
				if pos.Offset > int64(len(data)) {
					break // cursor beyond the local file; nothing newer here
				}
				from = pos.Offset
			}
			n, _, _ := scanFrames(data[from:], func(p []byte) error {
				series, total, values, err := decodeRecordPayload(p)
				if err != nil {
					return err
				}
				fn(id, series, total, values)
				return nil
			})
			replayed += n
		}
	}
	return replayed, nil
}

package wal

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the durable-ingest hot path — framed
// record encode plus buffered write — with fsync batched off the
// per-op path, the way a production flush interval runs it.
func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(Config{
		Dir:           b.TempDir(),
		Shards:        1,
		SegmentBytes:  256 << 20,
		FsyncEvery:    time.Second,
		HorizonPoints: 1 << 20,
		Logf:          func(string, ...interface{}) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	batch := make([]float64, 100)
	for i := range batch {
		batch[i] = float64(i)
	}
	b.SetBytes(int64(len(batch) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsyncEach is the strict-durability variant: every
// append pays its own fsync, the cost -fsync-every 0 signs up for.
func BenchmarkWALAppendFsyncEach(b *testing.B) {
	l, err := Open(Config{
		Dir:           b.TempDir(),
		Shards:        1,
		SegmentBytes:  256 << 20,
		HorizonPoints: 1 << 20,
		Logf:          func(string, ...interface{}) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	batch := make([]float64, 100)
	b.SetBytes(int64(len(batch) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures cold-start recovery: open a directory of
// segments holding 100k points across 10 series and rebuild tails.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	cfg := Config{
		Dir:           dir,
		Shards:        2,
		SegmentBytes:  1 << 20,
		HorizonPoints: 1 << 20,
		Logf:          func(string, ...interface{}) {},
	}
	l, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]float64, 100)
	for s := 0; s < 10; s++ {
		name := fmt.Sprintf("series-%d", s)
		for i := 0; i < 100; i++ {
			if err := l.Append(name, batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rec := l.Recover()
		if len(rec.Series) != 10 {
			b.Fatalf("recovered %d series", len(rec.Series))
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsyncEachParallel is the group-commit benchmark:
// strict durability (-fsync-every 0) with concurrent appenders into
// one shard. Without group commit every append pays its own fsync and
// parallelism buys nothing; with it, concurrent appenders coalesce
// into one fsync per leader round — compare ns/op against
// BenchmarkWALAppendFsyncEach at -cpu 8 to see the win.
func BenchmarkWALAppendFsyncEachParallel(b *testing.B) {
	l, err := Open(Config{
		Dir:           b.TempDir(),
		Shards:        1,
		SegmentBytes:  256 << 20,
		HorizonPoints: 1 << 20,
		Logf:          func(string, ...interface{}) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(100 * 8)
	var id atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		series := fmt.Sprintf("bench-%d", id.Add(1))
		batch := make([]float64, 100)
		for pb.Next() {
			if err := l.Append(series, batch); err != nil {
				b.Error(err)
				return
			}
		}
	})
	st := l.Stats()
	b.ReportMetric(float64(st.AppendedRecords)/float64(st.Syncs), "records/sync")
}

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// quiet drops operational log lines so tests that provoke corruption
// don't spam the output; messages are still formatted (catching bad
// verbs under -race).
func quiet(format string, args ...interface{}) { _ = fmt.Sprintf(format, args...) }

func testConfig(dir string) Config {
	return Config{
		Dir:           dir,
		Shards:        2,
		SegmentBytes:  1 << 12,
		HorizonPoints: 200,
		Logf:          quiet,
	}
}

func openTest(t *testing.T, cfg Config) *Log {
	t.Helper()
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func seq(n int, base float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = base + float64(i)
	}
	return xs
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, testConfig(dir))
	if err := l.Append("cpu", seq(50, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("disk", seq(20, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("cpu", seq(30, 50)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, testConfig(dir))
	defer l2.Close()
	rec := l2.Recover()
	if len(rec.Series) != 2 {
		t.Fatalf("recovered %d series, want 2", len(rec.Series))
	}
	cpu := rec.Series["cpu"]
	if cpu.Total != 80 || len(cpu.Tail) != 80 {
		t.Fatalf("cpu total=%d tail=%d, want 80/80", cpu.Total, len(cpu.Tail))
	}
	for i, v := range cpu.Tail {
		if v != float64(i) {
			t.Fatalf("cpu tail[%d] = %v, want %d", i, v, i)
		}
	}
	disk := rec.Series["disk"]
	if disk.Total != 20 || disk.Tail[0] != 1000 {
		t.Fatalf("disk = %+v", disk)
	}
	if rec.Stats.SeriesRecovered != 2 || rec.Stats.PointsReplayed != 100 || rec.Stats.CorruptRecordsSkipped != 0 {
		t.Errorf("recovery stats = %+v", rec.Stats)
	}

	// The handoff is one-shot.
	if again := l2.Recover(); len(again.Series) != 0 {
		t.Errorf("second Recover returned %d series, want 0", len(again.Series))
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	l := openTest(t, testConfig(t.TempDir()))
	defer l.Close()
	rec := l.Recover()
	if len(rec.Series) != 0 || rec.Stats.SegmentsReplayed != 0 {
		t.Errorf("fresh dir recovered %+v", rec.Stats)
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 512 // a few records per segment
	cfg.HorizonPoints = 50
	l := openTest(t, cfg)
	const total = 500
	for i := 0; i < total; i += 10 {
		if err := l.Append("s", seq(10, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatal("no rotations despite tiny segments")
	}
	if st.SegmentsDropped == 0 {
		t.Fatal("retention dropped nothing despite horizon 50 over 500 points")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	s := rec.Series["s"]
	if s == nil {
		t.Fatal("series lost")
	}
	if s.Total != total {
		t.Fatalf("total = %d, want %d (retention must not lose the running total)", s.Total, total)
	}
	if len(s.Tail) < cfg.HorizonPoints {
		t.Fatalf("tail = %d points, below horizon %d", len(s.Tail), cfg.HorizonPoints)
	}
	// The tail is the newest suffix, ending at the last value appended.
	if got := s.Tail[len(s.Tail)-1]; got != float64(total-1) {
		t.Fatalf("tail ends at %v, want %d", got, total-1)
	}
	for i := 1; i < len(s.Tail); i++ {
		if s.Tail[i] != s.Tail[i-1]+1 {
			t.Fatalf("tail not contiguous at %d: %v then %v", i, s.Tail[i-1], s.Tail[i])
		}
	}
}

// TestRetentionKeepsFreshlySealedSegment is the regression test for a
// rotation-order bug: a segment must never count its own points as
// "newer than itself", so a single large segment sealed by rotation
// (or by Snapshot) survives until genuinely newer points cover its
// horizon.
func TestRetentionKeepsFreshlySealedSegment(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 1 << 20
	cfg.HorizonPoints = 100
	l := openTest(t, cfg)
	// 700 points in one segment — far over the horizon on its own.
	if err := l.Append("s", seq(700, 0)); err != nil {
		t.Fatal(err)
	}
	// Snapshot seals it; the old bug dropped it here instead of
	// compacting it, silently losing the in-horizon tail.
	res, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != 1 || res.Points != 100 {
		t.Fatalf("snapshot result = %+v, want the 100-point horizon tail", res)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	s := rec.Series["s"]
	if s == nil || len(s.Tail) != 100 || s.Total != 700 {
		t.Fatalf("recovered %+v, want 100-point tail ending at 699 with total 700", s)
	}
	if s.Tail[99] != 699 {
		t.Errorf("tail ends at %v, want 699", s.Tail[99])
	}
}

// shardFiles lists a shard dir's entries for tests that poke at files.
func shardFiles(t *testing.T, dir string, shard int) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, fmt.Sprintf("shard-%04d", shard)))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// newestSegment returns the path of the highest-sequence segment file.
func newestSegment(t *testing.T, dir string, shard int) string {
	t.Helper()
	var best string
	var bestSeq uint64
	for _, name := range shardFiles(t, dir, shard) {
		if s, ok := parseSeq(name, segmentPrefix, segmentSuffix); ok && s >= bestSeq {
			bestSeq, best = s, name
		}
	}
	if best == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", shard), best)
}

// TestTornTailReplay simulates kill -9 mid-write: the last record of
// the active segment is truncated; recovery must keep every record
// before it and count one skip.
func TestTornTailReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	l := openTest(t, cfg)
	if err := l.Append("s", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("s", seq(10, 10)); err != nil {
		t.Fatal(err)
	}
	// kill -9: no Close. Every append was fsynced (FsyncEvery 0), so the
	// bytes are on disk; tear the tail by truncating mid-record.
	path := newestSegment(t, dir, 0)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	s := rec.Series["s"]
	if s == nil {
		t.Fatal("series lost entirely")
	}
	if len(s.Tail) != 10 || s.Total != 10 {
		t.Fatalf("tail=%d total=%d after torn tail, want 10/10", len(s.Tail), s.Total)
	}
	if rec.Stats.CorruptRecordsSkipped != 1 {
		t.Errorf("CorruptRecordsSkipped = %d, want 1", rec.Stats.CorruptRecordsSkipped)
	}
}

// TestCRCCorruptionReplay flips a byte inside the last record; the CRC
// must catch it and replay must stop before the bad record.
func TestCRCCorruptionReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	l := openTest(t, cfg)
	if err := l.Append("s", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("s", seq(10, 10)); err != nil {
		t.Fatal(err)
	}
	path := newestSegment(t, dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff // inside the second record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	s := rec.Series["s"]
	if s == nil || len(s.Tail) != 10 || s.Total != 10 {
		t.Fatalf("recovered %+v, want exactly the first record", s)
	}
	if rec.Stats.CorruptRecordsSkipped != 1 {
		t.Errorf("CorruptRecordsSkipped = %d, want 1", rec.Stats.CorruptRecordsSkipped)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 512
	cfg.HorizonPoints = 1000
	l := openTest(t, cfg)
	for i := 0; i < 300; i += 10 {
		if err := l.Append("x", seq(10, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append("y", seq(40, 5000)); err != nil {
		t.Fatal(err)
	}
	res, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != 2 || res.SegmentsRemoved == 0 {
		t.Fatalf("snapshot result = %+v", res)
	}
	// One snapshot + one (empty) active segment should remain.
	var snaps, segs int
	for _, name := range shardFiles(t, dir, 0) {
		if strings.HasSuffix(name, snapshotSuffix) {
			snaps++
		}
		if strings.HasSuffix(name, segmentSuffix) {
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after snapshot: %d snaps, %d segments, want 1/1", snaps, segs)
	}

	// A second snapshot with nothing new is a no-op.
	res2, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res2.SegmentsRemoved != 0 {
		t.Errorf("idle snapshot removed %d segments", res2.SegmentsRemoved)
	}

	// Post-snapshot appends land in the tail segments and recovery merges
	// snapshot + tail.
	if err := l.Append("x", seq(25, 300)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	x := rec.Series["x"]
	if x.Total != 325 || len(x.Tail) != 325 {
		t.Fatalf("x total=%d tail=%d, want 325/325", x.Total, len(x.Tail))
	}
	for i, v := range x.Tail {
		if v != float64(i) {
			t.Fatalf("x tail[%d] = %v", i, v)
		}
	}
	if y := rec.Series["y"]; y.Total != 40 || y.Tail[39] != 5039 {
		t.Fatalf("y = %+v", y)
	}
	if rec.Stats.SnapshotsLoaded != 1 {
		t.Errorf("SnapshotsLoaded = %d, want 1", rec.Stats.SnapshotsLoaded)
	}
}

// TestCrashBetweenSnapshotAndDelete: a snapshot that covered segments
// which were never deleted (crash mid-compaction) must not double-count
// on recovery.
func TestCrashBetweenSnapshotAndDelete(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	l := openTest(t, cfg)
	if err := l.Append("s", seq(30, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Resurrect a covered segment: copy the snapshot's coverage boundary
	// backwards by planting a stale segment file below snapSeq.
	sh := l.shards[0]
	stale := filepath.Join(sh.dir, segmentFile(sh.snapSeq))
	content := append([]byte(segmentMagic), appendFrame(nil, appendRecordPayload(nil, "s", 30, seq(30, 0)))...)
	if err := os.WriteFile(stale, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	s := rec.Series["s"]
	if s.Total != 30 || len(s.Tail) != 30 {
		t.Fatalf("covered segment replayed twice: total=%d tail=%d, want 30/30", s.Total, len(s.Tail))
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("covered segment not cleaned up on open")
	}
}

func TestShardCountPersisted(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 3
	l := openTest(t, cfg)
	if err := l.Append("a", seq(5, 0)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	cfg.Shards = 8
	l2 := openTest(t, cfg)
	defer l2.Close()
	if len(l2.shards) != 3 {
		t.Fatalf("reopen with 8 shards got %d, want the persisted 3", len(l2.shards))
	}
	if rec := l2.Recover(); rec.Series["a"] == nil {
		t.Fatal("series lost across shard-count change")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := openTest(t, testConfig(t.TempDir()))
	l.Close()
	if err := l.Append("s", seq(1, 0)); err == nil {
		t.Fatal("Append succeeded on a closed log")
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestConcurrentAppendSnapshotRace drives appends from many goroutines
// with snapshots and stats reads interleaved; -race is the main
// assertion, then recovery must account for every acknowledged point.
func TestConcurrentAppendSnapshotRace(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 4
	cfg.SegmentBytes = 2048
	cfg.FsyncEvery = 2 * time.Millisecond
	cfg.HorizonPoints = 10000
	l := openTest(t, cfg)

	const (
		goroutines = 8
		batches    = 40
		batchSize  = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g)
			for b := 0; b < batches; b++ {
				if err := l.Append(name, seq(batchSize, float64(b*batchSize))); err != nil {
					t.Errorf("append %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := l.Snapshot(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				l.Stats()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	// Wait for the writers by polling the appended counter.
	deadline := time.Now().Add(30 * time.Second)
	want := int64(goroutines * batches * batchSize)
	for l.Stats().AppendedPoints < want {
		if time.Now().After(deadline) {
			t.Fatalf("appends stalled at %d/%d", l.Stats().AppendedPoints, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	<-wgDone
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	if len(rec.Series) != goroutines {
		t.Fatalf("recovered %d series, want %d", len(rec.Series), goroutines)
	}
	for name, st := range rec.Series {
		if st.Total != int64(batches*batchSize) {
			t.Errorf("%s total = %d, want %d", name, st.Total, batches*batchSize)
		}
		if got := st.Tail[len(st.Tail)-1]; got != float64(batches*batchSize-1) {
			t.Errorf("%s tail ends at %v", name, got)
		}
	}
}

// TestTombstoneResetsSeries: after a tombstone the series must recover
// as if it never existed, and a recreation must replay with totals
// starting from zero — the WAL half of keeping LRU-evicted-then-
// recreated series restart-equivalent.
func TestTombstoneResetsSeries(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	l := openTest(t, cfg)
	if err := l.Append("gone", seq(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("kept", seq(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Tombstone("gone"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, cfg)
	rec := l2.Recover()
	if rec.Series["gone"] != nil {
		t.Fatalf("tombstoned series recovered: %+v", rec.Series["gone"])
	}
	if rec.Series["kept"] == nil || rec.Series["kept"].Total != 10 {
		t.Fatalf("unrelated series damaged: %+v", rec.Series["kept"])
	}

	// Recreation after the tombstone starts its totals from zero.
	if err := l2.Append("gone", seq(30, 500)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openTest(t, cfg)
	defer l3.Close()
	g := l3.Recover().Series["gone"]
	if g == nil || g.Total != 30 || len(g.Tail) != 30 || g.Tail[0] != 500 {
		t.Fatalf("recreated series = %+v, want a fresh 30-point life", g)
	}
}

// TestRetentionReclaimsTombstonedSeries: segments whose only unexpired
// series is tombstoned must be reclaimed by ordinary rotation-time
// retention — an evicted series may never see another point, and its
// old segments must not pin disk forever.
func TestRetentionReclaimsTombstonedSeries(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 512
	cfg.HorizonPoints = 50
	l := openTest(t, cfg)
	for i := 0; i < 200; i += 10 {
		if err := l.Append("dead", seq(10, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Tombstone("dead"); err != nil {
		t.Fatal(err)
	}
	// Churn an unrelated series past the horizon so rotations (and with
	// them retention) keep firing.
	for i := 0; i < 500; i += 10 {
		if err := l.Append("live", seq(10, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var segs int
	for _, name := range shardFiles(t, dir, 0) {
		if strings.HasSuffix(name, segmentSuffix) {
			segs++
		}
	}
	// dead's ~5 segments plus live's expired ones must be gone; only the
	// recent live window (plus the active segment) may remain.
	if segs > 5 {
		t.Errorf("%d segments remain; tombstoned series still pins the log", segs)
	}
	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	if rec.Series["dead"] != nil {
		t.Error("tombstoned series recovered")
	}
	if live := rec.Series["live"]; live == nil || live.Total != 500 || len(live.Tail) < 50 {
		t.Errorf("live series damaged: %+v", live)
	}
}

// TestTombstoneSurvivesSnapshot: compaction must drop tombstoned series
// from the checkpoint entirely (reclaiming their space) without
// resurrecting the pre-tombstone records.
func TestTombstoneSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	l := openTest(t, cfg)
	if err := l.Append("gone", seq(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Tombstone("gone"); err != nil {
		t.Fatal(err)
	}
	res, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != 0 || res.Points != 0 {
		t.Fatalf("snapshot kept the tombstoned series: %+v", res)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, cfg)
	defer l2.Close()
	if got := l2.Recover().Series["gone"]; got != nil {
		t.Fatalf("series resurrected through the snapshot: %+v", got)
	}
}

// TestStrictModeSyncsLargeAppends: a record bigger than the write
// buffer goes to the file via bufio's write-through path, leaving
// Buffered()==0 — strict mode must still fsync before acknowledging.
func TestStrictModeSyncsLargeAppends(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 64 << 20
	cfg.HorizonPoints = 0
	l := openTest(t, cfg)
	defer l.Close()
	big := seq(20000, 0) // ~160KB record, larger than the 64KB writer
	if err := l.Append("big", big); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got == 0 {
		t.Fatal("strict-mode append acknowledged without an fsync")
	}
	// And the bytes really are on disk, not just acknowledged.
	path := newestSegment(t, dir, 0)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < int64(len(big)*8) {
		t.Fatalf("segment holds %d bytes on disk, want >= %d", fi.Size(), len(big)*8)
	}
}

// TestRetentionKeepsTombstoneMaskingSnapshot: a tombstone for a series
// that still sits in the checkpoint is load-bearing — retention must
// not drop its segment, or a restart resurrects the series with its
// stale total.
func TestRetentionKeepsTombstoneMaskingSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 512
	cfg.HorizonPoints = 50
	l := openTest(t, cfg)
	if err := l.Append("gone", seq(4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(); err != nil { // "gone" is now in the checkpoint
		t.Fatal(err)
	}
	if err := l.Tombstone("gone"); err != nil {
		t.Fatal(err)
	}
	// Churn another series far past the horizon so rotation-time
	// retention gets every chance to (wrongly) reap the tombstone.
	for i := 0; i < 500; i += 10 {
		if err := l.Append("live", seq(10, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	if got := rec.Series["gone"]; got != nil {
		t.Fatalf("tombstoned series resurrected from the snapshot: %+v", got)
	}
	if live := rec.Series["live"]; live == nil || live.Total != 500 {
		t.Fatalf("live series damaged: %+v", live)
	}
	// A compaction folds the tombstone into the checkpoint, after which
	// the pin is gone for good.
	if _, err := l2.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendValidation(t *testing.T) {
	l := openTest(t, testConfig(t.TempDir()))
	defer l.Close()
	if err := l.Append("", seq(1, 0)); err == nil {
		t.Error("empty series name accepted")
	}
	if err := l.Append("ok", nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}

// TestLargeBatchChunking appends a batch bigger than one record can
// hold and checks it round-trips intact.
func TestLargeBatchChunking(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 64 << 20
	cfg.HorizonPoints = 0 // keep everything
	l := openTest(t, cfg)
	n := maxPointsPerRecord + 1234
	if err := l.Append("big", seq(n, 0)); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().AppendedRecords; got != 2 {
		t.Errorf("records = %d, want 2 (chunked)", got)
	}
	l.Close()

	l2 := openTest(t, cfg)
	defer l2.Close()
	rec := l2.Recover()
	s := rec.Series["big"]
	if s.Total != int64(n) || len(s.Tail) != n {
		t.Fatalf("total=%d tail=%d, want %d", s.Total, len(s.Tail), n)
	}
	if s.Tail[n-1] != float64(n-1) {
		t.Errorf("last value %v", s.Tail[n-1])
	}
}

package wal

import "github.com/asap-go/asap/internal/obs"

// Metrics holds the wal's hot-path instruments. The server registers
// them in its obs.Registry and hands them in via Config.Metrics; a nil
// Metrics (library use, most tests) keeps the append path free of
// clock reads entirely. Counter-style stats (syncs, rotations,
// retention drops) are not duplicated here — the server exports them
// as CounterFuncs over Stats(), which the Log already maintains.
type Metrics struct {
	// AppendSeconds observes the wall time of each Append call —
	// encode + buffered write, plus the group-commit fsync wait in
	// strict mode.
	AppendSeconds *obs.Histogram
	// FsyncSeconds observes each fsync (both the batched flusher's and
	// group-commit leaders').
	FsyncSeconds *obs.Histogram
	// FsyncBatchRecords observes how many records each fsync made
	// durable — the group-commit coalescing factor.
	FsyncBatchRecords *obs.Histogram
}

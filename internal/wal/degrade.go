package wal

// This file holds the degraded-shard machinery: what happens between a
// durability failure and either recovery or the terminal wedge. A
// failed write or fsync no longer wedges a shard forever — the shard
// degrades (appends fail fast with ErrDegraded, reads are untouched)
// while a background loop retries reopening the segment with capped
// exponential backoff. A successful reopen truncates the damaged file
// back to its last durable prefix, seals that prefix, opens a fresh
// segment, re-lands the acknowledged-but-not-yet-durable records held
// in the shard's pending buffer, fsyncs, and clears degradation. See
// docs/RESILIENCE.md.

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// DegradedError is the concrete error a degraded shard surfaces from
// Append/Sync: it satisfies errors.Is(err, ErrDegraded) and carries
// the shard id and failing operation so HTTP 503 log lines can name
// the shard without parsing the message. The rendered message is
// byte-identical to the pre-typed form.
type DegradedError struct {
	Shard int    // shard id whose durability failed
	Op    string // "append", "flush", or "fsync"
	Cause error  // the underlying durability failure
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%s (shard %d, %s: %v)", ErrDegraded.Error(), e.Shard, e.Op, e.Cause)
}

// Unwrap makes errors.Is(err, ErrDegraded) hold.
func (e *DegradedError) Unwrap() error { return ErrDegraded }

// degradeLocked transitions the shard into the degraded state (or, with
// ReopenRetries < 0 or the log closing, straight to the terminal
// wedge). Called with sh.mu held, with cause being the durability
// failure from op. Returns the error appends should surface; if the
// shard already failed, the earlier error wins.
func (sh *shardLog) degradeLocked(op string, cause error) error {
	if sh.failed != nil {
		return sh.failed
	}
	lg := sh.lg
	if lg.cfg.ReopenRetries < 0 || lg.closed.Load() {
		sh.failed = cause
		sh.terminal = true
		lg.logf("wal: shard %d: %s failed, shard wedged: %v", sh.id, op, cause)
		return sh.failed
	}
	sh.failed = &DegradedError{Shard: sh.id, Op: op, Cause: cause}
	sh.degraded = true
	sh.degradedSince = time.Now()
	sh.reopenAttempts = 0
	sh.nextReopen = time.Now().Add(lg.reopenDelay(0))
	if lg.cfg.FsyncEvery == 0 {
		// Strict mode: an append is only acknowledged once its records
		// are durable, so everything still pending was reported failed to
		// its caller — re-landing it would resurrect unacknowledged data.
		// Undo the totals those records bumped, then discard them.
		sh.undoPendingTotalsLocked(0)
		sh.dropPendingLocked(len(sh.pending))
	}
	lg.logf("wal: shard %d: %s failed, shard degraded (%d pending records held for reopen): %v",
		sh.id, op, len(sh.pending), cause)
	lg.wakeReopen()
	return sh.failed
}

// rollbackPendingLocked trims the pending tail back to mark — the
// failing call's own records, which were never acknowledged — undoing
// their totals updates in reverse write order. A rotation inside the
// call may already have cleared pending entirely (those records became
// durable and stand); the clamp handles that.
func (sh *shardLog) rollbackPendingLocked(mark int) {
	if mark >= len(sh.pending) {
		return
	}
	sh.undoPendingTotalsLocked(mark)
	sh.pendingBuf = sh.pendingBuf[:sh.pending[mark].off]
	sh.pending = sh.pending[:mark]
}

// undoPendingTotalsLocked restores sh.totals to its state before
// pending[from] was written by undoing entries newest-first — exact
// for any interleaving of appends and tombstones, since sh.mu
// serialized the original updates.
func (sh *shardLog) undoPendingTotalsLocked(from int) {
	for i := len(sh.pending) - 1; i >= from; i-- {
		p := &sh.pending[i]
		if p.hadPrev {
			sh.totals[p.name] = p.prevTotal
		} else {
			delete(sh.totals, p.name)
		}
	}
}

// dropPendingLocked discards the oldest n pending records — they are
// durable (covered by an fsync) or, at degradation time in strict
// mode, known unacknowledged. The byte buffer is compacted in place so
// both slices keep their capacity for reuse.
func (sh *shardLog) dropPendingLocked(n int) {
	if n <= 0 {
		return
	}
	if n >= len(sh.pending) {
		sh.pending = sh.pending[:0]
		sh.pendingBuf = sh.pendingBuf[:0]
		return
	}
	rest := sh.pending[n:]
	base := rest[0].off
	copy(sh.pendingBuf, sh.pendingBuf[base:])
	sh.pendingBuf = sh.pendingBuf[:len(sh.pendingBuf)-base]
	sh.pending = append(sh.pending[:0], rest...)
	for i := range sh.pending {
		sh.pending[i].off -= base
	}
}

// wakeReopen nudges the reopen loop without blocking.
func (l *Log) wakeReopen() {
	if l.reopenKick == nil {
		return
	}
	select {
	case l.reopenKick <- struct{}{}:
	default:
	}
}

// reopenDelay returns the backoff before attempt number `failures`+1:
// capped exponential growth from ReopenBackoff to ReopenMaxBackoff,
// with the upper half jittered so shards degraded by the same disk
// event don't retry in lockstep.
func (l *Log) reopenDelay(failures int) time.Duration {
	base, max := l.cfg.ReopenBackoff, l.cfg.ReopenMaxBackoff
	if failures > 30 {
		failures = 30
	}
	d := base << uint(failures)
	if d <= 0 || d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// reopenLoop runs for the life of the log (unless ReopenRetries < 0):
// it sleeps until the earliest scheduled reopen among degraded shards,
// or until a degradation kicks it awake, and attempts every due shard.
func (l *Log) reopenLoop() {
	defer close(l.reopenDone)
	for {
		wait, any := l.reopenWait()
		var timer *time.Timer
		var timerC <-chan time.Time
		if any {
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		select {
		case <-l.reopenStop:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-l.reopenKick:
			if timer != nil {
				timer.Stop()
			}
		case <-timerC:
			for _, sh := range l.shards {
				sh.tryReopen()
			}
		}
	}
}

// reopenWait reports how long until the earliest scheduled reopen
// attempt; any is false when no shard is degraded.
func (l *Log) reopenWait() (wait time.Duration, any bool) {
	now := time.Now()
	for _, sh := range l.shards {
		sh.mu.Lock()
		if sh.degraded {
			d := sh.nextReopen.Sub(now)
			if d < 0 {
				d = 0
			}
			if !any || d < wait {
				wait, any = d, true
			}
		}
		sh.mu.Unlock()
	}
	return wait, any
}

// tryReopen attempts one scheduled reopen if the shard is degraded and
// due. On success the shard leaves the degraded state with every
// acknowledged record durable again; on failure the next attempt is
// scheduled with backoff, or — after ReopenRetries consecutive
// failures — the shard wedges permanently.
func (sh *shardLog) tryReopen() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lg := sh.lg
	if !sh.degraded || lg.closed.Load() || time.Now().Before(sh.nextReopen) {
		return
	}
	// A group-commit leader could still be in flight from before the
	// degradation; never touch the handle under it.
	for sh.syncing {
		sh.syncCond.Wait()
	}
	if !sh.degraded {
		return
	}
	sh.reopenAttempts++
	lg.reopenAttempts.Add(1)
	err := sh.reopenLocked()
	if err == nil {
		n := sh.reopenAttempts
		sh.degraded, sh.failed = false, nil
		sh.degradedSince = time.Time{}
		sh.reopenAttempts = 0
		lg.reopenRecoveries.Add(1)
		lg.logf("wal: shard %d: reopened after %d attempt(s), durability restored", sh.id, n)
		sh.syncCond.Broadcast()
		return
	}
	if max := lg.cfg.ReopenRetries; max > 0 && sh.reopenAttempts >= max {
		sh.degraded = false
		sh.terminal = true
		sh.failed = fmt.Errorf("wal: shard %d wedged after %d reopen attempts, last: %v", sh.id, sh.reopenAttempts, err)
		lg.logf("wal: shard %d: giving up after %d reopen attempts: %v", sh.id, sh.reopenAttempts, err)
		sh.syncCond.Broadcast()
		return
	}
	delay := lg.reopenDelay(sh.reopenAttempts)
	sh.nextReopen = time.Now().Add(delay)
	lg.logf("wal: shard %d: reopen attempt %d failed (next in %s): %v", sh.id, sh.reopenAttempts, delay, err)
}

// reopenLocked rebuilds a writable, durable active segment for a
// degraded shard. Called with sh.mu held. The procedure is idempotent
// across partial failures:
//
//  1. If an active handle remains, close it. Its durable prefix
//     (syncedSize bytes, fsync-covered and possibly already served to
//     replicas) is preserved: the file is truncated to exactly that
//     size, replayed to rebuild retention metadata, and sealed. A file
//     with no durable bytes is removed and its sequence number reused,
//     keeping the segment chain contiguous either way.
//  2. A fresh active segment is opened.
//  3. The pending records — acknowledged to callers but never covered
//     by an fsync — are rewritten into it verbatim and fsynced.
//
// Any step failing leaves state a later attempt handles: a truncate or
// reseal failure keeps the old handle for retry; a failure after the
// fresh segment opened leaves it with zero durable bytes, so the next
// attempt removes it and reuses its sequence.
func (sh *shardLog) reopenLocked() error {
	lg := sh.lg
	if sh.active != nil {
		sh.active.Close() // best effort: the handle may already be poisoned
		if sh.syncedSize > 0 {
			if err := lg.fs.Truncate(sh.info.path, sh.syncedSize); err != nil {
				return fmt.Errorf("truncate %s to durable prefix: %w", sh.info.path, err)
			}
			info := segmentInfo{seq: sh.info.seq, path: sh.info.path, counts: make(map[string]int64)}
			records, _, validSize, err := replaySegment(lg.fs, sh.info.path, func(series string, total int64, values []float64) {
				if total == 0 && len(values) == 0 {
					if info.tombs == nil {
						info.tombs = make(map[string]bool)
					}
					info.tombs[series] = true
				} else {
					info.counts[series] += int64(len(values))
					delete(info.tombs, series)
				}
			})
			if err != nil {
				return fmt.Errorf("reseal %s: %w", sh.info.path, err)
			}
			info.size, info.records = validSize, int64(records)
			sh.sealed = append(sh.sealed, info)
			sh.nextSeq = sh.info.seq + 1
		} else {
			if err := lg.fs.Remove(sh.info.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("remove %s: %w", sh.info.path, err)
			}
			sh.nextSeq = sh.info.seq
		}
		sh.active, sh.bw = nil, nil
	}
	if err := sh.openActiveLocked(); err != nil {
		return err
	}
	for i := range sh.pending {
		p := &sh.pending[i]
		rec := sh.pendingBuf[p.off : p.off+p.n]
		if _, err := sh.bw.Write(rec); err != nil {
			return err
		}
		sh.info.size += int64(len(rec))
		sh.info.records++
		if p.tomb {
			if sh.info.tombs == nil {
				sh.info.tombs = make(map[string]bool)
			}
			sh.info.tombs[p.name] = true
		} else {
			sh.info.counts[p.name] += int64(p.points)
			delete(sh.info.tombs, p.name)
		}
	}
	if err := sh.bw.Flush(); err != nil {
		return err
	}
	if err := sh.active.Sync(); err != nil {
		return err
	}
	lg.syncs.Add(1)
	sh.needsSync = false
	sh.dirtySince = time.Time{}
	sh.syncSeq = sh.writeSeq
	sh.syncedSize, sh.syncedRecords = sh.info.size, sh.info.records
	sh.dropPendingLocked(len(sh.pending))
	if lg.cfg.OnDurable != nil {
		lg.cfg.OnDurable()
	}
	return nil
}

package wal

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/asap-go/asap/internal/vfs"
)

// fuzzFile writes data where replaySegment/readSnapshot expect a file.
func fuzzFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fuzz-input")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// FuzzReplay feeds arbitrary bytes through both file readers: neither
// may panic, every record handed to the callback must be well-formed,
// and an intact file built from the encoder must replay losslessly.
func FuzzReplay(f *testing.F) {
	// Valid segment: magic + two records.
	valid := []byte(segmentMagic)
	valid = appendFrame(valid, appendRecordPayload(nil, "cpu", 3, []float64{1, 2, 3}))
	valid = appendFrame(valid, appendRecordPayload(nil, "disk", 2, []float64{4.5, -6}))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])             // torn tail
	f.Add([]byte(segmentMagic))             // empty segment
	f.Add([]byte("ASAPWAL2 wrong version")) // bad magic
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-2] ^= 0x40
	f.Add(corrupt)
	// Valid snapshot bytes fed to the segment reader (and vice versa)
	// must be rejected by magic, not misparsed.
	snapDir := f.TempDir()
	if _, _, _, err := writeSnapshot(vfs.OS, snapDir, 7, map[string]*SeriesState{
		"s": {Tail: []float64{1, 2}, Total: 9},
	}); err != nil {
		f.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(snapDir, snapshotFile(7)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapBytes)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := fuzzFile(t, data)

		records, skipped, validSize, err := replaySegment(vfs.OS, path, func(series string, total int64, values []float64) {
			if series == "" {
				t.Fatal("replay surfaced an empty series name")
			}
			if total < int64(len(values)) {
				t.Fatalf("replay surfaced total %d < record count %d", total, len(values))
			}
		})
		if err != nil {
			t.Fatalf("replaySegment I/O error on in-memory file: %v", err)
		}
		if records < 0 || skipped < 0 || skipped > 1 {
			t.Fatalf("replaySegment counters records=%d skipped=%d", records, skipped)
		}
		if validSize > int64(len(data)) || (records > 0 && validSize <= int64(len(segmentMagic))) {
			t.Fatalf("replaySegment validSize=%d for %d bytes, %d records", validSize, len(data), records)
		}

		state := make(map[string]*SeriesState)
		if _, skipped, _, err := readSnapshot(vfs.OS, path, state); err != nil {
			t.Fatalf("readSnapshot I/O error: %v", err)
		} else if skipped > 1 {
			t.Fatalf("readSnapshot skipped=%d", skipped)
		}
		for name, st := range state {
			if name == "" || st.Total < int64(len(st.Tail)) {
				t.Fatalf("readSnapshot surfaced %q total=%d tail=%d", name, st.Total, len(st.Tail))
			}
			for _, v := range st.Tail {
				_ = v // NaN/Inf are legal payloads; just ensure no panic
			}
		}
	})
}

// FuzzRecordRoundTrip: any series/values pair the encoder accepts must
// decode back to identical bytes-for-bytes content.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("cpu", int64(10), 4, 1.5)
	f.Add("x", int64(1), 1, math.Inf(1))
	f.Add("séries/μ", int64(1<<40), 300, -0.0)
	f.Fuzz(func(t *testing.T, series string, total int64, n int, v float64) {
		if series == "" || len(series) > 65535 || n < 0 || n > 4096 {
			t.Skip()
		}
		values := make([]float64, n)
		for i := range values {
			values[i] = v + float64(i)
		}
		if total < int64(n) {
			total = int64(n)
		}
		payload := appendRecordPayload(nil, series, total, values)
		gotSeries, gotTotal, gotValues, err := decodeRecordPayload(payload)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if gotSeries != series || gotTotal != total || len(gotValues) != n {
			t.Fatalf("round-trip %q/%d/%d != %q/%d/%d", gotSeries, gotTotal, len(gotValues), series, total, n)
		}
		for i := range values {
			if math.Float64bits(gotValues[i]) != math.Float64bits(values[i]) {
				t.Fatalf("value %d: %v != %v", i, gotValues[i], values[i])
			}
		}
	})
}

package wal

import (
	"bufio"
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"

	"github.com/asap-go/asap/internal/vfs"
)

// SeriesState is one recovered series: the retained raw tail (the most
// recent points, capped at the retention horizon) and the cumulative
// point total ever appended. The total lets the consumer re-align
// preaggregation pane boundaries and frame sequence numbers to the
// original stream offset, not just refill a buffer.
type SeriesState struct {
	Tail  []float64
	Total int64
}

// readSnapshot loads a snapshot file's records into dst. Chunked
// records for the same series append in order; totals take the maximum
// seen. Returns intact records read, torn/corrupt tails skipped (0 or
// 1 — reading stops at the first bad frame), and the valid byte size
// (header plus the record-aligned intact prefix).
func readSnapshot(fsys vfs.FS, path string, dst map[string]*SeriesState) (records, skipped int, validSize int64, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	hdr := SnapshotHeaderLen
	if len(data) < hdr || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return 0, 1, 0, nil
	}
	intact, consumed, torn := scanFrames(data[hdr:], func(p []byte) error {
		series, total, values, err := decodeRecordPayload(p)
		if err != nil {
			return err
		}
		st := dst[series]
		if st == nil {
			st = &SeriesState{}
			dst[series] = st
		}
		st.Tail = append(st.Tail, values...)
		if total > st.Total {
			st.Total = total
		}
		return nil
	})
	if torn {
		skipped = 1
	}
	return intact, skipped, int64(hdr) + consumed, nil
}

// ReadSnapshotFile loads one snapshot file into a fresh series-state
// map — the follower side of WAL shipping bootstraps from a mirrored
// primary checkpoint through this. Torn tails are tolerated the same
// way recovery tolerates them (the intact prefix loads; skipped
// reports 0 or 1).
func ReadSnapshotFile(path string) (state map[string]*SeriesState, records int64, skipped int, err error) {
	state = make(map[string]*SeriesState)
	n, skipped, _, err := readSnapshot(vfs.OS, path, state)
	if err != nil {
		return nil, 0, 0, err
	}
	return state, int64(n), skipped, nil
}

// writeSnapshot atomically writes state as snap-<coveredSeq>.snap in
// dir: records stream through a buffered writer into a temp file that
// is fsynced, then renamed into place and the directory fsynced, so a
// crash leaves either the old snapshot or the new one, never a partial
// — and the file image is never materialized in memory on top of the
// state map. Long tails are chunked into multiple records, each framed
// and CRC'd like a WAL append. Returns the file's record count and
// byte size alongside the path, for the replication manifest.
func writeSnapshot(fsys vfs.FS, dir string, coveredSeq uint64, state map[string]*SeriesState) (path string, records, size int64, err error) {
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	sort.Strings(names)

	path = filepath.Join(dir, snapshotFile(coveredSeq))
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", 0, 0, err
	}
	fail := func(err error) (string, int64, int64, error) {
		f.Close()
		fsys.Remove(tmp)
		return "", 0, 0, err
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], coveredSeq)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fail(err)
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	size = int64(SnapshotHeaderLen)
	var payload, frame []byte
	writeRecord := func(name string, total int64, tail []float64) error {
		payload = appendRecordPayload(payload[:0], name, total, tail)
		frame = appendFrame(frame[:0], payload)
		_, err := bw.Write(frame)
		records++
		size += int64(len(frame))
		return err
	}
	for _, name := range names {
		st := state[name]
		total := st.Total
		if total < int64(len(st.Tail)) {
			total = int64(len(st.Tail))
		}
		tail := st.Tail
		for len(tail) > 0 {
			n := len(tail)
			if n > maxPointsPerRecord {
				n = maxPointsPerRecord
			}
			if err := writeRecord(name, total, tail[:n]); err != nil {
				return fail(err)
			}
			tail = tail[n:]
		}
		if len(st.Tail) == 0 {
			// A series whose tail was fully retained away still records its
			// total, so sequence alignment survives compaction.
			if err := writeRecord(name, total, nil); err != nil {
				return fail(err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return "", 0, 0, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return "", 0, 0, err
	}
	if err := syncDir(dir); err != nil {
		return "", 0, 0, err
	}
	return path, records, size, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Framing shared by segment and snapshot files: each record is
//
//	uint32 LE  payload length
//	uint32 LE  CRC-32 (IEEE) of the payload
//	payload
//
// A reader that hits a frame whose length is implausible, whose payload
// extends past the end of the file, or whose CRC does not match treats
// everything from that frame on as a torn tail: the intact prefix
// replays, the rest is skipped and counted.
const (
	frameHeader    = 8
	maxRecordBytes = 16 << 20
)

// maxPointsPerRecord caps one record's value count; Log.Append and the
// snapshot writer chunk larger batches so a framed record always stays
// far below maxRecordBytes.
const maxPointsPerRecord = 1 << 16

// ErrCorrupt reports a record whose frame was intact but whose payload
// is malformed.
var ErrCorrupt = errors.New("wal: corrupt record")

func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// scanFrames walks the framed records in buf, invoking fn on each
// payload whose frame is intact. It returns the count of intact frames
// consumed, the byte offset just past the last intact frame (the
// record-aligned valid prefix — what replication may safely serve),
// and whether a torn or corrupt trailer stopped the walk before the
// end of buf (fn returning an error counts as corrupt).
func scanFrames(buf []byte, fn func(payload []byte) error) (intact int, consumed int64, torn bool) {
	for len(buf) > 0 {
		if len(buf) < frameHeader {
			return intact, consumed, true
		}
		n := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if n > maxRecordBytes || int(n) > len(buf)-frameHeader {
			return intact, consumed, true
		}
		payload := buf[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return intact, consumed, true
		}
		if err := fn(payload); err != nil {
			return intact, consumed, true
		}
		intact++
		consumed += int64(frameHeader + int(n))
		buf = buf[frameHeader+int(n):]
	}
	return intact, consumed, false
}

// RecordScanner incrementally decodes CRC-framed records from a byte
// stream, carrying partial frames between Feed calls — the follower
// side of WAL shipping, where segment bytes arrive in ranged chunks
// that may split a record.
//
// Unlike file replay (which treats any bad frame as a torn tail), a
// scanner distinguishes "need more bytes" (Next returns ok == false)
// from actual corruption (Next returns an error): a replica that has
// only been handed durable, record-aligned bytes must treat a CRC
// mismatch as a desync, not a tail to skip.
type RecordScanner struct {
	buf     []byte
	off     int64 // bytes fully consumed across the scanner's lifetime
	records int64
}

// Feed appends bytes to the scanner's pending buffer.
func (s *RecordScanner) Feed(p []byte) {
	if len(s.buf) == 0 {
		// Common case: the previous Next consumed everything; avoid
		// accumulating the carry buffer.
		s.buf = append(s.buf[:0], p...)
		return
	}
	s.buf = append(s.buf, p...)
}

// Next decodes the next complete record. ok is false when the buffer
// holds only a partial frame (feed more bytes); a non-nil error means
// the buffered bytes cannot be a record prefix (corruption or a
// misaligned stream).
func (s *RecordScanner) Next() (series string, total int64, values []float64, ok bool, err error) {
	if len(s.buf) < frameHeader {
		return "", 0, nil, false, nil
	}
	n := binary.LittleEndian.Uint32(s.buf[0:4])
	sum := binary.LittleEndian.Uint32(s.buf[4:8])
	if n > maxRecordBytes {
		return "", 0, nil, false, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	if int(n) > len(s.buf)-frameHeader {
		return "", 0, nil, false, nil
	}
	payload := s.buf[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return "", 0, nil, false, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	series, total, values, err = decodeRecordPayload(payload)
	if err != nil {
		return "", 0, nil, false, err
	}
	s.buf = s.buf[frameHeader+int(n):]
	s.off += int64(frameHeader + int(n))
	s.records++
	return series, total, values, true, nil
}

// Consumed returns how many bytes of the fed stream have been decoded
// into complete records (excludes the buffered partial tail).
func (s *RecordScanner) Consumed() int64 { return s.off }

// Records returns how many complete records the scanner has decoded.
func (s *RecordScanner) Records() int64 { return s.records }

// Pending returns the size of the buffered partial tail.
func (s *RecordScanner) Pending() int { return len(s.buf) }

// Record payload, shared by WAL appends and snapshot checkpoints:
//
//	uint16 LE  series name length (1..65535)
//	           name bytes
//	uint64 LE  cumulative point total for the series after this record
//	uint32 LE  value count in this record
//	count × uint64 LE  IEEE-754 float bits
//
// Carrying the cumulative total in every record (rather than deriving
// it by summing) keeps totals exact even after retention drops whole
// segments: recovery takes the maximum total it sees.
//
// A record with total 0 and no values is a tombstone: the series was
// dropped by the consumer (LRU eviction), replay discards everything
// accumulated for it so far, and its cumulative total restarts at zero
// — a later recreation replays exactly like a brand-new series.
func appendRecordPayload(dst []byte, series string, total int64, values []float64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(series)))
	dst = append(dst, series...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(total))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(values)))
	for _, v := range values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func decodeRecordPayload(p []byte) (series string, total int64, values []float64, err error) {
	if len(p) < 2 {
		return "", 0, nil, fmt.Errorf("%w: short name length", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if n == 0 || n > len(p) {
		return "", 0, nil, fmt.Errorf("%w: name length %d", ErrCorrupt, n)
	}
	series = string(p[:n])
	p = p[n:]
	if len(p) < 12 {
		return "", 0, nil, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	total = int64(binary.LittleEndian.Uint64(p))
	count := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	if count > len(p)/8 || len(p) != count*8 {
		return "", 0, nil, fmt.Errorf("%w: value count %d for %d bytes", ErrCorrupt, count, len(p))
	}
	if total < int64(count) {
		return "", 0, nil, fmt.Errorf("%w: total %d below record count %d", ErrCorrupt, total, count)
	}
	values = make([]float64, count)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return series, total, values, nil
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Framing shared by segment and snapshot files: each record is
//
//	uint32 LE  payload length
//	uint32 LE  CRC-32 (IEEE) of the payload
//	payload
//
// A reader that hits a frame whose length is implausible, whose payload
// extends past the end of the file, or whose CRC does not match treats
// everything from that frame on as a torn tail: the intact prefix
// replays, the rest is skipped and counted.
const (
	frameHeader    = 8
	maxRecordBytes = 16 << 20
)

// maxPointsPerRecord caps one record's value count; Log.Append and the
// snapshot writer chunk larger batches so a framed record always stays
// far below maxRecordBytes.
const maxPointsPerRecord = 1 << 16

// ErrCorrupt reports a record whose frame was intact but whose payload
// is malformed.
var ErrCorrupt = errors.New("wal: corrupt record")

func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// scanFrames walks the framed records in buf, invoking fn on each
// payload whose frame is intact. It returns the count of intact frames
// consumed and whether a torn or corrupt trailer stopped the walk
// before the end of buf (fn returning an error counts as corrupt).
func scanFrames(buf []byte, fn func(payload []byte) error) (intact int, torn bool) {
	for len(buf) > 0 {
		if len(buf) < frameHeader {
			return intact, true
		}
		n := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if n > maxRecordBytes || int(n) > len(buf)-frameHeader {
			return intact, true
		}
		payload := buf[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return intact, true
		}
		if err := fn(payload); err != nil {
			return intact, true
		}
		intact++
		buf = buf[frameHeader+int(n):]
	}
	return intact, false
}

// Record payload, shared by WAL appends and snapshot checkpoints:
//
//	uint16 LE  series name length (1..65535)
//	           name bytes
//	uint64 LE  cumulative point total for the series after this record
//	uint32 LE  value count in this record
//	count × uint64 LE  IEEE-754 float bits
//
// Carrying the cumulative total in every record (rather than deriving
// it by summing) keeps totals exact even after retention drops whole
// segments: recovery takes the maximum total it sees.
//
// A record with total 0 and no values is a tombstone: the series was
// dropped by the consumer (LRU eviction), replay discards everything
// accumulated for it so far, and its cumulative total restarts at zero
// — a later recreation replays exactly like a brand-new series.
func appendRecordPayload(dst []byte, series string, total int64, values []float64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(series)))
	dst = append(dst, series...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(total))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(values)))
	for _, v := range values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func decodeRecordPayload(p []byte) (series string, total int64, values []float64, err error) {
	if len(p) < 2 {
		return "", 0, nil, fmt.Errorf("%w: short name length", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if n == 0 || n > len(p) {
		return "", 0, nil, fmt.Errorf("%w: name length %d", ErrCorrupt, n)
	}
	series = string(p[:n])
	p = p[n:]
	if len(p) < 12 {
		return "", 0, nil, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	total = int64(binary.LittleEndian.Uint64(p))
	count := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	if count > len(p)/8 || len(p) != count*8 {
		return "", 0, nil, fmt.Errorf("%w: value count %d for %d bytes", ErrCorrupt, count, len(p))
	}
	if total < int64(count) {
		return "", 0, nil, fmt.Errorf("%w: total %d below record count %d", ErrCorrupt, total, count)
	}
	values = make([]float64, count)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return series, total, values, nil
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// lockFileName is the pid-stamped lock taken on a data directory so two
// servers can never share one write-ahead log.
const lockFileName = "LOCK"

// DirLock is an exclusive lock on a data directory, held for the life
// of the owning process (or until Release). The primary mechanism is a
// kernel flock on <dir>/LOCK, which dies with the process, so crashed
// owners never leave the directory wedged. On filesystems without flock
// support it degrades to a pid-stamped lock file with staleness
// detection.
type DirLock struct {
	f       *os.File
	path    string
	flocked bool
}

// LockDir takes an exclusive lock on dir, creating it if needed. A
// second LockDir on the same directory — from another process or even
// the same one via a different descriptor — fails with an error naming
// the holder's pid. The caller keeps the lock until Release.
func LockDir(dir string) (*DirLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	err = syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	switch {
	case err == nil:
		if err := stampPID(f); err != nil {
			f.Close()
			return nil, err
		}
		return &DirLock{f: f, path: path, flocked: true}, nil
	case errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN):
		holder := readPID(f)
		f.Close()
		return nil, fmt.Errorf("wal: data dir %s is locked by pid %s", dir, holder)
	case errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOLCK) || errors.Is(err, syscall.ENOSYS):
		// No flock on this filesystem: fall back to the pid-file
		// protocol. Weaker (a stale-check race is possible) but still
		// refuses the common operator mistake.
		f.Close()
		return lockDirPidFile(dir, path)
	default:
		f.Close()
		return nil, fmt.Errorf("wal: lock %s: %w", path, err)
	}
}

// lockDirPidFile is the fallback protocol: create the lock file
// exclusively with our pid; on conflict, steal it only when the
// recorded pid no longer names a live process.
func lockDirPidFile(dir, path string) (*DirLock, error) {
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			if err := stampPID(f); err != nil {
				f.Close()
				os.Remove(path)
				return nil, err
			}
			return &DirLock{f: f, path: path}, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, fmt.Errorf("wal: data dir %s is locked (unreadable lock file: %v)", dir, rerr)
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr == nil && pid > 0 && pidAlive(pid) {
			return nil, fmt.Errorf("wal: data dir %s is locked by pid %d", dir, pid)
		}
		// Stale lock from a dead process: remove and retry once.
		os.Remove(path)
	}
	return nil, fmt.Errorf("wal: data dir %s: could not take stale lock", dir)
}

// Release drops the lock. The flock dies with the descriptor; the
// fallback pid file is removed so a later starter need not wait for
// staleness detection. Idempotent.
func (dl *DirLock) Release() error {
	if dl == nil || dl.f == nil {
		return nil
	}
	if !dl.flocked {
		os.Remove(dl.path)
	}
	err := dl.f.Close()
	dl.f = nil
	return err
}

func stampPID(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0); err != nil {
		return err
	}
	return f.Sync()
}

func readPID(f *os.File) string {
	buf := make([]byte, 32)
	n, _ := f.ReadAt(buf, 0)
	if s := strings.TrimSpace(string(buf[:n])); s != "" {
		return s
	}
	return "unknown"
}

// pidAlive reports whether pid names a live process (EPERM counts as
// alive: it exists, we just cannot signal it).
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

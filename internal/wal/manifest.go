package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileMeta describes one replicable file of a shard — a segment or the
// shard's snapshot. Size and Records cover only durable, record-aligned
// bytes: for sealed segments and snapshots that is the intact prefix
// found at open (a torn tail is invisible to replication); for the
// active segment it is the fsynced watermark, which a follower may read
// without ever observing a partial record.
type FileMeta struct {
	Name    string `json:"name"`
	Seq     uint64 `json:"seq"`
	Size    int64  `json:"size"`
	Records int64  `json:"records"`
	Active  bool   `json:"active,omitempty"`
}

// ShardManifest lists one shard's replicable files: the newest snapshot
// (if any) plus every live segment in ascending sequence order, the
// active segment last.
type ShardManifest struct {
	Shard    int        `json:"shard"`
	Snapshot *FileMeta  `json:"snapshot,omitempty"`
	Segments []FileMeta `json:"segments"`
}

// Manifest is the point-in-time replication listing across all shards.
// Each shard's entry is internally consistent (taken under its lock),
// but the manifest is not a global cut — the usual hub rule.
type Manifest struct {
	Shards         int             `json:"shards"`
	ShardManifests []ShardManifest `json:"shard_manifests"`
}

// Manifest returns the current replication listing. Followers poll it
// to learn which files exist and how many durable bytes each holds,
// then fetch ranges via OpenReplicaFile. Durable sizes never shrink for
// a given file, so a follower's fetch offset stays valid across polls.
func (l *Log) Manifest() Manifest {
	m := Manifest{Shards: len(l.shards)}
	m.ShardManifests = make([]ShardManifest, 0, len(l.shards))
	for _, sh := range l.shards {
		sh.mu.Lock()
		sm := ShardManifest{Shard: sh.id}
		if sh.snapPath != "" {
			sm.Snapshot = &FileMeta{
				Name:    filepath.Base(sh.snapPath),
				Seq:     sh.snapSeq,
				Size:    sh.snapSize,
				Records: sh.snapRecords,
			}
		}
		sm.Segments = make([]FileMeta, 0, len(sh.sealed)+1)
		for _, seg := range sh.sealed {
			sm.Segments = append(sm.Segments, FileMeta{
				Name:    filepath.Base(seg.path),
				Seq:     seg.seq,
				Size:    seg.size,
				Records: seg.records,
			})
		}
		sm.Segments = append(sm.Segments, FileMeta{
			Name:    filepath.Base(sh.info.path),
			Seq:     sh.info.seq,
			Size:    sh.syncedSize,
			Records: sh.syncedRecords,
			Active:  true,
		})
		sh.mu.Unlock()
		m.ShardManifests = append(m.ShardManifests, sm)
	}
	return m
}

// OpenReplicaFile opens one of shard's files for replication reads and
// returns it with the durable byte limit a replica may read — reads
// past the limit would race the shard's buffered writer or observe
// unsynced bytes a crash could still tear. The name must be a file the
// manifest currently lists (canonical seg-/snap- form; anything else,
// including path traversal, is rejected). The caller closes the file.
//
// A file can disappear between Manifest and OpenReplicaFile when
// retention or compaction reclaims it; callers get os.ErrNotExist and
// should re-list.
func (l *Log) OpenReplicaFile(shard int, name string) (*os.File, int64, error) {
	if shard < 0 || shard >= len(l.shards) {
		return nil, 0, fmt.Errorf("wal: no shard %d", shard)
	}
	sh := l.shards[shard]

	sh.mu.Lock()
	var limit int64 = -1
	if seq, ok := parseSeq(name, segmentPrefix, segmentSuffix); ok && name == segmentFile(seq) {
		switch {
		case seq == sh.info.seq:
			limit = sh.syncedSize
		default:
			for _, seg := range sh.sealed {
				if seg.seq == seq {
					limit = seg.size
					break
				}
			}
		}
	} else if seq, ok := parseSeq(name, snapshotPrefix, snapshotSuffix); ok && name == snapshotFile(seq) {
		if sh.snapPath != "" && seq == sh.snapSeq {
			limit = sh.snapSize
		}
	} else {
		sh.mu.Unlock()
		return nil, 0, fmt.Errorf("wal: invalid replica file name %q", name)
	}
	if limit < 0 {
		sh.mu.Unlock()
		return nil, 0, os.ErrNotExist
	}
	// Open under the lock so compaction cannot delete the file between
	// the limit lookup and the open (an open fd survives the unlink).
	f, err := os.Open(filepath.Join(sh.dir, name))
	sh.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	return f, limit, nil
}

// Package datasets provides deterministic synthetic reproductions of the
// eleven evaluation datasets of Table 2. The originals (NYC taxi counts,
// UCI gas-sensor readings, Keogh's EEG/Power/Sine traces, CityBench
// traffic, NAB machine-temperature / Twitter-AAPL / simulated-daily, the
// TSDL England temperature record, and LA freeway ramp counts) are not
// redistributable here, so each generator reproduces the properties ASAP's
// behaviour depends on — length, sampling interval, period structure,
// noise level, and the documented anomaly — from the descriptions in the
// paper (Section 5, Table 2, Appendices B and C). DESIGN.md Section 3
// records this substitution.
//
// All generators are pure functions of (n, seed): the same arguments
// always produce the same series, which keeps every experiment in this
// repository reproducible bit-for-bit.
package datasets

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/asap-go/asap/internal/timeseries"
)

// Spec describes one evaluation dataset: its Table 2 metadata, the paper's
// reported batch-search results (for EXPERIMENTS.md comparisons), and the
// generator that synthesizes it.
type Spec struct {
	// Name matches Table 2 ("Taxi", "gas sensor", ...).
	Name string
	// Description paraphrases the Table 2 description column.
	Description string
	// N is the default number of points (Table 2 "# points").
	N int
	// Interval is the sampling interval implied by Table 2's duration.
	Interval time.Duration
	// DurationLabel is Table 2's human-readable duration.
	DurationLabel string
	// AnomalyFracStart/End delimit the known anomaly as fractions of the
	// series length; both are -1 when the dataset has no labeled anomaly.
	AnomalyFracStart float64
	AnomalyFracEnd   float64
	// AnomalyText is the description shown to (simulated) study subjects.
	AnomalyText string
	// PaperWindow, PaperCandExhaustive and PaperCandASAP record Table 2's
	// reported window size and candidate counts at 1200 px.
	PaperWindow         int
	PaperCandExhaustive int
	PaperCandASAP       int
	// UserStudy marks the five datasets used in Section 5.1.
	UserStudy bool

	gen func(n int, rng *rand.Rand) []float64
}

// Generate synthesizes the dataset at its default size.
func (s Spec) Generate(seed int64) *timeseries.Series {
	return s.GenerateN(s.N, seed)
}

// GenerateN synthesizes the dataset with n points. Anomaly positions scale
// with n so AnomalyRegion stays meaningful at any size.
func (s Spec) GenerateN(n int, seed int64) *timeseries.Series {
	if n < 1 {
		n = s.N
	}
	rng := rand.New(rand.NewSource(seed))
	values := s.gen(n, rng)
	start := time.Date(2014, 10, 1, 0, 0, 0, 0, time.UTC)
	return timeseries.New(s.Name, start, s.Interval, values)
}

// AnomalySpan returns the [start, end) index range of the labeled anomaly
// for an n-point instance, or (-1, -1) when none exists.
func (s Spec) AnomalySpan(n int) (int, int) {
	if s.AnomalyFracStart < 0 {
		return -1, -1
	}
	lo := int(s.AnomalyFracStart * float64(n))
	hi := int(s.AnomalyFracEnd * float64(n))
	if hi <= lo {
		hi = lo + 1
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// AnomalyRegion returns which of five equal-width regions contains the
// center of the anomaly (0-4), the answer key of the user studies, or -1
// when the dataset has no labeled anomaly.
func (s Spec) AnomalyRegion(n int) int {
	lo, hi := s.AnomalySpan(n)
	if lo < 0 {
		return -1
	}
	center := (lo + hi) / 2
	region := center * 5 / n
	if region > 4 {
		region = 4
	}
	return region
}

// Catalog returns all eleven datasets in Table 2 order (largest first).
func Catalog() []Spec { return append([]Spec(nil), catalog...) }

// ByName finds a dataset by its Table 2 name.
func ByName(name string) (Spec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// UserStudySpecs returns the five datasets of the Section 5.1 studies in
// figure order: Taxi, Power, Sine, EEG, Temp.
func UserStudySpecs() []Spec {
	order := []string{"Taxi", "Power", "Sine", "EEG", "Temp"}
	out := make([]Spec, 0, len(order))
	for _, name := range order {
		s, ok := ByName(name)
		if !ok {
			panic(fmt.Sprintf("datasets: user-study dataset %q missing from catalog", name))
		}
		out = append(out, s)
	}
	return out
}

var catalog = []Spec{
	{
		Name:                "gas sensor",
		Description:         "Chemical sensor exposed to a gas mixture",
		N:                   4_208_261,
		Interval:            10 * time.Millisecond,
		DurationLabel:       "12 hours",
		AnomalyFracStart:    -1,
		AnomalyFracEnd:      -1,
		PaperWindow:         26,
		PaperCandExhaustive: 115,
		PaperCandASAP:       7,
		gen:                 genGasSensor,
	},
	{
		Name:                "EEG",
		Description:         "Excerpt of electrocardiogram",
		N:                   45_000,
		Interval:            4 * time.Millisecond,
		DurationLabel:       "180 sec",
		AnomalyFracStart:    0.55,
		AnomalyFracEnd:      0.60,
		AnomalyText:         "an abnormal pattern (a premature ventricular contraction)",
		PaperWindow:         22,
		PaperCandExhaustive: 119,
		PaperCandASAP:       21,
		UserStudy:           true,
		gen:                 genEEG,
	},
	{
		Name:                "Power",
		Description:         "Power consumption for a Dutch research facility in 1997",
		N:                   35_040,
		Interval:            15 * time.Minute,
		DurationLabel:       "35040 sec",
		AnomalyFracStart:    0.40,
		AnomalyFracEnd:      0.425,
		AnomalyText:         "a temporary dip in power demand during the Ascension Thursday holiday",
		PaperWindow:         16,
		PaperCandExhaustive: 115,
		PaperCandASAP:       23,
		UserStudy:           true,
		gen:                 genPower,
	},
	{
		Name:                "traffic data",
		Description:         "Vehicle traffic observed between two points for 4 months",
		N:                   32_075,
		Interval:            5 * time.Minute,
		DurationLabel:       "4 months",
		AnomalyFracStart:    -1,
		AnomalyFracEnd:      -1,
		PaperWindow:         84,
		PaperCandExhaustive: 120,
		PaperCandASAP:       6,
		gen:                 genTraffic,
	},
	{
		Name:                "machine temp",
		Description:         "Temperature of an internal component of an industrial machine",
		N:                   22_695,
		Interval:            5 * time.Minute,
		DurationLabel:       "70 days",
		AnomalyFracStart:    0.90,
		AnomalyFracEnd:      0.94,
		AnomalyText:         "a temperature collapse preceding a component failure",
		PaperWindow:         44,
		PaperCandExhaustive: 125,
		PaperCandASAP:       7,
		gen:                 genMachineTemp,
	},
	{
		Name:                "Twitter AAPL",
		Description:         "A collection of Twitter mentions of Apple",
		N:                   15_902,
		Interval:            5 * time.Minute,
		DurationLabel:       "2 months",
		AnomalyFracStart:    0.35,
		AnomalyFracEnd:      0.355,
		AnomalyText:         "an extreme spike in mention volume",
		PaperWindow:         1,
		PaperCandExhaustive: 120,
		PaperCandASAP:       7,
		gen:                 genTwitterAAPL,
	},
	{
		Name:                "ramp traffic",
		Description:         "Car count on a freeway ramp in Los Angeles",
		N:                   8_640,
		Interval:            5 * time.Minute,
		DurationLabel:       "1 month",
		AnomalyFracStart:    -1,
		AnomalyFracEnd:      -1,
		PaperWindow:         96,
		PaperCandExhaustive: 117,
		PaperCandASAP:       5,
		gen:                 genRampTraffic,
	},
	{
		Name:                "sim daily",
		Description:         "Simulated two week data with one abnormal day",
		N:                   4_033,
		Interval:            5 * time.Minute,
		DurationLabel:       "2 weeks",
		AnomalyFracStart:    0.50,
		AnomalyFracEnd:      0.5714, // one day of fourteen
		AnomalyText:         "one day whose pattern differs from every other day",
		PaperWindow:         72,
		PaperCandExhaustive: 100,
		PaperCandASAP:       5,
		gen:                 genSimDaily,
	},
	{
		Name:                "Taxi",
		Description:         "Number of NYC taxi passengers in 30 min buckets",
		N:                   3_600,
		Interval:            30 * time.Minute,
		DurationLabel:       "75 days",
		AnomalyFracStart:    0.72,
		AnomalyFracEnd:      0.8133, // the week of Thanksgiving (7 of 75 days)
		AnomalyText:         "a sustained drop in trip volume during the week of Thanksgiving",
		PaperWindow:         112,
		PaperCandExhaustive: 120,
		PaperCandASAP:       4,
		UserStudy:           true,
		gen:                 genTaxi,
	},
	{
		Name:                "Temp",
		Description:         "Monthly temperature in England from 1723 to 1970",
		N:                   2_976,
		Interval:            30 * 24 * time.Hour,
		DurationLabel:       "248 years",
		AnomalyFracStart:    0.80,
		AnomalyFracEnd:      1.0,
		AnomalyText:         "a sustained warming trend after the end of the Little Ice Age",
		PaperWindow:         112,
		PaperCandExhaustive: 120,
		PaperCandASAP:       4,
		UserStudy:           true,
		gen:                 genTemp,
	},
	{
		Name:                "Sine",
		Description:         "Noisy sine wave with an anomaly that is half the usual period",
		N:                   800,
		Interval:            time.Second,
		DurationLabel:       "800 sec",
		AnomalyFracStart:    0.40,
		AnomalyFracEnd:      0.46,
		AnomalyText:         "a region where the signal oscillates at twice its usual rate",
		PaperWindow:         64,
		PaperCandExhaustive: 79,
		PaperCandASAP:       6,
		UserStudy:           true,
		gen:                 genSine,
	},
}

package datasets

import (
	"math"
	"testing"

	"github.com/asap-go/asap/internal/acf"
	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/stats"
)

func TestCatalogComplete(t *testing.T) {
	specs := Catalog()
	if len(specs) != 11 {
		t.Fatalf("catalog has %d datasets, want 11 (Table 2)", len(specs))
	}
	want := map[string]int{
		"gas sensor": 4_208_261, "EEG": 45_000, "Power": 35_040,
		"traffic data": 32_075, "machine temp": 22_695, "Twitter AAPL": 15_902,
		"ramp traffic": 8_640, "sim daily": 4_033, "Taxi": 3_600,
		"Temp": 2_976, "Sine": 800,
	}
	for _, s := range specs {
		n, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected dataset %q", s.Name)
			continue
		}
		if s.N != n {
			t.Errorf("%s: N = %d, want %d", s.Name, s.N, n)
		}
		if s.gen == nil {
			t.Errorf("%s: missing generator", s.Name)
		}
		if s.PaperWindow < 1 {
			t.Errorf("%s: missing paper window", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Taxi"); !ok {
		t.Error("Taxi not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name found")
	}
}

func TestUserStudySpecs(t *testing.T) {
	specs := UserStudySpecs()
	wantOrder := []string{"Taxi", "Power", "Sine", "EEG", "Temp"}
	if len(specs) != 5 {
		t.Fatalf("%d user-study datasets, want 5", len(specs))
	}
	for i, s := range specs {
		if s.Name != wantOrder[i] {
			t.Errorf("user-study[%d] = %s, want %s", i, s.Name, wantOrder[i])
		}
		if !s.UserStudy {
			t.Errorf("%s not flagged as user-study dataset", s.Name)
		}
		if s.AnomalyFracStart < 0 || s.AnomalyText == "" {
			t.Errorf("%s: user-study dataset needs a labeled anomaly", s.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, s := range Catalog() {
		n := s.N
		if n > 50_000 {
			n = 50_000 // keep the test fast; determinism is size-independent
		}
		a := s.GenerateN(n, 42).Values
		b := s.GenerateN(n, 42).Values
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: differs at %d with same seed", s.Name, i)
				break
			}
		}
		c := s.GenerateN(n, 43).Values
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: identical output for different seeds", s.Name)
		}
	}
}

func TestSeriesAreValid(t *testing.T) {
	for _, s := range Catalog() {
		n := s.N
		if n > 100_000 {
			n = 100_000
		}
		series := s.GenerateN(n, 1)
		if err := series.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if series.Len() != n {
			t.Errorf("%s: generated %d points, want %d", s.Name, series.Len(), n)
		}
		if series.Name != s.Name {
			t.Errorf("%s: series name %q", s.Name, series.Name)
		}
	}
}

func TestDefaultSizes(t *testing.T) {
	// Generate at full Table 2 size for everything but gas sensor (4.2M:
	// exercised in benchmarks).
	for _, s := range Catalog() {
		if s.Name == "gas sensor" {
			continue
		}
		series := s.Generate(7)
		if series.Len() != s.N {
			t.Errorf("%s: default size %d, want %d", s.Name, series.Len(), s.N)
		}
	}
}

func TestAnomalySpansAndRegions(t *testing.T) {
	for _, s := range Catalog() {
		lo, hi := s.AnomalySpan(s.N)
		region := s.AnomalyRegion(s.N)
		if s.AnomalyFracStart < 0 {
			if lo != -1 || hi != -1 || region != -1 {
				t.Errorf("%s: unlabeled dataset returned span %d..%d region %d", s.Name, lo, hi, region)
			}
			continue
		}
		if lo < 0 || hi <= lo || hi > s.N {
			t.Errorf("%s: bad anomaly span [%d,%d)", s.Name, lo, hi)
		}
		if region < 0 || region > 4 {
			t.Errorf("%s: bad region %d", s.Name, region)
		}
	}
	// Known answer keys for the user-study datasets.
	taxi, _ := ByName("Taxi")
	if got := taxi.AnomalyRegion(taxi.N); got != 3 {
		t.Errorf("Taxi anomaly region = %d, want 3 (Thanksgiving at ~77%%)", got)
	}
	temp, _ := ByName("Temp")
	if got := temp.AnomalyRegion(temp.N); got != 4 {
		t.Errorf("Temp anomaly region = %d, want 4 (warming at the end)", got)
	}
	sine, _ := ByName("Sine")
	if got := sine.AnomalyRegion(sine.N); got != 2 {
		t.Errorf("Sine anomaly region = %d, want 2", got)
	}
}

func TestPeriodicityMatchesDesign(t *testing.T) {
	// Verify the ACF structure the generators promise: Taxi daily period
	// = 48 samples; Sine period = 32; ramp traffic daily = 288.
	cases := []struct {
		name   string
		n      int
		period int
		tol    int
	}{
		{"Taxi", 3600, 48, 2},
		{"Sine", 800, 32, 2},
		{"ramp traffic", 8640, 288, 4},
	}
	for _, c := range cases {
		s, ok := ByName(c.name)
		if !ok {
			t.Fatalf("%s missing", c.name)
		}
		xs := s.GenerateN(c.n, 3).Values
		res, err := acf.Compute(xs, c.period*3)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range res.Peaks {
			if abs(p-c.period) <= c.tol {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no ACF peak near period %d; peaks=%v", c.name, c.period, res.Peaks)
		}
	}
}

func TestTwitterAAPLHighKurtosis(t *testing.T) {
	s, _ := ByName("Twitter AAPL")
	xs := s.Generate(5).Values
	k := stats.Kurtosis(xs)
	if k < 20 {
		t.Errorf("Twitter AAPL kurtosis = %v, want very high (spiky series)", k)
	}
	// The defining behaviour: ASAP must leave it unsmoothed at 1200 px.
	res, err := core.Smooth(xs, core.SmoothOptions{Resolution: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Window != 1 {
		t.Errorf("Twitter AAPL smoothed with window %d, want 1 (Table 2)", res.Window)
	}
}

func TestTaxiThanksgivingDip(t *testing.T) {
	s, _ := ByName("Taxi")
	xs := s.Generate(11).Values
	lo, hi := s.AnomalySpan(len(xs))
	dipMean := stats.Mean(xs[lo:hi])
	// Compare with same-length windows before and after.
	before := stats.Mean(xs[lo-(hi-lo) : lo])
	if dipMean >= before*0.9 {
		t.Errorf("Thanksgiving dip not present: dip mean %v vs before %v", dipMean, before)
	}
}

func TestTempWarmingTrend(t *testing.T) {
	s, _ := ByName("Temp")
	xs := s.Generate(13).Values
	n := len(xs)
	early := stats.Mean(xs[:n/5])
	late := stats.Mean(xs[4*n/5:])
	if late-early < 0.5 {
		t.Errorf("warming trend too weak: early %v, late %v", early, late)
	}
}

func TestSimDailyAbnormalDay(t *testing.T) {
	s, _ := ByName("sim daily")
	xs := s.Generate(17).Values
	lo, hi := s.AnomalySpan(len(xs))
	anomVar := stats.Variance(xs[lo:hi])
	normVar := stats.Variance(xs[hi : hi+(hi-lo)])
	if anomVar >= normVar/2 {
		t.Errorf("abnormal day not flattened: variance %v vs normal day %v", anomVar, normVar)
	}
}

func TestEEGAnomalyIsLargest(t *testing.T) {
	s, _ := ByName("EEG")
	xs := s.GenerateN(45000, 19).Values
	lo, hi := s.AnomalySpan(len(xs))
	var minV float64
	for _, v := range xs {
		if v < minV {
			minV = v
		}
	}
	var minAnom float64
	for _, v := range xs[lo:hi] {
		if v < minAnom {
			minAnom = v
		}
	}
	if minAnom > minV+1e-9 {
		t.Errorf("PVC should be the deepest deflection: anomaly min %v, global min %v", minAnom, minV)
	}
}

func TestGenerateNScaling(t *testing.T) {
	// Asking for a smaller instance keeps the anomaly at its fractional
	// position.
	s, _ := ByName("Taxi")
	small := s.GenerateN(720, 23) // 15 days at 48/day
	if small.Len() != 720 {
		t.Fatalf("GenerateN(720) returned %d points", small.Len())
	}
	lo, hi := s.AnomalySpan(720)
	if lo <= 0 || hi >= 720 || hi <= lo {
		t.Errorf("scaled anomaly span [%d,%d) invalid", lo, hi)
	}
	// Zero or negative n falls back to the default size.
	if got := s.GenerateN(0, 23).Len(); got != s.N {
		t.Errorf("GenerateN(0) = %d points, want default %d", got, s.N)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPowerHolidayDip(t *testing.T) {
	s, _ := ByName("Power")
	xs := s.Generate(29).Values
	lo, hi := s.AnomalySpan(len(xs))
	holiday := stats.Mean(xs[lo:hi])
	// Compare against the same weekday span one week earlier (672 points).
	week := 672
	if lo-week < 0 {
		t.Fatal("anomaly too early for comparison")
	}
	normal := stats.Mean(xs[lo-week : hi-week])
	if holiday >= normal*0.85 {
		t.Errorf("holiday dip missing: holiday %v vs normal %v", holiday, normal)
	}
}

func TestMachineTempFailureDip(t *testing.T) {
	s, _ := ByName("machine temp")
	xs := s.Generate(31).Values
	lo, hi := s.AnomalySpan(len(xs))
	failMin := math.Inf(1)
	for _, v := range xs[lo:hi] {
		failMin = math.Min(failMin, v)
	}
	normalMean := stats.Mean(xs[:lo])
	if normalMean-failMin < 10 {
		t.Errorf("failure dip too shallow: min %v vs normal %v", failMin, normalMean)
	}
}

func BenchmarkGenerateTaxi(b *testing.B) {
	s, _ := ByName("Taxi")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Generate(int64(i))
	}
}

func BenchmarkGenerateGasSensorFull(b *testing.B) {
	s, _ := ByName("gas sensor")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Generate(int64(i))
	}
}
